#![forbid(unsafe_code)]

//! # stale-view-cleaning
//!
//! Umbrella crate re-exporting the full Stale View Cleaning (SVC) stack.
//! See `svc_core` for the main entry points.

pub use svc_catalog as catalog;
pub use svc_cluster as cluster;
pub use svc_core as core;
pub use svc_fault as fault;
pub use svc_ivm as ivm;
pub use svc_relalg as relalg;
pub use svc_sampling as sampling;
pub use svc_stats as stats;
pub use svc_storage as storage;
pub use svc_telemetry as telemetry;
pub use svc_workloads as workloads;
