//! Quickstart: the paper's running example (Section 2.1) end to end.
//!
//! A video streaming company materializes `visitView` — visit counts per
//! video. New log records arrive faster than the view can be maintained, so
//! the view goes stale. SVC cleans a 10% sample of the view and answers
//! aggregate queries with bounds, without paying for full maintenance.
//!
//! Run with: `cargo run --release --example quickstart`

use stale_view_cleaning::core::{AggQuery, Method, SvcConfig, SvcView};
use stale_view_cleaning::relalg::scalar::{col, lit};
use stale_view_cleaning::workloads::video;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Base tables: Video(videoId, ownerId, duration), Log(sessionId, videoId).
    let db = video::generate(2_000, 100_000, 1.2, 7)?;
    println!(
        "base data: {} videos, {} log records",
        db.table("video")?.len(),
        db.table("log")?.len()
    );

    // CREATE MATERIALIZED VIEW visitView AS
    //   SELECT videoId, count(1) AS visitCount FROM log, video
    //   WHERE log.videoId = video.videoId GROUP BY videoId;
    let mut svc =
        SvcView::create("visitView", video::visit_view(), &db, SvcConfig::with_ratio(0.10))?;
    println!(
        "materialized visitView: {} rows, sampled {} rows (m=10%)",
        svc.view.len(),
        svc.stale_sample().len()
    );

    // 25,000 new sessions arrive, 90% of them hitting the newest videos —
    // staleness does not affect every query uniformly (Section 2.1).
    let deltas = video::log_insertions(&db, 25_000, 0.9, 13)?;
    println!("\n{} new log records arrived; the view is now stale\n", deltas.len());

    // "How many visits do the newest videos have?"
    let hot = AggQuery::sum(col("visitCount")).filter(col("videoId").ge(lit(1800i64)));
    // "How many videos have more than 60 visits?" (Example 2's shape)
    let popular = AggQuery::count().filter(col("visitCount").gt(lit(60i64)));

    for (name, q) in
        [("sum of visits to newest videos", &hot), ("videos with >60 visits", &popular)]
    {
        let truth = svc.query_fresh_oracle(&db, &deltas, q)?;
        let stale = svc.query_stale(q)?;
        let cleaned = svc.clean_sample(&db, &deltas)?;
        let aqp = svc.estimate_aqp(&cleaned, q)?;
        let corr = svc.estimate_corr(&cleaned, q)?;

        println!("query: {name}");
        println!("  fresh truth        : {truth:.1}");
        println!(
            "  stale answer       : {stale:.1}   ({:.1}% off)",
            100.0 * (stale - truth).abs() / truth
        );
        println!(
            "  SVC+AQP   estimate : {:.1} ± {:.1}  ({:.1}% off)",
            aqp.value,
            aqp.ci.as_ref().map(|c| c.half_width).unwrap_or(0.0),
            100.0 * (aqp.value - truth).abs() / truth
        );
        println!(
            "  SVC+CORR  estimate : {:.1} ± {:.1}  ({:.1}% off)",
            corr.value,
            corr.ci.as_ref().map(|c| c.half_width).unwrap_or(0.0),
            100.0 * (corr.value - truth).abs() / truth
        );
        println!();
    }

    // The break-even heuristic of Section 5.2.2 picks the estimator.
    let cleaned = svc.clean_sample(&db, &deltas)?;
    let preferred = svc.preferred_method(&cleaned, &hot)?;
    println!("preferred method at this staleness: {preferred:?}");

    // At the maintenance period boundary, run full IVM and re-sample.
    let kind = svc.maintain_full(&db, &deltas)?;
    println!("full maintenance executed via {kind:?}; view fresh again");
    assert_eq!(svc.query_stale(&hot)?, svc.query_fresh_oracle(&db, &deltas, &hot)?);
    let _ = Method::Stale; // silence unused-import lints in docs builds
    Ok(())
}
