//! EXPLAIN ANALYZE on a stale-view cleaning expression: compile the
//! η-pushed cleaning plan, run it with a metrics sink installed, and print
//! the physical operator tree annotated with per-node actual rows, wall
//! time, and catalog-estimated rows. The same cleaning plan is then
//! re-explained morsel-parallel on a 4-worker pool: wall times change, the
//! per-node row counts do not — that is the executor's determinism
//! contract, made visible.
//!
//! Run with: `cargo run --release --example explain_analyze`

use stale_view_cleaning::catalog::Catalog;
use stale_view_cleaning::cluster::executor::WorkerPool;
use stale_view_cleaning::core::{SvcConfig, SvcView};
use stale_view_cleaning::ivm::delta::{del_leaf, ins_leaf};
use stale_view_cleaning::ivm::view::maintenance_bindings;
use stale_view_cleaning::relalg::exec::{explain_analyze, ExecMode};
use stale_view_cleaning::workloads::video;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = video::generate(1_500, 60_000, 1.1, 3)?;
    let svc = SvcView::create("visitView", video::visit_view(), &db, SvcConfig::with_ratio(0.2))?;
    let deltas = video::log_insertions(&db, 30_000, 0.95, 9)?;
    let catalog = Catalog::build(&db);

    // The optimized cleaning expression C: η pushed through the
    // maintenance plan, join regions reordered by the catalog's estimates.
    let (plan, report, kind) = svc.cleaning_plan_with(&db, &deltas, Some(&catalog))?;
    let stale_binding = if report.fully_pushed() { svc.stale_sample() } else { svc.view.table() };
    let bindings = maintenance_bindings(&db, &deltas, stale_binding);

    // The estimator sees the same leaf overlay the optimizer did: stale
    // sample and delta relations bound by their maintenance leaf names.
    let mut scoped = catalog.scoped();
    scoped.bind_table(SvcView::stale_leaf(), stale_binding);
    for (name, set) in deltas.iter() {
        scoped.bind_table(ins_leaf(name), &set.insertions);
        scoped.bind_table(del_leaf(name), &set.deletions);
    }
    let est = scoped.estimator();

    println!("cleaning plan ({kind:?} strategy, η fully pushed: {})\n", report.fully_pushed());

    println!("EXPLAIN ANALYZE (sequential, vectorized):");
    let sequential = explain_analyze(&plan, &bindings, Some(&est), ExecMode::sequential())?;
    print!("{sequential}");
    println!("=> {} cleaned sample rows\n", sequential.table.len());

    let pool = WorkerPool::new(4);
    println!("EXPLAIN ANALYZE (morsel-parallel, 4 workers):");
    let parallel = explain_analyze(&plan, &bindings, Some(&est), ExecMode::morsel_auto(&pool))?;
    print!("{parallel}");

    // The determinism contract: per-node actual row counts are functions
    // of the plan and its inputs, never of the scheduler.
    for (s, p) in sequential.nodes.iter().zip(&parallel.nodes) {
        assert_eq!(
            (s.metrics.rows_in, s.metrics.rows_out),
            (p.metrics.rows_in, p.metrics.rows_out),
            "node #{} row counts must not depend on the execution mode",
            s.id
        );
    }
    println!("\nper-node row counts identical across modes ✓ (only wall times differ)");

    let pm = pool.metrics();
    println!(
        "pool: {} sessions, {} tasks, {:.1}ms total worker busy time",
        pm.sessions,
        pm.tasks,
        pm.total_busy_ns() as f64 / 1e6
    );

    // The per-view gauges the cleaning path maintains.
    let cleaned = svc.clean_sample(&db, &deltas)?;
    let m = svc.metrics();
    println!(
        "view: {} cleanings, {} rows cleaned, staleness age {:?}",
        m.cleanings, m.rows_cleaned, m.staleness_age
    );
    assert_eq!(cleaned.canonical.len(), sequential.table.len());
    Ok(())
}
