//! Outlier indexing on skewed data (Section 6): a revenue-per-order view
//! over a heavy-tailed price distribution, where a handful of records
//! dominate sums and plain sampling struggles.
//!
//! Run with: `cargo run --release --example outlier_skew`

use stale_view_cleaning::core::outlier::{
    estimate_aqp_with_outliers, stale_rows_at, OutlierIndex, OutlierIndexSpec, ThresholdPolicy,
};
use stale_view_cleaning::core::{query::relative_error, AggQuery, SvcConfig, SvcView};
use stale_view_cleaning::relalg::scalar::{col, lit};
use stale_view_cleaning::workloads::tpcd::{TpcdConfig, TpcdData};
use stale_view_cleaning::workloads::tpcd_views::complex_views;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // z = 4: the most extreme tail of Figure 8a.
    let data = TpcdData::generate(TpcdConfig { scale: 0.08, skew: 4.0, seed: 21 })?;
    let deltas = data.updates(0.10, 5)?;

    let v3 = complex_views().into_iter().find(|v| v.id == "V3").unwrap();
    let svc = SvcView::create("V3", v3.plan, &data.db, SvcConfig::with_ratio(0.1))?;

    // Index the 100 most extreme lineitem prices (top-k policy, Section 6.1).
    let idx = OutlierIndex::build(
        OutlierIndexSpec {
            table: "lineitem".into(),
            attr: "l_extendedprice".into(),
            policy: ThresholdPolicy::TopK,
            capacity: 100,
        },
        &data.db,
        &deltas,
    )?;
    println!("outlier index: {} records above threshold {:.0}", idx.records.len(), idx.threshold);

    let cleaned = svc.clean_sample(&data.db, &deltas)?;
    println!(
        "index eligible for this cleaning run (sampled leaves {:?}): {}",
        cleaned.report.sampled_leaves,
        idx.eligible(&cleaned.report.sampled_leaves)
    );

    // Push the index up through the view (Definition 5): the affected view
    // rows are materialized exactly.
    let o_fresh = svc.view.public_of(&idx.push_up(&svc.view, &data.db, &deltas)?)?;
    let _o_stale = stale_rows_at(&svc.view.public_table()?, &o_fresh);
    println!("outlier rows of the view: {}", o_fresh.len());

    let fresh = svc.view.public_of(&svc.view.recompute_fresh(&data.db, &deltas)?)?;
    let q = AggQuery::sum(col("revenue")).filter(col("orderdate").lt(lit(1500.0)));
    let truth = q.exact(&fresh)?;

    let plain = svc.estimate_aqp(&cleaned, &q)?;
    let with_idx = estimate_aqp_with_outliers(&cleaned.public, &o_fresh, &q, 0.1, &svc.config)?;

    println!("\nsum(revenue) where orderdate < 1500");
    println!("  truth                  : {truth:.0}");
    println!(
        "  SVC+AQP  (no index)    : {:.0}   error {:.2}%",
        plain.value,
        relative_error(plain.value, truth) * 100.0
    );
    println!(
        "  SVC+AQP  (outlier idx) : {:.0}   error {:.2}%",
        with_idx.value,
        relative_error(with_idx.value, truth) * 100.0
    );
    println!("\nThe deterministic outlier set removes the heavy tail from the sampled");
    println!("estimate's variance — the mechanism behind Figure 8a.");
    Ok(())
}
