//! An analytics-dashboard scenario on TPCD-Skew: one join view, the 12
//! TPCD query analogs, and a comparison of all answering strategies as the
//! update backlog grows (the Figure 5 / Figure 6b setting).
//!
//! Run with: `cargo run --release --example tpcd_dashboard`

use rand::SeedableRng;

use stale_view_cleaning::core::{query::relative_error, SvcConfig, SvcView};
use stale_view_cleaning::workloads::tpcd::{TpcdConfig, TpcdData};
use stale_view_cleaning::workloads::tpcd_views::{join_view, join_view_queries};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = TpcdData::generate(TpcdConfig { scale: 0.08, skew: 2.0, seed: 42 })?;
    println!(
        "TPCD-Skew z=2: {} lineitems / {} orders",
        data.lineitem_rows(),
        data.db.table("orders")?.len()
    );

    let svc = SvcView::create("joinView", join_view(), &data.db, SvcConfig::with_ratio(0.1))?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);

    for update_pct in [0.05, 0.20, 0.40] {
        let deltas = data.updates(update_pct, 7)?;
        let cleaned = svc.clean_sample(&data.db, &deltas)?;
        println!(
            "\n--- update backlog {:.0}% of base data (cleaning plan: {:?}, pushed fully: {}) ---",
            update_pct * 100.0,
            cleaned.plan_kind,
            cleaned.report.fully_pushed()
        );
        println!("{:>5} {:>10} {:>10} {:>10}  winner", "query", "stale%", "AQP%", "CORR%");

        let fresh = svc.view.public_of(&svc.view.recompute_fresh(&data.db, &deltas)?)?;
        let stale_view = svc.view.public_table()?;
        for template in join_view_queries() {
            let q = template.instance(&mut rng);
            let truth = q.exact(&fresh)?;
            if !truth.is_finite() || truth == 0.0 {
                continue;
            }
            let e_stale = relative_error(q.exact(&stale_view)?, truth);
            let e_aqp = relative_error(svc.estimate_aqp(&cleaned, &q)?.value, truth);
            let e_corr = relative_error(svc.estimate_corr(&cleaned, &q)?.value, truth);
            let winner = if e_corr <= e_aqp { "CORR" } else { "AQP" };
            println!(
                "{:>5} {:>9.2}% {:>9.2}% {:>9.2}%  {winner}",
                template.id,
                e_stale * 100.0,
                e_aqp * 100.0,
                e_corr * 100.0
            );
        }
    }
    println!("\nAs the backlog grows, AQP catches up with CORR — the Section 5.2.2 break-even.");
    Ok(())
}
