//! Streaming mini-batch maintenance (Section 7.6.2): a Conviva-like log
//! stream, periodic IVM at a fixed throughput budget, and SVC sample
//! cleanings filling the gaps between refreshes.
//!
//! Run with: `cargo run --release --example streaming_minibatch`

use stale_view_cleaning::cluster::{timeline_max_error, TimelineConfig};
use stale_view_cleaning::core::query::AggQuery;
use stale_view_cleaning::relalg::scalar::{col, lit};
use stale_view_cleaning::workloads::conviva::{
    appended_updates_at, generate, views, ConvivaConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ConvivaConfig { base_events: 8_000, ..Default::default() };
    let db = generate(cfg)?;
    let v2 = views().into_iter().find(|v| v.id == "V2").unwrap();
    let queries = vec![
        AggQuery::sum(col("totalBytes")).filter(col("resourceId").lt(lit(50i64))),
        AggQuery::sum(col("n")),
    ];

    let mut make_chunk = move |db: &stale_view_cleaning::storage::Database, t: usize| {
        appended_updates_at(db, cfg, 300, 40 + t as u64, 5_000_000 + t as i64 * 10_000)
    };

    println!("streaming 20 chunks of 300 events into view V2 (bytes by resource/date)\n");

    // Baseline: IVM alone refreshes every 5 chunks.
    let ivm = timeline_max_error(
        &db,
        v2.plan.clone(),
        &mut make_chunk,
        &queries,
        &TimelineConfig { total_chunks: 20, ivm_period: 5, svc_period: None, ratio: 0.1, seed: 3 },
    )?;
    println!(
        "IVM every 5 chunks          : max error {:.2}%  mean {:.2}%",
        ivm.max_error * 100.0,
        ivm.mean_error * 100.0
    );

    // Sharing the cluster: IVM period doubles, but SVC cleans a 5% sample
    // every other chunk and answers queries with corrections.
    let with_svc = timeline_max_error(
        &db,
        v2.plan,
        &mut make_chunk,
        &queries,
        &TimelineConfig {
            total_chunks: 20,
            ivm_period: 10,
            svc_period: Some(2),
            ratio: 0.05,
            seed: 3,
        },
    )?;
    println!(
        "IVM every 10 + SVC-5% every 2: max error {:.2}%  mean {:.2}%",
        with_svc.max_error * 100.0,
        with_svc.mean_error * 100.0
    );

    println!("\nSVC trades a slower full-refresh cadence for bounded estimates in");
    println!("between — the Figure 15 experiment in miniature.");
    Ok(())
}
