//! Select-query cleaning (Appendix 12.1.2): patch the row set returned by
//! a `SELECT * FROM view WHERE ...` on a stale view using the corresponding
//! samples, and estimate how many rows were updated / added / removed.
//!
//! Run with: `cargo run --release --example select_cleaning`

use stale_view_cleaning::core::select_clean::clean_select;
use stale_view_cleaning::core::{SvcConfig, SvcView};
use stale_view_cleaning::relalg::scalar::{col, lit};
use stale_view_cleaning::workloads::video;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = video::generate(1_500, 60_000, 1.1, 3)?;
    let svc = SvcView::create("visitView", video::visit_view(), &db, SvcConfig::with_ratio(0.25))?;

    // A burst of views concentrated on the newest videos.
    let deltas = video::log_insertions(&db, 30_000, 0.95, 9)?;

    // SELECT * FROM visitView WHERE visitCount > 120;
    let predicate = col("visitCount").gt(lit(120i64));

    let stale_view = svc.view.public_table()?;
    let cleaned_sample = svc.clean_sample(&db, &deltas)?;
    let result = clean_select(
        &stale_view,
        &svc.stale_sample_public()?,
        &cleaned_sample.public,
        &predicate,
        svc.config.ratio,
        &svc.config,
    )?;

    let stale_hits = stale_view.rows().iter().filter(|r| r[1].as_i64().unwrap_or(0) > 120).count();
    let fresh = svc.view.public_of(&svc.view.recompute_fresh(&db, &deltas)?)?;
    let true_hits = fresh.rows().iter().filter(|r| r[1].as_i64().unwrap_or(0) > 120).count();

    println!("SELECT * FROM visitView WHERE visitCount > 120");
    println!("  stale result rows   : {stale_hits}");
    println!("  true result rows    : {true_hits}");
    println!("  patched result rows : {}", result.rows.len());
    println!();
    println!("error-class estimates (scaled 1/m, with CLT bounds):");
    for (label, est) in [
        ("updated rows", &result.updated),
        ("added rows  ", &result.added),
        ("removed rows", &result.removed),
    ] {
        println!(
            "  {label}: {:.0} ± {:.0}",
            est.value,
            est.ci.as_ref().map(|c| c.half_width).unwrap_or(0.0)
        );
    }
    println!("\nSampled updates overwrite stale rows, sampled missing rows are added,");
    println!("and sampled superfluous rows are dropped — lineage by primary key.");
    Ok(())
}
