#!/usr/bin/env sh
# Unsafe-code audit gate.
#
# The workspace policy (see ARCHITECTURE.md, "Verification") is that every
# crate carries `#![forbid(unsafe_code)]` except `svc-cluster`, whose
# work-stealing executor needs one audited lifetime-erasure block for the
# type-erased `RawTask`. That crate is `#![deny(unsafe_code)]` +
# `#![deny(unsafe_op_in_unsafe_fn)]`, with item-level `#[allow(unsafe_code)]`
# and SAFETY comments confined to `crates/cluster/src/executor.rs`.
#
# This script fails if the token `unsafe` appears in any Rust source outside
# that one audited module. The compiler enforces the lint attributes; this
# gate enforces that nobody quietly moves or widens the allowance.
set -eu

cd "$(dirname "$0")/.."

ALLOWED="crates/cluster/src/executor.rs"

# Strip line comments first so prose *about* unsafe doesn't trip the gate;
# `unsafe_code`/`unsafe_op_in_unsafe_fn` lint names don't match `-w unsafe`.
hits=$(grep -rn --include='*.rs' -w 'unsafe' crates/ src/ tests/ 2>/dev/null |
    grep -v "^$ALLOWED:" |
    awk -F: '{ line = ""; for (i = 3; i <= NF; i++) line = line (i > 3 ? ":" : "") $i;
               sub(/\/\/.*/, "", line);
               if (line ~ /(^|[^A-Za-z0-9_])unsafe([^A-Za-z0-9_]|$)/) print }' || true)

if [ -n "$hits" ]; then
    echo "unsafe audit FAILED: 'unsafe' found outside $ALLOWED:" >&2
    echo "$hits" >&2
    exit 1
fi

count=$(grep -cw 'unsafe' "$ALLOWED" || true)
echo "unsafe audit OK: all unsafe code confined to $ALLOWED ($count occurrences)"
