//! Zipfian sampling: the skew knob of TPCD-Skew [8].
//!
//! `P(k) ∝ 1/k^z` over the domain `1..=n`. `z = 1` corresponds to the basic
//! TPCD benchmark in the paper's setup and `z ∈ {1,2,3,4}` is swept in the
//! outlier-index experiments (Figure 8a). Sampling uses a precomputed CDF
//! with binary search — exact, O(log n) per draw.

use rand::Rng;

/// A Zipf(α=z) distribution over `1..=n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler. Panics if `n == 0` or `z < 0`.
    pub fn new(n: usize, z: f64) -> Zipf {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(z >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(z);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw a value in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// Probability mass of value `k` (1-based).
    pub fn pmf(&self, k: usize) -> f64 {
        assert!((1..=self.cdf.len()).contains(&k));
        if k == 1 {
            self.cdf[0]
        } else {
            self.cdf[k - 1] - self.cdf[k - 2]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn z_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 1..=10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn higher_z_concentrates_mass_on_head() {
        let z1 = Zipf::new(100, 1.0);
        let z4 = Zipf::new(100, 4.0);
        assert!(z4.pmf(1) > z1.pmf(1));
        assert!(z4.pmf(100) < z1.pmf(100));
        assert!(z4.pmf(1) > 0.9, "z=4 head mass {}", z4.pmf(1));
    }

    #[test]
    fn empirical_matches_pmf() {
        let z = Zipf::new(50, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let mut counts = vec![0usize; 51];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for k in [1usize, 2, 5] {
            let emp = counts[k] as f64 / n as f64;
            assert!((emp - z.pmf(k)).abs() < 0.01, "k={k}: empirical {emp} vs pmf {}", z.pmf(k));
        }
    }

    #[test]
    fn samples_stay_in_domain() {
        let z = Zipf::new(7, 3.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let k = z.sample(&mut rng);
            assert!((1..=7).contains(&k));
        }
    }
}
