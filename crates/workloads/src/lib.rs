#![forbid(unsafe_code)]

//! # svc-workloads
//!
//! Data and query generators reproducing the paper's evaluation workloads
//! (Section 7) at laptop scale:
//!
//! * [`zipf`] — Zipfian sampling (the TPCD-Skew `z` parameter [8,37]);
//! * [`tpcd`] — a TPCD-Skew-shaped database (region/nation/customer/
//!   orders/lineitem/part/supplier) plus the update workload (insertions
//!   and updates to `lineitem`/`orders`, Section 7.1);
//! * [`tpcd_views`] — the join view with 12 query analogs (Figure 5) and
//!   the 10 "complex views" V3..V22 including the push-down blockers
//!   V21/V22 (Figure 7);
//! * [`cube`] — the data-cube aggregate view with its 13 roll-up queries
//!   (Section 7.6.1 / Appendix 12.6.3, Figures 10–13);
//! * [`conviva`] — a synthetic activity-log and the 8 summary views of
//!   Appendix 12.6.2 (Figure 9);
//! * [`video`] — the Log/Video running example of Section 2.1;
//! * [`querygen`] — random aggregate queries over a view (the "100 random
//!   sum/avg/count queries per view" protocol of Section 7.1).

pub mod conviva;
pub mod cube;
pub mod querygen;
pub mod tpcd;
pub mod tpcd_views;
pub mod video;
pub mod zipf;

pub use tpcd::{TpcdConfig, TpcdData};
pub use zipf::Zipf;
