//! Random aggregate-query generation over a view's public schema — the
//! protocol of Section 7.1: "we picked a random attribute a from the group
//! by clause and a random attribute b from aggregation [...] we select a
//! random subset of this domain [...] 100 random sum, avg, and count
//! queries for each view".

use rand::rngs::StdRng;
use rand::Rng;

use svc_core::query::{AggQuery, QueryAgg};
use svc_relalg::scalar::{col, Expr};
use svc_storage::{Result, Table, Value};

/// Generate `count` random queries over `view` (public schema): aggregate
/// drawn from {sum, avg, count}, measure from `measures`, and a range
/// predicate over a random dimension's observed domain.
pub fn random_queries(
    view: &Table,
    dims: &[&str],
    measures: &[&str],
    count: usize,
    rng: &mut StdRng,
) -> Result<Vec<AggQuery>> {
    assert!(!dims.is_empty() && !measures.is_empty());
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let dim = dims[rng.random_range(0..dims.len())];
        let measure = measures[rng.random_range(0..measures.len())];
        let agg = match rng.random_range(0..3) {
            0 => QueryAgg::Sum,
            1 => QueryAgg::Avg,
            _ => QueryAgg::Count,
        };
        let predicate = random_range_predicate(view, dim, rng)?;
        out.push(AggQuery { agg, attr: col(measure), predicate: Some(predicate) });
    }
    Ok(out)
}

/// A random sub-range predicate over the observed domain of `dim`,
/// targeting a selectivity between roughly 10% and 60%.
pub fn random_range_predicate(view: &Table, dim: &str, rng: &mut StdRng) -> Result<Expr> {
    let idx = view.schema().resolve(dim)?;
    let mut values: Vec<Value> = view.rows().iter().map(|r| r[idx].clone()).collect();
    values.sort();
    values.dedup();
    let n = values.len().max(1);
    let width = ((n as f64 * rng.random_range(0.1..0.6)) as usize).max(1);
    let start = rng.random_range(0..n.saturating_sub(width).max(1));
    let lo = values[start].clone();
    let hi = values[(start + width).min(n - 1)].clone();
    Ok(col(dim).ge(Expr::Lit(lo)).and(col(dim).le(Expr::Lit(hi))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use svc_storage::{DataType, Schema};

    fn view() -> Table {
        let schema = Schema::from_pairs(&[("g", DataType::Int), ("m", DataType::Float)]).unwrap();
        let mut t = Table::new(schema, &["g"]).unwrap();
        for g in 0..100i64 {
            t.insert(vec![Value::Int(g), Value::Float((g * 3 % 17) as f64)]).unwrap();
        }
        t
    }

    #[test]
    fn generated_queries_run_and_select_subsets() {
        let v = view();
        let mut rng = StdRng::seed_from_u64(12);
        let qs = random_queries(&v, &["g"], &["m"], 50, &mut rng).unwrap();
        assert_eq!(qs.len(), 50);
        let mut nontrivial = 0;
        for q in &qs {
            let bound = q.bind(&v).unwrap();
            let hits = v.rows().iter().filter(|r| bound.matches(r)).count();
            assert!(hits <= v.len());
            if hits > 0 && hits < v.len() {
                nontrivial += 1;
            }
        }
        assert!(nontrivial > 25, "most predicates should be selective: {nontrivial}");
    }

    #[test]
    fn deterministic_per_seed() {
        let v = view();
        let a = random_queries(&v, &["g"], &["m"], 5, &mut StdRng::seed_from_u64(3)).unwrap();
        let b = random_queries(&v, &["g"], &["m"], 5, &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(a, b);
    }
}
