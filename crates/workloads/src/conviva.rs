//! A Conviva-like video-distribution activity log (Section 7.5) and the
//! eight summary-statistics views of Appendix 12.6.2.
//!
//! The real dataset is proprietary; the appendix describes the views
//! structurally ("counts of error types grouped by resources/users/date",
//! nested region groupings, a union over a resource subset, wide aggregate
//! views). The generator reproduces those shapes: a denormalized activity
//! log with Zipf-skewed resource popularity, error codes, byte counts, and
//! latencies, where updates are *appended* log records (the paper applies
//! the last 20% of the log as updates).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use svc_relalg::aggregate::{AggFunc, AggSpec};
use svc_relalg::plan::Plan;
use svc_relalg::scalar::{col, lit};
use svc_storage::{DataType, Database, Deltas, Result, Schema, Table, Value};

use crate::zipf::Zipf;

/// Generator parameters for the activity log.
#[derive(Debug, Clone, Copy)]
pub struct ConvivaConfig {
    /// Number of log records in the base data.
    pub base_events: usize,
    /// Number of distinct resources (videos/CDN assets).
    pub resources: usize,
    /// Number of distinct users.
    pub users: usize,
    /// Number of days spanned.
    pub days: i64,
    /// Zipf skew of resource popularity.
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ConvivaConfig {
    fn default() -> Self {
        ConvivaConfig {
            base_events: 30_000,
            resources: 400,
            users: 800,
            days: 120,
            skew: 1.5,
            seed: 77,
        }
    }
}

fn event_row(rng: &mut StdRng, zipf: &Zipf, cfg: &ConvivaConfig, id: i64) -> Vec<Value> {
    let resource = zipf.sample(rng) as i64 - 1;
    let user = rng.random_range(0..cfg.users as i64);
    let date = rng.random_range(0..cfg.days);
    // ~6% of events carry an error; code skewed toward common classes.
    let error = if rng.random::<f64>() < 0.06 { rng.random_range(1..6i64) } else { 0 };
    let bytes = (rng.random_range(1.0f64..80.0)).powi(2) * 1000.0;
    let latency = rng.random_range(5.0..500.0);
    vec![
        Value::Int(id),
        Value::Int(date),
        Value::Int(user),
        Value::Int(resource),
        Value::Int(resource % 10), // resource tag group
        Value::Int(error),
        Value::Float(bytes),
        Value::Float(latency),
    ]
}

/// Generate the base activity log.
pub fn generate(cfg: ConvivaConfig) -> Result<Database> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let zipf = Zipf::new(cfg.resources, cfg.skew);
    let mut db = Database::new();
    let mut activity = Table::new(
        Schema::from_pairs(&[
            ("eventId", DataType::Int),
            ("date", DataType::Int),
            ("userId", DataType::Int),
            ("resourceId", DataType::Int),
            ("resourceTag", DataType::Int),
            ("errorType", DataType::Int),
            ("bytes", DataType::Float),
            ("latency", DataType::Float),
        ])?,
        &["eventId"],
    )?;
    for id in 0..cfg.base_events as i64 {
        activity.insert(event_row(&mut rng, &zipf, &cfg, id))?;
    }
    db.create_table("activity", activity);
    Ok(db)
}

/// Append `count` new log records as the update workload (the remaining
/// trace "applied in the order they arrived").
pub fn appended_updates(
    db: &Database,
    cfg: ConvivaConfig,
    count: usize,
    seed: u64,
) -> Result<Deltas> {
    let next = db.table("activity")?.len() as i64;
    appended_updates_at(db, cfg, count, seed, next)
}

/// Like [`appended_updates`] but with an explicit starting event id — used
/// by streaming timelines where chunks accumulate before being applied to
/// the base table, so ids cannot be derived from the table length.
pub fn appended_updates_at(
    db: &Database,
    cfg: ConvivaConfig,
    count: usize,
    seed: u64,
    start_id: i64,
) -> Result<Deltas> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0471A);
    let zipf = Zipf::new(cfg.resources, cfg.skew);
    let mut deltas = Deltas::new();
    for id in start_id..start_id + count as i64 {
        deltas.insert(db, "activity", event_row(&mut rng, &zipf, &cfg, id))?;
    }
    Ok(deltas)
}

/// A named Conviva-like view plus query-generation attributes.
pub struct ConvivaView {
    /// View id ("V1" .. "V8").
    pub id: &'static str,
    /// Definition over the `activity` relation.
    pub plan: Plan,
    /// Dimension columns for predicates.
    pub dims: Vec<&'static str>,
    /// Measure columns for aggregates.
    pub measures: Vec<&'static str>,
}

/// The eight summary-statistics views of Appendix 12.6.2.
#[allow(clippy::vec_init_then_push)] // one block per view reads better
pub fn views() -> Vec<ConvivaView> {
    let mut out = Vec::new();

    // V1: counts of error types grouped by resource and date.
    out.push(ConvivaView {
        id: "V1",
        plan: Plan::scan("activity")
            .select(col("errorType").gt(lit(0i64)))
            .aggregate(&["resourceId", "errorType"], vec![AggSpec::count_all("errors")]),
        dims: vec!["resourceId", "errorType"],
        measures: vec!["errors"],
    });

    // V2: bytes transferred grouped by resource and date.
    out.push(ConvivaView {
        id: "V2",
        plan: Plan::scan("activity").aggregate(
            &["resourceId", "date"],
            vec![AggSpec::new("totalBytes", AggFunc::Sum, col("bytes")), AggSpec::count_all("n")],
        ),
        dims: vec!["resourceId", "date"],
        measures: vec!["totalBytes", "n"],
    });

    // V3: visit counts grouped by resource tag, user, date bucket.
    out.push(ConvivaView {
        id: "V3",
        plan: Plan::scan("activity")
            .project(vec![
                ("eventId", col("eventId")),
                ("resourceTag", col("resourceTag")),
                ("userId", col("userId")),
                ("week", col("date").div(lit(7i64))),
            ])
            .aggregate(&["resourceTag", "week"], vec![AggSpec::count_all("visits")]),
        dims: vec!["resourceTag", "week"],
        measures: vec!["visits"],
    });

    // V4: nested — group users into cohorts by activity, then aggregate
    // cohort sizes (blocks push-down like the paper's nested views).
    out.push(ConvivaView {
        id: "V4",
        plan: Plan::scan("activity")
            .aggregate(&["userId"], vec![AggSpec::count_all("sessions")])
            .project(vec![("userId", col("userId")), ("cohort", col("sessions").div(lit(10i64)))])
            .aggregate(&["cohort"], vec![AggSpec::count_all("usersInCohort")]),
        dims: vec!["cohort"],
        measures: vec!["usersInCohort"],
    });

    // V5: nested — per-user error counts grouped into cohorts.
    out.push(ConvivaView {
        id: "V5",
        plan: Plan::scan("activity")
            .select(col("errorType").gt(lit(0i64)))
            .aggregate(&["userId"], vec![AggSpec::count_all("errors")])
            .aggregate(&["errors"], vec![AggSpec::count_all("users")]),
        dims: vec!["errors"],
        measures: vec!["users"],
    });

    // V6: union filtered on a resource subset, aggregating visits and bytes.
    out.push(ConvivaView {
        id: "V6",
        plan: Plan::scan("activity")
            .select(col("resourceId").lt(lit(40i64)))
            .union(Plan::scan("activity").select(col("resourceId").ge(lit(350i64))))
            .aggregate(
                &["resourceId"],
                vec![
                    AggSpec::count_all("visits"),
                    AggSpec::new("totalBytes", AggFunc::Sum, col("bytes")),
                ],
            ),
        dims: vec!["resourceId"],
        measures: vec!["visits", "totalBytes"],
    });

    // V7: wide network-statistics view by resource and date.
    out.push(ConvivaView {
        id: "V7",
        plan: Plan::scan("activity").aggregate(
            &["resourceId", "date"],
            vec![
                AggSpec::count_all("n"),
                AggSpec::new("totalBytes", AggFunc::Sum, col("bytes")),
                AggSpec::new("avgLatency", AggFunc::Avg, col("latency")),
                AggSpec::new("maxLatency", AggFunc::Max, col("latency")),
            ],
        ),
        dims: vec!["resourceId", "date"],
        measures: vec!["n", "totalBytes", "avgLatency", "maxLatency"],
    });

    // V8: wide visit-statistics view by user and date.
    out.push(ConvivaView {
        id: "V8",
        plan: Plan::scan("activity").aggregate(
            &["userId", "date"],
            vec![
                AggSpec::count_all("visits"),
                AggSpec::new("totalBytes", AggFunc::Sum, col("bytes")),
                AggSpec::new("avgBytes", AggFunc::Avg, col("bytes")),
            ],
        ),
        dims: vec!["userId", "date"],
        measures: vec!["visits", "totalBytes", "avgBytes"],
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use svc_core::{SvcConfig, SvcView};

    #[test]
    fn all_views_materialize_and_maintain() {
        let cfg = ConvivaConfig { base_events: 4000, ..Default::default() };
        let db = generate(cfg).unwrap();
        let deltas = appended_updates(&db, cfg, 400, 1).unwrap();
        for v in views() {
            let mut svc = SvcView::create(v.id, v.plan.clone(), &db, SvcConfig::with_ratio(0.2))
                .unwrap_or_else(|e| panic!("{} create failed: {e}", v.id));
            assert!(!svc.view.is_empty(), "{} empty", v.id);
            let expected = svc.view.recompute_fresh(&db, &deltas).unwrap();
            svc.maintain_full(&db, &deltas).unwrap();
            assert!(
                svc.view.table().approx_same_contents(&expected, 1e-9),
                "{} maintenance diverged",
                v.id
            );
        }
    }

    #[test]
    fn eight_views_exist() {
        assert_eq!(views().len(), 8);
    }

    #[test]
    fn updates_are_append_only() {
        let cfg = ConvivaConfig { base_events: 1000, ..Default::default() };
        let db = generate(cfg).unwrap();
        let deltas = appended_updates(&db, cfg, 100, 2).unwrap();
        let set = deltas.get("activity").unwrap();
        assert_eq!(set.insertions.len(), 100);
        assert!(set.deletions.is_empty());
    }
}
