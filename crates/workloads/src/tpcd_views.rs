//! The TPCD view suite of the evaluation:
//!
//! * the **join view** of `lineitem ⋈ orders` with 12 parametrized query
//!   analogs (the TPCD queries that touch the join — Q3, Q4, Q5, Q7, Q8,
//!   Q9, Q10, Q12, Q14, Q18, Q19, Q21 per Section 7.2 / Appendix 12.6.1);
//! * the **complex views** V3..V22 of Section 7.3: ten group-by aggregate
//!   views over the base schema, including the two structures the paper
//!   identifies as push-down blockers — V21's nested aggregate and V22's
//!   key transformation.

use rand::rngs::StdRng;
use rand::Rng;

use svc_core::query::AggQuery;
use svc_relalg::aggregate::{AggFunc, AggSpec};
use svc_relalg::plan::{JoinKind, Plan};
use svc_relalg::scalar::{col, lit, Expr, Func};

/// `revenue = l_extendedprice * (1 − l_discount)`, the recurring TPCD
/// expression.
pub fn revenue_expr() -> Expr {
    col("l_extendedprice").mul(lit(1.0).sub(col("l_discount")))
}

/// The join view: the foreign-key join of `lineitem` and `orders`
/// (Section 7.2). An SPJ view — its primary key is lineitem's.
pub fn join_view() -> Plan {
    Plan::scan("lineitem").join(
        Plan::scan("orders"),
        JoinKind::Inner,
        &[("l_orderkey", "o_orderkey")],
    )
}

/// One parametrized query template on the join view.
pub struct JoinViewQuery {
    /// The TPCD query this is an analog of ("Q3", ..., "Q21").
    pub id: &'static str,
    generator: fn(&mut StdRng) -> AggQuery,
}

impl JoinViewQuery {
    /// Draw a random instance (random predicate parameters, as TPCD's
    /// `qgen` does).
    pub fn instance(&self, rng: &mut StdRng) -> AggQuery {
        (self.generator)(rng)
    }
}

/// The 12 join-view query analogs of Figure 5.
pub fn join_view_queries() -> Vec<JoinViewQuery> {
    fn date(rng: &mut StdRng) -> Expr {
        lit(rng.random_range(200..2300i64))
    }
    vec![
        JoinViewQuery {
            id: "Q3",
            generator: |rng| AggQuery::sum(revenue_expr()).filter(col("o_orderdate").lt(date(rng))),
        },
        JoinViewQuery {
            id: "Q4",
            generator: |rng| {
                let d = rng.random_range(0..2400i64);
                AggQuery::count()
                    .filter(col("o_orderdate").ge(lit(d)).and(col("o_orderdate").lt(lit(d + 90))))
            },
        },
        JoinViewQuery {
            id: "Q5",
            generator: |rng| {
                let s = rng.random_range(1..15i64);
                AggQuery::sum(revenue_expr()).filter(col("l_suppkey").lt(lit(s)))
            },
        },
        JoinViewQuery {
            id: "Q7",
            generator: |rng| {
                let d = rng.random_range(0..2000i64);
                AggQuery::sum(revenue_expr())
                    .filter(col("l_shipdate").ge(lit(d)).and(col("l_shipdate").lt(lit(d + 365))))
            },
        },
        JoinViewQuery {
            id: "Q8",
            generator: |rng| {
                let t = rng.random_range(500..5000i64);
                AggQuery::avg(revenue_expr()).filter(col("o_totalprice").gt(lit(t as f64)))
            },
        },
        JoinViewQuery {
            id: "Q9",
            generator: |rng| {
                let p = rng.random_range(5..60i64);
                AggQuery::sum(col("l_extendedprice").mul(col("l_discount")))
                    .filter(col("l_partkey").lt(lit(p)))
            },
        },
        JoinViewQuery {
            id: "Q10",
            generator: |rng| {
                let d = rng.random_range(0..2300i64);
                AggQuery::sum(revenue_expr())
                    .filter(col("l_returnflag").eq(lit("R")).and(col("o_orderdate").ge(lit(d))))
            },
        },
        JoinViewQuery {
            id: "Q12",
            generator: |rng| {
                let d = rng.random_range(0..2300i64);
                AggQuery::count().filter(
                    col("l_shipmode")
                        .eq(lit("SHIP"))
                        .or(col("l_shipmode").eq(lit("MAIL")))
                        .and(col("l_shipdate").ge(lit(d))),
                )
            },
        },
        JoinViewQuery {
            id: "Q14",
            generator: |rng| {
                let p = rng.random_range(3..40i64);
                AggQuery::sum(revenue_expr()).filter(col("l_partkey").lt(lit(p)))
            },
        },
        JoinViewQuery {
            id: "Q18",
            generator: |rng| {
                let t = rng.random_range(1000..8000i64);
                AggQuery::sum(col("l_quantity")).filter(col("o_totalprice").gt(lit(t as f64)))
            },
        },
        JoinViewQuery {
            id: "Q19",
            generator: |rng| {
                let q = rng.random_range(5..40i64);
                AggQuery::sum(revenue_expr()).filter(
                    col("l_quantity").ge(lit(q as f64)).and(col("l_shipmode").eq(lit("AIR"))),
                )
            },
        },
        JoinViewQuery {
            id: "Q21",
            generator: |rng| {
                let s = rng.random_range(1..20i64);
                AggQuery::count()
                    .filter(col("l_returnflag").ne(lit("N")).and(col("l_suppkey").lt(lit(s))))
            },
        },
    ]
}

/// A named complex view with the query attributes used by the random query
/// generator of Section 7.1 ("pick a random attribute a from the group by
/// clause and a random attribute b from aggregation").
pub struct ComplexView {
    /// The paper's view id ("V3" .. "V22").
    pub id: &'static str,
    /// The view definition.
    pub plan: Plan,
    /// Public group-by (dimension) columns usable in predicates.
    pub dims: Vec<&'static str>,
    /// Public aggregate (measure) columns usable in aggregates.
    pub measures: Vec<&'static str>,
    /// Whether the paper expects this view to block hash push-down.
    pub blocked: bool,
}

/// The ten complex views of Figure 7 (structural analogs).
#[allow(clippy::vec_init_then_push)] // one block per view reads better
pub fn complex_views() -> Vec<ComplexView> {
    let lineitem_orders = || {
        Plan::scan("lineitem").join(
            Plan::scan("orders"),
            JoinKind::Inner,
            &[("l_orderkey", "o_orderkey")],
        )
    };
    let mut views = Vec::new();

    // V3: revenue per order (TPC-H Q3 groups by l_orderkey + o_orderdate;
    // keeping l_orderkey in the group key lets η push through the join to
    // BOTH lineitem and orders — which is what makes the l_extendedprice
    // outlier index eligible in Figure 8). The order date rides along as an
    // avg (constant within a group), staying change-table maintainable.
    views.push(ComplexView {
        id: "V3",
        plan: lineitem_orders().aggregate(
            &["l_orderkey"],
            vec![
                AggSpec::new("revenue", AggFunc::Sum, revenue_expr()),
                AggSpec::count_all("n"),
                AggSpec::new("orderdate", AggFunc::Avg, col("o_orderdate")),
            ],
        ),
        dims: vec!["orderdate"],
        measures: vec!["revenue", "n"],
        blocked: false,
    });

    // V4: order counts by priority and date. (A *computed* date bucket
    // would block push-down at the projection — that structure is covered
    // by V22; the paper's V4 pushes cleanly.)
    views.push(ComplexView {
        id: "V4",
        plan: Plan::scan("orders").aggregate(
            &["o_orderpriority", "o_orderdate"],
            vec![
                AggSpec::count_all("n"),
                AggSpec::new("totalValue", AggFunc::Sum, col("o_totalprice")),
            ],
        ),
        dims: vec!["o_orderpriority", "o_orderdate"],
        measures: vec!["n", "totalValue"],
        blocked: false,
    });

    // V5: revenue per customer nation.
    views.push(ComplexView {
        id: "V5",
        plan: lineitem_orders()
            .join(Plan::scan("customer"), JoinKind::Inner, &[("o_custkey", "c_custkey")])
            .aggregate(
                &["c_nationkey"],
                vec![
                    AggSpec::new("revenue", AggFunc::Sum, revenue_expr()),
                    AggSpec::count_all("n"),
                ],
            ),
        dims: vec!["c_nationkey"],
        measures: vec!["revenue", "n"],
        blocked: false,
    });

    // V9: discount volume per part.
    views.push(ComplexView {
        id: "V9",
        plan: Plan::scan("lineitem").aggregate(
            &["l_partkey"],
            vec![
                AggSpec::new("profit", AggFunc::Sum, col("l_extendedprice").mul(col("l_discount"))),
                AggSpec::count_all("n"),
            ],
        ),
        dims: vec!["l_partkey"],
        measures: vec!["profit", "n"],
        blocked: false,
    });

    // V10: returned revenue per customer.
    views.push(ComplexView {
        id: "V10",
        plan: lineitem_orders().select(col("l_returnflag").eq(lit("R"))).aggregate(
            &["o_custkey"],
            vec![
                AggSpec::new("lostRevenue", AggFunc::Sum, revenue_expr()),
                AggSpec::count_all("n"),
            ],
        ),
        dims: vec!["o_custkey"],
        measures: vec!["lostRevenue", "n"],
        blocked: false,
    });

    // V13: orders per customer.
    views.push(ComplexView {
        id: "V13",
        plan: Plan::scan("orders").aggregate(
            &["o_custkey"],
            vec![
                AggSpec::count_all("orderCount"),
                AggSpec::new("avgPrice", AggFunc::Avg, col("o_totalprice")),
            ],
        ),
        dims: vec!["o_custkey"],
        measures: vec!["orderCount", "avgPrice"],
        blocked: false,
    });

    // V15: revenue per supplier (the paper's V15i inner view).
    views.push(ComplexView {
        id: "V15",
        plan: Plan::scan("lineitem").aggregate(
            &["l_suppkey"],
            vec![
                AggSpec::new("totalRevenue", AggFunc::Sum, revenue_expr()),
                AggSpec::count_all("n"),
            ],
        ),
        dims: vec!["l_suppkey"],
        measures: vec!["totalRevenue", "n"],
        blocked: false,
    });

    // V18: large-order volume per customer.
    views.push(ComplexView {
        id: "V18",
        plan: lineitem_orders().select(col("o_totalprice").gt(lit(2000.0))).aggregate(
            &["o_custkey"],
            vec![
                AggSpec::new("quantity", AggFunc::Sum, col("l_quantity")),
                AggSpec::count_all("n"),
            ],
        ),
        dims: vec!["o_custkey"],
        measures: vec!["quantity", "n"],
        blocked: false,
    });

    // V21: nested aggregate — the distribution of per-supplier line counts.
    // The inner γ blocks hash push-down (Appendix 12.4) and change-table
    // maintenance.
    views.push(ComplexView {
        id: "V21",
        plan: Plan::scan("lineitem")
            .aggregate(&["l_suppkey"], vec![AggSpec::count_all("c")])
            .aggregate(&["c"], vec![AggSpec::count_all("suppliers")]),
        dims: vec!["c"],
        measures: vec!["suppliers"],
        blocked: true,
    });

    // V22: key transformation — grouping by a string transformation of the
    // key blocks push-down below the projection.
    views.push(ComplexView {
        id: "V22",
        plan: Plan::scan("orders")
            .project(vec![
                ("o_orderkey", col("o_orderkey")),
                (
                    "cntry",
                    Expr::Call {
                        func: Func::Concat,
                        args: vec![lit("c"), col("o_custkey").rem(lit(17i64))],
                    },
                ),
                ("o_totalprice", col("o_totalprice")),
            ])
            .aggregate(
                &["cntry"],
                vec![
                    AggSpec::count_all("n"),
                    AggSpec::new("total", AggFunc::Sum, col("o_totalprice")),
                ],
            ),
        dims: vec!["cntry"],
        measures: vec!["n", "total"],
        blocked: true,
    });

    views
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcd::{TpcdConfig, TpcdData};
    use rand::SeedableRng;
    use svc_core::{SvcConfig, SvcView};
    use svc_relalg::eval::{evaluate, Bindings};

    fn data() -> TpcdData {
        TpcdData::generate(TpcdConfig { scale: 0.03, skew: 2.0, seed: 3 }).unwrap()
    }

    #[test]
    fn join_view_evaluates_and_queries_run() {
        let data = data();
        let b = Bindings::from_database(&data.db);
        let view = evaluate(&join_view(), &b).unwrap();
        assert_eq!(view.len(), data.lineitem_rows());
        let mut rng = StdRng::seed_from_u64(5);
        for template in join_view_queries() {
            let q = template.instance(&mut rng);
            let v = q.exact(&view).unwrap();
            assert!(v.is_finite() || v.is_nan(), "{} produced {v}", template.id);
        }
    }

    #[test]
    fn twelve_join_queries_exist() {
        let qs = join_view_queries();
        assert_eq!(qs.len(), 12);
        let ids: Vec<&str> = qs.iter().map(|q| q.id).collect();
        assert_eq!(
            ids,
            vec!["Q3", "Q4", "Q5", "Q7", "Q8", "Q9", "Q10", "Q12", "Q14", "Q18", "Q19", "Q21"]
        );
    }

    #[test]
    fn complex_views_materialize() {
        let data = data();
        for v in complex_views() {
            let view = SvcView::create(v.id, v.plan.clone(), &data.db, SvcConfig::with_ratio(0.2));
            let view = view.unwrap_or_else(|e| panic!("{} failed: {e}", v.id));
            assert!(!view.view.is_empty(), "{} is empty", v.id);
        }
    }

    #[test]
    fn blockers_match_paper_expectations() {
        let data = data();
        let deltas = data.updates(0.05, 11).unwrap();
        for v in complex_views() {
            let svc = SvcView::create(v.id, v.plan.clone(), &data.db, SvcConfig::with_ratio(0.1))
                .unwrap();
            let (_, report, _) = svc.cleaning_plan(&data.db, &deltas).unwrap();
            assert_eq!(
                !report.fully_pushed(),
                v.blocked,
                "{}: expected blocked={}, blockers: {:?}",
                v.id,
                v.blocked,
                report.blockers
            );
        }
    }
}
