//! The Log/Video running example of Section 2.1, used by the quickstart
//! example and the documentation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use svc_relalg::aggregate::AggSpec;
use svc_relalg::plan::{JoinKind, Plan};
use svc_storage::{DataType, Database, Deltas, ForeignKey, Result, Schema, Table, Value};

use crate::zipf::Zipf;

/// Generate the Log/Video database: `videos` videos and `sessions` log
/// records with Zipf-distributed popularity.
pub fn generate(videos: usize, sessions: usize, skew: f64, seed: u64) -> Result<Database> {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(videos, skew);
    let mut db = Database::new();

    let mut video = Table::new(
        Schema::from_pairs(&[
            ("videoId", DataType::Int),
            ("ownerId", DataType::Int),
            ("duration", DataType::Float),
        ])?,
        &["videoId"],
    )?;
    for v in 0..videos as i64 {
        video.insert(vec![
            Value::Int(v),
            Value::Int(rng.random_range(0..(videos as i64 / 10).max(1))),
            Value::Float(rng.random_range(0.05..3.0)),
        ])?;
    }
    db.create_table("video", video);

    let mut log = Table::new(
        Schema::from_pairs(&[("sessionId", DataType::Int), ("videoId", DataType::Int)])?,
        &["sessionId"],
    )?;
    for s in 0..sessions as i64 {
        log.insert(vec![Value::Int(s), Value::Int(zipf.sample(&mut rng) as i64 - 1)])?;
    }
    db.create_table("log", log);
    db.add_foreign_key(ForeignKey {
        from_table: "log".into(),
        from_cols: vec!["videoId".into()],
        to_table: "video".into(),
        to_cols: vec!["videoId".into()],
    })?;
    Ok(db)
}

/// `LogIns`: new sessions, skewed toward the most recent videos — the
/// motivation example's "views to newly added videos may account for most
/// of LogIns" (Section 2.1).
pub fn log_insertions(db: &Database, count: usize, recent_bias: f64, seed: u64) -> Result<Deltas> {
    let mut rng = StdRng::seed_from_u64(seed);
    let video = db.table("video")?;
    let log = db.table("log")?;
    let n_videos = video.len() as i64;
    let next = log.len() as i64;
    let mut deltas = Deltas::new();
    for s in next..next + count as i64 {
        let vid = if rng.random::<f64>() < recent_bias {
            // A "recent" video: the top decile of ids.
            n_videos - 1 - rng.random_range(0..(n_videos / 10).max(1))
        } else {
            rng.random_range(0..n_videos)
        };
        deltas.insert(db, "log", vec![Value::Int(s), Value::Int(vid)])?;
    }
    Ok(deltas)
}

/// The `visitView` of the running example: visit counts per video.
pub fn visit_view() -> Plan {
    Plan::scan("log")
        .join(Plan::scan("video"), JoinKind::Inner, &[("videoId", "videoId")])
        .aggregate(&["videoId"], vec![AggSpec::count_all("visitCount")])
}

#[cfg(test)]
mod tests {
    use super::*;
    use svc_relalg::eval::{evaluate, Bindings};

    #[test]
    fn example_database_is_consistent() {
        let db = generate(100, 3000, 1.2, 8).unwrap();
        let b = Bindings::from_database(&db);
        let view = evaluate(&visit_view(), &b).unwrap();
        assert!(!view.is_empty());
        let total: i64 = view.rows().iter().map(|r| r[1].as_i64().unwrap()).sum();
        assert_eq!(total, 3000);
    }

    #[test]
    fn insertions_are_recent_biased() {
        let db = generate(100, 1000, 1.0, 8).unwrap();
        let deltas = log_insertions(&db, 1000, 0.9, 9).unwrap();
        let ins = &deltas.get("log").unwrap().insertions;
        let recent = ins.rows().iter().filter(|r| r[1].as_i64().unwrap() >= 90).count() as f64
            / ins.len() as f64;
        assert!(recent > 0.8, "recent fraction {recent}");
    }
}
