//! TPCD-Skew-shaped data generation (Section 7.1).
//!
//! The paper evaluates on a 10 GB TPCD-Skew database [8]: the TPC-D schema
//! with Zipfian-distributed values, skew `z ∈ {1,2,3,4}` (`z = 2` unless
//! noted). We reproduce the schema shape and skew at an in-memory scale:
//! `scale = 1.0` ≈ 60k lineitems, with the standard TPC-H row-count ratios.
//! Only `lineitem` and `orders` receive updates, exactly as in the TPC-D
//! spec ("two tables receive insertions and updates", Section 7.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use svc_storage::{DataType, Database, Deltas, ForeignKey, Result, Schema, Table, Value};

use crate::zipf::Zipf;

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct TpcdConfig {
    /// Scale factor: 1.0 ≈ 60k lineitems, 15k orders, 1.5k customers.
    pub scale: f64,
    /// Zipf skew `z` (1 = plain TPCD).
    pub skew: f64,
    /// RNG seed for deterministic data.
    pub seed: u64,
}

impl Default for TpcdConfig {
    fn default() -> Self {
        TpcdConfig { scale: 0.2, skew: 2.0, seed: 42 }
    }
}

/// The generated database plus the counters needed to create update
/// workloads later.
#[derive(Debug, Clone)]
pub struct TpcdData {
    /// The database with all seven base relations and their foreign keys.
    pub db: Database,
    /// Generator configuration.
    pub config: TpcdConfig,
    next_orderkey: i64,
    lineitem_rows: usize,
}

const MKT_SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIP_MODES: [&str; 7] = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];
const RETURN_FLAGS: [&str; 3] = ["A", "N", "R"];
const NATIONS: usize = 25;
const REGIONS: usize = 5;

impl TpcdData {
    /// Row counts derived from the scale factor.
    fn counts(config: &TpcdConfig) -> (usize, usize, usize, usize, usize) {
        let s = config.scale;
        let customers = ((1_500.0 * s) as usize).max(50);
        let orders = ((15_000.0 * s) as usize).max(500);
        let parts = ((2_000.0 * s) as usize).max(80);
        let suppliers = ((100.0 * s) as usize).max(10);
        let lines_per_order = 4; // TPC-H averages ~4 lineitems per order
        (customers, orders, parts, suppliers, lines_per_order)
    }

    /// Generate the full database.
    pub fn generate(config: TpcdConfig) -> Result<TpcdData> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let (n_cust, n_orders, n_parts, n_supp, lines_per_order) = Self::counts(&config);
        let zip_cust = Zipf::new(n_cust, config.skew);
        let zip_part = Zipf::new(n_parts, config.skew);
        let zip_supp = Zipf::new(n_supp, config.skew);
        let zip_qty = Zipf::new(50, config.skew);
        let zip_rank = Zipf::new(100, 1.1);

        let mut db = Database::new();

        let mut region = Table::new(
            Schema::from_pairs(&[("r_regionkey", DataType::Int), ("r_name", DataType::Str)])?,
            &["r_regionkey"],
        )?;
        for r in 0..REGIONS as i64 {
            region.insert(vec![Value::Int(r), Value::str(format!("REGION#{r}"))])?;
        }
        db.create_table("region", region);

        let mut nation = Table::new(
            Schema::from_pairs(&[
                ("n_nationkey", DataType::Int),
                ("n_name", DataType::Str),
                ("n_regionkey", DataType::Int),
            ])?,
            &["n_nationkey"],
        )?;
        for n in 0..NATIONS as i64 {
            nation.insert(vec![
                Value::Int(n),
                Value::str(format!("NATION#{n}")),
                Value::Int(n % REGIONS as i64),
            ])?;
        }
        db.create_table("nation", nation);

        let mut supplier = Table::new(
            Schema::from_pairs(&[("s_suppkey", DataType::Int), ("s_nationkey", DataType::Int)])?,
            &["s_suppkey"],
        )?;
        for s in 0..n_supp as i64 {
            supplier
                .insert(vec![Value::Int(s), Value::Int(rng.random_range(0..NATIONS as i64))])?;
        }
        db.create_table("supplier", supplier);

        let mut part = Table::new(
            Schema::from_pairs(&[
                ("p_partkey", DataType::Int),
                ("p_brand", DataType::Str),
                ("p_retailprice", DataType::Float),
            ])?,
            &["p_partkey"],
        )?;
        for p in 0..n_parts as i64 {
            part.insert(vec![
                Value::Int(p),
                Value::str(format!("Brand#{}", p % 25)),
                Value::Float(900.0 + (p % 200) as f64 * 5.0),
            ])?;
        }
        db.create_table("part", part);

        let mut customer = Table::new(
            Schema::from_pairs(&[
                ("c_custkey", DataType::Int),
                ("c_nationkey", DataType::Int),
                ("c_mktsegment", DataType::Str),
                ("c_acctbal", DataType::Float),
            ])?,
            &["c_custkey"],
        )?;
        for c in 0..n_cust as i64 {
            customer.insert(vec![
                Value::Int(c),
                Value::Int(rng.random_range(0..NATIONS as i64)),
                Value::str(MKT_SEGMENTS[rng.random_range(0..MKT_SEGMENTS.len())]),
                Value::Float(rng.random_range(-999.0..9999.0)),
            ])?;
        }
        db.create_table("customer", customer);

        let mut orders = Table::new(
            Schema::from_pairs(&[
                ("o_orderkey", DataType::Int),
                ("o_custkey", DataType::Int),
                ("o_orderdate", DataType::Int),
                ("o_orderpriority", DataType::Str),
                ("o_totalprice", DataType::Float),
            ])?,
            &["o_orderkey"],
        )?;
        let mut lineitem = Table::new(
            Schema::from_pairs(&[
                ("l_orderkey", DataType::Int),
                ("l_linenumber", DataType::Int),
                ("l_partkey", DataType::Int),
                ("l_suppkey", DataType::Int),
                ("l_quantity", DataType::Float),
                ("l_extendedprice", DataType::Float),
                ("l_discount", DataType::Float),
                ("l_returnflag", DataType::Str),
                ("l_shipdate", DataType::Int),
                ("l_shipmode", DataType::Str),
            ])?,
            &["l_orderkey", "l_linenumber"],
        )?;

        let mut lineitem_rows = 0usize;
        for o in 0..n_orders as i64 {
            let (orow, lrows) = Self::make_order(
                o,
                &mut rng,
                config.skew,
                &zip_rank,
                &zip_cust,
                &zip_part,
                &zip_supp,
                &zip_qty,
                lines_per_order,
            );
            orders.insert(orow)?;
            for l in lrows {
                lineitem.insert(l)?;
                lineitem_rows += 1;
            }
        }
        db.create_table("orders", orders);
        db.create_table("lineitem", lineitem);

        for (from, fk, to, pk) in [
            ("lineitem", "l_orderkey", "orders", "o_orderkey"),
            ("lineitem", "l_partkey", "part", "p_partkey"),
            ("lineitem", "l_suppkey", "supplier", "s_suppkey"),
            ("orders", "o_custkey", "customer", "c_custkey"),
            ("customer", "c_nationkey", "nation", "n_nationkey"),
            ("nation", "n_regionkey", "region", "r_regionkey"),
        ] {
            db.add_foreign_key(ForeignKey {
                from_table: from.into(),
                from_cols: vec![fk.into()],
                to_table: to.into(),
                to_cols: vec![pk.into()],
            })?;
        }

        Ok(TpcdData { db, config, next_orderkey: n_orders as i64, lineitem_rows })
    }

    #[allow(clippy::too_many_arguments)]
    fn make_order(
        o: i64,
        rng: &mut StdRng,
        skew: f64,
        zip_rank: &Zipf,
        zip_cust: &Zipf,
        zip_part: &Zipf,
        zip_supp: &Zipf,
        zip_qty: &Zipf,
        lines_per_order: usize,
    ) -> (Vec<Value>, Vec<Vec<Value>>) {
        let orderdate = rng.random_range(0..2556i64); // ~7 years of days
        let n_lines = rng.random_range(1..=(lines_per_order * 2 - 1));
        let mut total = 0.0;
        let mut lrows = Vec::with_capacity(n_lines);
        for ln in 0..n_lines as i64 {
            let qty = zip_qty.sample(rng) as f64;
            // Skewed price: a power-law value tail whose heaviness grows
            // with z (TPCD-Skew's "larger value means a more extreme tail").
            // A rank is drawn from a fixed mild Zipf; the rank→value map
            // exponentiates with z, so z=1 gives a gentle tail and z=4 an
            // extreme one — the Figure 8 regime where a handful of records
            // dominate sums.
            let rank = zip_rank.sample(rng) as f64;
            let unit = 10.0 * rank.powf((skew + 1.0) / 2.0);
            let price = qty * unit;
            total += price;
            lrows.push(vec![
                Value::Int(o),
                Value::Int(ln),
                Value::Int(zip_part.sample(rng) as i64 - 1),
                Value::Int(zip_supp.sample(rng) as i64 - 1),
                Value::Float(qty),
                Value::Float(price),
                Value::Float(rng.random_range(0..10) as f64 / 100.0),
                Value::str(RETURN_FLAGS[rng.random_range(0..RETURN_FLAGS.len())]),
                Value::Int(orderdate + rng.random_range(1..120)),
                Value::str(SHIP_MODES[rng.random_range(0..SHIP_MODES.len())]),
            ]);
        }
        let orow = vec![
            Value::Int(o),
            Value::Int(zip_cust.sample(rng) as i64 - 1),
            Value::Int(orderdate),
            Value::str(PRIORITIES[rng.random_range(0..PRIORITIES.len())]),
            Value::Float(total),
        ];
        (orow, lrows)
    }

    /// Generate an update workload: `fraction` of the base data volume as
    /// new orders + lineitems (insertions), with 20% of the volume instead
    /// spent on updates to existing lineitems (update = delete + insert),
    /// following the Section 7.2 workload ("insertions and updates to
    /// existing records"). Deterministic for a given `seed`.
    pub fn updates(&self, fraction: f64, seed: u64) -> Result<Deltas> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDE17A);
        let (n_cust, _, n_parts, n_supp, lines_per_order) = Self::counts(&self.config);
        let zip_cust = Zipf::new(n_cust, self.config.skew);
        let zip_part = Zipf::new(n_parts, self.config.skew);
        let zip_supp = Zipf::new(n_supp, self.config.skew);
        let zip_qty = Zipf::new(50, self.config.skew);
        let zip_rank = Zipf::new(100, 1.1);

        let mut deltas = Deltas::new();
        let target_lines = (self.lineitem_rows as f64 * fraction) as usize;
        let insert_lines = (target_lines as f64 * 0.8) as usize;
        let update_lines = target_lines - insert_lines;

        // Insertions: new orders with fresh keys.
        let mut ok = self.next_orderkey;
        let mut inserted = 0usize;
        while inserted < insert_lines {
            let (orow, lrows) = Self::make_order(
                ok,
                &mut rng,
                self.config.skew,
                &zip_rank,
                &zip_cust,
                &zip_part,
                &zip_supp,
                &zip_qty,
                lines_per_order,
            );
            deltas.insert(&self.db, "orders", orow)?;
            for l in lrows {
                deltas.insert(&self.db, "lineitem", l)?;
                inserted += 1;
            }
            ok += 1;
        }

        // Updates: re-price random existing lineitems (delete + insert with
        // the same key).
        let lineitem = self.db.table("lineitem")?;
        let n = lineitem.len();
        let mut touched = std::collections::HashSet::new();
        let mut updated = 0usize;
        while updated < update_lines && touched.len() < n / 2 {
            let i = rng.random_range(0..n);
            if !touched.insert(i) {
                continue;
            }
            let mut row = lineitem.rows()[i].clone();
            let qty = zip_qty.sample(&mut rng) as f64;
            let rank = zip_rank.sample(&mut rng) as f64;
            row[4] = Value::Float(qty);
            row[5] = Value::Float(qty * 10.0 * rank.powf((self.config.skew + 1.0) / 2.0));
            deltas.update(&self.db, "lineitem", row)?;
            updated += 1;
        }
        Ok(deltas)
    }

    /// Number of lineitem rows in the base data.
    pub fn lineitem_rows(&self) -> usize {
        self.lineitem_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_consistent_database() {
        let data = TpcdData::generate(TpcdConfig { scale: 0.05, skew: 2.0, seed: 1 }).unwrap();
        let db = &data.db;
        assert_eq!(db.table("region").unwrap().len(), 5);
        assert_eq!(db.table("nation").unwrap().len(), 25);
        let orders = db.table("orders").unwrap();
        let lineitem = db.table("lineitem").unwrap();
        assert!(orders.len() >= 500);
        assert!(lineitem.len() > orders.len());
        assert_eq!(db.foreign_keys().len(), 6);

        // Referential integrity: every lineitem references a real order.
        let ok_idx = lineitem.schema().resolve("l_orderkey").unwrap();
        for row in lineitem.rows().iter().take(500) {
            let key = svc_storage::KeyTuple(vec![row[ok_idx].clone()]);
            assert!(orders.get(&key).is_some());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TpcdData::generate(TpcdConfig { scale: 0.02, skew: 2.0, seed: 9 }).unwrap();
        let b = TpcdData::generate(TpcdConfig { scale: 0.02, skew: 2.0, seed: 9 }).unwrap();
        assert!(a.db.table("lineitem").unwrap().same_contents(b.db.table("lineitem").unwrap()));
        let c = TpcdData::generate(TpcdConfig { scale: 0.02, skew: 2.0, seed: 10 }).unwrap();
        assert!(!a.db.table("lineitem").unwrap().same_contents(c.db.table("lineitem").unwrap()));
    }

    #[test]
    fn skew_concentrates_customers() {
        let skewed = TpcdData::generate(TpcdConfig { scale: 0.05, skew: 3.0, seed: 5 }).unwrap();
        let orders = skewed.db.table("orders").unwrap();
        let ck = orders.schema().resolve("o_custkey").unwrap();
        let hot = orders.rows().iter().filter(|r| r[ck].as_i64().unwrap() == 0).count() as f64
            / orders.len() as f64;
        assert!(hot > 0.5, "z=3 should send most orders to customer 0, got {hot}");
    }

    #[test]
    fn update_workload_has_requested_volume() {
        let data = TpcdData::generate(TpcdConfig { scale: 0.05, skew: 2.0, seed: 2 }).unwrap();
        let deltas = data.updates(0.1, 7).unwrap();
        let li = deltas.get("lineitem").unwrap();
        let total_new = li.insertions.len();
        let expected = (data.lineitem_rows() as f64 * 0.1) as usize;
        assert!(
            total_new >= expected * 9 / 10 && total_new <= expected * 13 / 10,
            "lineitem delta volume {total_new} vs target {expected}"
        );
        // Updates produce matching deletions.
        assert!(!li.deletions.is_empty());
        assert!(deltas.get("orders").unwrap().deletions.is_empty());

        // Applying the deltas must succeed (keys are consistent).
        let mut db2 = data.db;
        deltas.clone().apply_to(&mut db2).unwrap();
    }
}
