//! The aggregate-view ("data cube") workload of Section 7.6.1 and
//! Appendix 12.6.3: a base cube over
//! `(c_custkey, n_nationkey, r_regionkey, l_partkey)` with `sum(revenue)`,
//! and the 13 roll-up query dimension sets Q1..Q13.

use svc_core::query::{AggQuery, QueryAgg};
use svc_relalg::aggregate::{AggFunc, AggSpec};
use svc_relalg::plan::{JoinKind, Plan};
use svc_relalg::scalar::{col, Expr};
use svc_storage::{KeyTuple, Result, Table};

use crate::tpcd_views::revenue_expr;

/// Cube dimension columns (public schema).
pub const CUBE_DIMS: [&str; 4] = ["c_custkey", "n_nationkey", "r_regionkey", "l_partkey"];

/// The base-cube view definition of Appendix 12.6.3: the five-way join
/// grouped by all four dimensions with `sum(revenue)`.
pub fn base_cube() -> Plan {
    Plan::scan("lineitem")
        .join(Plan::scan("orders"), JoinKind::Inner, &[("l_orderkey", "o_orderkey")])
        .join(Plan::scan("customer"), JoinKind::Inner, &[("o_custkey", "c_custkey")])
        .join(Plan::scan("nation"), JoinKind::Inner, &[("c_nationkey", "n_nationkey")])
        .join(Plan::scan("region"), JoinKind::Inner, &[("n_regionkey", "r_regionkey")])
        .aggregate(
            &["c_custkey", "n_nationkey", "r_regionkey", "l_partkey"],
            vec![AggSpec::new("revenue", AggFunc::Sum, revenue_expr()), AggSpec::count_all("n")],
        )
}

/// The 13 roll-up dimension sets of Appendix 12.6.3 (Q1 = grand total,
/// Q2..Q5 = single dimensions, Q6..Q10 = pairs, Q11..Q13 = triples).
pub fn rollup_dimension_sets() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        ("Q1", vec![]),
        ("Q2", vec!["c_custkey"]),
        ("Q3", vec!["n_nationkey"]),
        ("Q4", vec!["r_regionkey"]),
        ("Q5", vec!["l_partkey"]),
        ("Q6", vec!["c_custkey", "n_nationkey"]),
        ("Q7", vec!["c_custkey", "r_regionkey"]),
        ("Q8", vec!["c_custkey", "l_partkey"]),
        ("Q9", vec!["n_nationkey", "r_regionkey"]),
        ("Q10", vec!["n_nationkey", "l_partkey"]),
        ("Q11", vec!["c_custkey", "n_nationkey", "r_regionkey"]),
        ("Q12", vec!["c_custkey", "n_nationkey", "l_partkey"]),
        ("Q13", vec!["n_nationkey", "r_regionkey", "l_partkey"]),
    ]
}

/// Enumerate the distinct value combinations of `dims` present in a cube
/// table, capped at `max_groups` (deterministically: first by sorted key).
pub fn group_values(cube: &Table, dims: &[&str], max_groups: usize) -> Result<Vec<KeyTuple>> {
    let idx = cube.schema().resolve_all(dims)?;
    let mut seen = std::collections::BTreeSet::new();
    for row in cube.rows() {
        seen.insert(KeyTuple::of(row, &idx));
    }
    Ok(seen.into_iter().take(max_groups).collect())
}

/// The roll-up query for one group of one dimension set: the aggregate over
/// `measure` restricted to `dims = values` — "group by is modeled as part
/// of the Condition" (footnote 1 of the paper).
pub fn rollup_query(agg: QueryAgg, measure: &str, dims: &[&str], values: &KeyTuple) -> AggQuery {
    let mut q = AggQuery { agg, attr: col(measure), predicate: None };
    let mut pred: Option<Expr> = None;
    for (d, v) in dims.iter().zip(values.0.iter()) {
        let term = col(*d).eq(svc_relalg::scalar::Expr::Lit(v.clone()));
        pred = Some(match pred {
            None => term,
            Some(p) => p.and(term),
        });
    }
    if let Some(p) = pred {
        q = q.filter(p);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcd::{TpcdConfig, TpcdData};
    use svc_core::{SvcConfig, SvcView};

    #[test]
    fn cube_materializes_and_rolls_up_consistently() {
        let data = TpcdData::generate(TpcdConfig { scale: 0.02, skew: 1.0, seed: 4 }).unwrap();
        let svc =
            SvcView::create("cube", base_cube(), &data.db, SvcConfig::with_ratio(0.3)).unwrap();
        let cube = svc.view.public_table().unwrap();
        assert!(!cube.is_empty());
        assert_eq!(
            cube.schema().names(),
            vec!["c_custkey", "n_nationkey", "r_regionkey", "l_partkey", "revenue", "n"]
        );

        // Consistency: the grand total equals the sum over any roll-up.
        let total = AggQuery::sum(col("revenue")).exact(&cube).unwrap();
        for (id, dims) in rollup_dimension_sets().iter().skip(1).take(3) {
            let groups = group_values(&cube, dims, usize::MAX).unwrap();
            let sum: f64 = groups
                .iter()
                .map(|g| rollup_query(QueryAgg::Sum, "revenue", dims, g).exact(&cube).unwrap())
                .sum();
            assert!(
                (sum - total).abs() < 1e-6 * total.abs(),
                "{id}: roll-up sum {sum} vs total {total}"
            );
        }
    }

    #[test]
    fn thirteen_rollups() {
        let sets = rollup_dimension_sets();
        assert_eq!(sets.len(), 13);
        assert!(sets[0].1.is_empty());
        assert_eq!(sets[12].1.len(), 3);
    }
}
