//! Distinct-value estimation with a register sketch (the HyperLogLog
//! family): `2^p` one-byte registers, each holding the maximum
//! leading-zero rank of the hashes routed to it.
//!
//! The sketch reuses the deterministic [`HashSpec`] machinery of
//! `svc-storage` (the same canonical value bytes the η operator hashes), so
//! two sketches built over the same multiset of values are *identical*
//! register-for-register — which is what lets the incremental-maintenance
//! tests compare an incrementally-updated sketch against one rebuilt from
//! scratch, and what makes [`DistinctSketch::merge`] exact for unions.
//!
//! Registers only grow: insertions are exact (insert-then-estimate equals
//! rebuild-then-estimate), deletions cannot be subtracted. The owning
//! [`ColumnStats`](crate::stats::ColumnStats) treats the estimate as an
//! upper bound once deletions have been applied and schedules a rebuild
//! when the deleted fraction grows past its threshold.

use svc_storage::{HashSpec, Value};

/// Default register-count exponent: `2^10 = 1024` registers, standard
/// error `1.04/√1024 ≈ 3.3%`.
pub const DEFAULT_BITS: u8 = 10;

/// A HyperLogLog-style register sketch over column values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistinctSketch {
    bits: u8,
    registers: Vec<u8>,
    spec: HashSpec,
}

impl Default for DistinctSketch {
    fn default() -> Self {
        DistinctSketch::new(DEFAULT_BITS)
    }
}

impl DistinctSketch {
    /// A sketch with `2^bits` registers (4 ≤ bits ≤ 16).
    pub fn new(bits: u8) -> DistinctSketch {
        assert!((4..=16).contains(&bits), "register exponent out of range");
        DistinctSketch {
            bits,
            registers: vec![0; 1 << bits],
            // A fixed seed distinct from the η sampling default: stats
            // hashing must not correlate with sample selection.
            spec: HashSpec::with_seed(0xCA7A_1061),
        }
    }

    /// Number of registers.
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }

    /// The raw registers (for exactness comparisons in tests).
    pub fn registers(&self) -> &[u8] {
        &self.registers
    }

    /// Record one value.
    pub fn insert(&mut self, v: &Value) {
        let h = self.spec.hash_key(std::slice::from_ref(v));
        let idx = (h & ((1u64 << self.bits) - 1)) as usize;
        let rest = h >> self.bits;
        // Rank of the first set bit of the remaining 64-p bits, 1-based;
        // an all-zero remainder gets the maximum rank.
        let rank = (rest.trailing_zeros().min(63 - self.bits as u32) + 1) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Merge another sketch (register-wise max). Panics on configuration
    /// mismatch — sketches are only merged within one catalog.
    pub fn merge(&mut self, other: &DistinctSketch) {
        assert_eq!(self.bits, other.bits, "sketch register-count mismatch");
        assert_eq!(self.spec, other.spec, "sketch hash mismatch");
        for (r, o) in self.registers.iter_mut().zip(&other.registers) {
            *r = (*r).max(*o);
        }
    }

    /// Estimated number of distinct values inserted.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        if raw <= 2.5 * m && zeros > 0 {
            // Small-range correction: linear counting on empty registers.
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of(values: impl Iterator<Item = Value>) -> DistinctSketch {
        let mut s = DistinctSketch::default();
        for v in values {
            s.insert(&v);
        }
        s
    }

    #[test]
    fn estimates_within_standard_error() {
        for &n in &[100i64, 1_000, 20_000] {
            let s = sketch_of((0..n).map(Value::Int));
            let est = s.estimate();
            let rel = (est - n as f64).abs() / n as f64;
            assert!(rel < 0.12, "n={n}: estimate {est} off by {rel}");
        }
    }

    #[test]
    fn duplicates_do_not_move_the_estimate() {
        let once = sketch_of((0..500i64).map(Value::Int));
        let many = sketch_of((0..5_000i64).map(|i| Value::Int(i % 500)));
        assert_eq!(once, many, "identical value sets must build identical sketches");
    }

    #[test]
    fn merge_equals_union_build() {
        let mut a = sketch_of((0..800i64).map(Value::Int));
        let b = sketch_of((400..1_200i64).map(Value::Int));
        a.merge(&b);
        let union = sketch_of((0..1_200i64).map(Value::Int));
        assert_eq!(a, union);
    }

    #[test]
    fn mixed_types_count_separately() {
        let s = sketch_of((0..300i64).flat_map(|i| [Value::Int(i), Value::str(i.to_string())]));
        let est = s.estimate();
        assert!((est - 600.0).abs() / 600.0 < 0.12, "estimate {est}");
    }
}
