//! The statistics catalog: one [`TableStats`] per base relation, kept
//! fresh incrementally as deltas commit.
//!
//! Lifecycle:
//!
//! 1. **Build** once from the database ([`Catalog::build`]) — the only
//!    full scan in the common path;
//! 2. **Maintain** under every delta commit ([`Catalog::apply_deltas`],
//!    or [`Catalog::commit_deltas`] which also applies the deltas to the
//!    base tables) — counts and histograms stay exact, bounds stay
//!    conservative (see [`crate::stats`]);
//! 3. **Rebuild** a table's stats from scratch only when its deleted
//!    fraction crosses [`Catalog::rebuild_threshold`] — the amortized
//!    rescan that keeps the conservative bounds tight.
//!
//! Plans whose leaves are not base tables — the `__stale`, `__ins.T`,
//! `__del.T` leaves of maintenance and cleaning plans — are covered by a
//! [`ScopedStats`] overlay: the caller binds stats for the concrete tables
//! it is about to evaluate against (delta tables are small, so building
//! their stats on the fly is cheap), and lookups fall through to the base
//! catalog.

use std::collections::BTreeMap;

use svc_storage::{Database, Deltas, Result, Table};

use crate::estimate::{CatalogEstimator, StatsProvider};
use crate::stats::{StatsConfig, TableStats};

/// Per-database statistics catalog.
#[derive(Debug, Clone)]
pub struct Catalog {
    config: StatsConfig,
    /// Deleted fraction past which a table's sketches/bounds are rebuilt
    /// on the next [`Catalog::apply_deltas`] touching it (needs the live
    /// table, so the rebuild happens in [`Catalog::commit_deltas`]).
    pub rebuild_threshold: f64,
    tables: BTreeMap<String, TableStats>,
}

impl Catalog {
    /// Build statistics for every table of `db` with default parameters.
    pub fn build(db: &Database) -> Catalog {
        Catalog::build_with(db, StatsConfig::default())
    }

    /// Build with explicit parameters.
    pub fn build_with(db: &Database, config: StatsConfig) -> Catalog {
        let tables =
            db.iter().map(|(name, t)| (name.to_string(), TableStats::build(t, &config))).collect();
        Catalog { config, rebuild_threshold: 0.2, tables }
    }

    /// The build parameters.
    pub fn config(&self) -> &StatsConfig {
        &self.config
    }

    /// Statistics of one table.
    pub fn stats(&self, name: &str) -> Option<&TableStats> {
        self.tables.get(name)
    }

    /// Number of cataloged tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True iff no table is cataloged.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// (Re)build one table's stats from its current contents.
    pub fn refresh_table(&mut self, name: &str, table: &Table) {
        self.tables.insert(name.to_string(), TableStats::build(table, &self.config));
    }

    /// Fold a pending delta set into the stats (the delta relations carry
    /// full rows in both directions, so no base-table scan is needed).
    /// Tables the catalog has never seen are ignored.
    pub fn apply_deltas(&mut self, deltas: &Deltas) {
        for (name, set) in deltas.iter() {
            if let Some(stats) = self.tables.get_mut(name) {
                stats.apply_deletes(set.deletions.rows());
                stats.apply_inserts(set.insertions.rows());
            }
        }
    }

    /// The maintenance-period commit: update the stats, apply the deltas
    /// to the base tables, and rebuild any table whose conservative bounds
    /// have degraded past [`Catalog::rebuild_threshold`].
    pub fn commit_deltas(&mut self, db: &mut Database, deltas: &mut Deltas) -> Result<()> {
        self.apply_deltas(deltas);
        deltas.apply_to(db)?;
        let worn: Vec<String> = self
            .tables
            .iter()
            .filter(|(_, s)| s.staleness() > self.rebuild_threshold)
            .map(|(n, _)| n.clone())
            .collect();
        for name in worn {
            if let Ok(t) = db.table(&name) {
                self.refresh_table(&name, t);
            }
        }
        Ok(())
    }

    /// An overlay for plans with non-base leaves (`__stale`, `__ins.T@p`,
    /// ...): bind stats for the concrete tables, fall through to this
    /// catalog otherwise.
    pub fn scoped(&self) -> ScopedStats<'_> {
        ScopedStats { base: self, extra: BTreeMap::new() }
    }

    /// The estimator to hand to `optimize_with`.
    pub fn estimator(&self) -> CatalogEstimator<'_> {
        CatalogEstimator::new(self)
    }
}

impl StatsProvider for Catalog {
    fn stats(&self, name: &str) -> Option<&TableStats> {
        self.tables.get(name)
    }
}

/// A catalog overlay binding extra leaf names to ad-hoc statistics.
pub struct ScopedStats<'a> {
    base: &'a Catalog,
    extra: BTreeMap<String, TableStats>,
}

impl ScopedStats<'_> {
    /// Bind `name` to freshly-built stats over `table`. Intended for the
    /// small relations of a maintenance plan (delta chunks, the stale
    /// view), where the build scan is negligible.
    pub fn bind_table(&mut self, name: impl Into<String>, table: &Table) -> &mut Self {
        self.extra.insert(name.into(), TableStats::build(table, &self.base.config));
        self
    }

    /// Bind `name` to precomputed stats.
    pub fn bind_stats(&mut self, name: impl Into<String>, stats: TableStats) -> &mut Self {
        self.extra.insert(name.into(), stats);
        self
    }

    /// The estimator to hand to `optimize_with`.
    pub fn estimator(&self) -> CatalogEstimator<'_> {
        CatalogEstimator::new(self)
    }
}

impl StatsProvider for ScopedStats<'_> {
    fn stats(&self, name: &str) -> Option<&TableStats> {
        self.extra.get(name).or_else(|| self.base.stats(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svc_storage::{DataType, Schema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let mut t = Table::new(
            Schema::from_pairs(&[("id", DataType::Int), ("x", DataType::Float)]).unwrap(),
            &["id"],
        )
        .unwrap();
        for i in 0..300i64 {
            t.insert(vec![Value::Int(i), Value::Float((i % 40) as f64)]).unwrap();
        }
        db.create_table("t", t);
        db
    }

    #[test]
    fn incremental_commit_matches_rebuilt_stats() {
        let mut db = db();
        let mut cat = Catalog::build(&db);
        let mut deltas = Deltas::new();
        for i in 300..400i64 {
            deltas.insert(&db, "t", vec![Value::Int(i), Value::Float(7.0)]).unwrap();
        }
        for i in 0..20i64 {
            deltas.delete(&db, "t", &vec![Value::Int(i), Value::Null]).unwrap();
        }
        cat.commit_deltas(&mut db, &mut deltas).unwrap();
        assert!(deltas.is_empty(), "commit drains the deltas");
        let incr = cat.stats("t").unwrap();
        assert_eq!(incr.rows, 380);
        let rebuilt = incr.rebuilt_like(db.table("t").unwrap());
        assert_eq!(incr.rows, rebuilt.rows);
        for (a, b) in incr.cols.iter().zip(&rebuilt.cols) {
            assert_eq!(a.nulls, b.nulls);
            assert_eq!(a.histogram, b.histogram);
        }
    }

    #[test]
    fn heavy_deletion_triggers_rebuild() {
        let mut db = db();
        let mut cat = Catalog::build(&db);
        let mut deltas = Deltas::new();
        for i in 0..120i64 {
            deltas.delete(&db, "t", &vec![Value::Int(i), Value::Null]).unwrap();
        }
        cat.commit_deltas(&mut db, &mut deltas).unwrap();
        let s = cat.stats("t").unwrap();
        assert_eq!(s.staleness(), 0.0, "40% deletions must have forced a rebuild");
        // Post-rebuild the bounds are tight again: ids 0..119 are gone.
        assert_eq!(s.cols[0].min, Some(120.0));
    }

    #[test]
    fn scoped_overlay_shadows_and_falls_through() {
        let db = db();
        let cat = Catalog::build(&db);
        let mut small = Table::new(
            Schema::from_pairs(&[("id", DataType::Int), ("x", DataType::Float)]).unwrap(),
            &["id"],
        )
        .unwrap();
        small.insert(vec![Value::Int(1), Value::Float(0.0)]).unwrap();
        let mut scoped = cat.scoped();
        scoped.bind_table("__ins.t@0", &small);
        assert_eq!(scoped.stats("__ins.t@0").unwrap().rows, 1);
        assert_eq!(scoped.stats("t").unwrap().rows, 300, "fallthrough to the base catalog");
        assert!(scoped.stats("missing").is_none());
    }
}
