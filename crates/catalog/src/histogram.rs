//! Equi-width histograms over numeric columns.
//!
//! Bucket boundaries are fixed when the histogram is built (from the
//! column's min/max at that moment) and never move afterwards — that is
//! what makes incremental maintenance *exact*: an insertion increments the
//! cell its value falls in, a deletion decrements the same cell, and
//! values outside the original range land in dedicated underflow/overflow
//! cells. An incrementally-maintained histogram therefore equals one
//! rebuilt from scratch over the post-delta rows with the same boundaries,
//! cell for cell.

/// An equi-width histogram with underflow/overflow cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    /// An empty histogram over `[lo, hi]` with `buckets` cells. Collapsed
    /// ranges (`lo == hi`) get a single-cell histogram.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Histogram {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "invalid histogram range");
        let buckets = if lo == hi { 1 } else { buckets };
        Histogram { lo, hi, buckets: vec![0; buckets], below: 0, above: 0 }
    }

    /// The bucket range.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    fn width(&self) -> f64 {
        (self.hi - self.lo) / self.buckets.len() as f64
    }

    fn bucket_of(&self, v: f64) -> Option<usize> {
        if v < self.lo || v > self.hi {
            return None;
        }
        if self.lo == self.hi {
            return Some(0);
        }
        Some((((v - self.lo) / self.width()) as usize).min(self.buckets.len() - 1))
    }

    /// Record a value.
    pub fn add(&mut self, v: f64) {
        match self.bucket_of(v) {
            Some(b) => self.buckets[b] += 1,
            None if v < self.lo => self.below += 1,
            None => self.above += 1,
        }
    }

    /// Remove a previously-recorded value (saturating: a stray remove can
    /// never underflow a cell).
    pub fn remove(&mut self, v: f64) {
        match self.bucket_of(v) {
            Some(b) => self.buckets[b] = self.buckets[b].saturating_sub(1),
            None if v < self.lo => self.below = self.below.saturating_sub(1),
            None => self.above = self.above.saturating_sub(1),
        }
    }

    /// Total recorded values.
    pub fn total(&self) -> u64 {
        self.below + self.above + self.buckets.iter().sum::<u64>()
    }

    /// Estimated fraction of recorded values `≤ x`, with linear
    /// interpolation inside the bucket containing `x`.
    pub fn fraction_le(&self, x: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        if x < self.lo {
            return 0.0;
        }
        if x >= self.hi {
            return (total - self.above) as f64 / total as f64;
        }
        let mut acc = self.below;
        let b = self.bucket_of(x).expect("x within range");
        for &c in &self.buckets[..b] {
            acc += c;
        }
        let within = if self.lo == self.hi {
            self.buckets[0] as f64
        } else {
            let start = self.lo + b as f64 * self.width();
            self.buckets[b] as f64 * ((x - start) / self.width()).clamp(0.0, 1.0)
        };
        (acc as f64 + within) / total as f64
    }

    /// Estimated selectivity of a range predicate `lo_incl ≤ v ≤ hi_incl`
    /// (pass `-inf`/`+inf` for open ends).
    pub fn fraction_between(&self, lo: f64, hi: f64) -> f64 {
        if hi < lo {
            return 0.0;
        }
        (self.fraction_le(hi) - if lo > f64::NEG_INFINITY { self.fraction_le(lo) } else { 0.0 })
            .clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform() -> Histogram {
        let mut h = Histogram::new(0.0, 100.0, 20);
        for i in 0..10_000 {
            h.add((i % 100) as f64 + 0.5);
        }
        h
    }

    #[test]
    fn fraction_le_tracks_uniform_cdf() {
        let h = uniform();
        for &x in &[5.0, 25.0, 50.0, 77.0, 99.0] {
            let est = h.fraction_le(x);
            let truth = x / 100.0;
            assert!((est - truth).abs() < 0.03, "x={x}: {est} vs {truth}");
        }
    }

    #[test]
    fn add_remove_round_trips() {
        let mut h = uniform();
        let before = h.clone();
        for v in [3.0, 55.5, 99.9, -4.0, 200.0] {
            h.add(v);
        }
        for v in [3.0, 55.5, 99.9, -4.0, 200.0] {
            h.remove(v);
        }
        assert_eq!(h, before);
    }

    #[test]
    fn out_of_range_values_hit_overflow_cells() {
        let mut h = Histogram::new(0.0, 10.0, 4);
        h.add(-5.0);
        h.add(15.0);
        h.add(5.0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.fraction_le(-10.0), 0.0);
        assert!((h.fraction_le(10.0) - 2.0 / 3.0).abs() < 1e-12, "overflow excluded from ≤hi");
        assert!((h.fraction_le(1e12) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn collapsed_range_counts_point_mass() {
        let mut h = Histogram::new(7.0, 7.0, 16);
        for _ in 0..5 {
            h.add(7.0);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.fraction_le(7.0), 1.0);
        assert_eq!(h.fraction_le(6.9), 0.0);
    }
}
