#![forbid(unsafe_code)]

//! # svc-catalog
//!
//! Table statistics and cardinality estimation for the Stale View Cleaning
//! reproduction — the subsystem behind the optimizer's cost-based join
//! reordering (`svc_relalg::optimizer::joinorder`).
//!
//! * [`sketch`] — distinct-value estimation with a HyperLogLog-style
//!   register sketch over the same deterministic value hashing the η
//!   operator uses;
//! * [`histogram`] — equi-width histograms with fixed boundaries and
//!   underflow/overflow cells, exactly maintainable under deltas;
//! * [`stats`] — per-column and per-table statistics
//!   ([`TableStats::build`], `apply_inserts` / `apply_deletes`);
//! * [`catalog`] — the [`Catalog`]: build once, maintain incrementally
//!   under every delta commit, rebuild a table only when its deleted
//!   fraction degrades the conservative bounds; [`ScopedStats`] overlays
//!   stats for the `__stale` / `__ins.T` leaves of maintenance plans;
//! * [`estimate`] — the System-R-style cardinality estimator implementing
//!   `svc_relalg::optimizer::cost::CardEstimator`, which is what the
//!   evaluation layers hand to `optimize_with` to activate join
//!   reordering.

pub mod catalog;
pub mod estimate;
pub mod histogram;
pub mod sketch;
pub mod stats;

pub use catalog::{Catalog, ScopedStats};
pub use estimate::{CatalogEstimator, StatsProvider};
pub use histogram::Histogram;
pub use sketch::DistinctSketch;
pub use stats::{ColumnStats, StatsConfig, TableStats};
