//! Cardinality estimation and the cost model over [`Plan`]s.
//!
//! A single bottom-up recursion mirrors schema derivation: each node gets
//! an estimated row count plus per-column summaries (distinct count,
//! min/max, histogram, null fraction) propagated from the leaf statistics
//! of a [`StatsProvider`]. The formulas are the classic System-R family:
//!
//! * σ — per-conjunct selectivities multiplied: histogram fraction for
//!   numeric ranges, `1/ndv` for equalities, null fractions for `IS NULL`,
//!   `1/3` for anything opaque;
//! * ⋈ — `|L|·|R| · ∏ 1/max(ndv_l, ndv_r)` over the equality pairs, with
//!   the usual clamps for outer/semi/anti variants;
//! * γ — output rows = min(input, ∏ group-column ndv);
//! * η — rows scale by the sampling ratio;
//! * leaves without statistics (delta relations a maintenance plan reads,
//!   un-registered tables) fall back to pessimistic defaults instead of
//!   failing, so partially-covered plans remain orderable.
//!
//! Estimates are consumed *ordinally* by the join-reordering rule; absolute
//! accuracy matters less than ranking candidate orders consistently.

use svc_relalg::derive::{
    derive_aggregate, derive_hash, derive_join, derive_project, derive_select, derive_setop,
    Derived, LeafProvider, SetOpKind,
};
use svc_relalg::optimizer::cost::{CardEstimator, RelCard};
use svc_relalg::plan::{JoinKind, Plan};
use svc_relalg::scalar::{BinOp, Expr};
use svc_storage::{Result, StorageError};

use crate::histogram::Histogram;
use crate::stats::TableStats;

/// Resolves leaf relation names to table statistics. `Sync` so the
/// estimator built on top can be consulted from worker threads.
pub trait StatsProvider: Sync {
    /// Statistics of leaf `name`, if collected.
    fn stats(&self, name: &str) -> Option<&TableStats>;
}

/// Assumed row count of a leaf without statistics.
pub const DEFAULT_ROWS: f64 = 1_000.0;
/// Selectivity of a predicate the estimator cannot decompose.
pub const DEFAULT_SEL: f64 = 1.0 / 3.0;
const MIN_SEL: f64 = 5e-4;

/// Per-column summary carried through the estimation recursion.
#[derive(Debug, Clone)]
struct ColEst {
    distinct: f64,
    min: Option<f64>,
    max: Option<f64>,
    hist: Option<Histogram>,
    null_frac: f64,
}

impl ColEst {
    fn opaque(rows: f64) -> ColEst {
        ColEst { distinct: rows.max(1.0), min: None, max: None, hist: None, null_frac: 0.0 }
    }

    fn capped(mut self, rows: f64) -> ColEst {
        self.distinct = self.distinct.min(rows).max(1.0);
        self
    }
}

/// Row count plus column summaries of one plan node.
#[derive(Debug, Clone)]
struct RelEst {
    rows: f64,
    cols: Vec<ColEst>,
}

impl RelEst {
    fn scaled(mut self, rows: f64) -> RelEst {
        self.rows = rows;
        self.cols = self.cols.into_iter().map(|c| c.capped(rows)).collect();
        self
    }
}

fn leaf_est(stats: Option<&TableStats>, derived: &Derived) -> RelEst {
    match stats {
        Some(s) => {
            let rows = (s.rows as f64).max(1.0);
            let cols = s
                .cols
                .iter()
                .map(|c| ColEst {
                    distinct: c.distinct().min(rows),
                    min: c.min,
                    max: c.max,
                    hist: c.histogram.clone(),
                    null_frac: (c.nulls as f64 / rows).clamp(0.0, 1.0),
                })
                .collect();
            RelEst { rows, cols }
        }
        None => RelEst {
            rows: DEFAULT_ROWS,
            cols: derived.schema.fields().iter().map(|_| ColEst::opaque(DEFAULT_ROWS)).collect(),
        },
    }
}

/// Estimate one plan bottom-up. Returns the node's derived type alongside
/// so parents can resolve column names without re-deriving subtrees.
fn est_plan(
    plan: &Plan,
    leaves: &dyn LeafProvider,
    provider: &dyn StatsProvider,
) -> Result<(Derived, RelEst)> {
    Ok(match plan {
        Plan::Scan { table } => {
            let d = leaves.leaf(table).ok_or_else(|| StorageError::UnknownTable(table.clone()))?;
            let e = leaf_est(provider.stats(table), &d);
            (d, e)
        }
        Plan::Select { input, predicate } => {
            let (d, e) = est_plan(input, leaves, provider)?;
            let out = derive_select(&d, predicate)?;
            let sel = selectivity(predicate, &d, &e.cols);
            let rows = (e.rows * sel).max(MIN_SEL);
            (out, e.scaled(rows))
        }
        Plan::Project { input, columns } => {
            let (d, e) = est_plan(input, leaves, provider)?;
            let out = derive_project(&d, columns)?;
            let cols = columns
                .iter()
                .map(|(_, expr)| {
                    expr.as_col()
                        .and_then(|n| d.schema.resolve(n).ok())
                        .map(|i| e.cols[i].clone())
                        .unwrap_or_else(|| ColEst::opaque(e.rows))
                })
                .collect();
            (out, RelEst { rows: e.rows, cols })
        }
        Plan::Join { left, right, kind, on } => {
            let (ld, le) = est_plan(left, leaves, provider)?;
            let (rd, re) = est_plan(right, leaves, provider)?;
            let (out, on_idx) = derive_join(&ld, &rd, *kind, on, right.name_hint())?;
            let mut inner = le.rows * re.rows;
            for &(li, ri) in &on_idx {
                inner /= le.cols[li].distinct.max(re.cols[ri].distinct).max(1.0);
            }
            let rows = match kind {
                JoinKind::Inner => inner,
                JoinKind::Left => inner.max(le.rows),
                JoinKind::Right => inner.max(re.rows),
                JoinKind::Full => inner.max(le.rows + re.rows),
                JoinKind::Semi => inner.min(le.rows),
                JoinKind::Anti => (le.rows - inner.min(le.rows)).max(1.0),
            }
            .max(1.0);
            let cols: Vec<ColEst> = if matches!(kind, JoinKind::Semi | JoinKind::Anti) {
                le.cols.into_iter().map(|c| c.capped(rows)).collect()
            } else {
                le.cols.into_iter().chain(re.cols).map(|c| c.capped(rows)).collect()
            };
            (out, RelEst { rows, cols })
        }
        Plan::Aggregate { input, group_by, aggregates } => {
            let (d, e) = est_plan(input, leaves, provider)?;
            let out = derive_aggregate(&d, group_by, aggregates)?;
            let mut groups = 1.0f64;
            for g in group_by {
                let i = d.schema.resolve(g)?;
                groups = (groups * e.cols[i].distinct).min(e.rows.max(1.0));
            }
            let rows = groups.max(1.0);
            let mut cols: Vec<ColEst> = group_by
                .iter()
                .map(|g| {
                    let i = d.schema.resolve(g).expect("validated above");
                    e.cols[i].clone().capped(rows)
                })
                .collect();
            cols.extend(aggregates.iter().map(|_| ColEst::opaque(rows)));
            (out, RelEst { rows, cols })
        }
        Plan::Union { left, right } => {
            let (ld, le) = est_plan(left, leaves, provider)?;
            let (rd, re) = est_plan(right, leaves, provider)?;
            let out = derive_setop(&ld, &rd, SetOpKind::Union)?;
            let rows = (le.rows + re.rows).max(1.0);
            let cols = le
                .cols
                .into_iter()
                .zip(re.cols)
                .map(|(a, b)| ColEst {
                    distinct: (a.distinct + b.distinct).min(rows),
                    min: opt_min(a.min, b.min),
                    max: opt_max(a.max, b.max),
                    hist: None,
                    null_frac: (a.null_frac + b.null_frac) / 2.0,
                })
                .collect();
            (out, RelEst { rows, cols })
        }
        Plan::Intersect { left, right } => {
            let (ld, le) = est_plan(left, leaves, provider)?;
            let (rd, re) = est_plan(right, leaves, provider)?;
            let out = derive_setop(&ld, &rd, SetOpKind::Intersect)?;
            let rows = le.rows.min(re.rows).max(1.0);
            (out, le.scaled(rows))
        }
        Plan::Difference { left, right } => {
            let (ld, le) = est_plan(left, leaves, provider)?;
            let (rd, re) = est_plan(right, leaves, provider)?;
            let out = derive_setop(&ld, &rd, SetOpKind::Difference)?;
            let rows = le.rows.max(1.0);
            let _ = re;
            (out, le.scaled(rows))
        }
        Plan::Hash { input, key, ratio, .. } => {
            let (d, e) = est_plan(input, leaves, provider)?;
            let out = derive_hash(&d, key, *ratio)?;
            let rows = (e.rows * ratio).max(MIN_SEL);
            (out, e.scaled(rows))
        }
    })
}

fn opt_min(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, y) => x.or(y),
    }
}

fn opt_max(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (x, y) => x.or(y),
    }
}

/// Selectivity of a predicate against column summaries.
fn selectivity(pred: &Expr, d: &Derived, cols: &[ColEst]) -> f64 {
    sel_expr(pred, d, cols).clamp(MIN_SEL, 1.0)
}

fn col_of<'a>(e: &Expr, d: &Derived, cols: &'a [ColEst]) -> Option<&'a ColEst> {
    e.as_col().and_then(|n| d.schema.resolve(n).ok()).map(|i| &cols[i])
}

fn lit_of(e: &Expr) -> Option<&svc_storage::Value> {
    match e {
        Expr::Lit(v) => Some(v),
        _ => None,
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

fn sel_expr(e: &Expr, d: &Derived, cols: &[ColEst]) -> f64 {
    match e {
        Expr::Binary { op: BinOp::And, left, right } => {
            sel_expr(left, d, cols) * sel_expr(right, d, cols)
        }
        Expr::Binary { op: BinOp::Or, left, right } => {
            let (a, b) = (sel_expr(left, d, cols), sel_expr(right, d, cols));
            (a + b - a * b).clamp(0.0, 1.0)
        }
        Expr::Not(x) => (1.0 - sel_expr(x, d, cols)).clamp(0.0, 1.0),
        Expr::IsNull(x) => col_of(x, d, cols).map_or(DEFAULT_SEL, |c| c.null_frac),
        Expr::Binary { op, left, right } => {
            // Normalize to col-op-lit; col-op-col within one relation gets
            // the equality ndv formula.
            if let (Some(c), Some(v)) = (col_of(left, d, cols), lit_of(right)) {
                sel_cmp(*op, c, v)
            } else if let (Some(v), Some(c)) = (lit_of(left), col_of(right, d, cols)) {
                sel_cmp(flip(*op), c, v)
            } else if let (Some(a), Some(b)) = (col_of(left, d, cols), col_of(right, d, cols)) {
                match op {
                    BinOp::Eq => 1.0 / a.distinct.max(b.distinct).max(1.0),
                    BinOp::Ne => 1.0 - 1.0 / a.distinct.max(b.distinct).max(1.0),
                    _ => DEFAULT_SEL,
                }
            } else {
                DEFAULT_SEL
            }
        }
        Expr::Lit(v) => {
            if v.as_bool() == Some(true) {
                1.0
            } else {
                0.0
            }
        }
        _ => DEFAULT_SEL,
    }
}

fn sel_cmp(op: BinOp, c: &ColEst, v: &svc_storage::Value) -> f64 {
    let not_null = 1.0 - c.null_frac;
    match op {
        BinOp::Eq => not_null / c.distinct.max(1.0),
        BinOp::Ne => not_null * (1.0 - 1.0 / c.distinct.max(1.0)),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let Some(x) = v.as_f64() else { return DEFAULT_SEL };
            let frac_le = if let Some(h) = &c.hist {
                h.fraction_le(x)
            } else if let (Some(lo), Some(hi)) = (c.min, c.max) {
                if hi > lo {
                    ((x - lo) / (hi - lo)).clamp(0.0, 1.0)
                } else if x >= lo {
                    1.0
                } else {
                    0.0
                }
            } else {
                return DEFAULT_SEL;
            };
            let s = match op {
                BinOp::Lt | BinOp::Le => frac_le,
                _ => 1.0 - frac_le,
            };
            (s * not_null).clamp(0.0, 1.0)
        }
        _ => DEFAULT_SEL,
    }
}

impl TableStats {
    /// Estimated number of rows a filter keeps on this table.
    pub fn estimate_filter_rows(&self, pred: &Expr) -> f64 {
        let d = Derived { schema: self.schema.clone(), key: vec![] };
        let rows = (self.rows as f64).max(0.0);
        let cols: Vec<ColEst> = leaf_est(Some(self), &d).cols;
        rows * selectivity(pred, &d, &cols)
    }

    /// True iff the statistics *prove* the filter selects nothing: some
    /// top-level conjunct compares a numeric column against a literal
    /// entirely outside its [min, max] envelope. Sound under deletions —
    /// the stored bounds only ever widen relative to the live data.
    pub fn prove_empty_filter(&self, pred: &Expr) -> bool {
        match pred {
            Expr::Binary { op: BinOp::And, left, right } => {
                self.prove_empty_filter(left) || self.prove_empty_filter(right)
            }
            Expr::Binary { op, left, right } => {
                let resolve = |e: &Expr| {
                    e.as_col()
                        .and_then(|n| self.schema.resolve(n).ok())
                        .and_then(|i| self.cols.get(i))
                };
                let (c, v, op) =
                    if let (Some(c), Some(Expr::Lit(v))) = (resolve(left), Some(&**right)) {
                        (c, v, *op)
                    } else if let (Some(Expr::Lit(v)), Some(c)) = (Some(&**left), resolve(right)) {
                        (c, v, flip(*op))
                    } else {
                        return false;
                    };
                let (Some(x), Some(lo), Some(hi)) = (v.as_f64(), c.min, c.max) else {
                    return false;
                };
                match op {
                    BinOp::Lt => x <= lo,
                    BinOp::Le => x < lo,
                    BinOp::Gt => x >= hi,
                    BinOp::Ge => x > hi,
                    BinOp::Eq => x < lo || x > hi,
                    _ => false,
                }
            }
            _ => false,
        }
    }
}

/// A [`CardEstimator`] over any [`StatsProvider`] — the object handed to
/// `svc_relalg::optimizer::optimize_with`.
pub struct CatalogEstimator<'a> {
    provider: &'a dyn StatsProvider,
}

impl<'a> CatalogEstimator<'a> {
    /// Estimator reading from `provider`.
    pub fn new(provider: &'a dyn StatsProvider) -> CatalogEstimator<'a> {
        CatalogEstimator { provider }
    }
}

impl CardEstimator for CatalogEstimator<'_> {
    fn estimate(&self, plan: &Plan, leaves: &dyn LeafProvider) -> Result<RelCard> {
        let (_, e) = est_plan(plan, leaves, self.provider)?;
        Ok(RelCard { rows: e.rows, distinct: e.cols.iter().map(|c| c.distinct).collect() })
    }
}
