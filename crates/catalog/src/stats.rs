//! Per-table and per-column statistics, maintained incrementally under
//! deltas.
//!
//! The incremental contract (what the property tests pin down): after
//! applying a delta set, the stats equal a rebuild-from-scratch over the
//! post-delta rows *with the same shape* ([`TableStats::rebuilt_like`]:
//! same histogram boundaries, same sketch configuration) —
//!
//! * **exactly** for row counts, null counts, and histogram cells (both
//!   directions of a delta are exact: `∇R` carries full old rows);
//! * **exactly** for min/max and the distinct sketch under insert-only
//!   deltas;
//! * as a **conservative bound** for min/max (`stored min ≤ true min`,
//!   `stored max ≥ true max`) and the sketch (estimate ≥ true count) once
//!   deletions are involved — registers cannot forget, and a deleted
//!   extremum cannot be un-seen without a rescan. [`TableStats::staleness`]
//!   reports the deleted fraction so the catalog can schedule a rebuild.

use svc_storage::{DataType, Row, Schema, Table, Value};

use crate::histogram::Histogram;
use crate::sketch::DistinctSketch;

/// Build parameters shared by every stats object of one catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsConfig {
    /// Cells per equi-width histogram.
    pub histogram_buckets: usize,
    /// Register-count exponent of the distinct sketch (`2^bits` registers).
    pub sketch_bits: u8,
}

impl Default for StatsConfig {
    fn default() -> Self {
        StatsConfig { histogram_buckets: 64, sketch_bits: crate::sketch::DEFAULT_BITS }
    }
}

/// Statistics of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of NULLs.
    pub nulls: u64,
    /// Smallest numeric value seen (None for non-numeric columns or when
    /// no non-null value was seen). A lower bound once rows were deleted.
    pub min: Option<f64>,
    /// Largest numeric value seen; an upper bound once rows were deleted.
    pub max: Option<f64>,
    /// Distinct-value register sketch.
    pub sketch: DistinctSketch,
    /// Equi-width histogram (numeric columns with at least one value).
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// Estimated distinct-value count, clamped to at least 1.
    pub fn distinct(&self) -> f64 {
        self.sketch.estimate().max(1.0)
    }
}

/// Statistics of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Current row count (exact under incremental maintenance).
    pub rows: u64,
    /// The schema the column stats are aligned with.
    pub schema: Schema,
    /// Per-column stats, positionally aligned with `schema`.
    pub cols: Vec<ColumnStats>,
    /// Rows deleted since the histograms/sketches were (re)built; drives
    /// the rebuild policy.
    pub deleted_since_build: u64,
    rows_at_build: u64,
    config: StatsConfig,
}

fn numeric(dtype: DataType) -> bool {
    matches!(dtype, DataType::Int | DataType::Float)
}

impl TableStats {
    /// Build stats from a table: one pass for min/max/nulls/sketches, one
    /// to fill the histograms (whose boundaries need the min/max).
    pub fn build(table: &Table, config: &StatsConfig) -> TableStats {
        let schema = table.schema().clone();
        let mut cols: Vec<ColumnStats> = schema
            .fields()
            .iter()
            .map(|_| ColumnStats {
                nulls: 0,
                min: None,
                max: None,
                sketch: DistinctSketch::new(config.sketch_bits),
                histogram: None,
            })
            .collect();
        for row in table.rows() {
            for (c, v) in cols.iter_mut().zip(row) {
                observe(c, v);
            }
        }
        for (c, f) in cols.iter_mut().zip(schema.fields()) {
            if let (true, Some(lo), Some(hi)) = (numeric(f.dtype), c.min, c.max) {
                c.histogram = Some(Histogram::new(lo, hi, config.histogram_buckets));
            }
        }
        for row in table.rows() {
            for (c, v) in cols.iter_mut().zip(row) {
                if let (Some(h), Some(x)) = (c.histogram.as_mut(), v.as_f64()) {
                    h.add(x);
                }
            }
        }
        let rows = table.len() as u64;
        TableStats {
            rows,
            schema,
            cols,
            deleted_since_build: 0,
            rows_at_build: rows,
            config: *config,
        }
    }

    /// Rebuild from scratch over `table` with this object's shape — the
    /// histogram boundaries and sketch configuration preserved — so the
    /// result is directly comparable with incrementally-maintained stats.
    pub fn rebuilt_like(&self, table: &Table) -> TableStats {
        let mut out = TableStats {
            rows: 0,
            schema: self.schema.clone(),
            cols: self
                .cols
                .iter()
                .map(|c| ColumnStats {
                    nulls: 0,
                    min: None,
                    max: None,
                    sketch: DistinctSketch::new(self.config.sketch_bits),
                    histogram: c.histogram.as_ref().map(|h| {
                        let (lo, hi) = h.range();
                        Histogram::new(lo, hi, self.config.histogram_buckets)
                    }),
                })
                .collect(),
            deleted_since_build: 0,
            rows_at_build: table.len() as u64,
            config: self.config,
        };
        out.apply_inserts(table.rows());
        out
    }

    /// Fold inserted rows into the stats.
    pub fn apply_inserts(&mut self, rows: &[Row]) {
        self.rows += rows.len() as u64;
        for row in rows {
            for (c, v) in self.cols.iter_mut().zip(row) {
                observe(c, v);
                if let (Some(h), Some(x)) = (c.histogram.as_mut(), v.as_f64()) {
                    h.add(x);
                }
            }
        }
    }

    /// Fold deleted rows out of the stats. Counts and histogram cells are
    /// exact; min/max and the sketch stay as conservative bounds.
    pub fn apply_deletes(&mut self, rows: &[Row]) {
        self.rows = self.rows.saturating_sub(rows.len() as u64);
        self.deleted_since_build += rows.len() as u64;
        for row in rows {
            for (c, v) in self.cols.iter_mut().zip(row) {
                if v.is_null() {
                    c.nulls = c.nulls.saturating_sub(1);
                }
                if let (Some(h), Some(x)) = (c.histogram.as_mut(), v.as_f64()) {
                    h.remove(x);
                }
            }
        }
    }

    /// Deleted fraction since the last (re)build: the conservative-bound
    /// error budget already spent.
    pub fn staleness(&self) -> f64 {
        if self.rows_at_build == 0 {
            return if self.deleted_since_build > 0 { 1.0 } else { 0.0 };
        }
        self.deleted_since_build as f64 / self.rows_at_build as f64
    }

    /// Per-column distinct estimate (1 when the column is unknown).
    pub fn distinct(&self, col: usize) -> f64 {
        self.cols.get(col).map_or(1.0, |c| c.distinct().min(self.rows.max(1) as f64))
    }
}

fn observe(c: &mut ColumnStats, v: &Value) {
    if v.is_null() {
        c.nulls += 1;
        return;
    }
    c.sketch.insert(v);
    if let Some(x) = v.as_f64() {
        c.min = Some(c.min.map_or(x, |m| m.min(x)));
        c.max = Some(c.max.map_or(x, |m| m.max(x)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svc_storage::{DataType, Schema, Table, Value};

    fn table(n: i64) -> Table {
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("x", DataType::Float),
            ("tag", DataType::Str),
        ])
        .unwrap();
        let mut t = Table::new(schema, &["id"]).unwrap();
        for i in 0..n {
            let x = if i % 10 == 0 { Value::Null } else { Value::Float((i % 50) as f64) };
            t.insert(vec![Value::Int(i), x, Value::str(format!("t{}", i % 7))]).unwrap();
        }
        t
    }

    #[test]
    fn build_captures_counts_bounds_and_distincts() {
        let t = table(1_000);
        let s = TableStats::build(&t, &StatsConfig::default());
        assert_eq!(s.rows, 1_000);
        assert_eq!(s.cols[1].nulls, 100);
        assert_eq!(s.cols[1].min, Some(1.0));
        assert_eq!(s.cols[1].max, Some(49.0));
        assert!((s.distinct(0) - 1_000.0).abs() / 1_000.0 < 0.12, "id ndv {}", s.distinct(0));
        assert!((s.distinct(2) - 7.0).abs() < 1.5, "tag ndv {}", s.distinct(2));
        assert!(s.cols[2].histogram.is_none(), "no histogram on strings");
    }

    #[test]
    fn incremental_inserts_match_rebuild_exactly() {
        let t = table(500);
        let mut s = TableStats::build(&t, &StatsConfig::default());
        let mut t2 = t;
        let mut added = Vec::new();
        for i in 500..700i64 {
            let row = vec![Value::Int(i), Value::Float((i % 90) as f64), Value::str("new")];
            t2.insert(row.clone()).unwrap();
            added.push(row);
        }
        s.apply_inserts(&added);
        let rebuilt = s.rebuilt_like(&t2);
        assert_eq!(s.rows, rebuilt.rows);
        for (a, b) in s.cols.iter().zip(&rebuilt.cols) {
            assert_eq!(a.nulls, b.nulls);
            assert_eq!(a.min, b.min);
            assert_eq!(a.max, b.max);
            assert_eq!(a.sketch, b.sketch, "insert-only sketches must match exactly");
            assert_eq!(a.histogram, b.histogram);
        }
    }

    #[test]
    fn deletes_keep_counts_exact_and_bounds_conservative() {
        let t = table(400);
        let mut s = TableStats::build(&t, &StatsConfig::default());
        let deleted: Vec<_> = t.rows().iter().take(120).cloned().collect();
        let mut t2 = t;
        for row in &deleted {
            t2.delete(&t2.key_of(row));
        }
        s.apply_deletes(&deleted);
        let rebuilt = s.rebuilt_like(&t2);
        assert_eq!(s.rows, rebuilt.rows);
        for (a, b) in s.cols.iter().zip(&rebuilt.cols) {
            assert_eq!(a.nulls, b.nulls, "null counts stay exact");
            assert_eq!(a.histogram, b.histogram, "histogram cells stay exact");
            if let (Some(am), Some(bm)) = (a.min, b.min) {
                assert!(am <= bm, "stored min must lower-bound the true min");
            }
            if let (Some(am), Some(bm)) = (a.max, b.max) {
                assert!(am >= bm, "stored max must upper-bound the true max");
            }
            for (ra, rb) in a.sketch.registers().iter().zip(b.sketch.registers()) {
                assert!(ra >= rb, "sketch registers only grow");
            }
        }
        assert!((s.staleness() - 0.3).abs() < 1e-12);
    }
}
