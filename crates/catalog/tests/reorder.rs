//! End-to-end tests of cost-based join reordering: the catalog's
//! estimator drives `optimize_with`, the rewritten plan must compute the
//! identical relation, and on a star schema with a selective dimension
//! filter the chosen order must actually shrink the intermediates.

use svc_catalog::Catalog;
use svc_relalg::eval::{evaluate, Bindings};
use svc_relalg::optimizer::{optimize, optimize_with};
use svc_relalg::plan::{JoinKind, Plan};
use svc_relalg::scalar::{col, lit};
use svc_storage::{DataType, Database, Schema, Table, Value};

/// A little star schema: a big fact table, a mid dimension, a tiny one.
fn star_db() -> Database {
    let mut db = Database::new();
    let mut tiny = Table::new(
        Schema::from_pairs(&[("tinyId", DataType::Int), ("label", DataType::Str)]).unwrap(),
        &["tinyId"],
    )
    .unwrap();
    for t in 0..8i64 {
        tiny.insert(vec![Value::Int(t), Value::str(format!("t{t}"))]).unwrap();
    }
    let mut mid = Table::new(
        Schema::from_pairs(&[
            ("midId", DataType::Int),
            ("tinyId", DataType::Int),
            ("w", DataType::Float),
        ])
        .unwrap(),
        &["midId"],
    )
    .unwrap();
    for m in 0..200i64 {
        mid.insert(vec![Value::Int(m), Value::Int(m % 8), Value::Float((m % 13) as f64)]).unwrap();
    }
    let mut fact = Table::new(
        Schema::from_pairs(&[
            ("factId", DataType::Int),
            ("midId", DataType::Int),
            ("x", DataType::Float),
        ])
        .unwrap(),
        &["factId"],
    )
    .unwrap();
    for f in 0..6_000i64 {
        fact.insert(vec![Value::Int(f), Value::Int(f % 200), Value::Float((f % 31) as f64)])
            .unwrap();
    }
    db.create_table("tiny", tiny);
    db.create_table("mid", mid);
    db.create_table("fact", fact);
    db
}

/// Builder order: fact first, the selective tiny filter joined last.
fn bad_order_plan() -> Plan {
    Plan::scan("fact")
        .join(Plan::scan("mid"), JoinKind::Inner, &[("midId", "midId")])
        .join(Plan::scan("tiny"), JoinKind::Inner, &[("tinyId", "tinyId")])
        .select(col("label").eq(lit("t3")))
}

/// `C_out` on the real data: the summed sizes of every join's
/// materialized output — exactly the quantity the cost model minimizes.
fn join_work(plan: &Plan, b: &Bindings<'_>) -> usize {
    match plan {
        Plan::Join { left, right, .. } => {
            evaluate(plan, b).unwrap().len() + join_work(left, b) + join_work(right, b)
        }
        Plan::Select { input, .. } | Plan::Project { input, .. } => join_work(input, b),
        Plan::Aggregate { input, .. } | Plan::Hash { input, .. } => join_work(input, b),
        Plan::Scan { .. } => 0,
        Plan::Union { left, right }
        | Plan::Intersect { left, right }
        | Plan::Difference { left, right } => join_work(left, b) + join_work(right, b),
    }
}

#[test]
fn reordered_star_join_is_equivalent_and_cheaper() {
    let db = star_db();
    let cat = Catalog::build(&db);
    let bindings = Bindings::from_database(&db);
    let plan = bad_order_plan();

    let expected = {
        let (baseline, _) = optimize(&plan, &db).unwrap();
        evaluate(&baseline, &bindings).unwrap()
    };
    let (reordered, report) = optimize_with(&plan, &db, &cat.estimator()).unwrap();
    let got = evaluate(&reordered, &bindings).unwrap();
    assert!(
        got.same_contents(&expected),
        "reordering changed the result: {} vs {} rows\n{reordered:?}",
        got.len(),
        expected.len()
    );
    assert!(report.joins_reordered > 0, "the bad builder order must be rebuilt: {report:?}");

    let (baseline, _) = optimize(&plan, &db).unwrap();
    let work_before = join_work(&baseline, &bindings);
    let work_after = join_work(&reordered, &bindings);
    assert!(
        work_after * 2 < work_before,
        "cost-based order should at least halve the join work: {work_after} vs {work_before}"
    );
}

#[test]
fn reordering_is_a_fixed_point() {
    let db = star_db();
    let cat = Catalog::build(&db);
    let plan = bad_order_plan();
    let (once, _) = optimize_with(&plan, &db, &cat.estimator()).unwrap();
    let (twice, report) = optimize_with(&once, &db, &cat.estimator()).unwrap();
    assert_eq!(once, twice, "re-optimizing the reordered plan must be a no-op");
    assert_eq!(report.joins_reordered, 0, "{report:?}");
}

#[test]
fn eta_still_pushes_through_reordered_joins() {
    use svc_storage::HashSpec;
    let db = star_db();
    let cat = Catalog::build(&db);
    // Sample the view on the fact key; η must reach the fact leaf through
    // the restoring projection and whatever join order was chosen.
    let plan = Plan::scan("fact")
        .join(Plan::scan("mid"), JoinKind::Inner, &[("midId", "midId")])
        .join(Plan::scan("tiny"), JoinKind::Inner, &[("tinyId", "tinyId")])
        .select(col("w").lt(lit(9.0)))
        .hash(&["factId"], 0.3, HashSpec::with_seed(11));
    let bindings = Bindings::from_database(&db);
    let expected = evaluate(&plan, &bindings).unwrap();
    let (optimized, report) = optimize_with(&plan, &db, &cat.estimator()).unwrap();
    let got = evaluate(&optimized, &bindings).unwrap();
    assert!(got.same_contents(&expected), "η over a reordered region diverged");
    assert!(
        report.eta.sampled_leaves.iter().any(|l| l == "fact"),
        "η must still reach the fact leaf: {report:?}"
    );
}

#[test]
fn estimator_ranks_filtered_scans_below_full_scans() {
    let db = star_db();
    let cat = Catalog::build(&db);
    use svc_relalg::optimizer::cost::CardEstimator;
    let est = cat.estimator();
    let full = est.estimate_rows(&Plan::scan("fact"), &db).unwrap();
    assert!((full - 6_000.0).abs() < 1.0, "scan estimate is the exact row count: {full}");
    let filtered =
        est.estimate_rows(&Plan::scan("fact").select(col("x").lt(lit(3.0))), &db).unwrap();
    let truth = 6_000.0 * 3.0 / 31.0;
    assert!(
        (filtered - truth).abs() / truth < 0.35,
        "histogram range estimate off: {filtered} vs {truth}"
    );
    let eq =
        est.estimate_rows(&Plan::scan("tiny").select(col("label").eq(lit("t3"))), &db).unwrap();
    assert!((eq - 1.0).abs() < 0.7, "ndv equality estimate off: {eq}");
}
