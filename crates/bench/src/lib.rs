#![forbid(unsafe_code)]

//! Shared harness for the figure-regeneration binaries.
//!
//! Every binary `figXX` prints the same series the corresponding figure of
//! the paper plots (Section 7) and writes a CSV next to it under
//! `experiments/`. Scales are laptop-sized; the *shapes* (who wins, by what
//! factor, where crossovers fall) are the reproduction target, not absolute
//! numbers — see EXPERIMENTS.md.

use std::fmt::Display;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use svc_core::query::{relative_error, AggQuery};
use svc_core::{Method, SvcConfig, SvcView};
use svc_relalg::eval::{evaluate, Bindings};
use svc_relalg::exec::{ExecMode, PhysicalPlan};
use svc_relalg::plan::Plan;
use svc_storage::{Database, Deltas, Table};
use svc_workloads::tpcd::{TpcdConfig, TpcdData};

/// Wall-clock seconds of a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Minimum-of-`reps` timing of `f` in milliseconds, each rep averaging
/// `iters` inner calls. The minimum is the least load-contaminated sample
/// on a shared runner — the statistic the "never slower" CI guards use.
pub fn bench_min_ms(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let (_, t) = time(|| {
            for _ in 0..iters {
                f();
            }
        });
        best = best.min(t / iters as f64);
    }
    best * 1e3
}

/// Median-of-`reps` timing of `f` in milliseconds, each rep averaging
/// `iters` inner calls — robust central tendency for reported columns.
pub fn bench_median_ms(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let (_, t) = time(|| {
            for _ in 0..iters {
                f();
            }
        });
        samples.push(t / iters as f64);
    }
    median_of(&samples) * 1e3
}

/// Write `experiments/{name}.json` (shared path logic + create/log/warn
/// boilerplate every JSON emitter used to hand-roll).
pub fn write_json(name: &str, json: &str) {
    let dir = experiments_dir();
    let _ = fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.json"));
    match fs::write(&path, json) {
        Ok(()) => println!("[written {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Run `compiled` once under `mode` with a metrics sink installed and
/// render the per-operator execution metrics as a JSON array — the
/// `"operators":[...]` fragment the fig_* emitters embed per scenario row.
/// Elements are in pre-order (slot-id) order; zero-valued detail fields
/// are kept so downstream tooling sees a stable shape.
pub fn operator_metrics_json(
    compiled: &PhysicalPlan,
    bindings: &Bindings<'_>,
    mode: ExecMode<'_>,
) -> String {
    let sink = compiled.metrics_sink();
    compiled.run_with_metrics(bindings, mode, &sink).expect("metered run");
    let labels = compiled.node_labels();
    let ops: Vec<String> = labels
        .iter()
        .zip(sink.snapshots())
        .enumerate()
        .map(|(id, (label, m))| {
            format!(
                "{{\"id\":{id},\"op\":\"{}\",\"rows_in\":{},\"rows_out\":{},\"wall_ns\":{},\
                 \"morsels\":{},\"vec_chunks\":{},\"row_batches\":{},\"zone_skips\":{},\
                 \"build_rows\":{},\"probe_rows\":{},\"partitions\":{},\
                 \"part_max_rows\":{},\"groups\":{}}}",
                label.replace('"', "'"),
                m.rows_in,
                m.rows_out,
                m.wall_ns,
                m.morsels,
                m.vec_chunks,
                m.row_batches,
                m.zone_skips,
                m.build_rows,
                m.probe_rows,
                m.partitions,
                m.part_max_rows,
                m.groups
            )
        })
        .collect();
    format!("[{}]", ops.join(","))
}

/// Environment-tunable experiment scale (default 1.0 = the scales used in
/// EXPERIMENTS.md; smaller is faster).
pub fn bench_scale() -> f64 {
    std::env::var("SVC_BENCH_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

/// Number of random query instances per template (paper: 100).
pub fn bench_queries() -> usize {
    std::env::var("SVC_BENCH_QUERIES").ok().and_then(|s| s.parse().ok()).unwrap_or(30)
}

/// A results table: printed aligned to stdout and mirrored to
/// `experiments/{name}.csv`.
pub struct Report {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Start a report for figure `name` with column headers.
    pub fn new(name: &str, headers: &[&str]) -> Report {
        Report {
            name: name.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    /// Format a float compactly.
    pub fn f(x: f64) -> String {
        if x.abs() >= 100.0 {
            format!("{x:.1}")
        } else {
            format!("{x:.4}")
        }
    }

    /// Print to stdout and write the CSV.
    pub fn finish(self, caption: impl Display) {
        println!("\n=== {} — {caption} ===", self.name);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.headers));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }

        let dir = csv_dir();
        let _ = fs::create_dir_all(&dir);
        let mut csv = self.headers.join(",");
        csv.push('\n');
        for row in &self.rows {
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        let path = dir.join(format!("{}.csv", self.name));
        if let Err(e) = fs::write(&path, csv) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("[written {}]", path.display());
        }
    }
}

/// Where result files land: `SVC_EXPERIMENTS_DIR` when set, else
/// `<repo>/experiments` (manifest-relative, so it does not depend on the
/// invocation directory). Shared by the CSV reports and the JSON emitters
/// so paired outputs never split across directories.
pub fn experiments_dir() -> PathBuf {
    std::env::var("SVC_EXPERIMENTS_DIR")
        .ok()
        .filter(|d| !d.is_empty())
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            p.pop();
            p.pop();
            p.join("experiments")
        })
}

fn csv_dir() -> PathBuf {
    experiments_dir()
}

/// The standard single-node setup of Section 7.1: TPCD-Skew data at the
/// bench scale with skew `z`.
pub fn tpcd(scale_mult: f64, z: f64, seed: u64) -> TpcdData {
    TpcdData::generate(TpcdConfig { scale: 0.4 * bench_scale() * scale_mult, skew: z, seed })
        .expect("tpcd generation")
}

/// Median of a slice (empty → NaN).
pub fn median_of(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    svc_stats::quantile::median(xs)
}

/// Evaluate a plan against a database (full materialization).
pub fn materialize(plan: &Plan, db: &Database) -> Table {
    evaluate(plan, &Bindings::from_database(db)).expect("materialize")
}

/// Accuracy triple for one query: (stale, aqp, corr) relative errors.
pub struct ErrTriple {
    /// "No maintenance" baseline error.
    pub stale: f64,
    /// SVC+AQP error.
    pub aqp: f64,
    /// SVC+CORR error.
    pub corr: f64,
}

/// Run the stale/AQP/CORR error comparison for a batch of queries against
/// one cleaned sample. The fresh view is materialized once as the oracle.
pub fn error_triples(
    svc: &SvcView,
    db: &Database,
    deltas: &Deltas,
    queries: &[AggQuery],
) -> Vec<ErrTriple> {
    let cleaned = svc.clean_sample(db, deltas).expect("clean sample");
    let fresh_canonical = svc.view.recompute_fresh(db, deltas).expect("fresh");
    let fresh = svc.view.public_of(&fresh_canonical).expect("public fresh");
    let stale_view = svc.view.public_table().expect("stale public");

    queries
        .iter()
        .filter_map(|q| {
            let truth = q.exact(&fresh).ok()?;
            if !truth.is_finite() || truth == 0.0 {
                return None;
            }
            let stale = q.exact(&stale_view).ok()?;
            let aqp = svc.estimate_aqp(&cleaned, q).ok()?;
            let corr = svc.estimate_corr(&cleaned, q).ok()?;
            Some(ErrTriple {
                stale: relative_error(stale, truth),
                aqp: relative_error(aqp.value, truth),
                corr: relative_error(corr.value, truth),
            })
        })
        .collect()
}

/// Deterministic RNG for a figure.
pub fn rng(tag: u64) -> StdRng {
    StdRng::seed_from_u64(0xF16_0000 + tag)
}

/// End-to-end answer timing for Figure 6a: returns
/// (maintenance_or_clean_time, query_time).
pub fn answer_times(
    svc: &mut SvcView,
    db: &Database,
    deltas: &Deltas,
    q: &AggQuery,
    method: Method,
) -> (f64, f64) {
    match method {
        Method::Stale => {
            // IVM: full maintenance, then an exact query on the view.
            let (_, t_maint) = time(|| svc.maintain_full(db, deltas).expect("ivm"));
            let (_, t_query) = time(|| svc.query_stale(q).expect("query"));
            (t_maint, t_query)
        }
        Method::AqpDirect => {
            let (cleaned, t_clean) = time(|| svc.clean_sample(db, deltas).expect("clean"));
            let (_, t_query) = time(|| svc.estimate_aqp(&cleaned, q).expect("aqp"));
            (t_clean, t_query)
        }
        Method::Correction => {
            let (cleaned, t_clean) = time(|| svc.clean_sample(db, deltas).expect("clean"));
            let (_, t_query) = time(|| svc.estimate_corr(&cleaned, q).expect("corr"));
            (t_clean, t_query)
        }
    }
}

/// Shared fixture: the join view SVC instance over TPCD data.
pub fn join_view_svc(data: &TpcdData, ratio: f64) -> SvcView {
    SvcView::create(
        "joinView",
        svc_workloads::tpcd_views::join_view(),
        &data.db,
        SvcConfig::with_ratio(ratio),
    )
    .expect("join view")
}

/// Per-roll-up error statistics for Figures 11–13.
pub struct RollupErrors {
    /// The roll-up id (Q1..Q13).
    pub id: String,
    /// Median over groups of the stale relative error.
    pub stale_median: f64,
    /// Median over groups of the SVC+AQP error.
    pub aqp_median: f64,
    /// Median over groups of the SVC+CORR error.
    pub corr_median: f64,
    /// Maximum group errors (Figure 12).
    pub stale_max: f64,
    /// Max SVC+AQP group error.
    pub aqp_max: f64,
    /// Max SVC+CORR group error.
    pub corr_max: f64,
}

/// Run the cube roll-up experiment (Section 7.6.1): TPCD z=1, 10% updates,
/// m=10%. Each roll-up query set aggregates `agg(measure)` per group value
/// combination (capped at `max_groups` per roll-up).
pub fn rollup_errors(agg: svc_core::query::QueryAgg, max_groups: usize) -> Vec<RollupErrors> {
    use svc_workloads::cube::{base_cube, group_values, rollup_dimension_sets, rollup_query};

    let data = tpcd(1.0, 1.0, 42);
    let deltas = data.updates(0.10, 7).expect("updates");
    let svc =
        SvcView::create("cube", base_cube(), &data.db, SvcConfig::with_ratio(0.1)).expect("cube");
    let cleaned = svc.clean_sample(&data.db, &deltas).expect("clean");
    let fresh = svc
        .view
        .public_of(&svc.view.recompute_fresh(&data.db, &deltas).expect("fresh"))
        .expect("public");
    let stale_view = svc.view.public_table().expect("stale");

    rollup_dimension_sets()
        .into_iter()
        .map(|(id, dims)| {
            let groups = if dims.is_empty() {
                vec![svc_storage::KeyTuple(vec![])]
            } else {
                group_values(&fresh, &dims, max_groups).expect("groups")
            };
            let mut stale_e = Vec::new();
            let mut aqp_e = Vec::new();
            let mut corr_e = Vec::new();
            for g in &groups {
                let q = rollup_query(agg, "revenue", &dims, g);
                let Ok(truth) = q.exact(&fresh) else { continue };
                if !truth.is_finite() || truth == 0.0 {
                    continue;
                }
                if let Ok(s) = q.exact(&stale_view) {
                    stale_e.push(relative_error(s, truth));
                }
                if let Ok(est) = svc.estimate_aqp(&cleaned, &q) {
                    aqp_e.push(relative_error(est.value, truth));
                }
                if let Ok(est) = svc.estimate_corr(&cleaned, &q) {
                    corr_e.push(relative_error(est.value, truth));
                }
            }
            let max = |xs: &[f64]| xs.iter().copied().fold(0.0f64, f64::max);
            RollupErrors {
                id: id.to_string(),
                stale_median: median_of(&stale_e),
                aqp_median: median_of(&aqp_e),
                corr_median: median_of(&corr_e),
                stale_max: max(&stale_e),
                aqp_max: max(&aqp_e),
                corr_max: max(&corr_e),
            }
        })
        .collect()
}
