//! Optimizer on/off comparison for the Figure 3 claim: pushing η through
//! the maintenance expression makes cleaning touch only sampled deltas.
//!
//! For the TPC-D join view, this measures the latency of materializing a
//! cleaned sample with the cleaning expression evaluated (a) as written —
//! hash applied on top of the full maintenance result — and (b) after the
//! standard optimizer pass (predicate pushdown, projection pruning, and the
//! η rule). Emits a table, a CSV (via the shared `Report` harness), and a
//! JSON file for the benchmark trajectory.

use std::fs;

use svc_bench::{experiments_dir, median_of, time, tpcd, Report};
use svc_core::{SvcConfig, SvcView};
use svc_ivm::view::maintenance_bindings;
use svc_relalg::eval::evaluate;
use svc_workloads::tpcd_views::join_view;

struct Point {
    ratio: f64,
    unoptimized_s: f64,
    optimized_s: f64,
    eta_descended: usize,
    sampled_leaves: usize,
}

fn main() {
    let data = tpcd(1.0, 1.0, 42);
    let deltas = data.updates(0.10, 7).expect("updates");
    let reps = 3;

    let mut points = Vec::new();
    for ratio in [0.05, 0.1, 0.2, 0.4] {
        let svc = SvcView::create("joinView", join_view(), &data.db, SvcConfig::with_ratio(ratio))
            .expect("create view");

        // Optimizer OFF: evaluate the cleaning expression as written —
        // η on top of the maintenance plan, bound to the full stale view.
        let (mplan, _kind) = svc.view.build_maintenance_plan(&data.db, &deltas).expect("plan");
        let key_names = svc.view.key_names();
        let key_refs: Vec<&str> = key_names.iter().map(|s| s.as_str()).collect();
        let hashed = mplan.hash(&key_refs, ratio, svc.config.hash_spec());
        let bindings = maintenance_bindings(&data.db, &deltas, svc.view.table());

        let mut t_off = Vec::with_capacity(reps);
        let mut unoptimized = None;
        for _ in 0..reps {
            let (tbl, t) = time(|| evaluate(&hashed, &bindings).expect("unoptimized eval"));
            t_off.push(t);
            unoptimized = Some(tbl);
        }

        // Optimizer ON: the standard cleaning path (optimized exactly once
        // inside `clean_sample`).
        let mut t_on = Vec::with_capacity(reps);
        let mut cleaned = None;
        for _ in 0..reps {
            let (c, t) = time(|| svc.clean_sample(&data.db, &deltas).expect("clean"));
            t_on.push(t);
            cleaned = Some(c);
        }
        let cleaned = cleaned.unwrap();

        // Theorem 1: both paths materialize the identical sample.
        assert!(
            cleaned.canonical.same_contents(&unoptimized.unwrap()),
            "optimized cleaning diverged from the unoptimized expression at m={ratio}"
        );

        points.push(Point {
            ratio,
            unoptimized_s: median_of(&t_off),
            optimized_s: median_of(&t_on),
            eta_descended: cleaned.report.descended,
            sampled_leaves: cleaned.report.sampled_leaves.len(),
        });
    }

    let mut report = Report::new(
        "fig_pushdown",
        &["ratio", "unoptimized_s", "optimized_s", "speedup", "eta_depth", "sampled_leaves"],
    );
    let mut json_rows = Vec::new();
    for p in &points {
        let speedup = p.unoptimized_s / p.optimized_s;
        report.row(vec![
            format!("{:.2}", p.ratio),
            Report::f(p.unoptimized_s),
            Report::f(p.optimized_s),
            format!("{speedup:.2}x"),
            p.eta_descended.to_string(),
            p.sampled_leaves.to_string(),
        ]);
        json_rows.push(format!(
            "{{\"ratio\":{},\"unoptimized_s\":{},\"optimized_s\":{},\"speedup\":{},\
             \"eta_depth\":{},\"sampled_leaves\":{}}}",
            p.ratio, p.unoptimized_s, p.optimized_s, speedup, p.eta_descended, p.sampled_leaves
        ));
    }
    report.finish("cleaning latency, optimizer off vs on (TPC-D join view, 10% updates)");

    let json = format!(
        "{{\"bench\":\"fig_pushdown\",\"workload\":\"tpcd_join_view\",\"update_frac\":0.1,\
         \"reps\":{reps},\"points\":[{}]}}\n",
        json_rows.join(",")
    );
    let dir = experiments_dir();
    let _ = fs::create_dir_all(&dir);
    let path = dir.join("fig_pushdown.json");
    match fs::write(&path, &json) {
        Ok(()) => println!("[written {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }

    let worst =
        points.iter().map(|p| p.unoptimized_s / p.optimized_s).fold(f64::INFINITY, f64::min);
    println!("minimum speedup across ratios: {worst:.2}x");
    assert!(
        worst > 1.0,
        "optimized cleaning must be strictly faster than the unoptimized expression"
    );
}
