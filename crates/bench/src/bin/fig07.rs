//! Figure 7 — Complex views: (a) maintenance time of IVM vs SVC-10%
//! (V21/V22 benefit less: push-down blockers); (b) query accuracy
//! Stale / SVC+AQP / SVC+CORR per view.

use svc_bench::{bench_queries, error_triples, median_of, rng, time, tpcd, Report};
use svc_core::{SvcConfig, SvcView};
use svc_workloads::querygen::random_queries;
use svc_workloads::tpcd_views::complex_views;

fn main() {
    let data = tpcd(1.0, 2.0, 42);
    let deltas = data.updates(0.10, 7).expect("updates");
    let mut r = rng(7);
    let n_queries = bench_queries();

    let mut timing =
        Report::new("fig07a", &["view", "ivm_seconds", "svc10_seconds", "fully_pushed"]);
    let mut accuracy =
        Report::new("fig07b", &["view", "stale_err", "svc_aqp10_err", "svc_corr10_err"]);

    for v in complex_views() {
        let mut ivm = SvcView::create(v.id, v.plan.clone(), &data.db, SvcConfig::with_ratio(1.0))
            .expect("view");
        let (_, t_ivm) = time(|| ivm.view.maintain(&data.db, &deltas).expect("ivm"));

        let svc = SvcView::create(v.id, v.plan.clone(), &data.db, SvcConfig::with_ratio(0.1))
            .expect("view");
        let (cleaned, t_svc) = time(|| svc.clean_sample(&data.db, &deltas).expect("clean"));
        timing.row(vec![
            v.id.to_string(),
            Report::f(t_ivm),
            Report::f(t_svc),
            format!("{}", cleaned.report.fully_pushed()),
        ]);

        let public = svc.view.public_table().expect("public");
        let queries =
            random_queries(&public, &v.dims, &v.measures, n_queries, &mut r).expect("queries");
        let triples = error_triples(&svc, &data.db, &deltas, &queries);
        let stale: Vec<f64> = triples.iter().map(|t| t.stale).collect();
        let aqp: Vec<f64> = triples.iter().map(|t| t.aqp).collect();
        let corr: Vec<f64> = triples.iter().map(|t| t.corr).collect();
        accuracy.row(vec![
            v.id.to_string(),
            Report::f(median_of(&stale)),
            Report::f(median_of(&aqp)),
            Report::f(median_of(&corr)),
        ]);
    }
    timing.finish("complex views: maintenance time (updates 10%)");
    accuracy.finish("complex views: generated-query accuracy (m=10%)");
}
