//! Figure 15 — Max error at fixed throughput: IVM alone vs IVM+SVC as the
//! sampling ratio sweeps. Larger samples clean less often (same compute
//! budget), so an intermediate ratio minimizes the maximum error — the
//! paper finds 3% (V2) and 6% (V5).

use svc_bench::{bench_scale, Report};
use svc_cluster::{timeline_max_error, TimelineConfig};
use svc_core::query::AggQuery;
use svc_relalg::scalar::{col, lit};
use svc_storage::{Database, Deltas, Result};
use svc_workloads::conviva::{generate, views, ConvivaConfig};

fn chunk_maker(cfg: ConvivaConfig) -> impl FnMut(&Database, usize) -> Result<Deltas> {
    move |db, t| {
        // Chunks accumulate between commits, so ids are namespaced by t.
        let start = 10_000_000 + t as i64 * 10_000;
        svc_workloads::conviva::appended_updates_at(db, cfg, 400, 1000 + t as u64, start)
    }
}

fn main() {
    let cfg =
        ConvivaConfig { base_events: (12_000.0 * bench_scale()) as usize, ..Default::default() };
    let db = generate(cfg).expect("conviva");
    let total_chunks = 24;

    // V2 (bytes by resource/date) and V5 (nested error cohorts).
    for (vid, queries) in [
        (
            "V2",
            vec![
                AggQuery::sum(col("totalBytes")).filter(col("resourceId").lt(lit(50i64))),
                AggQuery::sum(col("n")),
            ],
        ),
        (
            "V5",
            vec![
                AggQuery::sum(col("users")),
                AggQuery::sum(col("users")).filter(col("errors").le(lit(3i64))),
            ],
        ),
    ] {
        let view = views().into_iter().find(|v| v.id == vid).unwrap();

        // IVM alone refreshes every 8 chunks at this throughput.
        let ivm_only = timeline_max_error(
            &db,
            view.plan.clone(),
            &mut chunk_maker(cfg),
            &queries,
            &TimelineConfig { total_chunks, ivm_period: 8, svc_period: None, ratio: 0.1, seed: 5 },
        )
        .expect("ivm timeline");

        let mut report = Report::new(
            &format!("fig15_{vid}"),
            &["sampling_ratio", "ivm_svc_max_err", "ivm_only_max_err"],
        );
        for m in [0.01f64, 0.03, 0.06, 0.10, 0.15, 0.20] {
            // Fixed budget: cleaning cost scales with m, so the cleaning
            // period grows proportionally; sharing the cluster also doubles
            // the IVM period (the paper's 40GB → 80GB observation).
            let svc_period = (1.0_f64 + m * 20.0).round() as usize;
            let with_svc = timeline_max_error(
                &db,
                view.plan.clone(),
                &mut chunk_maker(cfg),
                &queries,
                &TimelineConfig {
                    total_chunks,
                    ivm_period: 16,
                    svc_period: Some(svc_period),
                    ratio: m,
                    seed: 5,
                },
            )
            .expect("svc timeline");
            report.row(vec![
                format!("{m:.2}"),
                Report::f(with_svc.max_error),
                Report::f(ivm_only.max_error),
            ]);
        }
        report.finish(format!("{vid}: max error vs sampling ratio at fixed throughput"));
    }
}
