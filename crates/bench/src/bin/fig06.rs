//! Figure 6 — (a) total time (maintenance + query) for IVM vs SVC+CORR vs
//! SVC+AQP; (b) the CORR/AQP accuracy crossover as the update size grows
//! (Section 5.2.2's break-even analysis).

use svc_bench::{
    answer_times, bench_queries, error_triples, join_view_svc, median_of, rng, tpcd, Report,
};
use svc_core::Method;
use svc_workloads::tpcd_views::join_view_queries;

fn main() {
    let data = tpcd(1.0, 2.0, 42);
    let deltas = data.updates(0.10, 7).expect("updates");
    let mut r = rng(6);
    let q = join_view_queries()[0].instance(&mut r); // a Q3-style sum

    // (a) maintenance + query time per method.
    let mut report =
        Report::new("fig06a", &["method", "maintain_seconds", "query_seconds", "total"]);
    for (label, method) in [
        ("IVM", Method::Stale), // full maintenance + exact query
        ("SVC+CORR-10%", Method::Correction),
        ("SVC+AQP-10%", Method::AqpDirect),
    ] {
        let mut svc = join_view_svc(&data, 0.1);
        let (tm, tq) = answer_times(&mut svc, &data.db, &deltas, &q, method);
        report.row(vec![label.to_string(), Report::f(tm), Report::f(tq), Report::f(tm + tq)]);
    }
    report.finish("total time: maintenance + query (1 query, updates 10%)");

    // (b) error vs update size: CORR is better until a break-even point.
    let n_instances = (bench_queries() / 2).max(8);
    let templates = join_view_queries();
    let mut report = Report::new("fig06b", &["update_pct", "svc_corr10_err", "svc_aqp10_err"]);
    for pct in [0.03, 0.08, 0.13, 0.18, 0.23, 0.28, 0.33, 0.38, 0.43] {
        let deltas = data.updates(pct, 13).expect("updates");
        let svc = join_view_svc(&data, 0.1);
        let mut corr_all = Vec::new();
        let mut aqp_all = Vec::new();
        for template in templates.iter().take(4) {
            let queries: Vec<_> = (0..n_instances).map(|_| template.instance(&mut r)).collect();
            for t in error_triples(&svc, &data.db, &deltas, &queries) {
                corr_all.push(t.corr);
                aqp_all.push(t.aqp);
            }
        }
        report.row(vec![
            format!("{:.0}%", pct * 100.0),
            Report::f(median_of(&corr_all)),
            Report::f(median_of(&aqp_all)),
        ]);
    }
    report.finish("SVC+CORR vs SVC+AQP accuracy as updates grow (break-even)");
}
