//! Figure 12 — Cube roll-up MAX group error: even when median staleness is
//! ~10%, some groups are near-80% wrong; SVC caps the worst case.

use svc_bench::{rollup_errors, Report};
use svc_core::query::QueryAgg;

fn main() {
    let rows = rollup_errors(QueryAgg::Sum, 30);
    let mut report = Report::new(
        "fig12",
        &["rollup", "stale_max_err", "svc_aqp10_max_err", "svc_corr10_max_err"],
    );
    for r in rows {
        report.row(vec![r.id, Report::f(r.stale_max), Report::f(r.aqp_max), Report::f(r.corr_max)]);
    }
    report.finish("cube roll-ups: MAX group error, sum(revenue), m=10%, updates=10%");
}
