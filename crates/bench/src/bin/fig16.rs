//! Figure 16 — CPU utilization over time: periodic IVM leaves workers idle
//! at shuffle barriers (skewed stragglers); running SVC concurrently fills
//! those gaps.

use svc_bench::Report;
use svc_cluster::executor::{spin, WorkerPool};

type Stage = Vec<Box<dyn FnOnce() + Send>>;

/// IVM maintenance: a sequence of shuffle stages, each with one straggler
/// partition (skew) and several small partitions.
fn ivm_stages(rounds: usize, with_svc_filler: bool) -> Vec<Stage> {
    let mut stages = Vec::new();
    for _ in 0..rounds {
        let mut tasks: Stage = vec![Box::new(|| {
            spin(40_000); // straggler partition
        })];
        for _ in 0..5 {
            tasks.push(Box::new(|| {
                spin(6_000);
            }));
        }
        if with_svc_filler {
            // SVC sample-cleaning tasks: many small units that slot into
            // idle workers while the straggler runs.
            for _ in 0..12 {
                tasks.push(Box::new(|| {
                    spin(2_500);
                }));
            }
        }
        stages.push(tasks);
    }
    stages
}

fn main() {
    let workers = std::thread::available_parallelism().map(|n| n.get().clamp(2, 4)).unwrap_or(2);
    let pool = WorkerPool::new(workers);
    let buckets = 40;

    let ivm = pool.run_stages(ivm_stages(6, false));
    let both = pool.run_stages(ivm_stages(6, true));

    let u_ivm = ivm.utilization(buckets);
    let u_both = both.utilization(buckets);

    let mut report = Report::new("fig16", &["time_bucket", "ivm_util", "ivm_svc_util"]);
    for b in 0..buckets {
        report.row(vec![b.to_string(), Report::f(u_ivm[b]), Report::f(u_both[b])]);
    }
    report.finish(format!(
        "CPU utilization over time ({workers} workers): overall IVM {:.2} vs IVM+SVC {:.2}",
        ivm.overall_utilization(),
        both.overall_utilization()
    ));
}
