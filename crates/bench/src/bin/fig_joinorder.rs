//! Cost-based join reordering on the TPC-D workload: builder order vs the
//! statistics catalog's order.
//!
//! Each query is written the way a naive view builder would emit it — the
//! two biggest tables joined first, the selective dimension filter joined
//! last — and evaluated twice: once through the standard optimizer
//! (predicate pushdown sinks the filters, but the join tree stays as
//! written) and once through `optimize_with` driven by the `svc-catalog`
//! estimator (DP over the join region). Reported times cover optimize +
//! evaluate, so the DP search pays for itself inside the measurement.
//!
//! Writes `experiments/fig_joinorder.csv` and
//! `experiments/fig_joinorder.json`. On every ≥3-join query the cost-based
//! order must beat the builder order (asserted; the margins are large
//! enough to hold at CI scale too).

use std::fs;

use svc_bench::{bench_scale, experiments_dir, median_of, time, tpcd, Report};
use svc_catalog::Catalog;
use svc_relalg::aggregate::{AggFunc, AggSpec};
use svc_relalg::eval::{evaluate, Bindings};
use svc_relalg::optimizer::{optimize, optimize_with, CardEstimator};
use svc_relalg::plan::{JoinKind, Plan};
use svc_relalg::scalar::{col, lit};
use svc_workloads::tpcd_views::revenue_expr;

struct JoinQuery {
    id: &'static str,
    joins: usize,
    plan: Plan,
}

/// `C_out` on the real data: summed sizes of every join's materialized
/// output — the deterministic quantity the cost model minimizes, used for
/// the small-scale assertion where wall-clock is scheduler noise.
fn join_work(plan: &Plan, b: &Bindings<'_>) -> usize {
    match plan {
        Plan::Join { left, right, .. } => {
            evaluate(plan, b).expect("join work").len() + join_work(left, b) + join_work(right, b)
        }
        Plan::Select { input, .. }
        | Plan::Project { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Hash { input, .. } => join_work(input, b),
        Plan::Scan { .. } => 0,
        Plan::Union { left, right }
        | Plan::Intersect { left, right }
        | Plan::Difference { left, right } => join_work(left, b) + join_work(right, b),
    }
}

/// The query suite: builder order joins the big tables first and leaves
/// the selective dimension for last, exactly the shape the reorderer is
/// meant to repair. Join counts are inner-join operators in the region.
fn queries() -> Vec<JoinQuery> {
    let lineitem_orders = || {
        Plan::scan("lineitem").join(
            Plan::scan("orders"),
            JoinKind::Inner,
            &[("l_orderkey", "o_orderkey")],
        )
    };
    vec![
        // 2-join contrast row: little room to win, must not regress much.
        JoinQuery {
            id: "Q3c",
            joins: 2,
            plan: lineitem_orders()
                .join(Plan::scan("customer"), JoinKind::Inner, &[("o_custkey", "c_custkey")])
                .select(col("c_mktsegment").eq(lit("BUILDING")))
                .aggregate(
                    &["c_custkey"],
                    vec![AggSpec::new("revenue", AggFunc::Sum, revenue_expr())],
                ),
        },
        // Revenue of one nation's customers: the n_name filter keeps ~1 of
        // 25 nations, so nation → customer → orders → lineitem is the
        // right order; the builder starts from lineitem ⋈ orders.
        JoinQuery {
            id: "Q5n",
            joins: 3,
            plan: lineitem_orders()
                .join(Plan::scan("customer"), JoinKind::Inner, &[("o_custkey", "c_custkey")])
                .join(Plan::scan("nation"), JoinKind::Inner, &[("c_nationkey", "n_nationkey")])
                .select(col("n_name").eq(lit("NATION#3")))
                .aggregate(
                    &["n_name"],
                    vec![
                        AggSpec::new("revenue", AggFunc::Sum, revenue_expr()),
                        AggSpec::count_all("n"),
                    ],
                ),
        },
        // One region (of 5), through nation: a 4-join chain.
        JoinQuery {
            id: "Q5r",
            joins: 4,
            plan: lineitem_orders()
                .join(Plan::scan("customer"), JoinKind::Inner, &[("o_custkey", "c_custkey")])
                .join(Plan::scan("nation"), JoinKind::Inner, &[("c_nationkey", "n_nationkey")])
                .join(Plan::scan("region"), JoinKind::Inner, &[("n_regionkey", "r_regionkey")])
                .select(col("r_name").eq(lit("REGION#2")))
                .aggregate(
                    &["n_name"],
                    vec![
                        AggSpec::new("revenue", AggFunc::Sum, revenue_expr()),
                        AggSpec::count_all("n"),
                    ],
                ),
        },
        // Profit of one brand per supplier nation (Q9 analog): part and
        // supplier are both selective, orders is dead weight joined first.
        JoinQuery {
            id: "Q9b",
            joins: 3,
            plan: lineitem_orders()
                .join(Plan::scan("part"), JoinKind::Inner, &[("l_partkey", "p_partkey")])
                .join(Plan::scan("supplier"), JoinKind::Inner, &[("l_suppkey", "s_suppkey")])
                .select(col("p_brand").eq(lit("Brand#7")))
                .aggregate(
                    &["s_nationkey"],
                    vec![AggSpec::new(
                        "profit",
                        AggFunc::Sum,
                        col("l_extendedprice").mul(col("l_discount")),
                    )],
                ),
        },
    ]
}

fn main() {
    let data = tpcd(1.0, 2.0, 42);
    let db = &data.db;
    let bindings = Bindings::from_database(db);
    let (catalog, t_build) = time(|| Catalog::build(db));
    println!(
        "catalog over {} tables / {} rows built in {:.1} ms",
        catalog.len(),
        db.total_rows(),
        t_build * 1e3
    );

    let reps = 3;
    let mut report = Report::new(
        "fig_joinorder",
        &["query", "joins", "t_builder_ms", "t_cost_ms", "speedup", "est_rows", "rows"],
    );
    let mut json_rows = Vec::new();
    let mut regressions = Vec::new();
    for q in queries() {
        let mut t_builder = Vec::with_capacity(reps);
        let mut t_cost = Vec::with_capacity(reps);
        let mut rows = 0usize;
        for _ in 0..reps {
            let (r, t) = time(|| {
                let (p, _) = optimize(&q.plan, db).expect("optimize");
                evaluate(&p, &bindings).expect("evaluate")
            });
            rows = r.len();
            t_builder.push(t);
            let (r2, t) = time(|| {
                let (p, _) = optimize_with(&q.plan, db, &catalog.estimator()).expect("optimize");
                evaluate(&p, &bindings).expect("evaluate")
            });
            // Equal up to float-summation order: the aggregate accumulates
            // rows in whatever order the chosen join tree produces them.
            assert!(
                r2.approx_same_contents(&r, 1e-9),
                "{}: reordered plan changed the result",
                q.id
            );
            t_cost.push(t);
        }
        let (tb, tc) = (median_of(&t_builder), median_of(&t_cost));
        let est_rows = catalog.estimator().estimate_rows(&q.plan, db).expect("estimate");
        // Deterministic intermediate-size comparison (`C_out` on the real
        // data): the assertion metric at small scales, where wall-clock is
        // dominated by scheduler noise on shared CI runners.
        let work_builder = join_work(&optimize(&q.plan, db).expect("optimize").0, &bindings);
        let work_cost = join_work(
            &optimize_with(&q.plan, db, &catalog.estimator()).expect("optimize").0,
            &bindings,
        );
        report.row(vec![
            q.id.to_string(),
            q.joins.to_string(),
            format!("{:.2}", tb * 1e3),
            format!("{:.2}", tc * 1e3),
            format!("{:.2}", tb / tc.max(1e-9)),
            format!("{est_rows:.0}"),
            rows.to_string(),
        ]);
        json_rows.push(format!(
            "{{\"query\":\"{}\",\"joins\":{},\"t_builder_s\":{tb},\"t_cost_s\":{tc},\
             \"work_builder\":{work_builder},\"work_cost\":{work_cost},\
             \"est_rows\":{est_rows},\"rows\":{rows}}}",
            q.id, q.joins
        ));
        if q.joins >= 3 {
            // Intermediate sizes must never grow, at any scale; wall-clock
            // must win wherever the data is big enough for the join work to
            // dominate timer noise (full scale and above).
            if work_cost > work_builder {
                regressions.push(format!("{}: C_out {work_cost} vs {work_builder} rows", q.id));
            }
            if bench_scale() >= 1.0 && tc >= tb {
                regressions.push(format!("{}: {:.2}ms vs {:.2}ms", q.id, tc * 1e3, tb * 1e3));
            }
        }
    }
    report.finish("TPC-D join order: builder vs cost-based (optimize + evaluate, median of 3)");

    let json = format!(
        "{{\"bench\":\"fig_joinorder\",\"workload\":\"tpcd\",\"scale\":{},\
         \"catalog_build_s\":{t_build},\"queries\":[{}]}}\n",
        bench_scale(),
        json_rows.join(",")
    );
    let dir = experiments_dir();
    let _ = fs::create_dir_all(&dir);
    let path = dir.join("fig_joinorder.json");
    match fs::write(&path, &json) {
        Ok(()) => println!("[written {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }

    assert!(
        regressions.is_empty(),
        "cost-based order must beat builder order on every ≥3-join query: {regressions:?}"
    );
}
