//! Morsel-parallel execution and pool-level contention on real plans.
//!
//! Two experiments, both on the shared-queue `WorkerPool`:
//!
//! * `morsel` — sequential `PhysicalPlan::run` vs morsel-parallel
//!   `run_parallel` on pools of {1, 2, 4} workers, for the SVC cleaning
//!   expression (m = 0.1) and the change-table maintenance plan of a
//!   revenue roll-up (20% updates). Each compiled plan is identical across
//!   arms; only the execution mode differs, and every parallel result is
//!   checked row-for-row against the sequential one.
//! * `contention` — Figure 14b on real plans: two `BatchPipeline`s
//!   maintaining different views, first solo (one after the other), then
//!   concurrently on ONE shared pool, whose queue interleaves both
//!   pipelines' plan and morsel tasks. Reports per-pipeline throughput
//!   solo vs contended.
//!
//! Writes `experiments/fig_contention.csv` / `.json`. Assertions scale
//! with the machine: on ≥2 hardware threads the best parallel arm must not
//! lose to sequential (CI smoke guard, 15% margin); at full scale on ≥4
//! hardware threads at least one cleaning/maintenance plan must show ≥2×
//! at 4 workers. Single-core machines run correctness-only (morsel
//! execution cannot beat sequential without parallel hardware).

use std::sync::Arc;

use svc_bench::{bench_median_ms, bench_scale, operator_metrics_json, tpcd, write_json, Report};
use svc_cluster::executor::WorkerPool;
use svc_cluster::minibatch::BatchPipeline;
use svc_ivm::view::{maintenance_bindings, MaterializedView};
use svc_relalg::aggregate::{AggFunc, AggSpec};
use svc_relalg::eval::Bindings;
use svc_relalg::exec::{compile, ExecMode, PhysicalPlan};
use svc_relalg::optimizer::optimize;
use svc_storage::Table;
use svc_workloads::tpcd_views::{join_view, revenue_expr};

fn bench_ms(reps: usize, f: impl FnMut()) -> f64 {
    bench_median_ms(reps, 1, f)
}

/// Row-for-row order-sensitive comparison with float tolerance — morsel
/// execution must not even reorder the output.
fn same_rows_in_order(a: &Table, b: &Table) -> bool {
    a.len() == b.len()
        && a.rows().iter().zip(b.rows()).all(|(ra, rb)| {
            ra.iter().zip(rb).all(|(x, y)| match (x.as_f64(), y.as_f64()) {
                (Some(p), Some(q)) => (p - q).abs() <= 1e-9 * p.abs().max(q.abs()).max(1.0),
                _ => x == y,
            })
        })
}

struct MorselRow {
    plan: &'static str,
    workers: usize,
    rows_out: usize,
    t_seq_ms: f64,
    t_par_ms: f64,
    operators: String,
}

fn measure_morsel(
    label: &'static str,
    compiled: &PhysicalPlan,
    bindings: &Bindings<'_>,
    pools: &[Arc<WorkerPool>],
    morsel_of: impl Fn(usize) -> usize,
    reps: usize,
    rows: &mut Vec<MorselRow>,
) {
    let seq_out = compiled.run(bindings).expect("sequential run");
    let t_seq = bench_ms(reps, || {
        std::hint::black_box(compiled.run(bindings).expect("run"));
    });
    for pool in pools {
        let morsel = morsel_of(pool.workers());
        let par_out = compiled.run_parallel(bindings, pool.as_ref(), morsel).expect("parallel");
        assert!(
            same_rows_in_order(&par_out, &seq_out),
            "{label} on {} workers: parallel result diverged",
            pool.workers()
        );
        let t_par = bench_ms(reps, || {
            std::hint::black_box(
                compiled.run_parallel(bindings, pool.as_ref(), morsel).expect("run_parallel"),
            );
        });
        rows.push(MorselRow {
            plan: label,
            workers: pool.workers(),
            rows_out: par_out.len(),
            t_seq_ms: t_seq,
            t_par_ms: t_par,
            operators: operator_metrics_json(
                compiled,
                bindings,
                ExecMode::morsel(pool.as_ref(), morsel),
            ),
        });
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let data = tpcd(2.0, 2.0, 42);
    let db = &data.db;
    let lineitem_rows = db.table("lineitem").expect("lineitem").len();
    println!("lineitem: {lineitem_rows} rows (scale {}), {cores} hardware threads", bench_scale());
    let pools: Vec<Arc<WorkerPool>> =
        [1usize, 2, 4].iter().map(|&w| Arc::new(WorkerPool::new(w))).collect();
    let reps = 5;
    let mut rows: Vec<MorselRow> = Vec::new();

    // ── morsel: the SVC cleaning expression (m = 0.1) ────────────────────
    {
        let svc = svc_bench::join_view_svc(&data, 0.1);
        let deltas = data.updates(0.10, 7).expect("updates");
        let (plan, report, _kind) = svc.cleaning_plan(db, &deltas).expect("cleaning plan");
        let stale_binding =
            if report.fully_pushed() { svc.stale_sample() } else { svc.view.table() };
        let mb = maintenance_bindings(db, &deltas, stale_binding);
        let compiled = compile(&plan, &mb).expect("compile");
        let morsel = |w: usize| (lineitem_rows / (8 * w)).max(256);
        measure_morsel("cleaning", &compiled, &mb, &pools, morsel, reps, &mut rows);
    }

    // ── morsel: change-table maintenance of a revenue roll-up ────────────
    {
        let view_def = join_view().aggregate(
            &["o_custkey"],
            vec![AggSpec::count_all("n"), AggSpec::new("revenue", AggFunc::Sum, revenue_expr())],
        );
        let view = MaterializedView::create("revenue", view_def, db).expect("view");
        let deltas = data.updates(0.20, 11).expect("updates");
        let (mplan, _kind) = view.build_maintenance_plan(db, &deltas).expect("plan");
        let mb = maintenance_bindings(db, &deltas, view.table());
        let (plan, _) = optimize(&mplan, &mb).expect("optimize");
        let compiled = compile(&plan, &mb).expect("compile");
        let morsel = |w: usize| (lineitem_rows / (16 * w)).max(256);
        measure_morsel("maintenance", &compiled, &mb, &pools, morsel, reps, &mut rows);
    }

    // ── contention: two pipelines, one shared pool (Figure 14b) ──────────
    let shared = Arc::new(WorkerPool::new(4));
    let mut pa = BatchPipeline::on_pool(shared.clone());
    let mut pb = BatchPipeline::on_pool(shared.clone());
    pb.morsel_size = Some((lineitem_rows / 32).max(256));
    pa.partitions = 8;

    let va = {
        let def = join_view().aggregate(
            &["o_custkey"],
            vec![AggSpec::count_all("n"), AggSpec::new("revenue", AggFunc::Sum, revenue_expr())],
        );
        MaterializedView::create("rev_cust", def, db).expect("view a")
    };
    let vb = {
        // Median blocks the change-table strategy, so pipeline B exercises
        // the morsel-parallel fallback maintenance plan.
        let def = join_view().aggregate(
            &["o_custkey"],
            vec![AggSpec::new("medRev", AggFunc::Median, revenue_expr())],
        );
        MaterializedView::create("med_cust", def, db).expect("view b")
    };
    let da = data.updates(0.10, 13).expect("deltas a");
    let db_deltas = data.updates(0.10, 17).expect("deltas b");
    let ea = va.recompute_fresh(db, &da).expect("fresh a");
    let eb = vb.recompute_fresh(db, &db_deltas).expect("fresh b");
    let batch = (da.len() / 6).max(1);

    let run_a = |p: &BatchPipeline| {
        let mut v = va.clone();
        let run = p.maintain(db, &mut v, &da, batch).expect("maintain a");
        assert!(v.table().approx_same_contents(&ea, 1e-9), "pipeline A diverged");
        run.throughput()
    };
    let run_b = |p: &BatchPipeline| {
        let mut v = vb.clone();
        let run = p.maintain(db, &mut v, &db_deltas, batch).expect("maintain b");
        assert!(v.table().approx_same_contents(&eb, 1e-9), "pipeline B diverged");
        run.throughput()
    };

    // Solo: each pipeline alone on the (idle) shared pool.
    let solo_a = run_a(&pa);
    let solo_b = run_b(&pb);
    // Contended: both at once; the shared queue interleaves their tasks.
    let (mut cont_a, mut cont_b) = (0.0, 0.0);
    std::thread::scope(|s| {
        let ha = s.spawn(|| run_a(&pa));
        let hb = s.spawn(|| run_b(&pb));
        cont_a = ha.join().expect("contended A panicked");
        cont_b = hb.join().expect("contended B panicked");
    });

    // ── report ───────────────────────────────────────────────────────────
    let mut report = Report::new(
        "fig_contention",
        &["scenario", "plan", "workers", "rows", "t_seq_ms", "t_par_ms", "speedup"],
    );
    let mut json_rows = Vec::new();
    let mut best_at_max_workers = 0.0f64;
    for r in &rows {
        let speedup = r.t_seq_ms / r.t_par_ms.max(1e-9);
        if r.workers == 4 {
            best_at_max_workers = best_at_max_workers.max(speedup);
        }
        report.row(vec![
            "morsel".into(),
            r.plan.into(),
            r.workers.to_string(),
            r.rows_out.to_string(),
            format!("{:.3}", r.t_seq_ms),
            format!("{:.3}", r.t_par_ms),
            format!("{speedup:.2}"),
        ]);
        json_rows.push(format!(
            "{{\"scenario\":\"morsel\",\"plan\":\"{}\",\"workers\":{},\"rows\":{},\
             \"t_seq_ms\":{},\"t_par_ms\":{},\"speedup\":{speedup},\"operators\":{}}}",
            r.plan, r.workers, r.rows_out, r.t_seq_ms, r.t_par_ms, r.operators
        ));
    }
    for (plan, solo, contended) in [("rev_cust", solo_a, cont_a), ("med_cust", solo_b, cont_b)] {
        let ratio = contended / solo.max(1e-9);
        report.row(vec![
            "contention".into(),
            plan.into(),
            "4".into(),
            "-".into(),
            format!("{solo:.1}"),
            format!("{contended:.1}"),
            format!("{ratio:.2}"),
        ]);
        json_rows.push(format!(
            "{{\"scenario\":\"contention\",\"plan\":\"{plan}\",\"workers\":4,\
             \"solo_tps\":{solo},\"contended_tps\":{contended},\"ratio\":{ratio}}}"
        ));
    }
    report.finish(
        "morsel-parallel vs sequential (t_seq/t_par ms) + two-pipeline contention \
         (solo/contended records-per-s)",
    );

    // The shared pool's lifetime counters after both solo and contended
    // phases: how many plan/morsel tasks the two pipelines actually pushed
    // through it, and how busy its workers were.
    let pm = shared.metrics();
    let json = format!(
        "{{\"bench\":\"fig_contention\",\"workload\":\"tpcd\",\"scale\":{},\
         \"lineitem_rows\":{lineitem_rows},\"hardware_threads\":{cores},\
         \"pool\":{{\"sessions\":{},\"tasks\":{},\"panics\":{},\"busy_ns\":{}}},\
         \"rows\":[{}]}}\n",
        bench_scale(),
        pm.sessions,
        pm.tasks,
        pm.panics,
        pm.total_busy_ns(),
        json_rows.join(",")
    );
    write_json("fig_contention", &json);

    assert!(solo_a > 0.0 && solo_b > 0.0 && cont_a > 0.0 && cont_b > 0.0);
    // CI smoke guard: when the hardware actually carries the 4-worker pool
    // (≥4 threads), the best morsel arm must not lose to sequential
    // execution (15% margin for shared-runner noise). With 2–3 threads the
    // pool is oversubscribed and only a loose sanity bound applies; on a
    // single hardware thread morsel execution is pure overhead, so only
    // correctness is asserted above.
    if cores >= 4 {
        assert!(
            best_at_max_workers >= 0.85,
            "morsel-parallel must not be slower at 4 workers on {cores}-thread hardware: \
             best speedup {best_at_max_workers:.2}x"
        );
    } else if cores >= 2 {
        assert!(
            best_at_max_workers >= 0.6,
            "morsel-parallel collapsed on oversubscribed {cores}-thread hardware: \
             best speedup {best_at_max_workers:.2}x"
        );
    }
    if bench_scale() >= 1.0 && cores >= 4 {
        assert!(
            best_at_max_workers >= 2.0,
            "at least one cleaning/maintenance plan must show ≥2x at 4 workers at full \
             scale, got {best_at_max_workers:.2}x"
        );
        println!("best 4-worker speedup at full scale: {best_at_max_workers:.2}x");
    }
}
