//! Figure 5 — Join view query accuracy: median relative error of the 12
//! TPCD query analogs under Stale / SVC+AQP-10% / SVC+CORR-10%.

use svc_bench::{bench_queries, error_triples, join_view_svc, median_of, rng, tpcd, Report};
use svc_workloads::tpcd_views::join_view_queries;

fn main() {
    let data = tpcd(1.0, 2.0, 42);
    let deltas = data.updates(0.10, 7).expect("updates");
    let svc = join_view_svc(&data, 0.1);
    let n_instances = bench_queries();
    let mut r = rng(5);

    let mut report =
        Report::new("fig05", &["query", "stale_err", "svc_aqp10_err", "svc_corr10_err"]);
    for template in join_view_queries() {
        let queries: Vec<_> = (0..n_instances).map(|_| template.instance(&mut r)).collect();
        let triples = error_triples(&svc, &data.db, &deltas, &queries);
        let stale: Vec<f64> = triples.iter().map(|t| t.stale).collect();
        let aqp: Vec<f64> = triples.iter().map(|t| t.aqp).collect();
        let corr: Vec<f64> = triples.iter().map(|t| t.corr).collect();
        report.row(vec![
            template.id.to_string(),
            Report::f(median_of(&stale)),
            Report::f(median_of(&aqp)),
            Report::f(median_of(&corr)),
        ]);
    }
    report.finish(format!(
        "median relative error, {} instances/query, m=10%, updates=10%",
        n_instances
    ));
}
