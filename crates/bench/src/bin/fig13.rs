//! Figure 13 — Cube roll-ups with the `median` aggregate: bootstrap-bounded
//! estimates; less sensitive to variance than sums.

use svc_bench::{rollup_errors, Report};
use svc_core::query::QueryAgg;

fn main() {
    let rows = rollup_errors(QueryAgg::Median, 12);
    let mut report =
        Report::new("fig13", &["rollup", "stale_err", "svc_aqp10_err", "svc_corr10_err"]);
    for r in rows {
        report.row(vec![
            r.id,
            Report::f(r.stale_median),
            Report::f(r.aqp_median),
            Report::f(r.corr_median),
        ]);
    }
    report.finish("cube roll-ups: median group error, median(revenue), m=10%");
}
