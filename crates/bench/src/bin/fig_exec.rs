//! Materializing evaluator vs the compile-once streaming executor
//! (`svc_relalg::exec`) on the TPC-D cleaning/maintenance workloads.
//!
//! Three scenarios:
//!
//! * `scan_sigma` — a selective filter over the large `lineitem` base
//!   relation, swept across selectivities. The legacy evaluator clones the
//!   entire table (rows + key index) before filtering; the fused pipeline
//!   streams borrowed rows and clones only survivors, so the gap widens as
//!   the filter gets more selective.
//! * `scan_sigma_eta` — the same filter with an η sample on top: the full
//!   fused `Scan→σ→η` chain.
//! * `cleaning` — the SVC cleaning expression of the lineitem⋈orders join
//!   view (Section 4 of the paper), evaluated under maintenance bindings.
//! * `maintenance` — the change-table maintenance plan of a revenue
//!   roll-up view. The `t_rerun_ms` column re-runs the *already compiled*
//!   plan, isolating what `BatchPipeline`'s per-epoch plan cache saves on
//!   every batch after the first.
//!
//! Writes `experiments/fig_exec.csv` and `experiments/fig_exec.json`.
//! Asserted invariants: the streaming path is never slower than the legacy
//! evaluator on the fused-scan sweep (any scale — this is the CI smoke
//! guard against executor regressions), and at full scale the selective
//! point must show ≥2× end-to-end.

use svc_bench::{
    bench_median_ms as bench_ms, bench_min_ms, bench_scale, operator_metrics_json, tpcd,
    write_json, Report,
};
use svc_ivm::view::{maintenance_bindings, MaterializedView};
use svc_relalg::aggregate::{AggFunc, AggSpec};
use svc_relalg::eval::{evaluate_materializing, Bindings};
use svc_relalg::exec::{compile, ExecMode};
use svc_relalg::optimizer::optimize;
use svc_relalg::plan::Plan;
use svc_relalg::scalar::{col, lit};
use svc_storage::HashSpec;
use svc_workloads::tpcd_views::{join_view, revenue_expr};

struct Row {
    scenario: &'static str,
    param: String,
    rows_out: usize,
    t_legacy_ms: f64,
    t_stream_ms: f64,
    t_rerun_ms: f64,
    operators: String,
}

fn main() {
    let data = tpcd(2.0, 2.0, 42);
    let db = &data.db;
    let bindings = Bindings::from_database(db);
    let lineitem = db.table("lineitem").expect("lineitem");
    println!("lineitem: {} rows (scale {})", lineitem.len(), bench_scale());

    let reps = 5;
    let iters = (200_000 / lineitem.len().max(1)).clamp(1, 50);
    let mut rows: Vec<Row> = Vec::new();

    // Selectivity thresholds from the empirical l_orderkey distribution
    // (uniform over orders — the zipf-skewed measure columns collapse to a
    // single value and cannot express a sweep).
    let key_idx = lineitem.schema().resolve("l_orderkey").expect("l_orderkey");
    let mut keys: Vec<i64> = lineitem.rows().iter().filter_map(|r| r[key_idx].as_i64()).collect();
    keys.sort_unstable();
    let threshold = |sel: f64| keys[((keys.len() - 1) as f64 * sel) as usize];

    for sel in [0.01, 0.05, 0.2, 0.5] {
        let plan = Plan::scan("lineitem").select(col("l_orderkey").lt(lit(threshold(sel))));
        let compiled = compile(&plan, &bindings).expect("compile");
        let out = compiled.run(&bindings).expect("run");
        let t_legacy = bench_ms(reps, iters, || {
            std::hint::black_box(evaluate_materializing(&plan, &bindings).expect("legacy"));
        });
        let t_stream = bench_ms(reps, iters, || {
            std::hint::black_box(compile(&plan, &bindings).expect("c").run(&bindings).expect("r"));
        });
        let t_rerun = bench_ms(reps, iters, || {
            std::hint::black_box(compiled.run(&bindings).expect("r"));
        });
        assert!(
            out.same_contents(&evaluate_materializing(&plan, &bindings).expect("legacy")),
            "scan_sigma sel {sel}: executor diverged"
        );
        rows.push(Row {
            scenario: "scan_sigma",
            param: format!("{sel}"),
            rows_out: out.len(),
            t_legacy_ms: t_legacy,
            t_stream_ms: t_stream,
            t_rerun_ms: t_rerun,
            operators: operator_metrics_json(&compiled, &bindings, ExecMode::sequential()),
        });
    }

    // The full fused chain: σ then η on the lineitem key.
    {
        let plan = Plan::scan("lineitem").select(col("l_orderkey").lt(lit(threshold(0.2)))).hash(
            &["l_orderkey", "l_linenumber"],
            0.1,
            HashSpec::with_seed(7),
        );
        let compiled = compile(&plan, &bindings).expect("compile");
        let out = compiled.run(&bindings).expect("run");
        let t_legacy = bench_ms(reps, iters, || {
            std::hint::black_box(evaluate_materializing(&plan, &bindings).expect("legacy"));
        });
        let t_stream = bench_ms(reps, iters, || {
            std::hint::black_box(compile(&plan, &bindings).expect("c").run(&bindings).expect("r"));
        });
        let t_rerun = bench_ms(reps, iters, || {
            std::hint::black_box(compiled.run(&bindings).expect("r"));
        });
        rows.push(Row {
            scenario: "scan_sigma_eta",
            param: "0.2×η0.1".into(),
            rows_out: out.len(),
            t_legacy_ms: t_legacy,
            t_stream_ms: t_stream,
            t_rerun_ms: t_rerun,
            operators: operator_metrics_json(&compiled, &bindings, ExecMode::sequential()),
        });
    }

    // Cleaning: the η-wrapped maintenance plan of the join view, evaluated
    // under maintenance bindings (stale sample + base tables + deltas).
    {
        let svc = svc_bench::join_view_svc(&data, 0.1);
        let deltas = data.updates(0.10, 7).expect("updates");
        let (plan, report, _kind) = svc.cleaning_plan(db, &deltas).expect("cleaning plan");
        let stale_binding =
            if report.fully_pushed() { svc.stale_sample() } else { svc.view.table() };
        let mb = maintenance_bindings(db, &deltas, stale_binding);
        let compiled = compile(&plan, &mb).expect("compile");
        let out = compiled.run(&mb).expect("run");
        let t_legacy = bench_ms(reps, 1, || {
            std::hint::black_box(evaluate_materializing(&plan, &mb).expect("legacy"));
        });
        let t_stream = bench_ms(reps, 1, || {
            std::hint::black_box(compile(&plan, &mb).expect("c").run(&mb).expect("r"));
        });
        let t_rerun = bench_ms(reps, 1, || {
            std::hint::black_box(compiled.run(&mb).expect("r"));
        });
        assert!(
            out.same_contents(&evaluate_materializing(&plan, &mb).expect("legacy")),
            "cleaning: executor diverged"
        );
        rows.push(Row {
            scenario: "cleaning",
            param: "m=0.1".into(),
            rows_out: out.len(),
            t_legacy_ms: t_legacy,
            t_stream_ms: t_stream,
            t_rerun_ms: t_rerun,
            operators: operator_metrics_json(&compiled, &mb, ExecMode::sequential()),
        });
    }

    // Maintenance: the change-table plan of a revenue roll-up.
    {
        let view_def = join_view().aggregate(
            &["o_custkey"],
            vec![AggSpec::count_all("n"), AggSpec::new("revenue", AggFunc::Sum, revenue_expr())],
        );
        let view = MaterializedView::create("revenue", view_def, db).expect("view");
        let deltas = data.updates(0.10, 11).expect("updates");
        let (mplan, _kind) = view.build_maintenance_plan(db, &deltas).expect("plan");
        let mb = maintenance_bindings(db, &deltas, view.table());
        let (plan, _) = optimize(&mplan, &mb).expect("optimize");
        let compiled = compile(&plan, &mb).expect("compile");
        let out = compiled.run(&mb).expect("run");
        let t_legacy = bench_ms(reps, 1, || {
            std::hint::black_box(evaluate_materializing(&plan, &mb).expect("legacy"));
        });
        let t_stream = bench_ms(reps, 1, || {
            std::hint::black_box(compile(&plan, &mb).expect("c").run(&mb).expect("r"));
        });
        let t_rerun = bench_ms(reps, 1, || {
            std::hint::black_box(compiled.run(&mb).expect("r"));
        });
        assert!(
            out.approx_same_contents(&evaluate_materializing(&plan, &mb).expect("legacy"), 1e-9),
            "maintenance: executor diverged"
        );
        rows.push(Row {
            scenario: "maintenance",
            param: "upd=0.1".into(),
            rows_out: out.len(),
            t_legacy_ms: t_legacy,
            t_stream_ms: t_stream,
            t_rerun_ms: t_rerun,
            operators: operator_metrics_json(&compiled, &mb, ExecMode::sequential()),
        });
    }

    // ── telemetry overhead guard ─────────────────────────────────────────
    // Rerunning a compiled plan with a metrics sink installed must stay
    // within a small factor of the uninstrumented rerun: the executor only
    // adds one timestamp pair plus one atomic fold per node (or per morsel),
    // never per row. Min-of-reps keeps shared-runner noise out of the
    // ratio; the margin is generous because at smoke scales the absolute
    // runtimes sit near timer resolution.
    let overhead_factor = {
        let plan = Plan::scan("lineitem").select(col("l_orderkey").lt(lit(threshold(0.05))));
        let compiled = compile(&plan, &bindings).expect("compile");
        let sink = compiled.metrics_sink();
        let t_plain = bench_min_ms(7, iters, || {
            std::hint::black_box(compiled.run(&bindings).expect("plain"));
        });
        let t_metered = bench_min_ms(7, iters, || {
            std::hint::black_box(
                compiled
                    .run_with_metrics(&bindings, ExecMode::sequential(), &sink)
                    .expect("metered"),
            );
        });
        t_metered / t_plain.max(1e-9)
    };
    println!("telemetry overhead: instrumented/uninstrumented = {overhead_factor:.3}x");
    assert!(
        overhead_factor <= 1.5,
        "instrumented rerun must stay within 1.5x of uninstrumented, got {overhead_factor:.3}x"
    );

    let mut report = Report::new(
        "fig_exec",
        &["scenario", "param", "rows", "t_legacy_ms", "t_stream_ms", "t_rerun_ms", "speedup"],
    );
    let mut json_rows = Vec::new();
    let mut regressions = Vec::new();
    for r in &rows {
        let speedup = r.t_legacy_ms / r.t_stream_ms.max(1e-9);
        report.row(vec![
            r.scenario.to_string(),
            r.param.clone(),
            r.rows_out.to_string(),
            format!("{:.3}", r.t_legacy_ms),
            format!("{:.3}", r.t_stream_ms),
            format!("{:.3}", r.t_rerun_ms),
            format!("{speedup:.2}"),
        ]);
        json_rows.push(format!(
            "{{\"scenario\":\"{}\",\"param\":\"{}\",\"rows\":{},\"t_legacy_ms\":{},\
             \"t_stream_ms\":{},\"t_rerun_ms\":{},\"speedup\":{speedup},\"operators\":{}}}",
            r.scenario,
            r.param,
            r.rows_out,
            r.t_legacy_ms,
            r.t_stream_ms,
            r.t_rerun_ms,
            r.operators
        ));
        // CI smoke guard: the streaming executor must never lose to the
        // legacy evaluator on the fused-scan scenarios, at any scale. The
        // 10% margin absorbs scheduler noise on shared CI runners (the
        // real win is 1.7–10×, so a genuine regression still trips it).
        if r.scenario.starts_with("scan_sigma") && r.t_stream_ms > r.t_legacy_ms * 1.10 {
            regressions.push(format!(
                "{} {}: stream {:.3}ms vs legacy {:.3}ms",
                r.scenario, r.param, r.t_stream_ms, r.t_legacy_ms
            ));
        }
    }
    report.finish("legacy materializing evaluate vs compiled streaming executor (median of 5)");

    let json = format!(
        "{{\"bench\":\"fig_exec\",\"workload\":\"tpcd\",\"scale\":{},\"lineitem_rows\":{},\
         \"telemetry_overhead\":{overhead_factor},\"rows\":[{}]}}\n",
        bench_scale(),
        lineitem.len(),
        json_rows.join(",")
    );
    write_json("fig_exec", &json);

    assert!(regressions.is_empty(), "streaming executor regressions: {regressions:?}");
    if bench_scale() >= 1.0 {
        let selective = &rows[0];
        let speedup = selective.t_legacy_ms / selective.t_stream_ms.max(1e-9);
        assert!(
            speedup >= 2.0,
            "selective fused scan must be ≥2x at full scale, got {speedup:.2}x"
        );
        println!("selective fused-scan speedup at full scale: {speedup:.2}x");
    }
}
