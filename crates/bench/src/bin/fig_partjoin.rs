//! Partitioned parallel hash joins on real plans.
//!
//! Two plans over the TPC-D workload, both forced onto the build-side
//! hash-join path (a filtered right side defeats the pk-probe shortcut)
//! or the partitioned set-op dedup:
//!
//! * `build-join` — lineitem ⋈ σ(orders) on the order key, rolled up by
//!   customer: the orders build side is hash-partitioned, per-partition
//!   chain maps are built concurrently on the pool, and probes stay
//!   morsel-parallel and partition-local.
//! * `union-dedup` — the union of two overlapping lineitem selections:
//!   the dedup set is hash-partitioned by whole-row hash with
//!   partition-local survivor sets.
//!
//! Each plan runs the full matrix of pools {1, 2, 4 workers} × partition
//! counts {1, 8, auto}. Every arm is checked row-for-row (order included)
//! against the sequential run — the determinism contract says partition
//! count and worker count must never show in the result — and the
//! per-operator telemetry (including the new `partitions` /
//! `part_max_rows` fields) is embedded per scenario row.
//!
//! Writes `experiments/fig_partjoin.csv` / `.json`. Assertions scale with
//! the machine exactly like `fig_contention`: on ≥4 hardware threads the
//! best partitioned 4-worker arm must not lose to sequential (15% margin);
//! with 2–3 threads only a loose bound applies; single-core machines run
//! correctness-only. At full scale on ≥4 threads the partitioned build
//! must show a real speedup.

use std::sync::Arc;

use svc_bench::{bench_median_ms, bench_scale, operator_metrics_json, tpcd, write_json, Report};
use svc_cluster::executor::WorkerPool;
use svc_ivm::view::MaterializedView;
use svc_relalg::aggregate::{AggFunc, AggSpec};
use svc_relalg::eval::Bindings;
use svc_relalg::exec::{compile, ExecMode, PhysicalPlan};
use svc_relalg::plan::{JoinKind, Plan};
use svc_relalg::scalar::{col, lit};
use svc_storage::Table;
use svc_workloads::tpcd_views::revenue_expr;

fn bench_ms(reps: usize, f: impl FnMut()) -> f64 {
    bench_median_ms(reps, 1, f)
}

/// Row-for-row order-sensitive comparison with float tolerance —
/// partitioned execution must not even reorder the output.
fn same_rows_in_order(a: &Table, b: &Table) -> bool {
    a.len() == b.len()
        && a.rows().iter().zip(b.rows()).all(|(ra, rb)| {
            ra.iter().zip(rb).all(|(x, y)| match (x.as_f64(), y.as_f64()) {
                (Some(p), Some(q)) => (p - q).abs() <= 1e-9 * p.abs().max(q.abs()).max(1.0),
                _ => x == y,
            })
        })
}

struct Arm {
    plan: &'static str,
    workers: usize,
    partitions: &'static str,
    rows_out: usize,
    t_seq_ms: f64,
    t_par_ms: f64,
    operators: String,
}

/// Partition-count axis: single map (the pre-partition behavior), a fixed
/// fan-out wider than any pool here, and the auto-tuned count.
const PARTS: [(usize, &str); 3] = [(1, "1"), (8, "8"), (0, "auto")];

fn measure(
    label: &'static str,
    compiled: &PhysicalPlan,
    bindings: &Bindings<'_>,
    pools: &[Arc<WorkerPool>],
    morsel_of: impl Fn(usize) -> usize,
    reps: usize,
    arms: &mut Vec<Arm>,
) {
    let seq_out = compiled.run(bindings).expect("sequential run");
    let t_seq = bench_ms(reps, || {
        std::hint::black_box(compiled.run(bindings).expect("run"));
    });
    for pool in pools {
        let morsel = morsel_of(pool.workers());
        for &(parts, parts_label) in &PARTS {
            let mode = ExecMode::morsel(pool.as_ref(), morsel).partitions(parts);
            let par_out = compiled.run_with(bindings, mode).expect("partitioned run");
            assert!(
                same_rows_in_order(&par_out, &seq_out),
                "{label} on {} workers, {parts_label} partitions: result diverged",
                pool.workers()
            );
            let t_par = bench_ms(reps, || {
                std::hint::black_box(compiled.run_with(bindings, mode).expect("run_with"));
            });
            arms.push(Arm {
                plan: label,
                workers: pool.workers(),
                partitions: parts_label,
                rows_out: par_out.len(),
                t_seq_ms: t_seq,
                t_par_ms: t_par,
                operators: operator_metrics_json(compiled, bindings, mode),
            });
        }
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let data = tpcd(2.0, 2.0, 42);
    let db = &data.db;
    let lineitem_rows = db.table("lineitem").expect("lineitem").len();
    let orders_rows = db.table("orders").expect("orders").len();
    println!(
        "lineitem: {lineitem_rows} rows, orders: {orders_rows} rows (scale {}), \
         {cores} hardware threads",
        bench_scale()
    );
    let pools: Vec<Arc<WorkerPool>> =
        [1usize, 2, 4].iter().map(|&w| Arc::new(WorkerPool::new(w))).collect();
    let reps = 5;
    let mut arms: Vec<Arm> = Vec::new();

    // ── build-join: filtered orders build side, revenue per customer ─────
    {
        // The trivially-true filter keeps every orders row but makes the
        // right side a non-leaf, so the compiler cannot take the pk-probe
        // shortcut: the full orders table goes through the partitioned
        // hash-map build.
        let plan = Plan::scan("lineitem")
            .join(
                Plan::scan("orders").select(col("o_custkey").ge(lit(0i64))),
                JoinKind::Inner,
                &[("l_orderkey", "o_orderkey")],
            )
            .aggregate(
                &["o_custkey"],
                vec![
                    AggSpec::count_all("n"),
                    AggSpec::new("revenue", AggFunc::Sum, revenue_expr()),
                ],
            );
        let b = Bindings::from_database(db);
        let compiled = compile(&plan, &b).expect("compile build-join");
        let morsel = |w: usize| (lineitem_rows / (8 * w)).max(256);
        measure("build-join", &compiled, &b, &pools, morsel, reps, &mut arms);
    }

    // ── union-dedup: partitioned set-op survivor sets ────────────────────
    {
        let plan = Plan::scan("lineitem")
            .select(col("l_discount").ge(lit(0.03)))
            .union(Plan::scan("lineitem").select(col("l_discount").le(lit(0.07))));
        let b = Bindings::from_database(db);
        let compiled = compile(&plan, &b).expect("compile union-dedup");
        let morsel = |w: usize| (lineitem_rows / (8 * w)).max(256);
        measure("union-dedup", &compiled, &b, &pools, morsel, reps, &mut arms);
    }

    // Spot-check the auto tuner end to end on the maintenance stack: a
    // view over the build-side join maintains identically with and without
    // the pipeline's join-partition knob.
    {
        let def = Plan::scan("lineitem")
            .join(
                Plan::scan("orders").select(col("o_custkey").ge(lit(0i64))),
                JoinKind::Inner,
                &[("l_orderkey", "o_orderkey")],
            )
            .aggregate(
                &["o_custkey"],
                vec![
                    AggSpec::count_all("n"),
                    AggSpec::new("revenue", AggFunc::Sum, revenue_expr()),
                ],
            );
        let view = MaterializedView::create("rev_cust", def, db).expect("view");
        let deltas = data.updates(0.10, 13).expect("deltas");
        let expected = view.recompute_fresh(db, &deltas).expect("fresh");
        for parts in [0usize, 8] {
            let mut pipeline = svc_cluster::minibatch::BatchPipeline::on_pool(pools[2].clone());
            pipeline.morsel_size = Some((lineitem_rows / 32).max(256));
            pipeline.join_partitions = parts;
            let mut v = view.clone();
            let batch = (deltas.len() / 6).max(1);
            pipeline.maintain(db, &mut v, &deltas, batch).expect("maintain");
            assert!(
                v.table().approx_same_contents(&expected, 1e-9),
                "maintenance with join_partitions={parts} diverged"
            );
        }
    }

    // ── report ───────────────────────────────────────────────────────────
    let mut report = Report::new(
        "fig_partjoin",
        &["plan", "workers", "partitions", "rows", "t_seq_ms", "t_par_ms", "speedup"],
    );
    let mut json_rows = Vec::new();
    let mut best_partitioned = 0.0f64;
    let mut best_single_map = 0.0f64;
    for a in &arms {
        let speedup = a.t_seq_ms / a.t_par_ms.max(1e-9);
        if a.workers == 4 {
            if a.partitions == "1" {
                best_single_map = best_single_map.max(speedup);
            } else {
                best_partitioned = best_partitioned.max(speedup);
            }
        }
        report.row(vec![
            a.plan.into(),
            a.workers.to_string(),
            a.partitions.into(),
            a.rows_out.to_string(),
            format!("{:.3}", a.t_seq_ms),
            format!("{:.3}", a.t_par_ms),
            format!("{speedup:.2}"),
        ]);
        json_rows.push(format!(
            "{{\"plan\":\"{}\",\"workers\":{},\"partitions\":\"{}\",\"rows\":{},\
             \"t_seq_ms\":{},\"t_par_ms\":{},\"speedup\":{speedup},\"operators\":{}}}",
            a.plan, a.workers, a.partitions, a.rows_out, a.t_seq_ms, a.t_par_ms, a.operators
        ));
    }
    report.finish(
        "partitioned parallel hash join / set-op dedup vs sequential (t_seq/t_par ms) \
         across pools x partition counts",
    );
    let json = format!(
        "{{\"bench\":\"fig_partjoin\",\"workload\":\"tpcd\",\"scale\":{},\
         \"lineitem_rows\":{lineitem_rows},\"orders_rows\":{orders_rows},\
         \"hardware_threads\":{cores},\"rows\":[{}]}}\n",
        bench_scale(),
        json_rows.join(",")
    );
    write_json("fig_partjoin", &json);

    // The partitioned build's telemetry must actually report its fan-out:
    // every multi-partition build-join arm carries partitions > 1.
    assert!(
        arms.iter()
            .filter(|a| a.plan == "build-join" && a.partitions == "8")
            .all(|a| a.operators.contains("\"partitions\":8")),
        "8-partition arms must report partitions=8 in operator telemetry"
    );

    // Hardware-scaled guards, mirroring fig_contention: partitioned
    // execution must not lose to sequential where the hardware can carry
    // the pool; on narrow machines only sanity bounds apply.
    if cores >= 4 {
        assert!(
            best_partitioned >= 0.85,
            "partitioned join must not be slower at 4 workers on {cores}-thread hardware: \
             best speedup {best_partitioned:.2}x (single-map best {best_single_map:.2}x)"
        );
    } else if cores >= 2 {
        assert!(
            best_partitioned >= 0.6,
            "partitioned join collapsed on oversubscribed {cores}-thread hardware: \
             best speedup {best_partitioned:.2}x"
        );
    }
    if bench_scale() >= 1.0 && cores >= 4 {
        assert!(
            best_partitioned >= 1.5,
            "the partitioned build must show a real speedup at 4 workers at full scale, \
             got {best_partitioned:.2}x"
        );
        println!(
            "best 4-worker speedup at full scale: partitioned {best_partitioned:.2}x, \
             single-map {best_single_map:.2}x"
        );
    }
}
