//! Figure 11 — Cube roll-up accuracy: median relative error per roll-up
//! query Q1..Q13 under Stale / SVC+AQP-10 / SVC+Corr-10.

use svc_bench::{rollup_errors, Report};
use svc_core::query::QueryAgg;

fn main() {
    let rows = rollup_errors(QueryAgg::Sum, 30);
    let mut report =
        Report::new("fig11", &["rollup", "stale_err", "svc_aqp10_err", "svc_corr10_err"]);
    for r in rows {
        report.row(vec![
            r.id,
            Report::f(r.stale_median),
            Report::f(r.aqp_median),
            Report::f(r.corr_median),
        ]);
    }
    report.finish("cube roll-ups: median group error, sum(revenue), m=10%, updates=10%");
}
