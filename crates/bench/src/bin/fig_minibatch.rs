//! Mini-batch maintenance on *real* plans — the plan-driven counterpart of
//! Figure 14 (`fig14` keeps the calibrated synthetic model):
//!
//! 1. **Throughput vs batch size**: a log/video visit view maintained by
//!    `BatchPipeline` over a stream of log deltas, with the optimizer on
//!    and off. Larger batches amortize the per-batch driver work (plan
//!    compilation, change-table merge folding), so throughput rises with
//!    batch size — the Figure 14a shape, now measured instead of modeled.
//! 2. **optimize() cost vs plan depth**: the optimizer threads `Derived`
//!    types through its rule recursions (one `derive_tree` pass per sweep),
//!    so its cost grows ~linearly with plan depth. The pre-memoization cost
//!    model — re-deriving every node's subtree at every visit, exactly what
//!    each rule sweep used to do — is measured alongside as the quadratic
//!    "before" baseline.
//!
//! Writes `experiments/fig_minibatch.csv` (throughput table) and
//! `experiments/fig_minibatch.json` (both sections, for the BENCH
//! trajectory).

use std::sync::Arc;

use svc_bench::{bench_scale, median_of, time, write_json, Report};
use svc_cluster::BatchPipeline;
use svc_ivm::MaterializedView;
use svc_relalg::aggregate::{AggFunc, AggSpec};
use svc_relalg::derive::derive;
use svc_relalg::optimizer::optimize;
use svc_relalg::plan::{JoinKind, Plan};
use svc_relalg::scalar::{col, lit};
use svc_storage::{DataType, Database, Deltas, Schema, Table, Value};
use svc_telemetry::TraceRecorder;

fn build_db(base_events: usize) -> Database {
    let mut db = Database::new();
    let mut video = Table::new(
        Schema::from_pairs(&[("videoId", DataType::Int), ("duration", DataType::Float)]).unwrap(),
        &["videoId"],
    )
    .unwrap();
    for v in 0..200i64 {
        video.insert(vec![Value::Int(v), Value::Float(0.5 + (v % 11) as f64 * 0.3)]).unwrap();
    }
    let mut log = Table::new(
        Schema::from_pairs(&[("sessionId", DataType::Int), ("videoId", DataType::Int)]).unwrap(),
        &["sessionId"],
    )
    .unwrap();
    for s in 0..base_events as i64 {
        log.insert(vec![Value::Int(s), Value::Int((s * 13 + 7) % 200)]).unwrap();
    }
    db.create_table("video", video);
    db.create_table("log", log);
    db
}

fn visit_view() -> Plan {
    Plan::scan("log")
        .join(Plan::scan("video"), JoinKind::Inner, &[("videoId", "videoId")])
        .aggregate(
            &["videoId"],
            vec![
                AggSpec::count_all("visits"),
                AggSpec::new("avgDur", AggFunc::Avg, col("duration")),
            ],
        )
}

fn log_stream(db: &Database, base: i64, n: usize) -> Deltas {
    let mut deltas = Deltas::new();
    for i in 0..n as i64 {
        deltas
            .insert(db, "log", vec![Value::Int(base + i), Value::Int((i * 31 + 3) % 200)])
            .unwrap();
    }
    deltas
}

/// A depth-`d` unary chain (alternating σ / Π) over the join — the deep-plan
/// shape whose optimization cost the memoization section measures.
fn deep_plan(depth: usize) -> Plan {
    let mut plan =
        Plan::scan("log").join(Plan::scan("video"), JoinKind::Inner, &[("videoId", "videoId")]);
    for i in 0..depth {
        plan = if i % 2 == 0 {
            plan.select(col("sessionId").ge(lit(i as i64)))
        } else {
            plan.project(vec![
                ("sessionId", col("sessionId")),
                ("videoId", col("videoId")),
                ("duration", col("duration")),
            ])
        };
    }
    plan
}

/// The pre-memoization cost model of one rule sweep: call `derive` on every
/// node of the plan (each call re-derives the whole subtree) and return the
/// wall time. This is exactly the O(n²) work profile the rules had before
/// `Derived` was threaded through their recursions.
fn rederive_every_node(plan: &Plan, db: &Database) -> f64 {
    fn walk(plan: &Plan, db: &Database) {
        derive(plan, db).expect("derive");
        match plan {
            Plan::Scan { .. } => {}
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Hash { input, .. } => walk(input, db),
            Plan::Join { left, right, .. }
            | Plan::Union { left, right }
            | Plan::Intersect { left, right }
            | Plan::Difference { left, right } => {
                walk(left, db);
                walk(right, db);
            }
        }
    }
    let (_, t) = time(|| walk(plan, db));
    t
}

fn main() {
    let scale = bench_scale();
    let base_events = ((20_000.0 * scale) as usize).max(2_000);
    let stream_len = ((10_000.0 * scale) as usize).max(640);
    let db = build_db(base_events);
    let view = MaterializedView::create("visitView", visit_view(), &db).expect("view");
    let deltas = log_stream(&db, base_events as i64 + 1_000_000, stream_len);
    let workers = std::thread::available_parallelism().map(|n| n.get().clamp(2, 4)).unwrap_or(2);

    // Correctness anchor: the pipeline result must equal full recomputation.
    let expected = view.recompute_fresh(&db, &deltas).expect("recompute oracle");

    let batch_sizes: Vec<usize> =
        [32usize, 16, 8, 4, 2, 1].iter().map(|d| (stream_len / d).max(1)).collect();

    let mut report = Report::new(
        "fig_minibatch",
        &["batch_size", "rps_optimized", "rps_unoptimized", "plans_opt", "batches"],
    );
    let mut json_rows = Vec::new();
    let mut curve = Vec::new();
    for &b in &batch_sizes {
        let mut rps = [0.0f64; 2];
        let mut plans = [0usize; 2];
        let mut batches = [0usize; 2];
        for (k, optimize_plans) in [true, false].into_iter().enumerate() {
            let mut pipeline = BatchPipeline::new(workers);
            pipeline.optimize_plans = optimize_plans;
            // Best of two runs per point: a single scheduling hiccup on a
            // loaded (CI) machine must not invert the throughput ordering.
            for _ in 0..2 {
                let mut v = view.clone();
                let run = pipeline.maintain(&db, &mut v, &deltas, b).expect("maintain");
                assert!(
                    v.table().approx_same_contents(&expected, 1e-9),
                    "pipeline (optimize={optimize_plans}, batch={b}) diverged from recompute"
                );
                assert_eq!(run.fallback_batches, 0, "insert-only stream must use change tables");
                rps[k] = rps[k].max(run.throughput());
                plans[k] = run.plans_evaluated;
                batches[k] = run.batches;
            }
        }
        report.row(vec![
            b.to_string(),
            format!("{:.0}", rps[0]),
            format!("{:.0}", rps[1]),
            plans[0].to_string(),
            batches[0].to_string(),
        ]);
        json_rows.push(format!(
            "{{\"batch_size\":{b},\"rps_optimized\":{},\"rps_unoptimized\":{},\
             \"plans\":{},\"batches\":{}}}",
            rps[0], rps[1], plans[0], batches[0]
        ));
        curve.push((b, rps[0]));
    }
    report.finish("mini-batch maintenance throughput on real plans (visit view, log stream)");

    // ── traced run: chrome://tracing artifact + pipeline counters ────────
    // One more maintenance pass at a mid batch size with a span recorder
    // attached: every maintain/batch/fold/compile span lands in the ring
    // buffer and exports as `fig_minibatch_trace.json` (load it in
    // chrome://tracing or Perfetto). The pipeline's own counters cross-check
    // the run shape: one compile (cache shared within the run), one fold
    // per batch.
    {
        let tracer = Arc::new(TraceRecorder::new(4096));
        let mut traced = BatchPipeline::new(workers);
        traced.tracer = Some(tracer.clone());
        let b = (stream_len / 8).max(1);
        let mut v = view;
        let run = traced.maintain(&db, &mut v, &deltas, b).expect("traced maintain");
        assert!(
            v.table().approx_same_contents(&expected, 1e-9),
            "traced pipeline diverged from recompute"
        );
        let pm = traced.metrics();
        println!(
            "traced run at batch {b}: {} batches, {} folds, {} compiles \
             ({} cache hits), mean fold {}µs, {} spans recorded",
            run.batches,
            pm.folds,
            pm.compiles,
            pm.cache_hits,
            pm.mean_fold_ns() / 1_000,
            tracer.events().len(),
        );
        assert!(pm.folds >= run.batches as u64, "every batch folds at least once");
        assert_eq!(pm.backlog, 0, "backlog gauge must drain to zero after maintain");
        assert!(!tracer.events().is_empty(), "traced run recorded no spans");
        write_json("fig_minibatch_trace", &tracer.chrome_trace_json());
    }

    let smallest = curve.first().expect("points").1;
    let largest = curve.last().expect("points").1;
    println!(
        "throughput at batch {} vs batch {}: {:.0} vs {:.0} records/s ({:.2}x)",
        curve.last().unwrap().0,
        curve.first().unwrap().0,
        largest,
        smallest,
        largest / smallest.max(1e-9),
    );
    // curve[0] is the *largest* batch (stream/1 ... no: [32,16,...,1] divisors
    // produce ascending batch sizes). First = stream/32 (small), last = full
    // stream (large): larger batches must amortize the per-batch driver work.
    assert!(
        largest > smallest,
        "throughput must rise with batch size on real plans: {largest} vs {smallest}"
    );

    // --- optimize() cost vs plan depth: memoized vs re-derive baseline ----
    let depths = [4usize, 8, 16, 32, 64];
    let reps = 5;
    let mut depth_report =
        Report::new("fig_minibatch_depth", &["depth", "nodes", "optimize_ms", "rederive_ms"]);
    let mut depth_rows = Vec::new();
    let mut measured = Vec::new();
    for &d in &depths {
        let plan = deep_plan(d);
        let nodes = plan.node_count();
        let mut t_opt = Vec::with_capacity(reps);
        let mut t_red = Vec::with_capacity(reps);
        for _ in 0..reps {
            let (r, t) = time(|| optimize(&plan, &db).expect("optimize"));
            std::hint::black_box(r);
            t_opt.push(t);
            t_red.push(rederive_every_node(&plan, &db));
        }
        let (o, r) = (median_of(&t_opt), median_of(&t_red));
        depth_report.row(vec![
            d.to_string(),
            nodes.to_string(),
            format!("{:.4}", o * 1e3),
            format!("{:.4}", r * 1e3),
        ]);
        depth_rows.push(format!(
            "{{\"depth\":{d},\"nodes\":{nodes},\"optimize_s\":{o},\"rederive_s\":{r}}}"
        ));
        measured.push((d, o, r));
    }
    depth_report.finish("optimize() cost vs plan depth: Derived threaded (vs per-node re-derive)");

    // Growth check: from depth 8 to 64 the memoized optimizer must grow
    // strictly slower than the per-node re-derivation baseline (linear vs
    // quadratic; ratios are used so absolute machine speed cancels).
    let at = |d: usize| measured.iter().find(|&&(x, _, _)| x == d).expect("depth measured");
    let opt_growth = at(64).1 / at(8).1.max(1e-9);
    let red_growth = at(64).2 / at(8).2.max(1e-9);
    println!(
        "growth 8→64: optimize {opt_growth:.1}x, per-node re-derive {red_growth:.1}x \
         (nodes grow {:.1}x)",
        at(64).0 as f64 / at(8).0 as f64
    );
    assert!(
        opt_growth < red_growth,
        "memoized optimize() must grow slower than the quadratic re-derive baseline: \
         {opt_growth:.1}x vs {red_growth:.1}x"
    );

    let json = format!(
        "{{\"bench\":\"fig_minibatch\",\"workload\":\"visit_view_log_stream\",\
         \"base_events\":{base_events},\"stream_len\":{stream_len},\"workers\":{workers},\
         \"throughput\":[{}],\"optimize_depth\":[{}]}}\n",
        json_rows.join(","),
        depth_rows.join(",")
    );
    write_json("fig_minibatch", &json);
}
