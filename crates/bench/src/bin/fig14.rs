//! Figure 14 — Mini-batch throughput vs batch size on the *calibrated*
//! Spark stand-in (synthetic per-batch overhead + per-record spin work):
//! (a) one maintenance pipeline; (b) two concurrent pipelines (IVM + SVC)
//! contending for the cluster. The same curve measured on real maintenance
//! plans is `fig_minibatch`.

use svc_bench::Report;
use svc_cluster::SpinPipeline;

fn main() {
    let workers = std::thread::available_parallelism().map(|n| n.get().clamp(2, 4)).unwrap_or(2);
    let pipeline = SpinPipeline::new(workers);
    let total = 40_000;
    let batch_sizes = [500usize, 1_000, 2_500, 5_000, 10_000, 20_000, 40_000];

    let mut report = Report::new("fig14a", &["batch_size", "records_per_sec"]);
    for &b in &batch_sizes {
        let tp = pipeline.run(total, b);
        report.row(vec![b.to_string(), format!("{tp:.0}")]);
    }
    report.finish("throughput vs batch size (single maintenance thread)");

    let mut report = Report::new("fig14b", &["batch_size", "records_per_sec_contended"]);
    for &b in &batch_sizes {
        let tp = pipeline.throughput_with_contention(total, b);
        report.row(vec![b.to_string(), format!("{tp:.0}")]);
    }
    report.finish("throughput vs batch size (two concurrent maintenance threads)");
}
