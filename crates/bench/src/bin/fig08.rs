//! Figure 8 — Outlier indexing: (a) 75th-percentile query error on V3 as
//! the Zipf skew grows, with and without the index (K=100); (b) the
//! maintenance-time overhead of index sizes K ∈ {0, 10, 100, 1000} on
//! V3/V5/V10/V15 against full IVM.

use svc_bench::{bench_queries, median_of, rng, time, tpcd, Report};
use svc_core::outlier::{
    estimate_aqp_with_outliers, estimate_corr_with_outliers, stale_rows_at, OutlierIndex,
    OutlierIndexSpec, ThresholdPolicy,
};
use svc_core::query::relative_error;
use svc_core::{SvcConfig, SvcView};
use svc_stats::quantile::quantile;
use svc_workloads::querygen::random_queries;
use svc_workloads::tpcd_views::complex_views;

fn index_spec(capacity: usize) -> OutlierIndexSpec {
    OutlierIndexSpec {
        table: "lineitem".into(),
        attr: "l_extendedprice".into(),
        policy: ThresholdPolicy::TopK,
        capacity,
    }
}

fn main() {
    let n_queries = bench_queries();
    let mut r = rng(8);

    // (a) V3 error at the 75% quartile vs skew z, K = 100.
    let mut report = Report::new(
        "fig08a",
        &["zipf_z", "stale", "svc_aqp", "svc_aqp_out", "svc_corr", "svc_corr_out"],
    );
    for z in [1.0, 2.0, 3.0, 4.0] {
        let data = tpcd(0.7, z, 42);
        let deltas = data.updates(0.10, 7).expect("updates");
        let v3 = complex_views().into_iter().find(|v| v.id == "V3").unwrap();
        let svc = SvcView::create("V3", v3.plan.clone(), &data.db, SvcConfig::with_ratio(0.1))
            .expect("view");
        let idx = OutlierIndex::build(index_spec(100), &data.db, &deltas).expect("index");
        let cleaned = svc.clean_sample(&data.db, &deltas).expect("clean");
        assert!(idx.eligible(&cleaned.report.sampled_leaves));
        let o_fresh = svc
            .view
            .public_of(&idx.push_up(&svc.view, &data.db, &deltas).expect("push up"))
            .expect("public O");
        let o_stale = stale_rows_at(&svc.view.public_table().expect("pub"), &o_fresh);

        let fresh = svc
            .view
            .public_of(&svc.view.recompute_fresh(&data.db, &deltas).expect("fresh"))
            .expect("public fresh");
        let stale_view = svc.view.public_table().expect("stale");
        let queries = random_queries(&stale_view, &v3.dims, &["revenue"], n_queries, &mut r)
            .expect("queries");

        let mut e = [Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for q in &queries {
            let Ok(truth) = q.exact(&fresh) else { continue };
            if !truth.is_finite() || truth == 0.0 {
                continue;
            }
            let stale_res = q.exact(&stale_view).expect("stale");
            e[0].push(relative_error(stale_res, truth));
            if let Ok(est) = svc.estimate_aqp(&cleaned, q) {
                e[1].push(relative_error(est.value, truth));
            }
            if let Ok(est) =
                estimate_aqp_with_outliers(&cleaned.public, &o_fresh, q, 0.1, &svc.config)
            {
                e[2].push(relative_error(est.value, truth));
            }
            if let Ok(est) = svc.estimate_corr(&cleaned, q) {
                e[3].push(relative_error(est.value, truth));
            }
            if let Ok(est) = estimate_corr_with_outliers(
                stale_res,
                &svc.stale_sample_public().expect("ssp"),
                &cleaned.public,
                &o_fresh,
                &o_stale,
                q,
                0.1,
                &svc.config,
            ) {
                e[4].push(relative_error(est.value, truth));
            }
        }
        let q75 = |xs: &Vec<f64>| {
            if xs.is_empty() {
                f64::NAN
            } else {
                quantile(xs, 0.75)
            }
        };
        report.row(vec![
            format!("{z}"),
            Report::f(q75(&e[0])),
            Report::f(q75(&e[1])),
            Report::f(q75(&e[2])),
            Report::f(q75(&e[3])),
            Report::f(q75(&e[4])),
        ]);
    }
    report.finish("V3 75th-percentile error vs skew, outlier index K=100");

    // (b) overhead of the index vs its size on V3, V5, V10, V15.
    let data = tpcd(0.7, 2.0, 42);
    let deltas = data.updates(0.10, 7).expect("updates");
    let mut report = Report::new("fig08b", &["view", "k0", "k10", "k100", "k1000", "ivm"]);
    for id in ["V3", "V5", "V10", "V15"] {
        let v = complex_views().into_iter().find(|v| v.id == id).unwrap();
        let mut ivm =
            SvcView::create(id, v.plan.clone(), &data.db, SvcConfig::with_ratio(1.0)).unwrap();
        let (_, t_ivm) = time(|| ivm.view.maintain(&data.db, &deltas).expect("ivm"));
        let svc =
            SvcView::create(id, v.plan.clone(), &data.db, SvcConfig::with_ratio(0.1)).unwrap();
        let mut cells = vec![id.to_string()];
        for k in [0usize, 10, 100, 1000] {
            let (_, t) = time(|| {
                let _c = svc.clean_sample(&data.db, &deltas).expect("clean");
                if k > 0 {
                    let idx = OutlierIndex::build(index_spec(k), &data.db, &deltas).expect("index");
                    let _o = idx.push_up(&svc.view, &data.db, &deltas).expect("push up");
                }
            });
            cells.push(Report::f(t));
        }
        cells.push(Report::f(t_ivm));
        report.row(cells);
    }
    report.finish("outlier-index maintenance overhead vs index size");

    let _ = median_of(&[]);
}
