//! Row-at-a-time reference path vs the vectorized columnar kernels inside
//! the compile-once streaming executor (`svc_relalg::exec::column`).
//!
//! Both paths run the *same* compiled `PhysicalPlan`; the only difference
//! is `ExecMode`: `run()` drives fused scans through typed column slices
//! and selection vectors, `run_rowwise()` replays the row-based reference
//! kernels. Scenarios:
//!
//! * `scan_sigma` — a fused filter over the large `lineitem` base
//!   relation, swept across selectivities 0.001 → 0.9. The vectorized
//!   filter touches one typed column slice and gathers only survivors, so
//!   the gap is widest at low selectivity where the row path still pays
//!   per-row expression dispatch for every input row.
//! * `scan_sigma_eta` — the fused `Scan→σ→η` chain: the η kernel hashes
//!   key columns vectorially over the surviving selection.
//! * `cleaning` — the SVC cleaning expression of the lineitem⋈orders join
//!   view under maintenance bindings (joins keep their row-at-a-time
//!   cores; this measures the end-to-end effect on a real cleaning plan).
//! * `maintenance` — the change-table maintenance plan of a revenue
//!   roll-up (γ accumulators ingest fused-scan survivors per batch).
//!
//! Writes `experiments/fig_vector.csv` and `experiments/fig_vector.json`.
//! Asserted invariants: the vectorized path produces *bit-identical rows
//! in identical order* to the rowwise path on every scenario, and is
//! never slower on the fused-scan sweep (any scale — the CI smoke guard);
//! at full scale the selective points (≤10%) must show ≥2×.

use svc_bench::{bench_min_ms, bench_scale, operator_metrics_json, tpcd, write_json, Report};
use svc_ivm::view::{maintenance_bindings, MaterializedView};
use svc_relalg::aggregate::{AggFunc, AggSpec};
use svc_relalg::eval::Bindings;
use svc_relalg::exec::ExecMode;
use svc_relalg::exec::{compile, PhysicalPlan};
use svc_relalg::optimizer::optimize;
use svc_relalg::plan::Plan;
use svc_relalg::scalar::{col, lit};
use svc_storage::HashSpec;
use svc_workloads::tpcd_views::{join_view, revenue_expr};

struct Row {
    scenario: &'static str,
    param: String,
    selectivity: f64,
    rows_out: usize,
    t_rowwise_ms: f64,
    t_vector_ms: f64,
    operators: String,
}

/// Time both modes of one compiled plan and check the vectorized result is
/// bit-identical, row for row, in order, to the rowwise reference.
///
/// The two modes are interleaved rep by rep and each reports its *minimum*
/// sample: on a shared runner, load spikes inflate individual samples, and
/// the fastest observed run is the least contaminated estimate of the real
/// cost — the statistic that keeps the not-slower CI guard from flaking.
fn measure(
    compiled: &PhysicalPlan,
    bindings: &Bindings<'_>,
    reps: usize,
    iters: usize,
    label: &str,
) -> (usize, f64, f64) {
    let vector = compiled.run(bindings).expect("vectorized run");
    let rowwise = compiled.run_rowwise(bindings).expect("rowwise run");
    assert!(
        vector.rows() == rowwise.rows() && vector.schema() == rowwise.schema(),
        "{label}: vectorized and rowwise paths diverged ({} vs {} rows)",
        vector.len(),
        rowwise.len()
    );
    let mut t_rowwise = f64::INFINITY;
    let mut t_vector = f64::INFINITY;
    for _ in 0..reps {
        t_rowwise = t_rowwise.min(bench_min_ms(1, iters, || {
            std::hint::black_box(compiled.run_rowwise(bindings).expect("rowwise"));
        }));
        t_vector = t_vector.min(bench_min_ms(1, iters, || {
            std::hint::black_box(compiled.run(bindings).expect("vectorized"));
        }));
    }
    (vector.len(), t_rowwise, t_vector)
}

fn main() {
    let data = tpcd(2.0, 2.0, 42);
    let db = &data.db;
    let bindings = Bindings::from_database(db);
    let lineitem = db.table("lineitem").expect("lineitem");
    println!("lineitem: {} rows (scale {})", lineitem.len(), bench_scale());

    let reps = 5;
    let iters = (200_000 / lineitem.len().max(1)).clamp(1, 50);
    let mut rows: Vec<Row> = Vec::new();

    // Selectivity thresholds from the empirical l_orderkey distribution
    // (uniform over orders — the zipf-skewed measure columns collapse to a
    // single value and cannot express a sweep).
    let key_idx = lineitem.schema().resolve("l_orderkey").expect("l_orderkey");
    let mut keys: Vec<i64> = lineitem.rows().iter().filter_map(|r| r[key_idx].as_i64()).collect();
    keys.sort_unstable();
    let threshold = |sel: f64| keys[((keys.len() - 1) as f64 * sel) as usize];

    for sel in [0.001, 0.01, 0.05, 0.1, 0.3, 0.6, 0.9] {
        let plan = Plan::scan("lineitem").select(col("l_orderkey").lt(lit(threshold(sel))));
        let compiled = compile(&plan, &bindings).expect("compile");
        let (n, t_rowwise, t_vector) =
            measure(&compiled, &bindings, reps, iters, &format!("scan_sigma {sel}"));
        rows.push(Row {
            scenario: "scan_sigma",
            param: format!("{sel}"),
            selectivity: sel,
            rows_out: n,
            t_rowwise_ms: t_rowwise,
            t_vector_ms: t_vector,
            operators: operator_metrics_json(&compiled, &bindings, ExecMode::sequential()),
        });
    }

    // The full fused chain: σ then η on the lineitem key.
    {
        let plan = Plan::scan("lineitem").select(col("l_orderkey").lt(lit(threshold(0.2)))).hash(
            &["l_orderkey", "l_linenumber"],
            0.1,
            HashSpec::with_seed(7),
        );
        let compiled = compile(&plan, &bindings).expect("compile");
        let (n, t_rowwise, t_vector) = measure(&compiled, &bindings, reps, iters, "scan_sigma_eta");
        rows.push(Row {
            scenario: "scan_sigma_eta",
            param: "0.2×η0.1".into(),
            selectivity: 0.2,
            rows_out: n,
            t_rowwise_ms: t_rowwise,
            t_vector_ms: t_vector,
            operators: operator_metrics_json(&compiled, &bindings, ExecMode::sequential()),
        });
    }

    // Cleaning: the η-wrapped maintenance plan of the join view, evaluated
    // under maintenance bindings (stale sample + base tables + deltas).
    {
        let svc = svc_bench::join_view_svc(&data, 0.1);
        let deltas = data.updates(0.10, 7).expect("updates");
        let (plan, report, _kind) = svc.cleaning_plan(db, &deltas).expect("cleaning plan");
        let stale_binding =
            if report.fully_pushed() { svc.stale_sample() } else { svc.view.table() };
        let mb = maintenance_bindings(db, &deltas, stale_binding);
        let compiled = compile(&plan, &mb).expect("compile");
        let (n, t_rowwise, t_vector) = measure(&compiled, &mb, reps, 1, "cleaning");
        rows.push(Row {
            scenario: "cleaning",
            param: "m=0.1".into(),
            selectivity: f64::NAN,
            rows_out: n,
            t_rowwise_ms: t_rowwise,
            t_vector_ms: t_vector,
            operators: operator_metrics_json(&compiled, &mb, ExecMode::sequential()),
        });
    }

    // Maintenance: the change-table plan of a revenue roll-up.
    {
        let view_def = join_view().aggregate(
            &["o_custkey"],
            vec![AggSpec::count_all("n"), AggSpec::new("revenue", AggFunc::Sum, revenue_expr())],
        );
        let view = MaterializedView::create("revenue", view_def, db).expect("view");
        let deltas = data.updates(0.10, 11).expect("updates");
        let (mplan, _kind) = view.build_maintenance_plan(db, &deltas).expect("plan");
        let mb = maintenance_bindings(db, &deltas, view.table());
        let (plan, _) = optimize(&mplan, &mb).expect("optimize");
        let compiled = compile(&plan, &mb).expect("compile");
        let (n, t_rowwise, t_vector) = measure(&compiled, &mb, reps, 1, "maintenance");
        rows.push(Row {
            scenario: "maintenance",
            param: "upd=0.1".into(),
            selectivity: f64::NAN,
            rows_out: n,
            t_rowwise_ms: t_rowwise,
            t_vector_ms: t_vector,
            operators: operator_metrics_json(&compiled, &mb, ExecMode::sequential()),
        });
    }

    let mut report = Report::new(
        "fig_vector",
        &["scenario", "param", "rows", "t_rowwise_ms", "t_vector_ms", "speedup"],
    );
    let mut json_rows = Vec::new();
    let mut regressions = Vec::new();
    for r in &rows {
        let speedup = r.t_rowwise_ms / r.t_vector_ms.max(1e-9);
        report.row(vec![
            r.scenario.to_string(),
            r.param.clone(),
            r.rows_out.to_string(),
            format!("{:.3}", r.t_rowwise_ms),
            format!("{:.3}", r.t_vector_ms),
            format!("{speedup:.2}"),
        ]);
        json_rows.push(format!(
            "{{\"scenario\":\"{}\",\"param\":\"{}\",\"rows\":{},\"t_rowwise_ms\":{},\
             \"t_vector_ms\":{},\"speedup\":{speedup},\"operators\":{}}}",
            r.scenario, r.param, r.rows_out, r.t_rowwise_ms, r.t_vector_ms, r.operators
        ));
        // CI smoke guard: the vectorized kernels must never lose to the
        // rowwise reference on the fused-scan scenarios, at any scale. The
        // 10% margin absorbs scheduler noise on shared CI runners.
        if r.scenario.starts_with("scan_sigma") && r.t_vector_ms > r.t_rowwise_ms * 1.10 {
            regressions.push(format!(
                "{} {}: vectorized {:.3}ms vs rowwise {:.3}ms",
                r.scenario, r.param, r.t_vector_ms, r.t_rowwise_ms
            ));
        }
    }
    report.finish("rowwise reference vs vectorized columnar kernels (min of 5, interleaved)");

    let json = format!(
        "{{\"bench\":\"fig_vector\",\"workload\":\"tpcd\",\"scale\":{},\"lineitem_rows\":{},\
         \"rows\":[{}]}}\n",
        bench_scale(),
        lineitem.len(),
        json_rows.join(",")
    );
    write_json("fig_vector", &json);

    assert!(regressions.is_empty(), "vectorized kernel regressions: {regressions:?}");
    if bench_scale() >= 1.0 {
        for r in rows.iter().filter(|r| r.scenario == "scan_sigma" && r.selectivity <= 0.1) {
            let speedup = r.t_rowwise_ms / r.t_vector_ms.max(1e-9);
            assert!(
                speedup >= 2.0,
                "selective fused scan (sel {}) must be ≥2x vectorized at full scale, \
                 got {speedup:.2}x",
                r.param
            );
            println!("vectorized speedup at sel {}: {speedup:.2}x", r.param);
        }
    }
}
