//! Figure 10 — Aggregate (cube) view: (a) maintenance time vs sampling
//! ratio; (b) SVC-10% speedup vs update size (tending to the ideal 10x).

use svc_bench::{time, tpcd, Report};
use svc_core::{SvcConfig, SvcView};
use svc_workloads::cube::base_cube;

fn main() {
    // The cube experiment uses plain TPCD (z = 1).
    let data = tpcd(1.0, 1.0, 42);

    let deltas = data.updates(0.10, 7).expect("updates");
    let mut ivm =
        SvcView::create("cube", base_cube(), &data.db, SvcConfig::with_ratio(1.0)).expect("cube");
    let (_, t_ivm) = time(|| ivm.view.maintain(&data.db, &deltas).expect("ivm"));

    let mut report = Report::new("fig10a", &["sampling_ratio", "svc_seconds", "ivm_seconds"]);
    for i in 1..=10 {
        let m = i as f64 / 10.0;
        let svc =
            SvcView::create("cube", base_cube(), &data.db, SvcConfig::with_ratio(m)).expect("cube");
        let (_, t_svc) = time(|| svc.clean_sample(&data.db, &deltas).expect("clean"));
        report.row(vec![format!("{m:.1}"), Report::f(t_svc), Report::f(t_ivm)]);
    }
    report.finish("aggregate view: maintenance time vs sampling ratio");

    let mut report =
        Report::new("fig10b", &["update_pct", "ivm_seconds", "svc10_seconds", "speedup"]);
    for pct in [0.03, 0.05, 0.08, 0.10, 0.13, 0.15, 0.18, 0.20] {
        let deltas = data.updates(pct, 19).expect("updates");
        let mut ivm =
            SvcView::create("cube", base_cube(), &data.db, SvcConfig::with_ratio(1.0)).unwrap();
        let (_, t_ivm) = time(|| ivm.view.maintain(&data.db, &deltas).expect("ivm"));
        let svc =
            SvcView::create("cube", base_cube(), &data.db, SvcConfig::with_ratio(0.1)).unwrap();
        let (_, t_svc) = time(|| svc.clean_sample(&data.db, &deltas).expect("clean"));
        report.row(vec![
            format!("{:.0}%", pct * 100.0),
            Report::f(t_ivm),
            Report::f(t_svc),
            Report::f(t_ivm / t_svc),
        ]);
    }
    report.finish("aggregate view: SVC-10% speedup vs update size");
}
