//! Figure 9 — Conviva-like workload: (a) maintenance time IVM vs SVC-10%
//! per view; (b) query accuracy Stale / SVC+AQP / SVC+CORR per view.

use svc_bench::{bench_queries, bench_scale, error_triples, median_of, rng, time, Report};
use svc_core::{SvcConfig, SvcView};
use svc_workloads::conviva::{appended_updates, generate, views, ConvivaConfig};
use svc_workloads::querygen::random_queries;

fn main() {
    let cfg =
        ConvivaConfig { base_events: (30_000.0 * bench_scale()) as usize, ..Default::default() };
    let db = generate(cfg).expect("conviva data");
    // The paper derives views from 800GB and applies the next 10-20% as
    // updates; we append 10% of the base volume.
    let deltas = appended_updates(&db, cfg, cfg.base_events / 10, 3).expect("updates");
    let n_queries = bench_queries();
    let mut r = rng(9);

    let mut timing = Report::new("fig09a", &["view", "ivm_seconds", "svc10_seconds"]);
    let mut accuracy =
        Report::new("fig09b", &["view", "stale_err", "svc_aqp10_err", "svc_corr10_err"]);

    for v in views() {
        let mut ivm =
            SvcView::create(v.id, v.plan.clone(), &db, SvcConfig::with_ratio(1.0)).unwrap();
        let (_, t_ivm) = time(|| ivm.view.maintain(&db, &deltas).expect("ivm"));
        let svc = SvcView::create(v.id, v.plan.clone(), &db, SvcConfig::with_ratio(0.1)).unwrap();
        let (_, t_svc) = time(|| svc.clean_sample(&db, &deltas).expect("clean"));
        timing.row(vec![v.id.to_string(), Report::f(t_ivm), Report::f(t_svc)]);

        let public = svc.view.public_table().expect("public");
        let queries =
            random_queries(&public, &v.dims, &v.measures, n_queries, &mut r).expect("queries");
        let triples = error_triples(&svc, &db, &deltas, &queries);
        let stale: Vec<f64> = triples.iter().map(|t| t.stale).collect();
        let aqp: Vec<f64> = triples.iter().map(|t| t.aqp).collect();
        let corr: Vec<f64> = triples.iter().map(|t| t.corr).collect();
        accuracy.row(vec![
            v.id.to_string(),
            Report::f(median_of(&stale)),
            Report::f(median_of(&aqp)),
            Report::f(median_of(&corr)),
        ]);
    }
    timing.finish("Conviva-like views: maintenance time for appended updates");
    accuracy.finish("Conviva-like views: query accuracy (m=10%)");
}
