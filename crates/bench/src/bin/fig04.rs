//! Figure 4 — Join view maintenance cost.
//!
//! (a) maintenance time of SVC vs sampling ratio, with the full-IVM line;
//! (b) speedup of SVC-10% over IVM as the update size grows.

use svc_bench::{join_view_svc, time, tpcd, Report};

fn main() {
    let data = tpcd(1.0, 2.0, 42);
    println!(
        "Join view over TPCD-Skew z=2: {} lineitems, {} orders",
        data.lineitem_rows(),
        data.db.table("orders").unwrap().len()
    );

    // (a) maintenance time vs sampling ratio, update size 10%.
    let deltas = data.updates(0.10, 7).expect("updates");
    let mut svc_full = join_view_svc(&data, 1.0);
    let (_, t_ivm) = time(|| svc_full.view.maintain(&data.db, &deltas).expect("ivm"));

    let mut report = Report::new("fig04a", &["sampling_ratio", "svc_seconds", "ivm_seconds"]);
    for i in 1..=10 {
        let m = i as f64 / 10.0;
        let svc = join_view_svc(&data, m);
        let (_, t_svc) = time(|| svc.clean_sample(&data.db, &deltas).expect("clean"));
        report.row(vec![format!("{m:.1}"), Report::f(t_svc), Report::f(t_ivm)]);
    }
    report.finish("maintenance time vs sampling ratio (update size 10%)");

    // (b) speedup of SVC-10% vs update size.
    let mut report =
        Report::new("fig04b", &["update_pct", "ivm_seconds", "svc10_seconds", "speedup"]);
    for pct in [0.025, 0.05, 0.075, 0.10, 0.125, 0.15, 0.175, 0.20] {
        let deltas = data.updates(pct, 11).expect("updates");
        let mut ivm = join_view_svc(&data, 1.0);
        let (_, t_ivm) = time(|| ivm.view.maintain(&data.db, &deltas).expect("ivm"));
        let svc = join_view_svc(&data, 0.1);
        let (_, t_svc) = time(|| svc.clean_sample(&data.db, &deltas).expect("clean"));
        report.row(vec![
            format!("{:.1}%", pct * 100.0),
            Report::f(t_ivm),
            Report::f(t_svc),
            Report::f(t_ivm / t_svc),
        ]);
    }
    report.finish("SVC-10% speedup vs update size");
}
