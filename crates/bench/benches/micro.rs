//! Criterion micro-benchmarks for the SVC building blocks: hashing,
//! operator evaluation, IVM vs recomputation, sample cleaning, and
//! estimation. Sample sizes are kept small so `cargo bench` completes
//! quickly; the paper-shaped experiments live in `src/bin/figNN`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use svc_core::query::AggQuery;
use svc_relalg::scalar::{col, lit};
use svc_sampling::operator::sample_by_key;
use svc_storage::{HashSpec, Value};
use svc_workloads::tpcd::{TpcdConfig, TpcdData};
use svc_workloads::tpcd_views::{join_view, revenue_expr};

fn data() -> TpcdData {
    TpcdData::generate(TpcdConfig { scale: 0.05, skew: 2.0, seed: 42 }).unwrap()
}

fn bench_hash(c: &mut Criterion) {
    let spec = HashSpec::default();
    let keys: Vec<Vec<Value>> = (0..1000i64).map(|i| vec![Value::Int(i)]).collect();
    c.bench_function("hash01_1k_int_keys", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for k in &keys {
                acc += spec.hash01(black_box(k));
            }
            black_box(acc)
        });
    });
}

fn bench_eval_join_view(c: &mut Criterion) {
    let data = data();
    c.bench_function("materialize_join_view", |b| {
        b.iter(|| {
            black_box(svc_bench::materialize(&join_view(), &data.db));
        });
    });
}

fn bench_ivm_vs_clean(c: &mut Criterion) {
    let data = data();
    let deltas = data.updates(0.1, 7).unwrap();
    c.bench_function("ivm_full_maintenance", |b| {
        b.iter(|| {
            let mut svc = svc_bench::join_view_svc(&data, 1.0);
            svc.view.maintain(&data.db, black_box(&deltas)).unwrap();
        });
    });
    c.bench_function("svc_clean_sample_10pct", |b| {
        let svc = svc_bench::join_view_svc(&data, 0.1);
        b.iter(|| {
            black_box(svc.clean_sample(&data.db, black_box(&deltas)).unwrap());
        });
    });
}

fn bench_sampling(c: &mut Criterion) {
    let data = data();
    let view = svc_bench::materialize(&join_view(), &data.db);
    c.bench_function("sample_by_key_10pct", |b| {
        b.iter(|| black_box(sample_by_key(&view, 0.1, HashSpec::default())));
    });
}

fn bench_optimizer(c: &mut Criterion) {
    use svc_ivm::view::maintenance_bindings;
    use svc_relalg::optimizer::optimize;

    let data = data();
    let deltas = data.updates(0.1, 7).unwrap();
    let svc = svc_bench::join_view_svc(&data, 0.1);
    let (mplan, _) = svc.view.build_maintenance_plan(&data.db, &deltas).unwrap();
    let key_names = svc.view.key_names();
    let key_refs: Vec<&str> = key_names.iter().map(|s| s.as_str()).collect();
    let hashed = mplan.hash(&key_refs, 0.1, svc.config.hash_spec());
    let bindings = maintenance_bindings(&data.db, &deltas, svc.view.table());

    c.bench_function("optimize_cleaning_plan", |b| {
        b.iter(|| black_box(optimize(black_box(&hashed), &bindings).unwrap()));
    });
    c.bench_function("clean_sample_unoptimized_eval", |b| {
        b.iter(|| black_box(svc_relalg::eval::evaluate(black_box(&hashed), &bindings).unwrap()));
    });
}

fn bench_estimators(c: &mut Criterion) {
    let data = data();
    let deltas = data.updates(0.1, 7).unwrap();
    let svc = svc_bench::join_view_svc(&data, 0.1);
    let cleaned = svc.clean_sample(&data.db, &deltas).unwrap();
    let q = AggQuery::sum(revenue_expr()).filter(col("o_orderdate").lt(lit(1500i64)));
    c.bench_function("estimate_aqp_sum", |b| {
        b.iter(|| black_box(svc.estimate_aqp(&cleaned, &q).unwrap()));
    });
    c.bench_function("estimate_corr_sum", |b| {
        b.iter(|| black_box(svc.estimate_corr(&cleaned, &q).unwrap()));
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_hash, bench_eval_join_view, bench_ivm_vs_clean, bench_sampling, bench_optimizer, bench_estimators
}
criterion_main!(benches);
