//! Canonicalization of view definitions for change-table maintenance.
//!
//! A group-by aggregate view is rewritten so that every aggregate is either
//! *additive* (`count`, `sum`) or explicitly flagged as non-additive
//! (`min`/`max`: mergeable only under insert-only deltas; `median`: never):
//!
//! * `avg(e)` becomes a hidden `sum(e)` / `count(e)` pair, recombined in a
//!   public projection (the standard trick the paper inherits from [22]);
//! * a hidden `__svc_cnt = count(1)` column tracks group liveness so that
//!   groups whose rows were all deleted are recognized as *superfluous* and
//!   dropped by the maintenance plan.
//!
//! Non-aggregate (SPJ) views pass through unchanged.

use svc_relalg::aggregate::{AggFunc, AggSpec};
use svc_relalg::plan::Plan;
use svc_relalg::scalar::{col, Expr};

/// Hidden group-liveness counter column.
pub const SVC_CNT: &str = "__svc_cnt";

/// How one canonical column merges during change-table maintenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeRule {
    /// `new = stale + change` (count/sum).
    Additive,
    /// `new = least(stale, change)`; valid only under insert-only deltas.
    TakeMin,
    /// `new = greatest(stale, change)`; valid only under insert-only deltas.
    TakeMax,
    /// Not incrementally mergeable (median); forces recomputation.
    Recompute,
}

/// A canonical aggregate column: its alias in the canonical schema and how
/// it merges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonCol {
    /// Column alias in the canonical aggregate output.
    pub alias: String,
    /// Merge behavior.
    pub rule: MergeRule,
}

/// Result of canonicalizing a view definition.
#[derive(Debug, Clone)]
pub struct Canonical {
    /// The plan to materialize (canonical form).
    pub plan: Plan,
    /// Projection from the canonical schema to the user-facing schema, or
    /// `None` when the definition was already in public form.
    pub public: Option<Vec<(String, Expr)>>,
    /// For top-level aggregate views: group-by columns and canonical column
    /// merge rules, used by the change-table strategy.
    pub agg: Option<AggShape>,
}

/// Shape information for a canonical top-level aggregate.
#[derive(Debug, Clone)]
pub struct AggShape {
    /// Group-by column names (as written in the view definition).
    pub group_by: Vec<String>,
    /// Canonical aggregate columns, in schema order after the group columns.
    pub cols: Vec<CanonCol>,
    /// The SPJ input plan under the aggregate.
    pub input: Plan,
}

impl Canonical {
    /// True iff every canonical column merges additively.
    pub fn fully_additive(&self) -> bool {
        self.agg.as_ref().is_some_and(|a| a.cols.iter().all(|c| c.rule == MergeRule::Additive))
    }

    /// True iff change-table maintenance applies given whether any base
    /// deletions are pending. Min/max tolerate insert-only deltas; median
    /// never merges.
    pub fn change_table_eligible(&self, has_deletions: bool) -> bool {
        match &self.agg {
            None => true, // SPJ views maintain by keyed delta application
            Some(shape) => shape.cols.iter().all(|c| match c.rule {
                MergeRule::Additive => true,
                MergeRule::TakeMin | MergeRule::TakeMax => !has_deletions,
                MergeRule::Recompute => false,
            }),
        }
    }
}

/// Canonicalize a view definition. Top-level `Aggregate` nodes (possibly
/// wrapped in `Select`/`Project`, e.g. HAVING clauses) are rewritten; the
/// wrappers migrate into the public projection side. Everything else passes
/// through.
pub fn canonicalize(def: &Plan) -> Canonical {
    // Only a *top-level* aggregate is canonicalized; nested aggregates make
    // the view ineligible for change-table maintenance anyway (the paper's
    // V21/V22 discussion) and are handled by the recomputation strategy.
    if let Plan::Aggregate { input, group_by, aggregates } = def {
        let mut canon_aggs: Vec<AggSpec> =
            vec![AggSpec::new(SVC_CNT, AggFunc::Count, svc_relalg::scalar::lit(1i64))];
        let mut cols = vec![CanonCol { alias: SVC_CNT.into(), rule: MergeRule::Additive }];
        let mut public: Vec<(String, Expr)> =
            group_by.iter().map(|g| (short_name(g), col(g.clone()))).collect();

        for (i, spec) in aggregates.iter().enumerate() {
            match spec.func {
                AggFunc::Count => {
                    let alias = format!("__svc_c{i}");
                    canon_aggs.push(AggSpec::new(&alias, AggFunc::Count, spec.arg.clone()));
                    cols.push(CanonCol { alias: alias.clone(), rule: MergeRule::Additive });
                    public.push((spec.alias.clone(), col(alias)));
                }
                AggFunc::Sum => {
                    let alias = format!("__svc_s{i}");
                    canon_aggs.push(AggSpec::new(&alias, AggFunc::Sum, spec.arg.clone()));
                    cols.push(CanonCol { alias: alias.clone(), rule: MergeRule::Additive });
                    public.push((spec.alias.clone(), col(alias)));
                }
                AggFunc::Avg => {
                    let s = format!("__svc_s{i}");
                    let n = format!("__svc_n{i}");
                    canon_aggs.push(AggSpec::new(&s, AggFunc::Sum, spec.arg.clone()));
                    canon_aggs.push(AggSpec::new(&n, AggFunc::Count, spec.arg.clone()));
                    cols.push(CanonCol { alias: s.clone(), rule: MergeRule::Additive });
                    cols.push(CanonCol { alias: n.clone(), rule: MergeRule::Additive });
                    public.push((spec.alias.clone(), col(s).div(col(n))));
                }
                AggFunc::Min | AggFunc::Max => {
                    let alias = format!("__svc_m{i}");
                    canon_aggs.push(AggSpec::new(&alias, spec.func, spec.arg.clone()));
                    cols.push(CanonCol {
                        alias: alias.clone(),
                        rule: if spec.func == AggFunc::Min {
                            MergeRule::TakeMin
                        } else {
                            MergeRule::TakeMax
                        },
                    });
                    public.push((spec.alias.clone(), col(alias)));
                }
                AggFunc::Median => {
                    let alias = format!("__svc_md{i}");
                    canon_aggs.push(AggSpec::new(&alias, AggFunc::Median, spec.arg.clone()));
                    cols.push(CanonCol { alias: alias.clone(), rule: MergeRule::Recompute });
                    public.push((spec.alias.clone(), col(alias)));
                }
            }
        }

        let plan = Plan::Aggregate {
            input: input.clone(),
            group_by: group_by.clone(),
            aggregates: canon_aggs,
        };
        return Canonical {
            plan,
            public: Some(public),
            agg: Some(AggShape { group_by: group_by.clone(), cols, input: (**input).clone() }),
        };
    }

    Canonical { plan: def.clone(), public: None, agg: None }
}

/// The unqualified tail of a possibly qualified column name, used for the
/// public schema of group columns.
fn short_name(name: &str) -> String {
    name.rsplit('.').next().unwrap_or(name).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use svc_relalg::plan::JoinKind;
    use svc_relalg::scalar::lit;

    fn agg_view() -> Plan {
        Plan::scan("log")
            .join(Plan::scan("video"), JoinKind::Inner, &[("videoId", "videoId")])
            .aggregate(
                &["videoId"],
                vec![
                    AggSpec::count_all("visits"),
                    AggSpec::new("avgDur", AggFunc::Avg, col("duration")),
                ],
            )
    }

    #[test]
    fn avg_decomposes_into_sum_and_count() {
        let c = canonicalize(&agg_view());
        let shape = c.agg.as_ref().unwrap();
        assert_eq!(shape.group_by, vec!["videoId"]);
        // __svc_cnt + count + (sum, count) for avg
        assert_eq!(shape.cols.len(), 4);
        assert!(c.fully_additive());
        let public = c.public.as_ref().unwrap();
        assert_eq!(public.len(), 3); // videoId, visits, avgDur
        assert_eq!(public[0].0, "videoId");
        assert_eq!(public[2].0, "avgDur");
    }

    #[test]
    fn min_max_eligible_only_without_deletions() {
        let view = Plan::scan("video")
            .aggregate(&["ownerId"], vec![AggSpec::new("longest", AggFunc::Max, col("duration"))]);
        let c = canonicalize(&view);
        assert!(c.change_table_eligible(false));
        assert!(!c.change_table_eligible(true));
    }

    #[test]
    fn median_forces_recompute() {
        let view = Plan::scan("video").aggregate(
            &["ownerId"],
            vec![AggSpec::new("medDur", AggFunc::Median, col("duration"))],
        );
        let c = canonicalize(&view);
        assert!(!c.change_table_eligible(false));
    }

    #[test]
    fn spj_views_pass_through() {
        let view = Plan::scan("video").select(col("duration").gt(lit(1.0)));
        let c = canonicalize(&view);
        assert!(c.public.is_none());
        assert!(c.agg.is_none());
        assert!(c.change_table_eligible(true));
        assert_eq!(c.plan, view);
    }

    #[test]
    fn qualified_group_columns_get_short_public_names() {
        let view = Plan::scan("log")
            .join(Plan::scan("video"), JoinKind::Inner, &[("videoId", "ownerId")])
            .aggregate(&["video.videoId"], vec![AggSpec::count_all("n")]);
        let c = canonicalize(&view);
        assert_eq!(c.public.as_ref().unwrap()[0].0, "videoId");
    }
}
