#![forbid(unsafe_code)]

//! # svc-ivm
//!
//! Incremental view maintenance (IVM) for the Stale View Cleaning
//! reproduction. The paper's central abstraction is the *maintenance
//! strategy* `M`: a relational expression over the stale view `S`, the base
//! relations `D`, and the delta relations `∂D` whose evaluation yields the
//! up-to-date view `S′` (Section 3.1). Because `M` is *just a plan*, the
//! hashing operator of `svc-sampling` can be pushed through it — that is the
//! whole trick behind efficient stale-sample cleaning (Section 4.5 /
//! Figure 3).
//!
//! * [`canon`] — canonicalizes aggregate views into change-table
//!   maintainable form (`avg` → `sum` + `count`, plus a hidden
//!   `__svc_cnt` group-liveness counter) with a public projection restoring
//!   the user-facing schema;
//! * [`delta`] — derives insertion/deletion delta plans for SPJ(U)
//!   expressions (the classic join delta rules);
//! * [`strategy`] — builds the maintenance plan: the change-table method of
//!   Gupta & Mumick [22,23] used by the paper's experiments, with a
//!   recomputation fallback expressed *as a plan* so sampling still applies;
//! * [`view`] — [`view::MaterializedView`]: definition + materialized state
//!   + staleness bookkeeping + `maintain()`.

pub mod canon;
pub mod delta;
pub mod strategy;
pub mod view;

pub use canon::{canonicalize, Canonical};
pub use delta::{derive_delta, DeltaInfo, DeltaPlan};
pub use strategy::{
    batch_change_plans, maintenance_plan, merge_change_plan, MaintCatalog, PlanKind, CHANGE_LEAF,
    STALE_LEAF,
};
pub use view::MaterializedView;
