//! Maintenance strategies as relational plans.
//!
//! `maintenance_plan` compiles a (canonicalized) view definition plus the
//! current delta info into a plan `M` over the leaves
//! `{__stale, base tables, __ins.T, __del.T}` whose evaluation returns the
//! up-to-date view. Three shapes are produced:
//!
//! * **Change-table** (top-level aggregates, the method of the paper's
//!   experiments [22,23,27]): aggregate the insertion/deletion deltas into a
//!   signed *change table*, then merge it with the stale view. The paper's
//!   Example 1 writes the merge as a full outer join followed by a
//!   generalized projection with NULL-as-0; we emit the equivalent
//!   three-way form — `matched ∪ stale-only ∪ change-only` over keyed
//!   inner/anti joins — because it preserves Definition 2 keys on every
//!   node, which is exactly what the η push-down needs (Figure 3).
//! * **Delta-apply** (SPJ views): `(S ▷ ∇V) ∪ ∆V` by primary key.
//! * **Recompute** (anything else — nested aggregates, outer joins, median):
//!   the definition with every base scan replaced by its new state
//!   `(T ▷ ∇T) ∪ ∆T`. Still a plan, so sampling still pushes into it where
//!   Definition 3 allows — mirroring the paper's observation that V21/V22
//!   benefit less but still work.

use svc_storage::{Database, Result, StorageError};

use svc_relalg::derive::{derive, Derived, LeafProvider};
use svc_relalg::optimizer::{optimize, OptimizeReport};
use svc_relalg::plan::{JoinKind, Plan};
use svc_relalg::scalar::{col, lit, Expr, Func};

use crate::canon::{Canonical, MergeRule, SVC_CNT};
use crate::delta::{derive_delta, new_state, DeltaInfo};

/// Leaf name bound to the stale view inside maintenance plans.
pub const STALE_LEAF: &str = "__stale";

/// Which maintenance strategy a plan implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// No deltas pending: the plan is just `Scan __stale`.
    NoOp,
    /// Signed change-table merge for aggregate views.
    ChangeTable,
    /// Keyed delta application for SPJ views.
    DeltaApply,
    /// Full re-evaluation against the new base state.
    Recompute,
}

/// Leaf resolver for maintenance plans: knows the stale view and maps
/// `__ins.T` / `__del.T` to the schema of `T`.
pub struct MaintCatalog<'a> {
    /// The base database (old state).
    pub db: &'a Database,
    /// Derived type of the stale (canonical) view.
    pub stale: Derived,
}

impl LeafProvider for MaintCatalog<'_> {
    fn leaf(&self, name: &str) -> Option<Derived> {
        if name == STALE_LEAF {
            return Some(self.stale.clone());
        }
        let base =
            name.strip_prefix("__ins.").or_else(|| name.strip_prefix("__del.")).unwrap_or(name);
        self.db.leaf(base)
    }
}

fn least(a: Expr, b: Expr) -> Expr {
    Expr::Call { func: Func::Least, args: vec![a, b] }
}

fn greatest(a: Expr, b: Expr) -> Expr {
    Expr::Call { func: Func::Greatest, args: vec![a, b] }
}

fn coalesce0(e: Expr) -> Expr {
    e.coalesce(lit(0i64))
}

/// Rename every column of `plan` (whose schema is `names`) to
/// `{prefix}{name}` via a bare-column projection, keeping keys intact.
fn rename_all(plan: Plan, names: &[String], prefix: &str) -> Plan {
    Plan::Project {
        input: Box::new(plan),
        columns: names.iter().map(|n| (format!("{prefix}{n}"), col(n.clone()))).collect(),
    }
}

/// Build the maintenance plan for a canonicalized view.
pub fn maintenance_plan(
    canonical: &Canonical,
    cat: &MaintCatalog<'_>,
    info: &DeltaInfo,
) -> Result<(Plan, PlanKind)> {
    if info.is_empty() {
        return Ok((Plan::scan(STALE_LEAF), PlanKind::NoOp));
    }

    if let Some(shape) = &canonical.agg {
        if canonical.change_table_eligible(info.has_deletions()) {
            if let Ok(plan) = change_table_plan(canonical, cat, info) {
                return Ok((plan, PlanKind::ChangeTable));
            }
        }
        let _ = shape; // shape consumed inside change_table_plan
        return Ok((recompute_plan(&canonical.plan, cat, info)?, PlanKind::Recompute));
    }

    // SPJ view: keyed delta application against the stale view.
    match derive_delta(&canonical.plan, info, cat) {
        Ok(d) => {
            let mut out = Plan::scan(STALE_LEAF);
            if let Some(del) = d.del {
                let on: Vec<(String, String)> = derive(&canonical.plan, cat)?
                    .key_names()
                    .iter()
                    .map(|k| (k.to_string(), k.to_string()))
                    .collect();
                out = Plan::Join {
                    left: Box::new(out),
                    right: Box::new(del),
                    kind: JoinKind::Anti,
                    on,
                };
            }
            if let Some(ins) = d.ins {
                out = Plan::Union { left: Box::new(out), right: Box::new(ins) };
            }
            Ok((out, PlanKind::DeltaApply))
        }
        Err(_) => Ok((recompute_plan(&canonical.plan, cat, info)?, PlanKind::Recompute)),
    }
}

/// [`maintenance_plan`] followed by the standard optimizer — the form every
/// execution path evaluates. Callers that wrap the plan further (e.g. the
/// SVC cleaning path, which adds η on top before optimizing) should use the
/// raw [`maintenance_plan`] instead so each evaluated plan is optimized
/// exactly once.
pub fn optimized_maintenance_plan(
    canonical: &Canonical,
    cat: &MaintCatalog<'_>,
    info: &DeltaInfo,
) -> Result<(Plan, PlanKind, OptimizeReport)> {
    let (plan, kind) = maintenance_plan(canonical, cat, info)?;
    let (plan, report) = optimize(&plan, cat)?;
    Ok((plan, kind, report))
}

/// The change-table strategy for a canonical top-level aggregate.
fn change_table_plan(
    canonical: &Canonical,
    cat: &MaintCatalog<'_>,
    info: &DeltaInfo,
) -> Result<Plan> {
    let shape = canonical
        .agg
        .as_ref()
        .ok_or_else(|| StorageError::Invalid("change table requires an aggregate view".into()))?;
    let Plan::Aggregate { aggregates, group_by, .. } = &canonical.plan else {
        return Err(StorageError::Invalid("canonical plan is not an aggregate".into()));
    };

    // Canonical output field names: group fields followed by agg aliases.
    let canon_schema = derive(&canonical.plan, cat)?.schema;
    let all_names: Vec<String> = canon_schema.names().iter().map(|s| s.to_string()).collect();
    let group_names: Vec<String> = all_names[..group_by.len()].to_vec();
    let agg_names: Vec<String> = all_names[group_by.len()..].to_vec();

    let d = derive_delta(&shape.input, info, cat)?;
    let gamma = |input: Plan| Plan::Aggregate {
        input: Box::new(input),
        group_by: group_by.clone(),
        aggregates: aggregates.clone(),
    };

    // --- The signed change table over the deltas -------------------------
    let identity_cols = |names: &[String]| -> Vec<(String, Expr)> {
        names.iter().map(|n| (n.clone(), col(n.clone()))).collect()
    };
    let negate_cols = |prefix: &str| -> Vec<(String, Expr)> {
        let mut cols: Vec<(String, Expr)> =
            group_names.iter().map(|g| (g.clone(), col(format!("{prefix}{g}")))).collect();
        for a in &agg_names {
            cols.push((a.clone(), lit(0i64).sub(col(format!("{prefix}{a}")))));
        }
        cols
    };

    let change = match (d.ins, d.del) {
        (Some(ins), None) => gamma(ins),
        (None, Some(del)) => Plan::Project {
            input: Box::new(rename_all(gamma(del), &all_names, "__d_")),
            columns: negate_cols("__d_"),
        },
        (Some(ins), Some(del)) => {
            let gi = gamma(ins);
            let gd = rename_all(gamma(del), &all_names, "__d_");
            let on: Vec<(String, String)> =
                group_names.iter().map(|g| (g.clone(), format!("__d_{g}"))).collect();
            let on_rev: Vec<(String, String)> =
                on.iter().map(|(l, r)| (r.clone(), l.clone())).collect();

            let mut matched_cols: Vec<(String, Expr)> =
                group_names.iter().map(|g| (g.clone(), col(g.clone()))).collect();
            for a in &agg_names {
                matched_cols.push((
                    a.clone(),
                    coalesce0(col(a.clone())).sub(coalesce0(col(format!("__d_{a}")))),
                ));
            }
            let matched = Plan::Project {
                input: Box::new(Plan::Join {
                    left: Box::new(gi.clone()),
                    right: Box::new(gd.clone()),
                    kind: JoinKind::Inner,
                    on: on.clone(),
                }),
                columns: matched_cols,
            };
            let ins_only = Plan::Join {
                left: Box::new(gi.clone()),
                right: Box::new(gd.clone()),
                kind: JoinKind::Anti,
                on,
            };
            let del_only = Plan::Project {
                input: Box::new(Plan::Join {
                    left: Box::new(gd),
                    right: Box::new(gi),
                    kind: JoinKind::Anti,
                    on: on_rev,
                }),
                columns: negate_cols("__d_"),
            };
            matched.union(ins_only.union(del_only))
        }
        (None, None) => return Ok(Plan::scan(STALE_LEAF)),
    };

    // --- Merge the change table with the stale view ----------------------
    let change_renamed = rename_all(change, &all_names, "__c_");
    let stale = Plan::scan(STALE_LEAF);
    let on: Vec<(String, String)> =
        group_names.iter().map(|g| (g.clone(), format!("__c_{g}"))).collect();
    let on_rev: Vec<(String, String)> = on.iter().map(|(l, r)| (r.clone(), l.clone())).collect();

    let mut merged_cols: Vec<(String, Expr)> =
        group_names.iter().map(|g| (g.clone(), col(g.clone()))).collect();
    for (a, rule) in agg_names.iter().zip(shape.cols.iter().map(|c| &c.rule)) {
        let s = col(a.clone());
        let c = col(format!("__c_{a}"));
        let merged = match rule {
            MergeRule::Additive => coalesce0(s).add(coalesce0(c)),
            MergeRule::TakeMin => least(s, c),
            MergeRule::TakeMax => greatest(s, c),
            MergeRule::Recompute => {
                return Err(StorageError::Invalid(
                    "non-mergeable aggregate in change-table plan".into(),
                ))
            }
        };
        merged_cols.push((a.clone(), merged));
    }
    let matched_v = Plan::Project {
        input: Box::new(Plan::Join {
            left: Box::new(stale.clone()),
            right: Box::new(change_renamed.clone()),
            kind: JoinKind::Inner,
            on: on.clone(),
        }),
        columns: merged_cols,
    };
    let stale_only = Plan::Join {
        left: Box::new(stale.clone()),
        right: Box::new(change_renamed.clone()),
        kind: JoinKind::Anti,
        on,
    };
    let change_only = Plan::Project {
        input: Box::new(Plan::Join {
            left: Box::new(change_renamed),
            right: Box::new(stale),
            kind: JoinKind::Anti,
            on: on_rev,
        }),
        columns: identity_cols(&all_names)
            .into_iter()
            .map(|(n, _)| (n.clone(), col(format!("__c_{n}"))))
            .collect(),
    };

    let merged = matched_v.union(stale_only.union(change_only));
    // Drop groups whose rows were all deleted (superfluous rows).
    Ok(merged.select(col(SVC_CNT).gt(lit(0i64))))
}

/// Recomputation expressed as a plan: every base scan becomes its new state
/// `(T ▷ ∇T) ∪ ∆T`.
pub fn recompute_plan(def: &Plan, cat: &MaintCatalog<'_>, info: &DeltaInfo) -> Result<Plan> {
    Ok(match def {
        Plan::Scan { .. } => new_state(def, info, cat)?,
        Plan::Select { input, predicate } => Plan::Select {
            input: Box::new(recompute_plan(input, cat, info)?),
            predicate: predicate.clone(),
        },
        Plan::Project { input, columns } => Plan::Project {
            input: Box::new(recompute_plan(input, cat, info)?),
            columns: columns.clone(),
        },
        Plan::Join { left, right, kind, on } => Plan::Join {
            left: Box::new(recompute_plan(left, cat, info)?),
            right: Box::new(recompute_plan(right, cat, info)?),
            kind: *kind,
            on: on.clone(),
        },
        Plan::Aggregate { input, group_by, aggregates } => Plan::Aggregate {
            input: Box::new(recompute_plan(input, cat, info)?),
            group_by: group_by.clone(),
            aggregates: aggregates.clone(),
        },
        Plan::Union { left, right } => Plan::Union {
            left: Box::new(recompute_plan(left, cat, info)?),
            right: Box::new(recompute_plan(right, cat, info)?),
        },
        Plan::Intersect { left, right } => Plan::Intersect {
            left: Box::new(recompute_plan(left, cat, info)?),
            right: Box::new(recompute_plan(right, cat, info)?),
        },
        Plan::Difference { left, right } => Plan::Difference {
            left: Box::new(recompute_plan(left, cat, info)?),
            right: Box::new(recompute_plan(right, cat, info)?),
        },
        Plan::Hash { .. } => {
            return Err(StorageError::Invalid("unexpected η node inside a view definition".into()))
        }
    })
}
