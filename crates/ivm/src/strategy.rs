//! Maintenance strategies as relational plans.
//!
//! `maintenance_plan` compiles a (canonicalized) view definition plus the
//! current delta info into a plan `M` over the leaves
//! `{__stale, base tables, __ins.T, __del.T}` whose evaluation returns the
//! up-to-date view. Three shapes are produced:
//!
//! * **Change-table** (top-level aggregates, the method of the paper's
//!   experiments [22,23,27]): aggregate the insertion/deletion deltas into a
//!   signed *change table*, then merge it with the stale view. The paper's
//!   Example 1 writes the merge as a full outer join followed by a
//!   generalized projection with NULL-as-0; we emit the equivalent
//!   three-way form — `matched ∪ stale-only ∪ change-only` over keyed
//!   inner/anti joins — because it preserves Definition 2 keys on every
//!   node, which is exactly what the η push-down needs (Figure 3).
//! * **Delta-apply** (SPJ views): `(S ▷ ∇V) ∪ ∆V` by primary key.
//! * **Recompute** (anything else — nested aggregates, outer joins, median):
//!   the definition with every base scan replaced by its new state
//!   `(T ▷ ∇T) ∪ ∆T`. Still a plan, so sampling still pushes into it where
//!   Definition 3 allows — mirroring the paper's observation that V21/V22
//!   benefit less but still work.

use svc_storage::{Database, Result, StorageError};

use svc_relalg::derive::{derive, Derived, LeafProvider};
use svc_relalg::optimizer::{optimize, optimize_with, CardEstimator, OptimizeReport};
use svc_relalg::plan::{JoinKind, Plan};
use svc_relalg::scalar::{col, lit, Expr, Func};

use crate::canon::{Canonical, MergeRule, SVC_CNT};
use crate::delta::{derive_delta, new_state, DeltaInfo};

/// Leaf name bound to the stale view inside maintenance plans.
pub const STALE_LEAF: &str = "__stale";

/// Leaf name bound to an already-materialized signed change table inside
/// [`merge_change_plan`] — the driver-side merge step of mini-batch
/// maintenance, where workers evaluate per-partition change tables and the
/// results are folded into the view one at a time.
pub const CHANGE_LEAF: &str = "__change";

/// Which maintenance strategy a plan implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// No deltas pending: the plan is just `Scan __stale`.
    NoOp,
    /// Signed change-table merge for aggregate views.
    ChangeTable,
    /// Keyed delta application for SPJ views.
    DeltaApply,
    /// Full re-evaluation against the new base state.
    Recompute,
}

/// Leaf resolver for maintenance plans: knows the stale view and maps
/// `__ins.T` / `__del.T` to the schema of `T`.
pub struct MaintCatalog<'a> {
    /// The base database (old state).
    pub db: &'a Database,
    /// Derived type of the stale (canonical) view.
    pub stale: Derived,
}

impl LeafProvider for MaintCatalog<'_> {
    fn leaf(&self, name: &str) -> Option<Derived> {
        // The change table has the canonical view's schema and key.
        if name == STALE_LEAF || name == CHANGE_LEAF {
            return Some(self.stale.clone());
        }
        let base =
            name.strip_prefix("__ins.").or_else(|| name.strip_prefix("__del.")).unwrap_or(name);
        // Partition-suffixed delta leaves (`__ins.T@3`) share T's schema.
        let base = match base.rsplit_once('@') {
            Some((t, p))
                if base != name && !p.is_empty() && p.bytes().all(|b| b.is_ascii_digit()) =>
            {
                t
            }
            _ => base,
        };
        self.db.leaf(base)
    }
}

fn least(a: Expr, b: Expr) -> Expr {
    Expr::Call { func: Func::Least, args: vec![a, b] }
}

fn greatest(a: Expr, b: Expr) -> Expr {
    Expr::Call { func: Func::Greatest, args: vec![a, b] }
}

fn coalesce0(e: Expr) -> Expr {
    e.coalesce(lit(0i64))
}

/// Rename every column of `plan` (whose schema is `names`) to
/// `{prefix}{name}` via a bare-column projection, keeping keys intact.
fn rename_all(plan: Plan, names: &[String], prefix: &str) -> Plan {
    Plan::Project {
        input: Box::new(plan),
        columns: names.iter().map(|n| (format!("{prefix}{n}"), col(n.clone()))).collect(),
    }
}

/// Build the maintenance plan for a canonicalized view.
pub fn maintenance_plan(
    canonical: &Canonical,
    cat: &MaintCatalog<'_>,
    info: &DeltaInfo,
) -> Result<(Plan, PlanKind)> {
    if info.is_empty() {
        return Ok((Plan::scan(STALE_LEAF), PlanKind::NoOp));
    }

    if let Some(shape) = &canonical.agg {
        if canonical.change_table_eligible(info.has_deletions()) {
            if let Ok(plan) = change_table_plan(canonical, cat, info) {
                return Ok((plan, PlanKind::ChangeTable));
            }
        }
        let _ = shape; // shape consumed inside change_table_plan
        return Ok((recompute_plan(&canonical.plan, cat, info)?, PlanKind::Recompute));
    }

    // SPJ view: keyed delta application against the stale view.
    match derive_delta(&canonical.plan, info, cat) {
        Ok(d) => {
            let mut out = Plan::scan(STALE_LEAF);
            if let Some(del) = d.del {
                let on: Vec<(String, String)> = derive(&canonical.plan, cat)?
                    .key_names()
                    .iter()
                    .map(|k| (k.to_string(), k.to_string()))
                    .collect();
                out = Plan::Join {
                    left: Box::new(out),
                    right: Box::new(del),
                    kind: JoinKind::Anti,
                    on,
                };
            }
            if let Some(ins) = d.ins {
                out = Plan::Union { left: Box::new(out), right: Box::new(ins) };
            }
            Ok((out, PlanKind::DeltaApply))
        }
        Err(_) => Ok((recompute_plan(&canonical.plan, cat, info)?, PlanKind::Recompute)),
    }
}

/// [`maintenance_plan`] followed by the standard optimizer — the form every
/// execution path evaluates. Callers that wrap the plan further (e.g. the
/// SVC cleaning path, which adds η on top before optimizing) should use the
/// raw [`maintenance_plan`] instead so each evaluated plan is optimized
/// exactly once.
pub fn optimized_maintenance_plan(
    canonical: &Canonical,
    cat: &MaintCatalog<'_>,
    info: &DeltaInfo,
) -> Result<(Plan, PlanKind, OptimizeReport)> {
    optimized_maintenance_plan_with(canonical, cat, info, None)
}

/// [`optimized_maintenance_plan`] with an optional cardinality estimator:
/// when present, the optimizer additionally reorders the maintenance
/// plan's join regions by estimated cost (base-table statistics come from
/// the `svc-catalog` crate, which implements the estimator).
pub fn optimized_maintenance_plan_with(
    canonical: &Canonical,
    cat: &MaintCatalog<'_>,
    info: &DeltaInfo,
    est: Option<&dyn CardEstimator>,
) -> Result<(Plan, PlanKind, OptimizeReport)> {
    let (plan, kind) = maintenance_plan(canonical, cat, info)?;
    let (plan, report) = match est {
        Some(est) => optimize_with(&plan, cat, est)?,
        None => optimize(&plan, cat)?,
    };
    Ok((plan, kind, report))
}

/// Canonical output column names of an aggregate view: group fields
/// followed by aggregate aliases.
struct CanonNames {
    all: Vec<String>,
    group: Vec<String>,
    agg: Vec<String>,
}

fn canon_names(canonical: &Canonical, cat: &MaintCatalog<'_>) -> Result<CanonNames> {
    let Plan::Aggregate { group_by, .. } = &canonical.plan else {
        return Err(StorageError::Invalid("canonical plan is not an aggregate".into()));
    };
    let canon_schema = derive(&canonical.plan, cat)?.schema;
    let all: Vec<String> = canon_schema.names().iter().map(|s| s.to_string()).collect();
    let group = all[..group_by.len()].to_vec();
    let agg = all[group_by.len()..].to_vec();
    Ok(CanonNames { all, group, agg })
}

/// The *signed change table* of a canonical aggregate view for the given
/// deltas, as a plan over `{base tables, __ins.T, __del.T}` — the γ half of
/// the change-table strategy, without the stale-view merge. Returns `None`
/// when the deltas cannot touch the view (every branch pruned).
pub fn change_table_expr(
    canonical: &Canonical,
    cat: &MaintCatalog<'_>,
    info: &DeltaInfo,
) -> Result<Option<Plan>> {
    change_table_expr_with(canonical, cat, info, &canon_names(canonical, cat)?)
}

/// [`change_table_expr`] with the canonical names precomputed — the batch
/// path calls this once per chunk without re-deriving the view plan.
fn change_table_expr_with(
    canonical: &Canonical,
    cat: &MaintCatalog<'_>,
    info: &DeltaInfo,
    names: &CanonNames,
) -> Result<Option<Plan>> {
    let shape = canonical
        .agg
        .as_ref()
        .ok_or_else(|| StorageError::Invalid("change table requires an aggregate view".into()))?;
    let Plan::Aggregate { aggregates, group_by, .. } = &canonical.plan else {
        return Err(StorageError::Invalid("canonical plan is not an aggregate".into()));
    };

    let d = derive_delta(&shape.input, info, cat)?;
    let gamma = |input: Plan| Plan::Aggregate {
        input: Box::new(input),
        group_by: group_by.clone(),
        aggregates: aggregates.clone(),
    };
    let negate_cols = |prefix: &str| -> Vec<(String, Expr)> {
        let mut cols: Vec<(String, Expr)> =
            names.group.iter().map(|g| (g.clone(), col(format!("{prefix}{g}")))).collect();
        for a in &names.agg {
            cols.push((a.clone(), lit(0i64).sub(col(format!("{prefix}{a}")))));
        }
        cols
    };

    Ok(match (d.ins, d.del) {
        (Some(ins), None) => Some(gamma(ins)),
        (None, Some(del)) => Some(Plan::Project {
            input: Box::new(rename_all(gamma(del), &names.all, "__d_")),
            columns: negate_cols("__d_"),
        }),
        (Some(ins), Some(del)) => {
            let gi = gamma(ins);
            let gd = rename_all(gamma(del), &names.all, "__d_");
            let on: Vec<(String, String)> =
                names.group.iter().map(|g| (g.clone(), format!("__d_{g}"))).collect();
            let on_rev: Vec<(String, String)> =
                on.iter().map(|(l, r)| (r.clone(), l.clone())).collect();

            let mut matched_cols: Vec<(String, Expr)> =
                names.group.iter().map(|g| (g.clone(), col(g.clone()))).collect();
            for a in &names.agg {
                matched_cols.push((
                    a.clone(),
                    coalesce0(col(a.clone())).sub(coalesce0(col(format!("__d_{a}")))),
                ));
            }
            let matched = Plan::Project {
                input: Box::new(Plan::Join {
                    left: Box::new(gi.clone()),
                    right: Box::new(gd.clone()),
                    kind: JoinKind::Inner,
                    on: on.clone(),
                }),
                columns: matched_cols,
            };
            let ins_only = Plan::Join {
                left: Box::new(gi.clone()),
                right: Box::new(gd.clone()),
                kind: JoinKind::Anti,
                on,
            };
            let del_only = Plan::Project {
                input: Box::new(Plan::Join {
                    left: Box::new(gd),
                    right: Box::new(gi),
                    kind: JoinKind::Anti,
                    on: on_rev,
                }),
                columns: negate_cols("__d_"),
            };
            Some(matched.union(ins_only.union(del_only)))
        }
        (None, None) => None,
    })
}

/// Merge an arbitrary change-table-shaped plan with `Scan __stale` using the
/// canonical merge rules — the second half of the change-table strategy.
fn merge_with_stale(canonical: &Canonical, cat: &MaintCatalog<'_>, change: Plan) -> Result<Plan> {
    let shape = canonical
        .agg
        .as_ref()
        .ok_or_else(|| StorageError::Invalid("change table requires an aggregate view".into()))?;
    let names = canon_names(canonical, cat)?;

    let identity_cols = |names: &[String]| -> Vec<(String, Expr)> {
        names.iter().map(|n| (n.clone(), col(n.clone()))).collect()
    };

    let change_renamed = rename_all(change, &names.all, "__c_");
    let stale = Plan::scan(STALE_LEAF);
    let on: Vec<(String, String)> =
        names.group.iter().map(|g| (g.clone(), format!("__c_{g}"))).collect();
    let on_rev: Vec<(String, String)> = on.iter().map(|(l, r)| (r.clone(), l.clone())).collect();

    let mut merged_cols: Vec<(String, Expr)> =
        names.group.iter().map(|g| (g.clone(), col(g.clone()))).collect();
    for (a, rule) in names.agg.iter().zip(shape.cols.iter().map(|c| &c.rule)) {
        let s = col(a.clone());
        let c = col(format!("__c_{a}"));
        let merged = match rule {
            MergeRule::Additive => coalesce0(s).add(coalesce0(c)),
            MergeRule::TakeMin => least(s, c),
            MergeRule::TakeMax => greatest(s, c),
            MergeRule::Recompute => {
                return Err(StorageError::Invalid(
                    "non-mergeable aggregate in change-table plan".into(),
                ))
            }
        };
        merged_cols.push((a.clone(), merged));
    }
    let matched_v = Plan::Project {
        input: Box::new(Plan::Join {
            left: Box::new(stale.clone()),
            right: Box::new(change_renamed.clone()),
            kind: JoinKind::Inner,
            on: on.clone(),
        }),
        columns: merged_cols,
    };
    let stale_only = Plan::Join {
        left: Box::new(stale.clone()),
        right: Box::new(change_renamed.clone()),
        kind: JoinKind::Anti,
        on,
    };
    let change_only = Plan::Project {
        input: Box::new(Plan::Join {
            left: Box::new(change_renamed),
            right: Box::new(stale),
            kind: JoinKind::Anti,
            on: on_rev,
        }),
        columns: identity_cols(&names.all)
            .into_iter()
            .map(|(n, _)| (n.clone(), col(format!("__c_{n}"))))
            .collect(),
    };

    let merged = matched_v.union(stale_only.union(change_only));
    // Drop groups whose rows were all deleted (superfluous rows).
    Ok(merged.select(col(SVC_CNT).gt(lit(0i64))))
}

/// The change-table strategy for a canonical top-level aggregate: signed
/// change table over the deltas, merged with the stale view.
fn change_table_plan(
    canonical: &Canonical,
    cat: &MaintCatalog<'_>,
    info: &DeltaInfo,
) -> Result<Plan> {
    match change_table_expr(canonical, cat, info)? {
        None => Ok(Plan::scan(STALE_LEAF)),
        Some(change) => merge_with_stale(canonical, cat, change),
    }
}

/// The driver-side merge plan of mini-batch maintenance: fold one
/// already-materialized change table (bound as [`CHANGE_LEAF`]) into the
/// stale view (bound as [`STALE_LEAF`]). For additive merge rules the fold
/// is associative, so per-partition change tables can be applied in any
/// order and one at a time.
pub fn merge_change_plan(canonical: &Canonical, cat: &MaintCatalog<'_>) -> Result<Plan> {
    merge_with_stale(canonical, cat, Plan::scan(CHANGE_LEAF))
}

/// Compile a batch of delta chunks into per-partition change-table plans.
/// Chunk `p`'s plan reads its deltas through the partition-suffixed leaves
/// `__ins.T@p` / `__del.T@p`, so the whole batch shares one [`Bindings`]
/// set and can be evaluated side by side (`WorkerPool::evaluate_plans`);
/// the plans also share the change-table subtree *shape*, the multi-query
/// setting where batch evaluation amortizes optimization.
///
/// Errors when the view is not change-table eligible for a chunk's deltas
/// (min/max under deletions, median, non-aggregate views) — callers fall
/// back to sequential maintenance in that case — or when a chunk is empty
/// (partition first; `Deltas::partition` never emits empty chunks).
///
/// [`Bindings`]: svc_relalg::eval::Bindings
pub fn batch_change_plans(
    canonical: &Canonical,
    cat: &MaintCatalog<'_>,
    chunks: &[svc_storage::Deltas],
) -> Result<Vec<Plan>> {
    let names = canon_names(canonical, cat)?;
    let mut plans = Vec::with_capacity(chunks.len());
    for (p, chunk) in chunks.iter().enumerate() {
        let info = DeltaInfo::of(chunk);
        if !canonical.change_table_eligible(info.has_deletions()) {
            return Err(StorageError::Invalid(
                "batch change-table maintenance requires a change-table-eligible view".into(),
            ));
        }
        let change = change_table_expr_with(canonical, cat, &info, &names)?.ok_or_else(|| {
            StorageError::Invalid(format!("delta chunk {p} is empty; partition before batching"))
        })?;
        let suffixed = change.rename_leaves(&mut |name| {
            (name.starts_with("__ins.") || name.starts_with("__del."))
                .then(|| format!("{name}@{p}"))
        });
        plans.push(suffixed);
    }
    Ok(plans)
}

/// Recomputation expressed as a plan: every base scan becomes its new state
/// `(T ▷ ∇T) ∪ ∆T`.
pub fn recompute_plan(def: &Plan, cat: &MaintCatalog<'_>, info: &DeltaInfo) -> Result<Plan> {
    Ok(match def {
        Plan::Scan { .. } => new_state(def, info, cat)?,
        Plan::Select { input, predicate } => Plan::Select {
            input: Box::new(recompute_plan(input, cat, info)?),
            predicate: predicate.clone(),
        },
        Plan::Project { input, columns } => Plan::Project {
            input: Box::new(recompute_plan(input, cat, info)?),
            columns: columns.clone(),
        },
        Plan::Join { left, right, kind, on } => Plan::Join {
            left: Box::new(recompute_plan(left, cat, info)?),
            right: Box::new(recompute_plan(right, cat, info)?),
            kind: *kind,
            on: on.clone(),
        },
        Plan::Aggregate { input, group_by, aggregates } => Plan::Aggregate {
            input: Box::new(recompute_plan(input, cat, info)?),
            group_by: group_by.clone(),
            aggregates: aggregates.clone(),
        },
        Plan::Union { left, right } => Plan::Union {
            left: Box::new(recompute_plan(left, cat, info)?),
            right: Box::new(recompute_plan(right, cat, info)?),
        },
        Plan::Intersect { left, right } => Plan::Intersect {
            left: Box::new(recompute_plan(left, cat, info)?),
            right: Box::new(recompute_plan(right, cat, info)?),
        },
        Plan::Difference { left, right } => Plan::Difference {
            left: Box::new(recompute_plan(left, cat, info)?),
            right: Box::new(recompute_plan(right, cat, info)?),
        },
        Plan::Hash { .. } => {
            return Err(StorageError::Invalid("unexpected η node inside a view definition".into()))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use svc_storage::{DataType, Database, Schema, Table, Value};

    #[test]
    fn maint_catalog_resolves_partition_suffixed_delta_leaves() {
        let mut db = Database::new();
        let mut t = Table::new(
            Schema::from_pairs(&[("id", DataType::Int), ("x", DataType::Float)]).unwrap(),
            &["id"],
        )
        .unwrap();
        t.insert(vec![Value::Int(1), Value::Float(1.0)]).unwrap();
        db.create_table("log", t);
        let stale = db.leaf("log").unwrap();
        let cat = MaintCatalog { db: &db, stale };

        // Plain, partitioned, and special leaves all resolve.
        for name in ["log", "__ins.log", "__del.log", "__ins.log@0", "__del.log@17"] {
            let d = cat.leaf(name).unwrap_or_else(|| panic!("`{name}` must resolve"));
            assert_eq!(d.schema.names(), vec!["id", "x"], "schema of `{name}`");
        }
        assert!(cat.leaf(STALE_LEAF).is_some());
        assert!(cat.leaf(CHANGE_LEAF).is_some());
        // Non-numeric or prefix-less '@' names are not partition suffixes.
        assert!(cat.leaf("__ins.log@x7").is_none());
        assert!(cat.leaf("log@3").is_none());
        assert!(cat.leaf("__ins.missing@0").is_none());
    }
}
