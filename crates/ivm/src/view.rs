//! Materialized views: definition + canonical materialized state +
//! maintenance.

use std::sync::Arc;

use svc_storage::{Database, Deltas, Result, StorageError, Table};

use svc_relalg::derive::{derive_project, Derived};
use svc_relalg::eval::{evaluate, Bindings};
use svc_relalg::optimizer::optimize;
use svc_relalg::plan::Plan;
use svc_relalg::scalar::Expr;

use crate::canon::{canonicalize, Canonical};
use crate::delta::{del_leaf, ins_leaf, DeltaInfo};
use crate::strategy::{
    maintenance_plan, optimized_maintenance_plan_with, MaintCatalog, PlanKind, STALE_LEAF,
};

/// A materialized view: the user-facing definition, its canonical
/// (change-table maintainable) form, and the materialized canonical state.
///
/// The *canonical* table is what SVC samples and maintains; the *public*
/// projection (e.g. recombining `avg = sum / count`) is applied on demand —
/// both to the full view and to samples of it, which is sound because the
/// projection is row-local and keeps the primary key (Definition 2).
#[derive(Debug, Clone)]
pub struct MaterializedView {
    /// View name.
    pub name: String,
    /// The definition as written by the user.
    pub definition: Plan,
    canonical: Canonical,
    /// The materialized canonical state, behind an `Arc` so commits are
    /// pointer swaps: readers holding a [`ViewSnapshot`] keep the old
    /// epoch's table alive while maintenance installs the next one —
    /// nothing is ever mutated in place.
    table: Arc<Table>,
    /// Commit counter: bumped on every state replacement (epoch-swapped
    /// commits). Readers pair it with the table via
    /// [`MaterializedView::snapshot`].
    epoch: u64,
    /// Set when maintenance degraded (a batch was quarantined): the state
    /// is self-consistent for some prefix of the deltas but not fully
    /// caught up. Cleared by a successful full commit path
    /// ([`MaterializedView::mark_clean`], called by recovery).
    dirty: bool,
    /// When the materialized state was last replaced (creation, a
    /// `maintain*` call, or `set_table`) — the observable behind
    /// [`MaterializedView::staleness_age`].
    maintained_at: std::time::Instant,
}

/// A consistent point-in-time read of a view: the commit epoch and the
/// table that was current at it. Cheap to take (an `Arc` clone) and immune
/// to concurrent commits — the groundwork snapshot readers of the serving
/// layer hold while maintenance swaps epochs underneath them.
#[derive(Debug, Clone)]
pub struct ViewSnapshot {
    /// The commit epoch this snapshot observed.
    pub epoch: u64,
    /// The canonical state at that epoch.
    pub table: Arc<Table>,
}

/// Bind base tables, delta relations, and the stale view for evaluating a
/// maintenance plan.
pub fn maintenance_bindings<'a>(
    db: &'a Database,
    deltas: &'a Deltas,
    stale: &'a Table,
) -> Bindings<'a> {
    let mut b = Bindings::from_database(db);
    b.bind(STALE_LEAF, stale);
    for (name, set) in deltas.iter() {
        b.bind(ins_leaf(name), &set.insertions);
        b.bind(del_leaf(name), &set.deletions);
    }
    b
}

impl MaterializedView {
    /// Create and materialize a view from its definition against `db`. The
    /// canonical plan is run through the optimizer before the initial
    /// materialization (the definition itself is kept as written).
    pub fn create(name: impl Into<String>, definition: Plan, db: &Database) -> Result<Self> {
        let canonical = canonicalize(&definition);
        let (optimized, _) = optimize(&canonical.plan, db)?;
        let bindings = Bindings::from_database(db);
        let table = evaluate(&optimized, &bindings)?;
        Ok(MaterializedView {
            name: name.into(),
            definition,
            canonical,
            table: Arc::new(table),
            epoch: 0,
            dirty: false,
            maintained_at: std::time::Instant::now(),
        })
    }

    /// The canonical (internal) materialized state.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The canonicalization record (plan + public projection + merge rules).
    pub fn canonical(&self) -> &Canonical {
        &self.canonical
    }

    /// Primary-key column names of the canonical state.
    pub fn key_names(&self) -> Vec<String> {
        self.table.key_names().iter().map(|s| s.to_string()).collect()
    }

    /// Number of rows currently materialized.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True iff the view is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Apply the public projection to an arbitrary canonical-shaped table
    /// (the full view or a sample of it).
    pub fn public_of(&self, canonical_table: &Table) -> Result<Table> {
        project_table(canonical_table, self.canonical.public.as_deref())
    }

    /// The user-facing view contents.
    pub fn public_table(&self) -> Result<Table> {
        self.public_of(&self.table)
    }

    /// Replace the materialized state — the **commit point** of every
    /// maintenance path: an atomic epoch swap (the old table stays alive
    /// behind outstanding snapshots), bumping [`MaterializedView::epoch`]
    /// and resetting the staleness clock. Does not touch the dirty flag:
    /// callers that commit a degraded state mark it explicitly.
    pub fn set_table(&mut self, table: Table) {
        self.table = Arc::new(table);
        self.epoch += 1;
        self.maintained_at = std::time::Instant::now();
    }

    /// The commit epoch: how many times the materialized state has been
    /// replaced since creation. A `maintain` call that fails before its
    /// commit point leaves this unchanged — the observable behind the
    /// all-or-nothing fold contract.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A consistent `(epoch, table)` read — an `Arc` clone, never a table
    /// copy. Commits after this call do not affect the snapshot.
    pub fn snapshot(&self) -> ViewSnapshot {
        ViewSnapshot { epoch: self.epoch, table: Arc::clone(&self.table) }
    }

    /// True when maintenance degraded (a quarantined batch left the view
    /// not fully caught up). See [`MaterializedView::mark_dirty`].
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Flag the view as not fully caught up (set by the batch pipeline
    /// when it quarantines a failing batch).
    pub fn mark_dirty(&mut self) {
        self.dirty = true;
    }

    /// Clear the dirty flag (called by recovery paths once the view is
    /// known fresh again: a drained quarantine or a fallback recompute).
    pub fn mark_clean(&mut self) {
        self.dirty = false;
    }

    /// Wall-clock time since the materialized state was last replaced —
    /// the per-view staleness-age gauge: how long this view has been
    /// accumulating unapplied deltas.
    pub fn staleness_age(&self) -> std::time::Duration {
        self.maintained_at.elapsed()
    }

    /// Build this view's maintenance plan for the given deltas without
    /// executing it. Exposed so SVC can wrap it in η and push the hash down.
    pub fn build_maintenance_plan(
        &self,
        db: &Database,
        deltas: &Deltas,
    ) -> Result<(Plan, PlanKind)> {
        let info = DeltaInfo::of(deltas);
        let cat = MaintCatalog {
            db,
            stale: Derived { schema: self.table.schema().clone(), key: self.table.key().to_vec() },
        };
        maintenance_plan(&self.canonical, &cat, &info)
    }

    /// Bring the view up to date with respect to `deltas` (which are *not*
    /// consumed — the caller applies them to the base tables when the
    /// maintenance period ends). The maintenance plan goes through the
    /// optimizer exactly once. Returns the strategy that was used.
    pub fn maintain(&mut self, db: &Database, deltas: &Deltas) -> Result<PlanKind> {
        self.maintain_with(db, deltas, None)
    }

    /// [`MaterializedView::maintain`] with an optional cardinality
    /// estimator: the maintenance plan's joins are then reordered by
    /// estimated cost before evaluation.
    pub fn maintain_with(
        &mut self,
        db: &Database,
        deltas: &Deltas,
        est: Option<&dyn svc_relalg::optimizer::CardEstimator>,
    ) -> Result<PlanKind> {
        self.maintain_with_mode(db, deltas, est, svc_relalg::exec::ExecMode::sequential())
    }

    /// [`MaterializedView::maintain_with`] with an execution mode: when the
    /// mode carries a morsel scheduler (e.g. `svc-cluster`'s `WorkerPool`),
    /// the compiled maintenance plan runs morsel-parallel — base and delta
    /// scans split into row ranges, γ group maps merge at the barrier.
    pub fn maintain_with_mode(
        &mut self,
        db: &Database,
        deltas: &Deltas,
        est: Option<&dyn svc_relalg::optimizer::CardEstimator>,
        mode: svc_relalg::exec::ExecMode<'_>,
    ) -> Result<PlanKind> {
        let info = DeltaInfo::of(deltas);
        if info.is_empty() {
            // Nothing pending: don't copy the whole view through the
            // `Scan __stale` no-op plan, and don't commit a new epoch.
            return Ok(PlanKind::NoOp);
        }
        let cat = MaintCatalog {
            db,
            stale: Derived { schema: self.table.schema().clone(), key: self.table.key().to_vec() },
        };
        let (plan, kind, _report) =
            optimized_maintenance_plan_with(&self.canonical, &cat, &info, est)?;
        // Compile against the maintenance catalog (schemas only), then run
        // against the concrete bindings: the compile/run split of the
        // streaming executor, spelled out where the plan is built.
        let compiled = svc_relalg::exec::compile_with(&plan, &cat, est)?;
        let new_table = {
            let bindings = maintenance_bindings(db, deltas, &self.table);
            compiled.run_with(&bindings, mode)?
        };
        // Failpoint site: everything above is side-effect free on `self`,
        // so an injected failure here proves the commit is all-or-nothing.
        svc_fault::fail_point!(svc_fault::site::VIEW_MAINTAIN, StorageError::Invalid);
        self.set_table(new_table);
        Ok(kind)
    }

    /// Ground truth: evaluate the definition against the post-delta base
    /// state. Used as the correctness oracle in tests and benchmarks.
    pub fn recompute_fresh(&self, db: &Database, deltas: &Deltas) -> Result<Table> {
        let mut db2 = db.clone();
        let mut d2 = deltas.clone();
        d2.apply_to(&mut db2)?;
        let (optimized, _) = optimize(&self.canonical.plan, &db2)?;
        let bindings = Bindings::from_database(&db2);
        evaluate(&optimized, &bindings)
    }
}

/// Apply an optional projection to a table (row-local, key-preserving).
pub fn project_table(table: &Table, columns: Option<&[(String, Expr)]>) -> Result<Table> {
    let Some(columns) = columns else {
        return Ok(table.clone());
    };
    let input = Derived { schema: table.schema().clone(), key: table.key().to_vec() };
    let out = derive_project(&input, columns)?;
    let bound: Vec<_> =
        columns.iter().map(|(_, e)| e.bind(table.schema())).collect::<Result<_>>()?;
    let rows = table.rows().iter().map(|r| bound.iter().map(|e| e.eval(r)).collect()).collect();
    Table::from_rows(out.schema, out.key, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svc_relalg::aggregate::{AggFunc, AggSpec};
    use svc_relalg::plan::JoinKind;
    use svc_relalg::scalar::{col, lit};
    use svc_storage::{DataType, Schema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let mut video = Table::new(
            Schema::from_pairs(&[
                ("videoId", DataType::Int),
                ("ownerId", DataType::Int),
                ("duration", DataType::Float),
            ])
            .unwrap(),
            &["videoId"],
        )
        .unwrap();
        for v in 0..60i64 {
            video
                .insert(vec![
                    Value::Int(v),
                    Value::Int(v % 11),
                    Value::Float(0.5 + (v % 9) as f64 * 0.3),
                ])
                .unwrap();
        }
        let mut log = Table::new(
            Schema::from_pairs(&[("sessionId", DataType::Int), ("videoId", DataType::Int)])
                .unwrap(),
            &["sessionId"],
        )
        .unwrap();
        for s in 0..700i64 {
            log.insert(vec![Value::Int(s), Value::Int((s * 13 + 7) % 60)]).unwrap();
        }
        db.create_table("video", video);
        db.create_table("log", log);
        db
    }

    fn visit_view() -> Plan {
        Plan::scan("log")
            .join(Plan::scan("video"), JoinKind::Inner, &[("videoId", "videoId")])
            .aggregate(
                &["videoId"],
                vec![
                    AggSpec::count_all("visitCount"),
                    AggSpec::new("avgDur", AggFunc::Avg, col("duration")),
                ],
            )
    }

    fn mixed_deltas(db: &Database) -> Deltas {
        let mut deltas = Deltas::new();
        for s in 700..800i64 {
            deltas.insert(db, "log", vec![Value::Int(s), Value::Int(s % 70)]).unwrap();
        }
        for v in 60..70i64 {
            deltas
                .insert(db, "video", vec![Value::Int(v), Value::Int(3), Value::Float(2.5)])
                .unwrap();
        }
        for s in 0..30i64 {
            deltas.delete(db, "log", &vec![Value::Int(s * 3), Value::Null]).unwrap();
        }
        deltas.update(db, "log", vec![Value::Int(1), Value::Int(59)]).unwrap();
        deltas.update(db, "video", vec![Value::Int(10), Value::Int(5), Value::Float(9.9)]).unwrap();
        deltas
    }

    #[test]
    fn change_table_matches_recompute_on_mixed_deltas() {
        let db = db();
        let mut view = MaterializedView::create("visitView", visit_view(), &db).unwrap();
        let deltas = mixed_deltas(&db);
        let expected = view.recompute_fresh(&db, &deltas).unwrap();
        let kind = view.maintain(&db, &deltas).unwrap();
        assert_eq!(kind, PlanKind::ChangeTable);
        assert!(
            view.table().approx_same_contents(&expected, 1e-9),
            "IVM diverged from recompute: {} vs {} rows",
            view.len(),
            expected.len()
        );
    }

    #[test]
    fn insert_only_change_table() {
        let db = db();
        let mut view = MaterializedView::create("v", visit_view(), &db).unwrap();
        let mut deltas = Deltas::new();
        for s in 700..900i64 {
            deltas.insert(&db, "log", vec![Value::Int(s), Value::Int(s % 60)]).unwrap();
        }
        let expected = view.recompute_fresh(&db, &deltas).unwrap();
        let kind = view.maintain(&db, &deltas).unwrap();
        assert_eq!(kind, PlanKind::ChangeTable);
        assert!(view.table().approx_same_contents(&expected, 1e-9));
    }

    #[test]
    fn deletion_removes_superfluous_groups() {
        let db = db();
        let view_def = Plan::scan("log").aggregate(&["videoId"], vec![AggSpec::count_all("n")]);
        let mut view = MaterializedView::create("v", view_def, &db).unwrap();
        // Delete every session of video 0 (sessions where (s*13+7)%60 == 0).
        let mut deltas = Deltas::new();
        let victims: Vec<i64> = (0..700i64).filter(|s| (s * 13 + 7) % 60 == 0).collect();
        assert!(!victims.is_empty());
        for s in &victims {
            deltas.delete(&db, "log", &vec![Value::Int(*s), Value::Null]).unwrap();
        }
        let before = view.len();
        let expected = view.recompute_fresh(&db, &deltas).unwrap();
        let kind = view.maintain(&db, &deltas).unwrap();
        assert_eq!(kind, PlanKind::ChangeTable);
        assert!(view.table().approx_same_contents(&expected, 1e-9));
        assert_eq!(view.len(), before - 1, "video 0's group must disappear");
    }

    #[test]
    fn public_projection_recombines_avg() {
        let db = db();
        let view = MaterializedView::create("v", visit_view(), &db).unwrap();
        let public = view.public_table().unwrap();
        assert_eq!(public.schema().names(), vec!["videoId", "visitCount", "avgDur"]);
        // Spot-check: avg equals sum/count computed directly.
        let direct = evaluate(&visit_view(), &Bindings::from_database(&db)).unwrap();
        assert!(public.same_contents(&direct));
    }

    #[test]
    fn spj_view_delta_apply() {
        let db = db();
        let def = Plan::scan("log")
            .join(Plan::scan("video"), JoinKind::Inner, &[("videoId", "videoId")])
            .select(col("duration").gt(lit(1.0)));
        let mut view = MaterializedView::create("v", def, &db).unwrap();
        let deltas = mixed_deltas(&db);
        let expected = view.recompute_fresh(&db, &deltas).unwrap();
        let kind = view.maintain(&db, &deltas).unwrap();
        assert_eq!(kind, PlanKind::DeltaApply);
        assert!(view.table().approx_same_contents(&expected, 1e-9));
    }

    #[test]
    fn median_view_falls_back_to_recompute() {
        let db = db();
        let def = Plan::scan("video").aggregate(
            &["ownerId"],
            vec![AggSpec::new("medDur", AggFunc::Median, col("duration"))],
        );
        let mut view = MaterializedView::create("v", def, &db).unwrap();
        let mut deltas = Deltas::new();
        deltas
            .insert(&db, "video", vec![Value::Int(99), Value::Int(1), Value::Float(4.0)])
            .unwrap();
        let expected = view.recompute_fresh(&db, &deltas).unwrap();
        let kind = view.maintain(&db, &deltas).unwrap();
        assert_eq!(kind, PlanKind::Recompute);
        assert!(view.table().approx_same_contents(&expected, 1e-9));
    }

    #[test]
    fn min_max_insert_only_uses_change_table_but_deletes_force_recompute() {
        let db = db();
        let def = Plan::scan("video")
            .aggregate(&["ownerId"], vec![AggSpec::new("maxDur", AggFunc::Max, col("duration"))]);
        let mut view = MaterializedView::create("v", def.clone(), &db).unwrap();
        let mut ins_only = Deltas::new();
        ins_only
            .insert(&db, "video", vec![Value::Int(99), Value::Int(1), Value::Float(44.0)])
            .unwrap();
        let expected = view.recompute_fresh(&db, &ins_only).unwrap();
        let kind = view.maintain(&db, &ins_only).unwrap();
        assert_eq!(kind, PlanKind::ChangeTable);
        assert!(view.table().approx_same_contents(&expected, 1e-9));

        let mut view = MaterializedView::create("v", def, &db).unwrap();
        let mut with_del = Deltas::new();
        with_del.delete(&db, "video", &vec![Value::Int(7), Value::Null, Value::Null]).unwrap();
        let expected = view.recompute_fresh(&db, &with_del).unwrap();
        let kind = view.maintain(&db, &with_del).unwrap();
        assert_eq!(kind, PlanKind::Recompute);
        assert!(view.table().approx_same_contents(&expected, 1e-9));
    }

    #[test]
    fn noop_when_no_deltas() {
        let db = db();
        let mut view = MaterializedView::create("v", visit_view(), &db).unwrap();
        let before = view.table().clone();
        let kind = view.maintain(&db, &Deltas::new()).unwrap();
        assert_eq!(kind, PlanKind::NoOp);
        assert!(view.table().same_contents(&before));
    }

    #[test]
    fn batched_change_plans_fold_to_full_maintenance() {
        use crate::delta::{del_leaf_at, ins_leaf_at};
        use crate::strategy::{batch_change_plans, merge_change_plan, CHANGE_LEAF};

        let db = db();
        let mut view = MaterializedView::create("v", visit_view(), &db).unwrap();
        // A single-table stream (insertions, deletions, updates of `log`):
        // chunk-parallel change tables are exact for single-table deltas.
        let mut deltas = Deltas::new();
        for s in 700..860i64 {
            deltas.insert(&db, "log", vec![Value::Int(s), Value::Int(s % 60)]).unwrap();
        }
        for s in 0..40i64 {
            deltas.delete(&db, "log", &vec![Value::Int(s * 5), Value::Null]).unwrap();
        }
        deltas.update(&db, "log", vec![Value::Int(7), Value::Int(59)]).unwrap();
        let expected = view.recompute_fresh(&db, &deltas).unwrap();

        let cat = MaintCatalog {
            db: &db,
            stale: Derived {
                schema: view.table().schema().clone(),
                key: view.table().key().to_vec(),
            },
        };
        let chunks = deltas.clone().partition(4);
        assert!(chunks.len() > 1, "enough records to actually partition");
        let plans = batch_change_plans(view.canonical(), &cat, &chunks).unwrap();
        assert_eq!(plans.len(), chunks.len());

        // Shared bindings: every chunk's deltas bound side by side.
        let mut b = Bindings::from_database(&db);
        for (p, chunk) in chunks.iter().enumerate() {
            for (name, set) in chunk.iter() {
                b.bind(ins_leaf_at(name, p), &set.insertions);
                b.bind(del_leaf_at(name, p), &set.deletions);
            }
        }
        let changes: Vec<Table> = plans.iter().map(|pl| evaluate(pl, &b).unwrap()).collect();

        // Fold the per-partition change tables into the view one at a time.
        let merge = merge_change_plan(view.canonical(), &cat).unwrap();
        let mut current = view.table().clone();
        for c in &changes {
            let mut mb = Bindings::new();
            mb.bind(crate::strategy::STALE_LEAF, &current);
            mb.bind(CHANGE_LEAF, c);
            current = evaluate(&merge, &mb).unwrap();
        }
        assert!(
            current.approx_same_contents(&expected, 1e-9),
            "folded batch maintenance diverged: {} vs {} rows",
            current.len(),
            expected.len()
        );

        // And the sequential path agrees, as a sanity anchor.
        view.maintain(&db, &deltas).unwrap();
        assert!(view.table().approx_same_contents(&current, 1e-9));
    }

    #[test]
    fn nested_aggregate_view_recomputes_correctly() {
        // The blocked V21-style shape: distribution of visit counts.
        let db = db();
        let def = Plan::scan("log")
            .aggregate(&["videoId"], vec![AggSpec::count_all("c")])
            .aggregate(&["c"], vec![AggSpec::count_all("n")]);
        let mut view = MaterializedView::create("v", def, &db).unwrap();
        let deltas = mixed_deltas(&db);
        let expected = view.recompute_fresh(&db, &deltas).unwrap();
        let kind = view.maintain(&db, &deltas).unwrap();
        assert_eq!(kind, PlanKind::Recompute);
        assert!(view.table().approx_same_contents(&expected, 1e-9));
    }

    #[test]
    fn commits_are_epoch_swaps_and_snapshots_outlive_them() {
        let db = db();
        let mut view = MaterializedView::create("v", visit_view(), &db).unwrap();
        assert_eq!(view.epoch(), 0);
        assert!(!view.is_dirty());

        let before = view.snapshot();
        let deltas = mixed_deltas(&db);
        view.maintain(&db, &deltas).unwrap();
        assert_eq!(view.epoch(), 1, "one maintain, one commit");
        let after = view.snapshot();
        assert_eq!(after.epoch, 1);
        // The pre-commit snapshot still reads the old state: the commit
        // swapped the table out from under it without mutating it.
        assert_eq!(before.epoch, 0);
        assert!(!before.table.same_contents(&after.table), "deltas must have changed the view");
        assert!(after.table.same_contents(view.table()));

        // A no-op maintain does not commit.
        view.maintain(&db, &Deltas::new()).unwrap();
        assert_eq!(view.epoch(), 1, "no deltas, no commit");

        view.mark_dirty();
        assert!(view.is_dirty());
        view.mark_clean();
        assert!(!view.is_dirty());
    }
}
