//! Delta-plan derivation: given an SPJ(U) expression over base relations,
//! produce plans computing the rows *inserted into* and *deleted from* its
//! result when the base relations change.
//!
//! For a join `L ⋈ R` with `L_new = (L − ∇L) ∪ ∆L` the classic rules apply:
//!
//! ```text
//! ∆(L ⋈ R) = ((L − ∇L) ⋈ ∆R)  ∪  (∆L ⋈ R_new)
//! ∇(L ⋈ R) = (∇L ⋈ R)         ∪  ((L − ∇L) ⋈ ∇R)
//! ```
//!
//! Keyed set subtraction (`−` by primary key) is expressed with the internal
//! `Anti` join kind, which keeps every intermediate a plain plan so that the
//! hashing operator can still be pushed through it.
//!
//! Leaves follow the naming convention `__ins.<table>` / `__del.<table>`;
//! `svc-ivm`'s bindings attach the matching delta relations at evaluation
//! time. Branches whose deltas are provably empty (the table was not
//! touched) are pruned to `None`.

use std::collections::BTreeSet;

use svc_storage::{Deltas, Result, StorageError};

use svc_relalg::derive::{derive, LeafProvider};
use svc_relalg::plan::{JoinKind, Plan};

/// Leaf name of the insertion delta for `table`.
pub fn ins_leaf(table: &str) -> String {
    format!("__ins.{table}")
}

/// Leaf name of the deletion delta for `table`.
pub fn del_leaf(table: &str) -> String {
    format!("__del.{table}")
}

/// Leaf name of partition `part`'s insertion delta for `table`, used when a
/// batch of delta chunks is bound side by side for parallel evaluation.
pub fn ins_leaf_at(table: &str, part: usize) -> String {
    format!("__ins.{table}@{part}")
}

/// Leaf name of partition `part`'s deletion delta for `table`.
pub fn del_leaf_at(table: &str, part: usize) -> String {
    format!("__del.{table}@{part}")
}

/// Which base tables have pending insertions / deletions. Used to prune
/// provably-empty delta branches.
#[derive(Debug, Clone, Default)]
pub struct DeltaInfo {
    /// Tables with at least one pending insertion.
    pub ins: BTreeSet<String>,
    /// Tables with at least one pending deletion.
    pub del: BTreeSet<String>,
}

impl DeltaInfo {
    /// Extract from a concrete delta set.
    pub fn of(deltas: &Deltas) -> DeltaInfo {
        let mut info = DeltaInfo::default();
        for (name, set) in deltas.iter() {
            if !set.insertions.is_empty() {
                info.ins.insert(name.to_string());
            }
            if !set.deletions.is_empty() {
                info.del.insert(name.to_string());
            }
        }
        info
    }

    /// True iff any touched table has deletions.
    pub fn has_deletions(&self) -> bool {
        !self.del.is_empty()
    }

    /// True iff nothing changed at all.
    pub fn is_empty(&self) -> bool {
        self.ins.is_empty() && self.del.is_empty()
    }
}

/// The insertion and deletion plans for a derived relation. `None` means
/// provably empty.
#[derive(Debug, Clone)]
pub struct DeltaPlan {
    /// Plan computing rows inserted into the result.
    pub ins: Option<Plan>,
    /// Plan computing rows deleted from the result.
    pub del: Option<Plan>,
}

impl DeltaPlan {
    const EMPTY: DeltaPlan = DeltaPlan { ins: None, del: None };
}

/// Key-equality pairs `(k, k)` for a plan's derived primary key, used for
/// keyed anti-joins.
fn key_pairs(plan: &Plan, cat: &impl LeafProvider) -> Result<Vec<(String, String)>> {
    let d = derive(plan, cat)?;
    Ok(d.key_names().iter().map(|k| (k.to_string(), k.to_string())).collect())
}

/// `plan − del` by primary key (anti-join); identity when `del` is `None`.
fn minus(plan: Plan, del: &Option<Plan>, cat: &impl LeafProvider) -> Result<Plan> {
    match del {
        None => Ok(plan),
        Some(d) => {
            let on = key_pairs(&plan, cat)?;
            Ok(Plan::Join {
                left: Box::new(plan),
                right: Box::new(d.clone()),
                kind: JoinKind::Anti,
                on,
            })
        }
    }
}

/// The *new state* of a derived relation as a plan: `(R − ∇R) ∪ ∆R`.
pub fn new_state(plan: &Plan, info: &DeltaInfo, cat: &impl LeafProvider) -> Result<Plan> {
    let d = derive_delta(plan, info, cat)?;
    let mut out = minus(plan.clone(), &d.del, cat)?;
    if let Some(ins) = d.ins {
        out = Plan::Union { left: Box::new(out), right: Box::new(ins) };
    }
    Ok(out)
}

fn union_opt(a: Option<Plan>, b: Option<Plan>) -> Option<Plan> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(a), Some(b)) => Some(Plan::Union { left: Box::new(a), right: Box::new(b) }),
    }
}

/// Derive the delta plans of `plan`. Errors on constructs outside the
/// supported SPJ(U) class (nested aggregates, outer joins, η nodes); callers
/// fall back to the recomputation strategy in that case.
pub fn derive_delta(plan: &Plan, info: &DeltaInfo, cat: &impl LeafProvider) -> Result<DeltaPlan> {
    Ok(match plan {
        Plan::Scan { table } => DeltaPlan {
            ins: info.ins.contains(table).then(|| Plan::scan(ins_leaf(table))),
            del: info.del.contains(table).then(|| Plan::scan(del_leaf(table))),
        },
        Plan::Select { input, predicate } => {
            let d = derive_delta(input, info, cat)?;
            DeltaPlan {
                ins: d.ins.map(|p| p.select(predicate.clone())),
                del: d.del.map(|p| p.select(predicate.clone())),
            }
        }
        Plan::Project { input, columns } => {
            let d = derive_delta(input, info, cat)?;
            let proj = |p: Plan| Plan::Project { input: Box::new(p), columns: columns.clone() };
            DeltaPlan { ins: d.ins.map(proj), del: d.del.map(proj) }
        }
        Plan::Join { left, right, kind: JoinKind::Inner, on } => {
            let dl = derive_delta(left, info, cat)?;
            let dr = derive_delta(right, info, cat)?;
            if dl.ins.is_none() && dl.del.is_none() && dr.ins.is_none() && dr.del.is_none() {
                return Ok(DeltaPlan::EMPTY);
            }
            let join = |l: Plan, r: Plan| Plan::Join {
                left: Box::new(l),
                right: Box::new(r),
                kind: JoinKind::Inner,
                on: on.clone(),
            };
            let l_minus = minus((**left).clone(), &dl.del, cat)?;

            // Insertions: (L − ∇L) ⋈ ∆R  ∪  ∆L ⋈ R_new
            let ins_a = dr.ins.clone().map(|ir| join(l_minus.clone(), ir));
            let ins_b = match &dl.ins {
                Some(il) => Some(join(il.clone(), new_state(right, info, cat)?)),
                None => None,
            };
            // Deletions: ∇L ⋈ R  ∪  (L − ∇L) ⋈ ∇R
            let del_a = dl.del.map(|dl_| join(dl_, (**right).clone()));
            let del_b = dr.del.map(|dr_| join(l_minus.clone(), dr_));

            DeltaPlan { ins: union_opt(ins_a, ins_b), del: union_opt(del_a, del_b) }
        }
        Plan::Union { left, right } => {
            // Set-semantics union: a row enters the result iff it is new to
            // *both* old sides, and leaves iff it is gone from *both* new
            // sides.
            let dl = derive_delta(left, info, cat)?;
            let dr = derive_delta(right, info, cat)?;
            if dl.ins.is_none() && dl.del.is_none() && dr.ins.is_none() && dr.del.is_none() {
                return Ok(DeltaPlan::EMPTY);
            }
            let raw_ins = union_opt(dl.ins, dr.ins);
            let raw_del = union_opt(dl.del, dr.del);
            let diff =
                |p: Plan, q: Plan| Plan::Difference { left: Box::new(p), right: Box::new(q) };
            let ins = raw_ins.map(|p| diff(diff(p, (**left).clone()), (**right).clone()));
            let del = match raw_del {
                None => None,
                Some(p) => {
                    let nl = new_state(left, info, cat)?;
                    let nr = new_state(right, info, cat)?;
                    Some(diff(diff(p, nl), nr))
                }
            };
            DeltaPlan { ins, del }
        }
        Plan::Join { .. } => {
            return Err(StorageError::Invalid(
                "delta derivation supports only inner joins; outer joins fall back to \
                 recomputation"
                    .into(),
            ))
        }
        Plan::Aggregate { .. } => {
            return Err(StorageError::Invalid(
                "nested aggregate blocks delta derivation (Appendix 12.4); falling back to \
                 recomputation"
                    .into(),
            ))
        }
        Plan::Intersect { .. } | Plan::Difference { .. } => {
            return Err(StorageError::Invalid(
                "delta derivation for ∩/− is not implemented; falling back to recomputation".into(),
            ))
        }
        Plan::Hash { .. } => {
            return Err(StorageError::Invalid("unexpected η node inside a view definition".into()))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use svc_relalg::eval::{evaluate, Bindings};
    use svc_relalg::scalar::{col, lit};
    use svc_storage::{DataType, Database, Schema, Table, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let mut video = Table::new(
            Schema::from_pairs(&[("videoId", DataType::Int), ("duration", DataType::Float)])
                .unwrap(),
            &["videoId"],
        )
        .unwrap();
        for v in 0..50i64 {
            video.insert(vec![Value::Int(v), Value::Float(1.0 + (v % 7) as f64)]).unwrap();
        }
        let mut log = Table::new(
            Schema::from_pairs(&[("sessionId", DataType::Int), ("videoId", DataType::Int)])
                .unwrap(),
            &["sessionId"],
        )
        .unwrap();
        for s in 0..400i64 {
            log.insert(vec![Value::Int(s), Value::Int(s % 50)]).unwrap();
        }
        db.create_table("video", video);
        db.create_table("log", log);
        db
    }

    fn make_deltas(db: &Database) -> Deltas {
        let mut deltas = Deltas::new();
        // New sessions (including to a brand-new video), one deleted session,
        // one updated session.
        for s in 400..450i64 {
            deltas.insert(db, "log", vec![Value::Int(s), Value::Int(s % 55)]).unwrap();
        }
        for v in 50..55i64 {
            deltas.insert(db, "video", vec![Value::Int(v), Value::Float(9.0)]).unwrap();
        }
        deltas.delete(db, "log", &vec![Value::Int(3), Value::Null]).unwrap();
        deltas.update(db, "log", vec![Value::Int(5), Value::Int(49)]).unwrap();
        deltas
    }

    /// Evaluate a maintenance-shaped plan with base + delta bindings.
    fn eval_with_deltas(plan: &Plan, db: &Database, deltas: &Deltas) -> Table {
        let mut b = Bindings::from_database(db);
        for (name, set) in deltas.iter() {
            b.bind(ins_leaf(name), &set.insertions);
            b.bind(del_leaf(name), &set.deletions);
        }
        evaluate(plan, &b).unwrap()
    }

    // By-value keeps the inline plan-building call sites clean.
    #[allow(clippy::needless_pass_by_value)]
    fn check_new_state_matches_recompute(view: Plan) {
        let db = db();
        let deltas = make_deltas(&db);
        let info = DeltaInfo::of(&deltas);
        let ns = new_state(&view, &info, &db).unwrap();
        let incremental = eval_with_deltas(&ns, &db, &deltas);

        // Ground truth: apply deltas then evaluate the definition.
        let mut db2 = db;
        let mut d2 = deltas;
        d2.apply_to(&mut db2).unwrap();
        let b2 = Bindings::from_database(&db2);
        let expected = evaluate(&view, &b2).unwrap();

        assert!(
            incremental.same_contents(&expected),
            "delta-maintained state diverged: {} vs {} rows",
            incremental.len(),
            expected.len()
        );
    }

    #[test]
    fn scan_delta_matches_recompute() {
        check_new_state_matches_recompute(Plan::scan("log"));
    }

    #[test]
    fn select_delta_matches_recompute() {
        check_new_state_matches_recompute(Plan::scan("log").select(col("videoId").lt(lit(30i64))));
    }

    #[test]
    fn project_delta_matches_recompute() {
        check_new_state_matches_recompute(
            Plan::scan("video").project(vec![
                ("videoId", col("videoId")),
                ("mins", col("duration").mul(lit(60.0))),
            ]),
        );
    }

    #[test]
    fn join_delta_matches_recompute() {
        check_new_state_matches_recompute(Plan::scan("log").join(
            Plan::scan("video"),
            JoinKind::Inner,
            &[("videoId", "videoId")],
        ));
    }

    #[test]
    fn join_then_select_delta_matches_recompute() {
        check_new_state_matches_recompute(
            Plan::scan("log")
                .join(Plan::scan("video"), JoinKind::Inner, &[("videoId", "videoId")])
                .select(col("duration").gt(lit(2.0))),
        );
    }

    #[test]
    fn union_delta_matches_recompute() {
        let a = Plan::scan("log").select(col("videoId").lt(lit(10i64)));
        let b = Plan::scan("log").select(col("videoId").ge(lit(40i64)));
        check_new_state_matches_recompute(a.union(b));
    }

    #[test]
    fn untouched_tables_prune_to_empty() {
        let db = db();
        let mut deltas = Deltas::new();
        deltas.insert(&db, "video", vec![Value::Int(99), Value::Float(1.0)]).unwrap();
        let info = DeltaInfo::of(&deltas);
        let d = derive_delta(&Plan::scan("log"), &info, &db).unwrap();
        assert!(d.ins.is_none() && d.del.is_none());
        // A join still produces a delta through the video side only.
        let join =
            Plan::scan("log").join(Plan::scan("video"), JoinKind::Inner, &[("videoId", "videoId")]);
        let d = derive_delta(&join, &info, &db).unwrap();
        assert!(d.ins.is_some());
        assert!(d.del.is_none());
    }

    #[test]
    fn aggregates_and_outer_joins_are_rejected() {
        let db = db();
        let info = DeltaInfo::default();
        let agg = Plan::scan("log")
            .aggregate(&["videoId"], vec![svc_relalg::aggregate::AggSpec::count_all("n")]);
        assert!(derive_delta(&agg, &info, &db).is_err());
        let outer =
            Plan::scan("log").join(Plan::scan("video"), JoinKind::Left, &[("videoId", "videoId")]);
        assert!(derive_delta(&outer, &info, &db).is_err());
    }
}
