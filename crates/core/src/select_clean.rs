//! Select-query cleaning (Appendix 12.1.2).
//!
//! `SELECT * FROM View WHERE cond(*)` on a stale view returns rows that may
//! be missing, falsely included, or incorrect. Using the corresponding
//! samples and row lineage (primary keys), SVC patches the stale result:
//! sampled updates overwrite stale rows, sampled missing rows are added,
//! sampled superfluous rows are removed — and the magnitude of each error
//! class is estimated by rewriting the select as `count` queries (three
//! "confidence" intervals).

use std::collections::HashSet;

use svc_catalog::TableStats;
use svc_relalg::eval::Bindings;
use svc_relalg::plan::Plan;
use svc_relalg::scalar::Expr;
use svc_stats::clt::sum_interval;
use svc_stats::moments::Moments;
use svc_storage::{KeyTuple, Result, Table};

/// Leaf name the stale view binds to inside the select-cleaning pipeline.
const VIEW_LEAF: &str = "__select_view";

use crate::config::SvcConfig;
use crate::estimate::{Estimate, Method};

/// The outcome of cleaning a select query.
#[derive(Debug, Clone)]
pub struct CleanSelectResult {
    /// The patched result rows.
    pub rows: Table,
    /// Estimated number of updated rows in the true result (scaled `1/m`).
    pub updated: Estimate,
    /// Estimated number of rows missing from the stale result.
    pub added: Estimate,
    /// Estimated number of superfluous rows in the stale result.
    pub removed: Estimate,
    /// Catalog-estimated number of stale rows the predicate selects (only
    /// when view statistics were supplied) — lets callers sanity-check the
    /// patched cardinality against the cost model.
    pub estimated_stale_matches: Option<f64>,
}

fn count_estimate(hits: usize, sample_size: usize, m: f64, cfg: &SvcConfig) -> Estimate {
    // Scaled indicator sum with a CLT bound, as for `count` queries.
    let mut moments = Moments::new();
    for i in 0..sample_size {
        moments.push(if i < hits { 1.0 / m } else { 0.0 });
    }
    let value = moments.sum();
    Estimate {
        value,
        ci: Some(sum_interval(value, moments.variance(), moments.count(), cfg.confidence)),
        method: Method::Correction,
        sample_size,
        predicate_rows: hits,
        exceedance_probability: None,
    }
}

/// Clean a select query against the stale view using the corresponding
/// samples. All tables are in the view's public schema and share its key.
pub fn clean_select(
    stale_view: &Table,
    stale_sample: &Table,
    clean_sample: &Table,
    predicate: &Expr,
    m: f64,
    cfg: &SvcConfig,
) -> Result<CleanSelectResult> {
    clean_select_with(stale_view, stale_sample, clean_sample, predicate, m, cfg, None)
}

/// [`clean_select`] with optional catalog statistics of the (stale) view:
/// when the stats *prove* the predicate selects nothing — a numeric
/// comparison entirely outside the column's conservative [min, max]
/// envelope — the O(|view|) stale scan is skipped outright, and the
/// result carries the estimated stale match count either way.
pub fn clean_select_with(
    stale_view: &Table,
    stale_sample: &Table,
    clean_sample: &Table,
    predicate: &Expr,
    m: f64,
    cfg: &SvcConfig,
    stats: Option<&TableStats>,
) -> Result<CleanSelectResult> {
    clean_select_with_mode(
        stale_view,
        stale_sample,
        clean_sample,
        predicate,
        m,
        cfg,
        stats,
        svc_relalg::exec::ExecMode::sequential(),
    )
}

/// [`clean_select_with`] with an execution mode: a mode carrying a morsel
/// scheduler runs the O(|view|) stale σ scan morsel-parallel — the one
/// view-sized pass of select cleaning (the sample patch passes are
/// O(sample) and stay on the driver).
#[allow(clippy::too_many_arguments)]
pub fn clean_select_with_mode(
    stale_view: &Table,
    stale_sample: &Table,
    clean_sample: &Table,
    predicate: &Expr,
    m: f64,
    cfg: &SvcConfig,
    stats: Option<&TableStats>,
    mode: svc_relalg::exec::ExecMode<'_>,
) -> Result<CleanSelectResult> {
    let pred = predicate.bind(stale_view.schema())?;
    let estimated_stale_matches = stats.map(|s| s.estimate_filter_rows(predicate));
    let provably_empty = stats.is_some_and(|s| s.prove_empty_filter(predicate));

    // The stale answer: a compiled fused `Scan→σ` pipeline over the bound
    // view — one streaming pass that borrows every row and copies only the
    // matches (a σ over a single leaf has no structure for the optimizer,
    // so the plan runs as written). When the stats prove emptiness, even
    // that pass is unnecessary.
    let mut result = if provably_empty {
        stale_view.empty_like()
    } else {
        let plan = Plan::scan(VIEW_LEAF).select(predicate.clone());
        let mut bindings = Bindings::new();
        bindings.bind(VIEW_LEAF, stale_view);
        svc_relalg::exec::compile(&plan, &bindings)?.run_with(&bindings, mode)?
    };

    let mut updated = 0usize;
    let mut added = 0usize;
    let mut removed = 0usize;

    // Pass 1: clean-sample rows patch the result.
    let clean_keys: HashSet<KeyTuple> = clean_sample.iter_keyed().map(|(k, _)| k).collect();
    for (key, row) in clean_sample.iter_keyed() {
        let in_stale_view = stale_view.get(&key);
        let satisfies = pred.matches(row);
        match in_stale_view {
            Some(old) => {
                if row != old {
                    // Updated row: overwrite (or drop if it no longer
                    // satisfies the predicate).
                    updated += 1;
                    if satisfies {
                        result.upsert(row.clone())?;
                    } else if result.contains_key(&key) {
                        result.delete(&key);
                    }
                }
            }
            None => {
                // Missing row now sampled.
                if satisfies {
                    added += 1;
                    result.insert(row.clone())?;
                }
            }
        }
    }

    // Pass 2: sampled superfluous rows (in Ŝ but gone from Ŝ′) are removed.
    for (key, row) in stale_sample.iter_keyed() {
        if !clean_keys.contains(&key) && pred.matches(row) {
            removed += 1;
            if result.contains_key(&key) {
                result.delete(&key);
            }
        }
    }

    let k = clean_sample.len().max(stale_sample.len());
    Ok(CleanSelectResult {
        rows: result,
        updated: count_estimate(updated, k, m, cfg),
        added: count_estimate(added, k, m, cfg),
        removed: count_estimate(removed, k, m, cfg),
        estimated_stale_matches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use svc_relalg::scalar::{col, lit};
    use svc_sampling::operator::sample_by_key;
    use svc_storage::{DataType, HashSpec, Schema, Value};

    fn views() -> (Table, Table) {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("v", DataType::Int)]).unwrap();
        let mut stale = Table::new(schema.clone(), &["id"]).unwrap();
        let mut fresh = Table::new(schema, &["id"]).unwrap();
        for i in 0..600i64 {
            stale.insert(vec![Value::Int(i), Value::Int(i % 100)]).unwrap();
        }
        // Fresh: ids 0..50 deleted; 50..600 kept with 100 updated rows;
        // 600..700 added.
        for i in 50..600i64 {
            let v = if i < 150 { (i % 100) + 1000 } else { i % 100 };
            fresh.insert(vec![Value::Int(i), Value::Int(v)]).unwrap();
        }
        for i in 600..700i64 {
            fresh.insert(vec![Value::Int(i), Value::Int(i % 100 + 1000)]).unwrap();
        }
        (stale, fresh)
    }

    #[test]
    fn patched_select_moves_toward_truth() {
        let (stale, fresh) = views();
        let m = 0.3;
        let spec = HashSpec::with_seed(17);
        let s_hat = sample_by_key(&stale, m, spec);
        let f_hat = sample_by_key(&fresh, m, spec);
        let predicate = col("v").ge(lit(1000i64));
        let cfg = SvcConfig::with_ratio(m);
        let out = clean_select(&stale, &s_hat, &f_hat, &predicate, m, &cfg).unwrap();

        // Truth: rows of fresh satisfying predicate.
        let truth: HashSet<KeyTuple> = fresh
            .iter_keyed()
            .filter(|(_, r)| r[1].as_i64().unwrap() >= 1000)
            .map(|(k, _)| k)
            .collect();
        // Stale result had ZERO matching rows; the patched result should
        // recover roughly m of the true ones.
        assert!(!out.rows.is_empty());
        for (k, _) in out.rows.iter_keyed() {
            assert!(truth.contains(&k), "patched row {k} is not in the true result");
        }
        let recall = out.rows.len() as f64 / truth.len() as f64;
        assert!((recall - m).abs() < 0.12, "recall {recall} vs m {m}");

        // Error-class estimates: 100 rows were updated in the fresh view;
        // none of the *deleted* rows (v = i%100 < 1000) satisfied this
        // predicate, so `removed` is exactly 0 here.
        assert!((out.updated.value - 100.0).abs() < 60.0, "updated {}", out.updated.value);
        assert_eq!(out.removed.value, 0.0);
        assert!(out.added.value > 0.0);
    }

    #[test]
    fn removed_rows_are_detected_and_estimated() {
        let (stale, fresh) = views();
        let m = 0.4;
        let spec = HashSpec::with_seed(23);
        let s_hat = sample_by_key(&stale, m, spec);
        let f_hat = sample_by_key(&fresh, m, spec);
        // Deleted ids 0..50 have v = i % 100 < 50; target them directly.
        let predicate = col("v").lt(lit(10i64)).and(col("id").lt(lit(50i64)));
        let cfg = SvcConfig::with_ratio(m);
        let out = clean_select(&stale, &s_hat, &f_hat, &predicate, m, &cfg).unwrap();
        // Truth: 10 stale rows matched (ids 0..10) and ALL are deleted.
        assert!(out.removed.value > 0.0, "expected removed > 0");
        assert!((out.removed.value - 10.0).abs() < 10.0, "removed {}", out.removed.value);
        // The patched result must drop every sampled deleted row.
        for (k, _) in out.rows.iter_keyed() {
            assert!(
                !f_hat.contains_key(&k) || fresh.contains_key(&k),
                "row {k} should have been removed"
            );
        }
    }

    #[test]
    fn stats_prove_empty_selects_and_estimate_matches() {
        use svc_catalog::{StatsConfig, TableStats};
        let (stale, fresh) = views();
        let m = 0.3;
        let spec = HashSpec::with_seed(29);
        let s_hat = sample_by_key(&stale, m, spec);
        let f_hat = sample_by_key(&fresh, m, spec);
        let stats = TableStats::build(&stale, &StatsConfig::default());
        let cfg = SvcConfig::with_ratio(m);

        // v ranges over 0..100 in the stale view: a predicate beyond the
        // max is provably empty — no stale scan, but sampled *added* rows
        // (v ≥ 1000 in fresh) still patch in.
        let impossible = col("v").gt(lit(5_000i64));
        let out =
            clean_select_with(&stale, &s_hat, &f_hat, &impossible, m, &cfg, Some(&stats)).unwrap();
        assert!(
            out.estimated_stale_matches.unwrap() < 1.0,
            "estimate is clamped near zero, got {:?}",
            out.estimated_stale_matches
        );
        assert!(out.rows.is_empty());

        // An ordinary predicate: the estimate tracks the true match count.
        let predicate = col("v").lt(lit(50i64));
        let out =
            clean_select_with(&stale, &s_hat, &f_hat, &predicate, m, &cfg, Some(&stats)).unwrap();
        let truth = stale.rows().iter().filter(|r| r[1].as_i64().unwrap() < 50).count() as f64;
        let est = out.estimated_stale_matches.unwrap();
        assert!((est - truth).abs() / truth < 0.15, "estimate {est} vs true {truth}");
        // And the patched result is unchanged relative to the no-stats path.
        let plain = clean_select(&stale, &s_hat, &f_hat, &predicate, m, &cfg).unwrap();
        assert!(out.rows.same_contents(&plain.rows));
    }

    #[test]
    fn noop_when_samples_agree() {
        let (stale, _) = views();
        let m = 0.5;
        let spec = HashSpec::with_seed(3);
        let s_hat = sample_by_key(&stale, m, spec);
        let predicate = col("v").lt(lit(10i64));
        let cfg = SvcConfig::with_ratio(m);
        let out = clean_select(&stale, &s_hat, &s_hat, &predicate, m, &cfg).unwrap();
        assert_eq!(out.updated.value, 0.0);
        assert_eq!(out.added.value, 0.0);
        assert_eq!(out.removed.value, 0.0);
        // Result equals the plain stale select.
        let expected: usize = stale.rows().iter().filter(|r| r[1].as_i64().unwrap() < 10).count();
        assert_eq!(out.rows.len(), expected);
    }
}
