//! Outlier indexing (Section 6): tame skew by exactly materializing the
//! view rows that depend on extreme base records.
//!
//! * [`OutlierIndex::build`] — index base records whose attribute exceeds a
//!   threshold (top-k / absolute / c-standard-deviations policies, all from
//!   Section 6.1), with capacity-bounded eviction of the smallest record;
//! * [`OutlierIndex::push_up`] — Definition 5: propagate the indexed
//!   records through the view definition to obtain the outlier rows `O ⊆
//!   S′` of the *up-to-date* view. For group-by views the γ rule applies:
//!   aggregate the outliers to find affected groups, then compute those
//!   groups **exactly** over the new base state (the "select the row in
//!   γ(R) with the same A" step);
//! * [`estimate_aqp_with_outliers`] / [`estimate_corr_with_outliers`] —
//!   Section 6.3's merge: the sample estimate restricted to `S′ − O`
//!   combined with the deterministic answer over `O`, weighted
//!   `(N−l)/N · c_reg + l/N · c_out`, which preserves unbiasedness.

use std::collections::HashSet;

use svc_storage::{Database, Deltas, KeyTuple, Result, StorageError, Table};

use svc_ivm::delta::{new_state, DeltaInfo};
use svc_ivm::strategy::MaintCatalog;
use svc_ivm::view::MaterializedView;
use svc_relalg::derive::{derive, Derived};
use svc_relalg::eval::{evaluate, Bindings};
use svc_relalg::plan::{JoinKind, Plan};

use crate::config::SvcConfig;
use crate::estimate::{svc_aqp, svc_corr, Estimate, Method};
use crate::query::{AggQuery, QueryAgg};

/// How the index threshold is chosen (Section 6.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdPolicy {
    /// Keep the top `capacity` records by the indexed attribute.
    TopK,
    /// Keep records with attribute above an absolute threshold.
    Above(f64),
    /// Keep records more than `c` standard deviations above the mean,
    /// with the threshold recomputed at build time.
    StdDevs(f64),
}

/// Specification of an outlier index on one base-relation attribute.
#[derive(Debug, Clone)]
pub struct OutlierIndexSpec {
    /// The indexed base relation.
    pub table: String,
    /// The indexed (numeric) attribute.
    pub attr: String,
    /// Threshold policy.
    pub policy: ThresholdPolicy,
    /// Maximum number of indexed records (size limit `k`).
    pub capacity: usize,
}

/// A built outlier index: the extreme records of the indexed relation's
/// *new* state (base ∪ insertions − deletions), maintained in the same pass
/// as the updates per Section 6.1.
#[derive(Debug, Clone)]
pub struct OutlierIndex {
    /// The specification this index was built from.
    pub spec: OutlierIndexSpec,
    /// Indexed base records (full rows of the base schema).
    pub records: Table,
    /// The effective threshold after policy resolution.
    pub threshold: f64,
}

impl OutlierIndex {
    /// Build the index over the new state of the base relation in a single
    /// pass, evicting the smallest record when capacity is exceeded.
    pub fn build(spec: OutlierIndexSpec, db: &Database, deltas: &Deltas) -> Result<OutlierIndex> {
        let state = deltas.applied_state(db, &spec.table)?;
        let attr_idx = state.schema().resolve(&spec.attr)?;
        let values: Vec<f64> = state.rows().iter().filter_map(|r| r[attr_idx].as_f64()).collect();
        let threshold = match spec.policy {
            ThresholdPolicy::Above(t) => t,
            ThresholdPolicy::TopK => {
                let mut v = values;
                v.sort_by(f64::total_cmp);
                if v.len() > spec.capacity {
                    v[v.len() - spec.capacity]
                } else {
                    f64::NEG_INFINITY
                }
            }
            ThresholdPolicy::StdDevs(c) => {
                let m = svc_stats::moments::Moments::of(&values);
                m.mean() + c * m.stddev()
            }
        };

        // Single pass with capacity-bounded eviction of the smallest record.
        let mut kept: Vec<(f64, svc_storage::Row)> = Vec::new();
        for row in state.rows() {
            let Some(x) = row[attr_idx].as_f64() else { continue };
            if x >= threshold {
                kept.push((x, row.clone()));
                if kept.len() > spec.capacity {
                    let (mi, _) = kept
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
                        .expect("non-empty");
                    kept.swap_remove(mi);
                }
            }
        }
        let mut records = state.empty_like();
        for (_, row) in kept {
            records.insert(row)?;
        }
        Ok(OutlierIndex { spec, records, threshold })
    }

    /// Definition 5 push-up: the outlier rows `O` of the up-to-date view, in
    /// the view's *canonical* schema. `O` is exact: for aggregate views the
    /// affected groups are recomputed in full over the new base state.
    pub fn push_up(
        &self,
        view: &MaterializedView,
        db: &Database,
        deltas: &Deltas,
    ) -> Result<Table> {
        let info = DeltaInfo::of(deltas);
        let cat = MaintCatalog {
            db,
            stale: Derived {
                schema: view.table().schema().clone(),
                key: view.table().key().to_vec(),
            },
        };
        let canon_plan = &view.canonical().plan;

        // Marker pass: the view definition with the indexed relation
        // restricted to the outlier records and every other relation at its
        // new state. For SPJ views this *is* O; for aggregate views it
        // identifies the affected groups.
        let marker_plan = substitute_new_states(canon_plan, &self.spec.table, &info, &cat)?;
        let mut bindings = maintenance_bindings_with(db, deltas);
        bindings.bind(OUTLIER_LEAF, &self.records);
        let marker = evaluate(&marker_plan, &bindings)?;

        match canon_plan {
            Plan::Aggregate { input, group_by, aggregates } => {
                // Affected group keys.
                let keys: Table = distinct_keys(&marker, group_by.len())?;
                // Exact recomputation of those groups over the new state.
                let new_input = new_state_with_all(input, &info, &cat)?;
                let group_cols: Vec<(String, String)> = {
                    let in_d = derive(&new_input, &cat)?;
                    group_by
                        .iter()
                        .map(|g| {
                            let i = in_d.schema.resolve(g)?;
                            Ok((
                                in_d.schema.field(i).name.clone(),
                                keys.schema()
                                    .field(group_by.iter().position(|x| x == g).expect("present"))
                                    .name
                                    .clone(),
                            ))
                        })
                        .collect::<Result<_>>()?
                };
                let restricted = Plan::Join {
                    left: Box::new(new_input),
                    right: Box::new(Plan::scan(KEYS_LEAF)),
                    kind: JoinKind::Semi,
                    on: group_cols,
                };
                let exact_plan = Plan::Aggregate {
                    input: Box::new(restricted),
                    group_by: group_by.clone(),
                    aggregates: aggregates.clone(),
                };
                let mut b2 = maintenance_bindings_with(db, deltas);
                b2.bind(KEYS_LEAF, &keys);
                evaluate(&exact_plan, &b2)
            }
            _ => Ok(marker),
        }
    }

    /// Is this index usable for a given cleaning run? Per Section 6.2,
    /// "the only eligible indices are ones on base relations that are being
    /// sampled" — i.e. the hash pushes down to that relation (or to one of
    /// its delta relations, which carry the same records).
    pub fn eligible(&self, sampled_leaves: &[String]) -> bool {
        sampled_leaves.iter().any(|l| {
            let base = l.strip_prefix("__ins.").or_else(|| l.strip_prefix("__del.")).unwrap_or(l);
            base == self.spec.table
        })
    }
}

const OUTLIER_LEAF: &str = "__outliers";
const KEYS_LEAF: &str = "__okeys";

fn maintenance_bindings_with<'a>(db: &'a Database, deltas: &'a Deltas) -> Bindings<'a> {
    let mut b = Bindings::from_database(db);
    for (name, set) in deltas.iter() {
        b.bind(svc_ivm::delta::ins_leaf(name), &set.insertions);
        b.bind(svc_ivm::delta::del_leaf(name), &set.deletions);
    }
    b
}

/// Replace `Scan target` with `Scan __outliers` and every other scan with
/// its new state.
fn substitute_new_states(
    plan: &Plan,
    target: &str,
    info: &DeltaInfo,
    cat: &MaintCatalog<'_>,
) -> Result<Plan> {
    Ok(match plan {
        Plan::Scan { table } if table == target => Plan::scan(OUTLIER_LEAF),
        Plan::Scan { .. } => new_state(plan, info, cat)?,
        Plan::Select { input, predicate } => Plan::Select {
            input: Box::new(substitute_new_states(input, target, info, cat)?),
            predicate: predicate.clone(),
        },
        Plan::Project { input, columns } => Plan::Project {
            input: Box::new(substitute_new_states(input, target, info, cat)?),
            columns: columns.clone(),
        },
        Plan::Join { left, right, kind, on } => Plan::Join {
            left: Box::new(substitute_new_states(left, target, info, cat)?),
            right: Box::new(substitute_new_states(right, target, info, cat)?),
            kind: *kind,
            on: on.clone(),
        },
        Plan::Aggregate { input, group_by, aggregates } => Plan::Aggregate {
            input: Box::new(substitute_new_states(input, target, info, cat)?),
            group_by: group_by.clone(),
            aggregates: aggregates.clone(),
        },
        Plan::Union { left, right } => Plan::Union {
            left: Box::new(substitute_new_states(left, target, info, cat)?),
            right: Box::new(substitute_new_states(right, target, info, cat)?),
        },
        Plan::Intersect { left, right } => Plan::Intersect {
            left: Box::new(substitute_new_states(left, target, info, cat)?),
            right: Box::new(substitute_new_states(right, target, info, cat)?),
        },
        Plan::Difference { left, right } => Plan::Difference {
            left: Box::new(substitute_new_states(left, target, info, cat)?),
            right: Box::new(substitute_new_states(right, target, info, cat)?),
        },
        Plan::Hash { .. } => return Err(StorageError::Invalid("η inside view definition".into())),
    })
}

/// Every scan replaced by its new state.
fn new_state_with_all(plan: &Plan, info: &DeltaInfo, cat: &MaintCatalog<'_>) -> Result<Plan> {
    svc_ivm::strategy::recompute_plan(plan, cat, info)
}

/// Distinct prefixes (group keys) of a table's rows as a keyed table.
fn distinct_keys(table: &Table, k: usize) -> Result<Table> {
    let schema = table.schema().project(&(0..k).collect::<Vec<_>>());
    let mut out = Table::with_key_indices(schema, (0..k).collect())?;
    let mut seen: HashSet<KeyTuple> = HashSet::new();
    for row in table.rows() {
        let key = KeyTuple(row[..k].to_vec());
        if seen.insert(key) {
            out.insert(row[..k].to_vec())?;
        }
    }
    Ok(out)
}

/// Split a (public-schema) sample into non-outlier rows and drop outlier
/// keys; returns the filtered sample.
fn exclude_keys(sample: &Table, keys: &HashSet<KeyTuple>) -> Table {
    let rows =
        sample.rows().iter().filter(|r| !keys.contains(&sample.key_of(r))).cloned().collect();
    Table::from_rows(sample.schema().clone(), sample.key().to_vec(), rows)
        .expect("filtering preserves keys")
}

/// SVC+AQP with an outlier index (Section 6.3): sample estimate over
/// `S′ − O` plus the deterministic contribution of `O`.
pub fn estimate_aqp_with_outliers(
    clean_sample_public: &Table,
    outliers_fresh_public: &Table,
    q: &AggQuery,
    m: f64,
    cfg: &SvcConfig,
) -> Result<Estimate> {
    let okeys: HashSet<KeyTuple> = outliers_fresh_public.iter_keyed().map(|(k, _)| k).collect();
    let reg_sample = exclude_keys(clean_sample_public, &okeys);
    let out_bound = q.bind(outliers_fresh_public)?;
    let out_vals = out_bound.matching_values(outliers_fresh_public);
    let l = out_vals.len() as f64;

    match q.agg {
        QueryAgg::Sum | QueryAgg::Count => {
            let mut reg = svc_aqp(&reg_sample, q, m, cfg)?;
            let out_contrib = match q.agg {
                QueryAgg::Sum => out_vals.iter().sum::<f64>(),
                _ => l,
            };
            reg.value += out_contrib;
            if let Some(ci) = &mut reg.ci {
                ci.estimate += out_contrib;
            }
            Ok(reg)
        }
        QueryAgg::Avg => {
            let reg = svc_aqp(&reg_sample, q, m, cfg)?;
            // N̂ = estimated non-outlier count + l; v = (N−l)/N·reg + l/N·out.
            let count_q = AggQuery { agg: QueryAgg::Count, ..q.clone() };
            let n_reg = svc_aqp(&reg_sample, &count_q, m, cfg)?.value;
            let n = n_reg + l;
            let out_avg = if l > 0.0 { out_vals.iter().sum::<f64>() / l } else { 0.0 };
            let value =
                if n > 0.0 { (n_reg / n) * reg.value + (l / n) * out_avg } else { reg.value };
            Ok(Estimate { value, ..reg })
        }
        _ => svc_aqp(clean_sample_public, q, m, cfg),
    }
}

/// SVC+CORR with an outlier index (Section 6.3): the correction from the
/// samples restricted to `S′ − O` merged with the exact correction over `O`
/// (whose bias and variance are zero).
#[allow(clippy::too_many_arguments)]
pub fn estimate_corr_with_outliers(
    stale_result: f64,
    stale_sample_public: &Table,
    clean_sample_public: &Table,
    outliers_fresh_public: &Table,
    outliers_stale_public: &Table,
    q: &AggQuery,
    m: f64,
    cfg: &SvcConfig,
) -> Result<Estimate> {
    let okeys: HashSet<KeyTuple> = outliers_fresh_public
        .iter_keyed()
        .map(|(k, _)| k)
        .chain(outliers_stale_public.iter_keyed().map(|(k, _)| k))
        .collect();
    let reg_clean = exclude_keys(clean_sample_public, &okeys);
    let reg_stale = exclude_keys(stale_sample_public, &okeys);

    match q.agg {
        QueryAgg::Sum | QueryAgg::Count => {
            let reg = svc_corr(stale_result, &reg_stale, &reg_clean, q, m, cfg)?;
            // Exact outlier correction: fresh contribution − stale
            // contribution over the outlier keys.
            let fresh_contrib = contribution(outliers_fresh_public, q)?;
            let stale_contrib = contribution(outliers_stale_public, q)?;
            let c_out = fresh_contrib - stale_contrib;
            let mut est = reg;
            est.value += c_out;
            if let Some(ci) = &mut est.ci {
                ci.estimate += c_out;
            }
            est.method = Method::Correction;
            Ok(est)
        }
        _ => svc_corr(stale_result, stale_sample_public, clean_sample_public, q, m, cfg),
    }
}

fn contribution(table: &Table, q: &AggQuery) -> Result<f64> {
    let bound = q.bind(table)?;
    let vals = bound.matching_values(table);
    Ok(match q.agg {
        QueryAgg::Sum => vals.iter().sum(),
        QueryAgg::Count => vals.len() as f64,
        _ => 0.0,
    })
}

/// The stale view's rows at the outlier keys (for the exact stale-side
/// contribution in SVC+CORR).
pub fn stale_rows_at(view_public: &Table, outliers_fresh_public: &Table) -> Table {
    let rows = outliers_fresh_public
        .iter_keyed()
        .filter_map(|(k, _)| view_public.get(&k).cloned())
        .collect();
    Table::from_rows(view_public.schema().clone(), view_public.key().to_vec(), rows)
        .expect("keyed subset")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::relative_error;
    use crate::svc::SvcView;
    use svc_relalg::aggregate::{AggFunc, AggSpec};
    use svc_relalg::scalar::col;
    use svc_storage::{DataType, Schema, Value};

    /// A skewed database: order "prices" follow a rough power law, so a few
    /// records dominate sums — the regime where Section 6 matters.
    fn skewed_db() -> Database {
        let mut db = Database::new();
        let mut orders = Table::new(
            Schema::from_pairs(&[
                ("orderId", DataType::Int),
                ("custId", DataType::Int),
                ("price", DataType::Float),
            ])
            .unwrap(),
            &["orderId"],
        )
        .unwrap();
        for o in 0..4000i64 {
            // Heavy tail: every 97th order is huge.
            let price = if o % 97 == 0 {
                5_000.0 + (o % 7) as f64 * 3_000.0
            } else {
                (o % 50) as f64 + 1.0
            };
            orders.insert(vec![Value::Int(o), Value::Int(o % 200), Value::Float(price)]).unwrap();
        }
        db.create_table("orders", orders);
        db
    }

    fn cust_view() -> Plan {
        Plan::scan("orders").aggregate(
            &["custId"],
            vec![AggSpec::new("revenue", AggFunc::Sum, col("price")), AggSpec::count_all("n")],
        )
    }

    fn skewed_deltas(db: &Database) -> Deltas {
        let mut deltas = Deltas::new();
        for o in 4000..4800i64 {
            let price = if o % 61 == 0 { 40_000.0 } else { (o % 50) as f64 + 1.0 };
            deltas
                .insert(db, "orders", vec![Value::Int(o), Value::Int(o % 200), Value::Float(price)])
                .unwrap();
        }
        deltas
    }

    #[test]
    fn build_respects_capacity_and_threshold() {
        let db = skewed_db();
        let deltas = Deltas::new();
        let idx = OutlierIndex::build(
            OutlierIndexSpec {
                table: "orders".into(),
                attr: "price".into(),
                policy: ThresholdPolicy::TopK,
                capacity: 20,
            },
            &db,
            &deltas,
        )
        .unwrap();
        assert_eq!(idx.records.len(), 20);
        // Every kept record beats the threshold; the threshold is the k-th
        // largest price.
        let attr = idx.records.schema().resolve("price").unwrap();
        for row in idx.records.rows() {
            assert!(row[attr].as_f64().unwrap() >= idx.threshold);
        }
        assert!(idx.threshold >= 5_000.0);
    }

    #[test]
    fn stddev_policy_tracks_distribution() {
        let db = skewed_db();
        let idx = OutlierIndex::build(
            OutlierIndexSpec {
                table: "orders".into(),
                attr: "price".into(),
                policy: ThresholdPolicy::StdDevs(3.0),
                capacity: 1000,
            },
            &db,
            &Deltas::new(),
        )
        .unwrap();
        assert!(!idx.records.is_empty());
        assert!(idx.records.len() < 100);
    }

    #[test]
    fn push_up_materializes_exact_affected_groups() {
        let db = skewed_db();
        let deltas = skewed_deltas(&db);
        let view = MaterializedView::create("v", cust_view(), &db).unwrap();
        let idx = OutlierIndex::build(
            OutlierIndexSpec {
                table: "orders".into(),
                attr: "price".into(),
                policy: ThresholdPolicy::Above(4_000.0),
                capacity: 200,
            },
            &db,
            &deltas,
        )
        .unwrap();
        let o = idx.push_up(&view, &db, &deltas).unwrap();
        let fresh = view.recompute_fresh(&db, &deltas).unwrap();
        assert!(!o.is_empty());
        // O ⊆ S′ with exact values.
        for (k, row) in o.iter_keyed() {
            let f = fresh.get(&k).expect("outlier group exists in fresh view");
            assert_eq!(row, f, "outlier row must exactly equal the fresh view row");
        }
    }

    #[test]
    fn outlier_index_improves_skewed_sum_estimates() {
        let db = skewed_db();
        let deltas = skewed_deltas(&db);
        let cfg = SvcConfig::with_ratio(0.1);
        let svc = SvcView::create("v", cust_view(), &db, cfg).unwrap();
        let idx = OutlierIndex::build(
            OutlierIndexSpec {
                table: "orders".into(),
                attr: "price".into(),
                policy: ThresholdPolicy::TopK,
                capacity: 100,
            },
            &db,
            &deltas,
        )
        .unwrap();

        let cleaned = svc.clean_sample(&db, &deltas).unwrap();
        assert!(idx.eligible(&cleaned.report.sampled_leaves));

        let q = AggQuery::sum(col("revenue"));
        let truth = svc.query_fresh_oracle(&db, &deltas, &q).unwrap();

        let plain = svc.estimate_aqp(&cleaned, &q).unwrap();
        let o_fresh_canonical = idx.push_up(&svc.view, &db, &deltas).unwrap();
        let o_fresh = svc.view.public_of(&o_fresh_canonical).unwrap();
        let with_idx =
            estimate_aqp_with_outliers(&cleaned.public, &o_fresh, &q, cfg.ratio, &cfg).unwrap();

        let e_plain = relative_error(plain.value, truth);
        let e_idx = relative_error(with_idx.value, truth);
        assert!(e_idx <= e_plain * 1.05, "outlier index should not hurt: {e_idx} vs {e_plain}");

        // And the CORR variant stays sane.
        let stale_res = svc.query_stale(&q).unwrap();
        let o_stale = stale_rows_at(&svc.view.public_table().unwrap(), &o_fresh);
        let corr = estimate_corr_with_outliers(
            stale_res,
            &svc.stale_sample_public().unwrap(),
            &cleaned.public,
            &o_fresh,
            &o_stale,
            &q,
            cfg.ratio,
            &cfg,
        )
        .unwrap();
        assert!(relative_error(corr.value, truth) < 0.2);
    }
}
