//! Query result estimation (Section 5): SVC+AQP direct estimates and
//! SVC+CORR corrections, with confidence machinery per aggregate class.
//!
//! * `sum`/`count`/`avg` — sample means: per-row `trans` transformation
//!   (`1/m·attr·cond` for sum, `1/m·cond` for count, `attr where cond` for
//!   avg) and CLT intervals (Section 5.2.1);
//! * `median`/percentiles — statistical bootstrap (Section 5.2.5);
//! * `min`/`max` — correction by extreme paired difference plus a Cantelli
//!   probability that a more extreme unsampled element exists
//!   (Appendix 12.1.1).

use svc_stats::bootstrap::{bootstrap_ci, bootstrap_paired_diff};
use svc_stats::clt::{mean_interval, sum_interval, ConfidenceInterval};
use svc_stats::moments::Moments;
use svc_stats::quantile::quantile;
use svc_storage::{Result, StorageError, Table};

use crate::config::SvcConfig;
use crate::diff::{correspondence_subtract, trans_table, TransTable};
use crate::query::{AggQuery, QueryAgg};

/// How an answer was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// The stale view's answer, unmodified (the "No Maintenance" baseline).
    Stale,
    /// SVC+AQP: direct estimate from the clean sample.
    AqpDirect,
    /// SVC+CORR: stale answer plus a sampled correction.
    Correction,
}

/// An estimated query answer with its uncertainty.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// Point estimate of `q(S′)`.
    pub value: f64,
    /// Confidence interval, when the aggregate class provides one.
    pub ci: Option<ConfidenceInterval>,
    /// Estimation method.
    pub method: Method,
    /// Rows of the (clean) sample involved.
    pub sample_size: usize,
    /// Rows of the sample satisfying the predicate (effective sample size,
    /// Section 5.2.3).
    pub predicate_rows: usize,
    /// For `min`/`max`: Cantelli bound on the probability that a more
    /// extreme element exists outside the sample (Appendix 12.1.1).
    pub exceedance_probability: Option<f64>,
}

fn err_empty(context: &str) -> StorageError {
    StorageError::Invalid(format!("cannot estimate from an empty sample ({context})"))
}

/// Per-row `trans` values for the sample-mean class: every sample row gets
/// an entry (predicate-failing rows map to 0), as in the paper's rewriting
/// of `cond(*)` into the SELECT clause.
fn trans_scaled(table: &Table, q: &AggQuery, m: f64) -> Result<TransTable> {
    let bound = q.bind(table)?;
    Ok(trans_table(table, |row| {
        let cond = bound.matches(row);
        Some(match q.agg {
            QueryAgg::Sum => {
                if cond {
                    bound.attr.eval(row).as_f64().unwrap_or(0.0) / m
                } else {
                    0.0
                }
            }
            QueryAgg::Count => {
                if cond {
                    1.0 / m
                } else {
                    0.0
                }
            }
            _ => unreachable!("trans_scaled is for sum/count only"),
        })
    }))
}

/// Unscaled attribute values of predicate-satisfying rows keyed by row
/// (the `avg`/order-statistic trans table).
fn trans_plain(table: &Table, q: &AggQuery) -> Result<TransTable> {
    let bound = q.bind(table)?;
    Ok(trans_table(
        table,
        |row| {
            if bound.matches(row) {
                bound.attr.eval(row).as_f64()
            } else {
                None
            }
        },
    ))
}

/// SVC+AQP: estimate `q(S′)` directly from the clean sample with scaling
/// factor `1/m` for sum/count and 1 for avg (Section 5.1).
pub fn svc_aqp(clean_sample: &Table, q: &AggQuery, m: f64, cfg: &SvcConfig) -> Result<Estimate> {
    let k = clean_sample.len();
    let bound = q.bind(clean_sample)?;
    let matching = bound.matching_values(clean_sample);
    let predicate_rows = matching.len();

    let est = match q.agg {
        QueryAgg::Sum | QueryAgg::Count => {
            let trans = trans_scaled(clean_sample, q, m)?;
            let moments = Moments::of(&trans.values().copied().collect::<Vec<_>>());
            let value = moments.sum();
            let ci = sum_interval(value, moments.variance(), moments.count(), cfg.confidence);
            Estimate {
                value,
                ci: Some(ci),
                method: Method::AqpDirect,
                sample_size: k,
                predicate_rows,
                exceedance_probability: None,
            }
        }
        QueryAgg::Avg => {
            if matching.is_empty() {
                return Err(err_empty("avg"));
            }
            let moments = Moments::of(&matching);
            let ci =
                mean_interval(moments.mean(), moments.variance(), moments.count(), cfg.confidence);
            Estimate {
                value: moments.mean(),
                ci: Some(ci),
                method: Method::AqpDirect,
                sample_size: k,
                predicate_rows,
                exceedance_probability: None,
            }
        }
        QueryAgg::Median | QueryAgg::Percentile(_) => {
            if matching.is_empty() {
                return Err(err_empty("median/percentile"));
            }
            let p = match q.agg {
                QueryAgg::Median => 0.5,
                QueryAgg::Percentile(p) => p,
                _ => unreachable!(),
            };
            let ci = bootstrap_ci(
                &matching,
                |xs| quantile(xs, p),
                cfg.bootstrap_iterations,
                cfg.confidence,
                cfg.seed,
            );
            Estimate {
                value: ci.estimate,
                ci: Some(ci),
                method: Method::AqpDirect,
                sample_size: k,
                predicate_rows,
                exceedance_probability: None,
            }
        }
        QueryAgg::Min | QueryAgg::Max => {
            if matching.is_empty() {
                return Err(err_empty("min/max"));
            }
            let value = extreme(&matching, q.agg);
            let moments = Moments::of(&matching);
            let eps = (value - moments.mean()).abs();
            let p = svc_stats::cantelli::cantelli_exceedance(moments.variance(), eps);
            Estimate {
                value,
                ci: None,
                method: Method::AqpDirect,
                sample_size: k,
                predicate_rows,
                exceedance_probability: Some(p),
            }
        }
    };
    Ok(est)
}

fn extreme(vals: &[f64], agg: QueryAgg) -> f64 {
    match agg {
        QueryAgg::Min => vals.iter().copied().fold(f64::INFINITY, f64::min),
        QueryAgg::Max => vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        _ => unreachable!(),
    }
}

/// SVC+CORR: estimate the correction `c = q(S′) − q(S)` from the
/// corresponding samples and add it to the stale full-view answer
/// (Section 5.1; bounds per Sections 5.2.1/5.2.5 and Appendix 12.1.1).
pub fn svc_corr(
    stale_result: f64,
    stale_sample: &Table,
    clean_sample: &Table,
    q: &AggQuery,
    m: f64,
    cfg: &SvcConfig,
) -> Result<Estimate> {
    let k = clean_sample.len();
    let clean_bound = q.bind(clean_sample)?;
    let predicate_rows = clean_bound.matching_values(clean_sample).len();

    let est = match q.agg {
        QueryAgg::Sum | QueryAgg::Count => {
            let clean_t = trans_scaled(clean_sample, q, m)?;
            let stale_t = trans_scaled(stale_sample, q, m)?;
            let diffs = correspondence_subtract(&clean_t, &stale_t);
            let moments = Moments::of(&diffs);
            let correction = moments.sum();
            let ci0 = sum_interval(correction, moments.variance(), moments.count(), cfg.confidence);
            Estimate {
                value: stale_result + correction,
                ci: Some(ConfidenceInterval {
                    estimate: stale_result + correction,
                    half_width: ci0.half_width,
                    confidence: cfg.confidence,
                }),
                method: Method::Correction,
                sample_size: k,
                predicate_rows,
                exceedance_probability: None,
            }
        }
        QueryAgg::Avg => {
            let clean_t = trans_plain(clean_sample, q)?;
            let stale_t = trans_plain(stale_sample, q)?;
            if clean_t.is_empty() {
                return Err(err_empty("avg correction"));
            }
            let clean_mean = clean_t.values().sum::<f64>() / clean_t.len() as f64;
            let stale_mean = if stale_t.is_empty() {
                clean_mean
            } else {
                stale_t.values().sum::<f64>() / stale_t.len() as f64
            };
            let correction = clean_mean - stale_mean;
            let diffs = correspondence_subtract(&clean_t, &stale_t);
            let dm = Moments::of(&diffs);
            let ci0 = mean_interval(correction, dm.variance(), dm.count(), cfg.confidence);
            Estimate {
                value: stale_result + correction,
                ci: Some(ConfidenceInterval {
                    estimate: stale_result + correction,
                    half_width: ci0.half_width,
                    confidence: cfg.confidence,
                }),
                method: Method::Correction,
                sample_size: k,
                predicate_rows,
                exceedance_probability: None,
            }
        }
        QueryAgg::Median | QueryAgg::Percentile(_) => {
            let p = match q.agg {
                QueryAgg::Median => 0.5,
                QueryAgg::Percentile(p) => p,
                _ => unreachable!(),
            };
            let clean_vals: Vec<f64> = trans_plain(clean_sample, q)?.into_values().collect();
            let stale_vals: Vec<f64> = trans_plain(stale_sample, q)?.into_values().collect();
            if clean_vals.is_empty() {
                return Err(err_empty("median correction"));
            }
            let correction = if stale_vals.is_empty() {
                0.0
            } else {
                quantile(&clean_vals, p) - quantile(&stale_vals, p)
            };
            let value = stale_result + correction;
            // Bootstrap the correction's distribution (the SVC+CORR variant
            // of Section 5.2.5).
            let ci = if stale_vals.is_empty() {
                None
            } else {
                let mut dist = bootstrap_paired_diff(
                    &clean_vals,
                    &stale_vals,
                    |xs| quantile(xs, p),
                    cfg.bootstrap_iterations,
                    cfg.seed,
                );
                dist.sort_by(f64::total_cmp);
                let alpha = 1.0 - cfg.confidence;
                let lo = quantile(&dist, alpha / 2.0);
                let hi = quantile(&dist, 1.0 - alpha / 2.0);
                Some(ConfidenceInterval {
                    estimate: value,
                    half_width: ((hi - lo) / 2.0).abs(),
                    confidence: cfg.confidence,
                })
            };
            Estimate {
                value,
                ci,
                method: Method::Correction,
                sample_size: k,
                predicate_rows,
                exceedance_probability: None,
            }
        }
        QueryAgg::Min | QueryAgg::Max => {
            // Appendix 12.1.1: correct the stale extreme by the extreme
            // row-by-row difference, bound by Cantelli.
            let clean_t = trans_plain(clean_sample, q)?;
            let stale_t = trans_plain(stale_sample, q)?;
            if clean_t.is_empty() {
                return Err(err_empty("min/max correction"));
            }
            // Appendix 12.1.1: the row-by-row difference is taken over rows
            // present in BOTH samples.
            let diffs: Vec<f64> =
                clean_t.iter().filter_map(|(k, v)| stale_t.get(k).map(|s| v - s)).collect();
            let c = if diffs.is_empty() {
                0.0
            } else {
                extreme(&diffs, if q.agg == QueryAgg::Max { QueryAgg::Max } else { QueryAgg::Min })
            };
            let value = stale_result + c;
            let clean_vals: Vec<f64> = clean_t.values().copied().collect();
            let moments = Moments::of(&clean_vals);
            let eps = (value - moments.mean()).abs();
            let p = svc_stats::cantelli::cantelli_exceedance(moments.variance(), eps);
            Estimate {
                value,
                ci: None,
                method: Method::Correction,
                sample_size: k,
                predicate_rows,
                exceedance_probability: Some(p),
            }
        }
    };
    Ok(est)
}

/// The stale baseline as an [`Estimate`] (for uniform reporting).
pub fn stale_answer(stale_result: f64) -> Estimate {
    Estimate {
        value: stale_result,
        ci: None,
        method: Method::Stale,
        sample_size: 0,
        predicate_rows: 0,
        exceedance_probability: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svc_relalg::scalar::{col, lit};
    use svc_sampling::operator::sample_by_key;
    use svc_storage::{DataType, HashSpec, Schema, Value};

    /// Population with mean 50 over ids 0..1000; "fresh" version shifts a
    /// slice of rows and adds new ones.
    fn stale_and_fresh() -> (Table, Table) {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("x", DataType::Float)]).unwrap();
        let mut stale = Table::new(schema.clone(), &["id"]).unwrap();
        let mut fresh = Table::new(schema, &["id"]).unwrap();
        for i in 0..1000i64 {
            let x = (i % 101) as f64;
            stale.insert(vec![Value::Int(i), Value::Float(x)]).unwrap();
            // Fresh: rows 0..200 updated (+10), rest unchanged.
            let fx = if i < 200 { x + 10.0 } else { x };
            fresh.insert(vec![Value::Int(i), Value::Float(fx)]).unwrap();
        }
        for i in 1000..1200i64 {
            fresh.insert(vec![Value::Int(i), Value::Float(((i * 7) % 101) as f64)]).unwrap();
        }
        (stale, fresh)
    }

    fn samples(m: f64) -> (Table, Table, Table, Table) {
        let (stale, fresh) = stale_and_fresh();
        let spec = HashSpec::with_seed(99);
        let s_hat = sample_by_key(&stale, m, spec);
        let f_hat = sample_by_key(&fresh, m, spec);
        (stale, fresh, s_hat, f_hat)
    }

    #[test]
    fn aqp_sum_is_close_and_covered() {
        let (_, fresh, _, f_hat) = samples(0.2);
        let q = AggQuery::sum(col("x"));
        let truth = q.exact(&fresh).unwrap();
        let est = svc_aqp(&f_hat, &q, 0.2, &SvcConfig::default()).unwrap();
        let rel = (est.value - truth).abs() / truth;
        assert!(rel < 0.15, "AQP sum rel err {rel}");
        assert!(est.ci.unwrap().contains(truth) || rel < 0.05);
    }

    #[test]
    fn corr_beats_stale_for_sum_count_avg() {
        let (stale, fresh, s_hat, f_hat) = samples(0.2);
        let cfg = SvcConfig::default();
        for q in [
            AggQuery::sum(col("x")),
            AggQuery::count().filter(col("x").gt(lit(50.0))),
            AggQuery::avg(col("x")),
        ] {
            let truth = q.exact(&fresh).unwrap();
            let stale_res = q.exact(&stale).unwrap();
            let est = svc_corr(stale_res, &s_hat, &f_hat, &q, 0.2, &cfg).unwrap();
            let stale_err = (stale_res - truth).abs();
            let corr_err = (est.value - truth).abs();
            assert!(corr_err <= stale_err, "{q:?}: corr err {corr_err} vs stale err {stale_err}");
        }
    }

    #[test]
    fn corr_is_exact_when_nothing_changed() {
        let (stale, _, s_hat, _) = samples(0.3);
        let cfg = SvcConfig::default();
        let q = AggQuery::sum(col("x"));
        let stale_res = q.exact(&stale).unwrap();
        // Clean sample == dirty sample → correction must be exactly 0.
        let est = svc_corr(stale_res, &s_hat, &s_hat, &q, 0.3, &cfg).unwrap();
        assert_eq!(est.value, stale_res);
        assert_eq!(est.ci.unwrap().half_width, 0.0);
    }

    #[test]
    fn median_estimates_with_bootstrap_ci() {
        let (stale, fresh, s_hat, f_hat) = samples(0.25);
        let cfg = SvcConfig::default();
        let q = AggQuery::median(col("x"));
        let truth = q.exact(&fresh).unwrap();
        let aqp = svc_aqp(&f_hat, &q, 0.25, &cfg).unwrap();
        assert!((aqp.value - truth).abs() < 15.0);
        assert!(aqp.ci.is_some());
        let stale_res = q.exact(&stale).unwrap();
        let corr = svc_corr(stale_res, &s_hat, &f_hat, &q, 0.25, &cfg).unwrap();
        assert!((corr.value - truth).abs() < 15.0);
    }

    #[test]
    fn max_correction_and_cantelli() {
        let (stale, fresh, s_hat, f_hat) = samples(0.25);
        let cfg = SvcConfig::default();
        let q = AggQuery::max(col("x"));
        let stale_res = q.exact(&stale).unwrap();
        let est = svc_corr(stale_res, &s_hat, &f_hat, &q, 0.25, &cfg).unwrap();
        let p = est.exceedance_probability.unwrap();
        assert!((0.0..=1.0).contains(&p));
        // The corrected max must be at least the stale max here (values only
        // increased).
        assert!(est.value >= stale_res);
        let truth = q.exact(&fresh).unwrap();
        assert!((est.value - truth).abs() <= 15.0);
    }

    #[test]
    fn selectivity_widens_intervals() {
        // Section 5.2.3: a more selective predicate → larger CI.
        let (_, _, _, f_hat) = samples(0.25);
        let cfg = SvcConfig::default();
        let broad = AggQuery::avg(col("x"));
        let narrow = AggQuery::avg(col("x")).filter(col("id").rem(lit(10i64)).eq(lit(0i64)));
        let b = svc_aqp(&f_hat, &broad, 0.25, &cfg).unwrap();
        let n = svc_aqp(&f_hat, &narrow, 0.25, &cfg).unwrap();
        assert!(n.predicate_rows < b.predicate_rows);
        assert!(n.ci.unwrap().half_width > b.ci.unwrap().half_width, "narrow CI should be wider");
    }

    #[test]
    fn empty_sample_errors() {
        let (_, _, _, f_hat) = samples(0.25);
        let q = AggQuery::avg(col("x")).filter(col("id").gt(lit(10_000i64)));
        assert!(svc_aqp(&f_hat, &q, 0.25, &SvcConfig::default()).is_err());
    }
}
