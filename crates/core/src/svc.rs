//! The SVC facade: one materialized view under Stale View Cleaning.
//!
//! [`SvcView`] owns the full (possibly stale) materialized view **and** a
//! hash-sample of it. Between maintenance periods it can:
//!
//! * *clean* the stale sample into an up-to-date sample (Problem 1) by
//!   pushing η through the view's maintenance plan — Figure 3's optimized
//!   expression, built here from `svc-ivm` + `svc-sampling`;
//! * answer aggregate queries via SVC+AQP or SVC+CORR (Problem 2);
//! * run full maintenance at period boundaries and re-sample.

use svc_storage::{Database, Deltas, Result, StorageError, Table};

use svc_catalog::{Catalog, ScopedStats};
use svc_ivm::delta::{del_leaf, ins_leaf};
use svc_ivm::strategy::{MaintCatalog, PlanKind, STALE_LEAF};
use svc_ivm::view::{maintenance_bindings, MaterializedView};
use svc_relalg::derive::Derived;

use svc_relalg::optimizer::{optimize, optimize_with};
use svc_relalg::plan::Plan;
use svc_sampling::operator::sample_by_key;
use svc_sampling::pushdown::PushdownReport;

use crate::config::SvcConfig;
use crate::estimate::{stale_answer, svc_aqp, svc_corr, Estimate, Method};
use crate::query::AggQuery;

/// A materialized view managed by SVC: full stale state + stale sample +
/// the machinery to clean the sample and estimate query answers.
#[derive(Debug, Clone)]
pub struct SvcView {
    /// The underlying materialized view (full, possibly stale, state).
    pub view: MaterializedView,
    /// Configuration (ratio, hash, confidence, ...).
    pub config: SvcConfig,
    stale_sample: Table,
    counters: SvcCounters,
}

/// Live cleaning counters. Atomic so the `&self` cleaning path can count;
/// cloning an [`SvcView`] snapshots them (shared history, separate future).
#[derive(Debug, Clone, Default)]
struct SvcCounters {
    cleanings: svc_telemetry::Counter,
    rows_cleaned: svc_telemetry::Counter,
}

/// A point-in-time reading of one view's SVC telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SvcMetrics {
    /// Cleaning runs performed ([`SvcView::clean_sample`] and friends).
    pub cleanings: u64,
    /// Total up-to-date sample rows those runs materialized.
    pub rows_cleaned: u64,
    /// Time since the full view was last maintained (creation counts).
    pub staleness_age: std::time::Duration,
}

/// A cleaned sample plus diagnostics of how it was materialized.
#[derive(Debug, Clone)]
pub struct CleanedSample {
    /// Canonical-schema sample of the up-to-date view (`Ŝ′`).
    pub canonical: Table,
    /// Public-schema projection of the sample.
    pub public: Table,
    /// What the push-down rewrite achieved.
    pub report: PushdownReport,
    /// Which maintenance strategy the cleaning expression derives from.
    pub plan_kind: PlanKind,
}

/// Number of `Scan name` leaves in a plan.
fn count_scans(plan: &Plan, name: &str) -> usize {
    plan.leaf_tables().iter().filter(|t| **t == name).count()
}

impl SvcView {
    /// Create the view, materialize it, and draw the initial sample.
    pub fn create(
        name: impl Into<String>,
        definition: Plan,
        db: &Database,
        config: SvcConfig,
    ) -> Result<SvcView> {
        let view = MaterializedView::create(name, definition, db)?;
        let stale_sample = sample_by_key(view.table(), config.ratio, config.hash_spec());
        Ok(SvcView { view, config, stale_sample, counters: SvcCounters::default() })
    }

    /// Read this view's telemetry: cleaning counters plus the staleness
    /// age of the full materialized state.
    pub fn metrics(&self) -> SvcMetrics {
        SvcMetrics {
            cleanings: self.counters.cleanings.get(),
            rows_cleaned: self.counters.rows_cleaned.get(),
            staleness_age: self.view.staleness_age(),
        }
    }

    /// The stale sample `Ŝ` (canonical schema).
    pub fn stale_sample(&self) -> &Table {
        &self.stale_sample
    }

    /// The stale sample in the public schema.
    pub fn stale_sample_public(&self) -> Result<Table> {
        self.view.public_of(&self.stale_sample)
    }

    /// Build the optimized cleaning expression `C` (η pushed through the
    /// maintenance plan) without evaluating it. Exposed for inspection and
    /// for the benchmarks that count how far hashes push.
    ///
    /// The η-wrapped maintenance plan goes through the standard optimizer —
    /// predicate pushdown, projection pruning, and the Definition 3 η rule
    /// all in one fixed-point engine — exactly once.
    pub fn cleaning_plan(
        &self,
        db: &Database,
        deltas: &Deltas,
    ) -> Result<(Plan, PushdownReport, PlanKind)> {
        self.cleaning_plan_with(db, deltas, None)
    }

    /// [`SvcView::cleaning_plan`] with an optional statistics catalog:
    /// when present, the optimizer additionally reorders the cleaning
    /// plan's join regions by estimated cost. The catalog covers the base
    /// tables; the maintenance-only leaves (`__stale`, `__ins.T`,
    /// `__del.T`) are overlaid with stats built from the concrete tables
    /// about to be bound — all small relative to the base data.
    pub fn cleaning_plan_with(
        &self,
        db: &Database,
        deltas: &Deltas,
        catalog: Option<&Catalog>,
    ) -> Result<(Plan, PushdownReport, PlanKind)> {
        let (mplan, kind) = self.view.build_maintenance_plan(db, deltas)?;
        let key_names = self.view.key_names();
        if key_names.is_empty() {
            return Err(StorageError::Invalid(
                "cannot sample a view with an empty primary key (global aggregate)".into(),
            ));
        }
        let key_refs: Vec<&str> = key_names.iter().map(|s| s.as_str()).collect();
        let hashed = mplan.hash(&key_refs, self.config.ratio, self.config.hash_spec());
        let cat = MaintCatalog {
            db,
            stale: Derived {
                schema: self.view.table().schema().clone(),
                key: self.view.table().key().to_vec(),
            },
        };
        let (optimized, report) = match catalog {
            Some(c) => {
                let scoped = self.maintenance_stats(c, deltas);
                optimize_with(&hashed, &cat, &scoped.estimator())?
            }
            None => optimize(&hashed, &cat)?,
        };
        Ok((optimized, report.eta.into(), kind))
    }

    /// The catalog overlay for a cleaning plan: stale view and delta
    /// relations bound by their plan leaf names. The stale leaf is priced
    /// from the **stale sample** — that is the relation `clean_sample`
    /// actually binds when η reaches every stale leaf (the common case),
    /// and scanning the sample keeps this path O(sample), not O(view).
    /// When η is blocked and the full view gets bound instead, every stale
    /// branch is under-priced by the same factor `m`, which leaves the
    /// ordinal comparisons the reorderer makes intact.
    fn maintenance_stats<'a>(&self, catalog: &'a Catalog, deltas: &Deltas) -> ScopedStats<'a> {
        let mut scoped = catalog.scoped();
        scoped.bind_table(STALE_LEAF, &self.stale_sample);
        for (name, set) in deltas.iter() {
            scoped.bind_table(ins_leaf(name), &set.insertions);
            scoped.bind_table(del_leaf(name), &set.deletions);
        }
        scoped
    }

    /// Problem 1 — stale sample view cleaning: materialize `Ŝ′`, the
    /// corresponding up-to-date sample, for a fraction of full maintenance
    /// cost.
    pub fn clean_sample(&self, db: &Database, deltas: &Deltas) -> Result<CleanedSample> {
        self.clean_sample_with(db, deltas, None)
    }

    /// [`SvcView::clean_sample`] with an optional statistics catalog (see
    /// [`SvcView::cleaning_plan_with`]).
    pub fn clean_sample_with(
        &self,
        db: &Database,
        deltas: &Deltas,
        catalog: Option<&Catalog>,
    ) -> Result<CleanedSample> {
        self.clean_sample_with_mode(db, deltas, catalog, svc_relalg::exec::ExecMode::sequential())
    }

    /// [`SvcView::clean_sample_with`] with an execution mode: a mode
    /// carrying a morsel scheduler runs the compiled cleaning expression
    /// morsel-parallel — the η-filtered base/delta/stale scans split into
    /// row ranges that fan out across the scheduler's workers.
    pub fn clean_sample_with_mode(
        &self,
        db: &Database,
        deltas: &Deltas,
        catalog: Option<&Catalog>,
        mode: svc_relalg::exec::ExecMode<'_>,
    ) -> Result<CleanedSample> {
        svc_fault::fail_point!(svc_fault::site::CORE_CLEAN, StorageError::Invalid);
        let (plan, report, plan_kind) = self.cleaning_plan_with(db, deltas, catalog)?;
        // When the η reached every stale-view leaf, those branches read only
        // hash-selected rows, so binding the (much smaller) stale sample is
        // the exact same relation — the hash is idempotent on it. Blockers
        // elsewhere (e.g. inside the delta branch of a multi-dimension cube)
        // don't matter for this substitution. If some stale-view scan is
        // NOT under a hash, bind the full stale view: the un-pushed hash
        // above still samples correctly, it is merely more work (the
        // paper's V21/V22 regime).
        let stale_scans = count_scans(&plan, STALE_LEAF);
        let stale_sampled =
            report.sampled_leaves.iter().filter(|l| l.as_str() == STALE_LEAF).count();
        let stale_binding: &Table = if stale_scans == 0 || stale_scans == stale_sampled {
            &self.stale_sample
        } else {
            self.view.table()
        };
        let canonical = {
            // Compile the cleaning expression once and stream it: the η
            // filters run over borrowed base/delta/stale rows, cloning
            // only hash-selected survivors.
            let bindings = maintenance_bindings(db, deltas, stale_binding);
            svc_relalg::exec::compile(&plan, &bindings)?.run_with(&bindings, mode)?
        };
        let public = self.view.public_of(&canonical)?;
        self.counters.cleanings.inc();
        self.counters.rows_cleaned.add(canonical.len() as u64);
        Ok(CleanedSample { canonical, public, report, plan_kind })
    }

    /// `q(S)`: the (possibly stale) full-view answer — the "No Maintenance"
    /// baseline.
    pub fn query_stale(&self, q: &AggQuery) -> Result<f64> {
        q.exact(&self.view.public_table()?)
    }

    /// `q(S′)`: the ground-truth fresh answer, by full recomputation.
    /// Expensive; used as the oracle in tests and experiments.
    pub fn query_fresh_oracle(&self, db: &Database, deltas: &Deltas, q: &AggQuery) -> Result<f64> {
        let fresh = self.view.recompute_fresh(db, deltas)?;
        q.exact(&self.view.public_of(&fresh)?)
    }

    /// SVC+AQP on an already-cleaned sample.
    pub fn estimate_aqp(&self, cleaned: &CleanedSample, q: &AggQuery) -> Result<Estimate> {
        svc_aqp(&cleaned.public, q, self.config.ratio, &self.config)
    }

    /// SVC+CORR on an already-cleaned sample.
    pub fn estimate_corr(&self, cleaned: &CleanedSample, q: &AggQuery) -> Result<Estimate> {
        let stale_result = self.query_stale(q)?;
        svc_corr(
            stale_result,
            &self.stale_sample_public()?,
            &cleaned.public,
            q,
            self.config.ratio,
            &self.config,
        )
    }

    /// End-to-end answer: clean a sample, then estimate with the requested
    /// method.
    pub fn answer(
        &self,
        db: &Database,
        deltas: &Deltas,
        q: &AggQuery,
        method: Method,
    ) -> Result<Estimate> {
        match method {
            Method::Stale => Ok(stale_answer(self.query_stale(q)?)),
            Method::AqpDirect => {
                let cleaned = self.clean_sample(db, deltas)?;
                self.estimate_aqp(&cleaned, q)
            }
            Method::Correction => {
                let cleaned = self.clean_sample(db, deltas)?;
                self.estimate_corr(&cleaned, q)
            }
        }
    }

    /// Break-even heuristic of Section 5.2.2: SVC+CORR wins while
    /// `σ²_S ≤ 2·cov(S, S′)`; estimate both from the corresponding samples
    /// and pick the lower-variance method for sample-mean queries.
    pub fn preferred_method(&self, cleaned: &CleanedSample, q: &AggQuery) -> Result<Method> {
        if !q.agg.is_sample_mean() {
            return Ok(Method::AqpDirect);
        }
        let stale_pub = self.stale_sample_public()?;
        let bound_stale = q.bind(&stale_pub)?;
        let bound_clean = q.bind(&cleaned.public)?;
        let mut stale_vals: std::collections::HashMap<svc_storage::KeyTuple, f64> =
            Default::default();
        for (k, row) in stale_pub.iter_keyed() {
            if bound_stale.matches(row) {
                if let Some(v) = bound_stale.attr.eval(row).as_f64() {
                    stale_vals.insert(k, v);
                }
            }
        }
        let mut s_var = svc_stats::moments::Moments::new();
        let mut cov_acc = 0.0;
        let mut pairs = 0usize;
        let mut clean_m = svc_stats::moments::Moments::new();
        let mut paired: Vec<(f64, f64)> = Vec::new();
        for (k, row) in cleaned.public.iter_keyed() {
            if bound_clean.matches(row) {
                if let Some(v) = bound_clean.attr.eval(row).as_f64() {
                    clean_m.push(v);
                    if let Some(&sv) = stale_vals.get(&k) {
                        paired.push((sv, v));
                    }
                }
            }
        }
        for &(sv, _) in &paired {
            s_var.push(sv);
        }
        let s_mean = s_var.mean();
        let c_mean = clean_m.mean();
        for &(sv, cv) in &paired {
            cov_acc += (sv - s_mean) * (cv - c_mean);
            pairs += 1;
        }
        let cov = if pairs > 1 { cov_acc / (pairs - 1) as f64 } else { 0.0 };
        Ok(if s_var.variance() <= 2.0 * cov { Method::Correction } else { Method::AqpDirect })
    }

    /// Full incremental maintenance (the IVM baseline): update the view,
    /// then draw a fresh sample. The caller applies `deltas` to the base
    /// tables afterwards.
    pub fn maintain_full(&mut self, db: &Database, deltas: &Deltas) -> Result<PlanKind> {
        let kind = self.view.maintain(db, deltas)?;
        self.resample();
        Ok(kind)
    }

    /// Adopt a cleaned sample as the new stale sample — SVC's cheap
    /// maintenance step between full refreshes.
    pub fn adopt_clean_sample(&mut self, cleaned: CleanedSample) {
        self.stale_sample = cleaned.canonical;
    }

    /// Redraw the stale sample from the current full view.
    pub fn resample(&mut self) {
        self.stale_sample =
            sample_by_key(self.view.table(), self.config.ratio, self.config.hash_spec());
    }

    /// The leaf name the stale view binds to inside maintenance plans.
    pub fn stale_leaf() -> &'static str {
        STALE_LEAF
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::relative_error;
    use svc_relalg::aggregate::{AggFunc, AggSpec};
    use svc_relalg::plan::JoinKind;
    use svc_relalg::scalar::{col, lit};
    use svc_storage::{DataType, Schema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let mut video = Table::new(
            Schema::from_pairs(&[
                ("videoId", DataType::Int),
                ("ownerId", DataType::Int),
                ("duration", DataType::Float),
            ])
            .unwrap(),
            &["videoId"],
        )
        .unwrap();
        for v in 0..500i64 {
            video
                .insert(vec![
                    Value::Int(v),
                    Value::Int(v % 23),
                    Value::Float(0.5 + (v % 13) as f64 * 0.25),
                ])
                .unwrap();
        }
        let mut log = Table::new(
            Schema::from_pairs(&[("sessionId", DataType::Int), ("videoId", DataType::Int)])
                .unwrap(),
            &["sessionId"],
        )
        .unwrap();
        for s in 0..8000i64 {
            log.insert(vec![Value::Int(s), Value::Int((s * 31 + 11) % 500)]).unwrap();
        }
        db.create_table("video", video);
        db.create_table("log", log);
        db
    }

    fn visit_view() -> Plan {
        Plan::scan("log")
            .join(Plan::scan("video"), JoinKind::Inner, &[("videoId", "videoId")])
            .aggregate(
                &["videoId"],
                vec![
                    AggSpec::count_all("visitCount"),
                    AggSpec::new("avgDur", AggFunc::Avg, col("duration")),
                ],
            )
    }

    /// Skewed insertions: most new visits hit a small set of videos —
    /// the "staleness does not affect every query uniformly" motivation.
    fn skewed_deltas(db: &Database, n: i64) -> Deltas {
        let mut deltas = Deltas::new();
        for s in 8000..8000 + n {
            let vid = if s % 10 < 8 { s % 20 } else { s % 500 };
            deltas.insert(db, "log", vec![Value::Int(s), Value::Int(vid)]).unwrap();
        }
        deltas
    }

    #[test]
    fn clean_sample_corresponds_to_fresh_view() {
        let db = db();
        let svc = SvcView::create("v", visit_view(), &db, SvcConfig::with_ratio(0.2)).unwrap();
        let deltas = skewed_deltas(&db, 2000);
        let cleaned = svc.clean_sample(&db, &deltas).unwrap();
        assert!(cleaned.report.fully_pushed(), "blockers: {:?}", cleaned.report.blockers);
        assert_eq!(cleaned.plan_kind, PlanKind::ChangeTable);

        // Every sampled row must exactly match the fresh view's row.
        let fresh = svc.view.recompute_fresh(&db, &deltas).unwrap();
        for (k, row) in cleaned.canonical.iter_keyed() {
            let f = fresh.get(&k).expect("sampled key exists in fresh view");
            assert_eq!(row, f, "cleaned row diverges at key {k}");
        }
        // Sample size ≈ m · |fresh|.
        let frac = cleaned.canonical.len() as f64 / fresh.len() as f64;
        assert!((frac - 0.2).abs() < 0.06, "sample fraction {frac}");
        // Property 1 check via the dedicated verifier.
        let violations = svc_sampling::check_correspondence(
            svc.stale_sample(),
            &cleaned.canonical,
            svc.view.table(),
            &fresh,
            svc.config.ratio,
            svc.config.hash_spec(),
        );
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn corr_and_aqp_beat_stale_baseline() {
        let db = db();
        let svc = SvcView::create("v", visit_view(), &db, SvcConfig::with_ratio(0.15)).unwrap();
        let deltas = skewed_deltas(&db, 4000);
        // Query hit hard by the skew: visits to the hot videos.
        let q = AggQuery::sum(col("visitCount")).filter(col("videoId").lt(lit(20i64)));
        let truth = svc.query_fresh_oracle(&db, &deltas, &q).unwrap();
        let stale = svc.query_stale(&q).unwrap();
        let cleaned = svc.clean_sample(&db, &deltas).unwrap();
        let aqp = svc.estimate_aqp(&cleaned, &q).unwrap();
        let corr = svc.estimate_corr(&cleaned, &q).unwrap();

        let e_stale = relative_error(stale, truth);
        let e_aqp = relative_error(aqp.value, truth);
        let e_corr = relative_error(corr.value, truth);
        assert!(e_corr < e_stale, "corr {e_corr} vs stale {e_stale}");
        assert!(e_aqp < e_stale, "aqp {e_aqp} vs stale {e_stale}");
    }

    #[test]
    fn answer_end_to_end_all_methods() {
        let db = db();
        let svc = SvcView::create("v", visit_view(), &db, SvcConfig::with_ratio(0.25)).unwrap();
        let deltas = skewed_deltas(&db, 1500);
        let q = AggQuery::avg(col("visitCount"));
        let truth = svc.query_fresh_oracle(&db, &deltas, &q).unwrap();
        for method in [Method::Stale, Method::AqpDirect, Method::Correction] {
            let est = svc.answer(&db, &deltas, &q, method).unwrap();
            assert!(est.value.is_finite());
            if method != Method::Stale {
                assert!(relative_error(est.value, truth) < 0.25);
            }
        }
    }

    #[test]
    fn maintain_full_resets_staleness() {
        let db = db();
        let mut svc = SvcView::create("v", visit_view(), &db, SvcConfig::with_ratio(0.2)).unwrap();
        let deltas = skewed_deltas(&db, 1000);
        let q = AggQuery::count();
        let truth = svc.query_fresh_oracle(&db, &deltas, &q).unwrap();
        svc.maintain_full(&db, &deltas).unwrap();
        let now = svc.query_stale(&q).unwrap();
        assert_eq!(now, truth);
        // Sample got refreshed too.
        let frac = svc.stale_sample().len() as f64 / svc.view.len() as f64;
        assert!((frac - 0.2).abs() < 0.06);
    }

    #[test]
    fn adopt_clean_sample_moves_the_sample_forward() {
        let db = db();
        let mut svc = SvcView::create("v", visit_view(), &db, SvcConfig::with_ratio(0.2)).unwrap();
        let deltas = skewed_deltas(&db, 1000);
        let cleaned = svc.clean_sample(&db, &deltas).unwrap();
        let cleaned_table = cleaned.canonical.clone();
        svc.adopt_clean_sample(cleaned);
        assert!(svc.stale_sample().same_contents(&cleaned_table));
    }

    #[test]
    fn preferred_method_switches_with_staleness() {
        let db = db();
        let svc = SvcView::create("v", visit_view(), &db, SvcConfig::with_ratio(0.25)).unwrap();
        let q = AggQuery::avg(col("visitCount"));
        // Small update: corrections should be preferred.
        let small = skewed_deltas(&db, 200);
        let cleaned = svc.clean_sample(&db, &small).unwrap();
        assert_eq!(svc.preferred_method(&cleaned, &q).unwrap(), Method::Correction);
    }
}
