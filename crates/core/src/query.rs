//! Aggregate queries over views: `SELECT agg(attr) FROM View WHERE cond(*)`
//! (the query class of Problem 2; group-by is modeled as part of the
//! condition, exactly as footnote 1 of the paper does).

use svc_relalg::scalar::{lit, BoundExpr, Expr};
use svc_storage::{Result, Table};

use svc_stats::quantile::quantile;

/// The aggregate function of a query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryAgg {
    /// `sum(attr)`.
    Sum,
    /// `count(1)` over rows satisfying the predicate.
    Count,
    /// `avg(attr)`.
    Avg,
    /// `median(attr)`.
    Median,
    /// `percentile(attr, p)` with `p ∈ [0,1]`.
    Percentile(f64),
    /// `min(attr)`.
    Min,
    /// `max(attr)`.
    Max,
}

impl QueryAgg {
    /// True for the sample-mean class with analytic CLT bounds
    /// (Section 5.2.1).
    pub fn is_sample_mean(&self) -> bool {
        matches!(self, QueryAgg::Sum | QueryAgg::Count | QueryAgg::Avg)
    }
}

/// An aggregate query over a (public-schema) view.
#[derive(Debug, Clone, PartialEq)]
pub struct AggQuery {
    /// The aggregate.
    pub agg: QueryAgg,
    /// Aggregated attribute expression.
    pub attr: Expr,
    /// Row predicate (`None` = all rows).
    pub predicate: Option<Expr>,
}

impl AggQuery {
    /// `SELECT sum(attr) ...`
    pub fn sum(attr: Expr) -> AggQuery {
        AggQuery { agg: QueryAgg::Sum, attr, predicate: None }
    }

    /// `SELECT count(1) ...`
    pub fn count() -> AggQuery {
        AggQuery { agg: QueryAgg::Count, attr: lit(1i64), predicate: None }
    }

    /// `SELECT avg(attr) ...`
    pub fn avg(attr: Expr) -> AggQuery {
        AggQuery { agg: QueryAgg::Avg, attr, predicate: None }
    }

    /// `SELECT median(attr) ...`
    pub fn median(attr: Expr) -> AggQuery {
        AggQuery { agg: QueryAgg::Median, attr, predicate: None }
    }

    /// `SELECT percentile(attr, p) ...`
    pub fn percentile(attr: Expr, p: f64) -> AggQuery {
        AggQuery { agg: QueryAgg::Percentile(p), attr, predicate: None }
    }

    /// `SELECT min(attr) ...`
    pub fn min(attr: Expr) -> AggQuery {
        AggQuery { agg: QueryAgg::Min, attr, predicate: None }
    }

    /// `SELECT max(attr) ...`
    pub fn max(attr: Expr) -> AggQuery {
        AggQuery { agg: QueryAgg::Max, attr, predicate: None }
    }

    /// Attach a WHERE predicate.
    pub fn filter(mut self, predicate: Expr) -> AggQuery {
        self.predicate = Some(predicate);
        self
    }

    /// Bind attr and predicate against a table's schema.
    pub fn bind(&self, table: &Table) -> Result<BoundQuery> {
        Ok(BoundQuery {
            attr: self.attr.bind(table.schema())?,
            predicate: self.predicate.as_ref().map(|p| p.bind(table.schema())).transpose()?,
        })
    }

    /// Evaluate exactly on a full table (no sampling, no scaling): the
    /// ground-truth answer `q(S)`.
    pub fn exact(&self, table: &Table) -> Result<f64> {
        let bound = self.bind(table)?;
        let vals = bound.matching_values(table);
        Ok(match self.agg {
            QueryAgg::Sum => vals.iter().sum(),
            QueryAgg::Count => vals.len() as f64,
            QueryAgg::Avg => {
                if vals.is_empty() {
                    f64::NAN
                } else {
                    vals.iter().sum::<f64>() / vals.len() as f64
                }
            }
            QueryAgg::Median => {
                if vals.is_empty() {
                    f64::NAN
                } else {
                    quantile(&vals, 0.5)
                }
            }
            QueryAgg::Percentile(p) => {
                if vals.is_empty() {
                    f64::NAN
                } else {
                    quantile(&vals, p)
                }
            }
            QueryAgg::Min => vals.iter().copied().fold(f64::INFINITY, f64::min),
            QueryAgg::Max => vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        })
    }
}

/// A query bound to a concrete schema.
pub struct BoundQuery {
    /// Bound attribute expression.
    pub attr: BoundExpr,
    /// Bound predicate.
    pub predicate: Option<BoundExpr>,
}

impl BoundQuery {
    /// Does `row` satisfy the predicate?
    pub fn matches(&self, row: &svc_storage::Row) -> bool {
        self.predicate.as_ref().is_none_or(|p| p.matches(row))
    }

    /// Numeric attribute values of predicate-satisfying rows (NULLs and
    /// non-numeric values are skipped).
    pub fn matching_values(&self, table: &Table) -> Vec<f64> {
        table
            .rows()
            .iter()
            .filter(|r| self.matches(r))
            .filter_map(|r| self.attr.eval(r).as_f64())
            .collect()
    }
}

/// Relative error `|est − truth| / |truth|` (the paper's accuracy metric),
/// with an absolute fallback when the truth is ~0.
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth.abs() < 1e-12 {
        estimate.abs()
    } else {
        (estimate - truth).abs() / truth.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svc_relalg::scalar::col;
    use svc_storage::{DataType, Schema, Value};

    fn table() -> Table {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("x", DataType::Float)]).unwrap();
        let mut t = Table::new(schema, &["id"]).unwrap();
        for i in 0..10i64 {
            t.insert(vec![Value::Int(i), Value::Float(i as f64)]).unwrap();
        }
        t
    }

    #[test]
    fn exact_aggregates() {
        let t = table();
        assert_eq!(AggQuery::sum(col("x")).exact(&t).unwrap(), 45.0);
        assert_eq!(AggQuery::count().exact(&t).unwrap(), 10.0);
        assert_eq!(AggQuery::avg(col("x")).exact(&t).unwrap(), 4.5);
        assert_eq!(AggQuery::median(col("x")).exact(&t).unwrap(), 4.5);
        assert_eq!(AggQuery::min(col("x")).exact(&t).unwrap(), 0.0);
        assert_eq!(AggQuery::max(col("x")).exact(&t).unwrap(), 9.0);
        assert_eq!(AggQuery::percentile(col("x"), 1.0).exact(&t).unwrap(), 9.0);
    }

    #[test]
    fn predicate_filters() {
        let t = table();
        let q = AggQuery::count().filter(col("x").ge(lit(5.0)));
        assert_eq!(q.exact(&t).unwrap(), 5.0);
        let q = AggQuery::sum(col("x")).filter(col("id").lt(lit(3i64)));
        assert_eq!(q.exact(&t).unwrap(), 3.0);
    }

    #[test]
    fn relative_error_metric() {
        assert_eq!(relative_error(110.0, 100.0), 0.1);
        assert_eq!(relative_error(90.0, 100.0), 0.1);
        assert_eq!(relative_error(5.0, 0.0), 5.0);
    }

    #[test]
    fn empty_avg_is_nan() {
        let t = table();
        let q = AggQuery::avg(col("x")).filter(col("id").gt(lit(100i64)));
        assert!(q.exact(&t).unwrap().is_nan());
    }
}
