#![forbid(unsafe_code)]

//! # svc-core — Stale View Cleaning
//!
//! The primary contribution of *"Stale View Cleaning: Getting Fresh Answers
//! from Stale Materialized Views"* (Krishnan, Wang, Franklin, Goldberg,
//! Kraska — VLDB 2015), reproduced end to end:
//!
//! 1. **Stale sample view cleaning** (Problem 1): [`SvcView::clean_sample`]
//!    wraps the view's maintenance plan in the hashing operator η, pushes it
//!    down with the Definition 3 rules, and evaluates the optimized
//!    expression — materializing a uniform, *corresponding* sample of the
//!    up-to-date view for a fraction of full maintenance cost.
//! 2. **Query result estimation** (Problem 2): [`estimate::svc_aqp`]
//!    (direct estimate) and [`estimate::svc_corr`] (correction of the stale
//!    answer), with CLT confidence intervals for `sum`/`count`/`avg`,
//!    bootstrap intervals for `median`/percentiles, and Cantelli bounds for
//!    `min`/`max` (Section 5, Appendix 12.1.1).
//! 3. **Outlier indexing** (Section 6): [`outlier::OutlierIndex`] on a base
//!    relation attribute, pushed up through the view per Definition 5 and
//!    merged into estimates with the `(N−l)/N · c_reg + l/N · c_out` rule.
//! 4. **Select-query cleaning** (Appendix 12.1.2): [`select_clean`].
//!
//! ## Quickstart
//!
//! ```
//! use svc_core::{AggQuery, SvcConfig, SvcView};
//! use svc_relalg::aggregate::AggSpec;
//! use svc_relalg::plan::{JoinKind, Plan};
//! use svc_relalg::scalar::{col, lit};
//! use svc_storage::{Database, Deltas, DataType, Schema, Table, Value};
//!
//! // Base tables: Log(sessionId, videoId), Video(videoId, ownerId).
//! let mut db = Database::new();
//! let mut video = Table::new(
//!     Schema::from_pairs(&[("videoId", DataType::Int), ("ownerId", DataType::Int)]).unwrap(),
//!     &["videoId"]).unwrap();
//! let mut log = Table::new(
//!     Schema::from_pairs(&[("sessionId", DataType::Int), ("videoId", DataType::Int)]).unwrap(),
//!     &["sessionId"]).unwrap();
//! for v in 0..100i64 { video.insert(vec![v.into(), (v % 7).into()]).unwrap(); }
//! for s in 0..2000i64 { log.insert(vec![s.into(), (s % 100).into()]).unwrap(); }
//! db.create_table("video", video);
//! db.create_table("log", log);
//!
//! // visitView: visits per video.
//! let def = Plan::scan("log")
//!     .join(Plan::scan("video"), JoinKind::Inner, &[("videoId", "videoId")])
//!     .aggregate(&["videoId"], vec![AggSpec::count_all("visitCount")]);
//! let mut svc = SvcView::create("visitView", def, &db, SvcConfig::with_ratio(0.25)).unwrap();
//!
//! // New log records arrive; the view is now stale.
//! let mut deltas = Deltas::new();
//! for s in 2000..2600i64 {
//!     deltas.insert(&db, "log", vec![s.into(), (s % 25).into()]).unwrap();
//! }
//!
//! // Clean a sample and answer a query with a corrected estimate.
//! let q = AggQuery::sum(col("visitCount")).filter(col("videoId").lt(lit(25i64)));
//! let stale = svc.query_stale(&q).unwrap();
//! let est = svc.answer(&db, &deltas, &q, svc_core::Method::Correction).unwrap();
//! let truth = svc.query_fresh_oracle(&db, &deltas, &q).unwrap();
//! assert!((est.value - truth).abs() < (stale - truth).abs());
//! ```

pub mod config;
pub mod diff;
pub mod estimate;
pub mod outlier;
pub mod query;
pub mod select_clean;
pub mod svc;

pub use config::SvcConfig;
pub use estimate::{Estimate, Method};
pub use query::{AggQuery, QueryAgg};
pub use svc::{SvcMetrics, SvcView};
