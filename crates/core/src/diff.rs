//! The correspondence-subtract operator `−̇` of Definition 4.
//!
//! Given two *corresponding* relations keyed identically (the clean and
//! dirty samples), compute row-by-row differences of a per-row statistic,
//! treating a key missing on either side as contributing 0 — the paper's
//! "null values are represented as zero" full-outer-join formulation.

use std::collections::HashMap;

use svc_storage::{KeyTuple, Table};

/// Per-row transformed values keyed by the relation's primary key — the
/// paper's `trans` intermediate table (Section 5.2.1).
pub type TransTable = HashMap<KeyTuple, f64>;

/// Build a trans table by applying `f` to every row (rows mapping to `None`
/// are omitted — e.g. predicate-failing rows of an `avg` query).
pub fn trans_table(
    table: &Table,
    mut f: impl FnMut(&svc_storage::Row) -> Option<f64>,
) -> TransTable {
    let mut out = TransTable::with_capacity(table.len());
    for (key, row) in table.iter_keyed() {
        if let Some(v) = f(row) {
            out.insert(key, v);
        }
    }
    out
}

/// `clean −̇ dirty`: the row-by-row differences over the union of keys, with
/// missing entries as 0. Output order is deterministic (sorted by key).
pub fn correspondence_subtract(clean: &TransTable, dirty: &TransTable) -> Vec<f64> {
    let mut keys: Vec<&KeyTuple> = clean.keys().chain(dirty.keys()).collect();
    keys.sort();
    keys.dedup();
    keys.into_iter()
        .map(|k| clean.get(k).copied().unwrap_or(0.0) - dirty.get(k).copied().unwrap_or(0.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use svc_storage::{DataType, Schema, Value};

    fn table(rows: &[(i64, f64)]) -> Table {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("x", DataType::Float)]).unwrap();
        let mut t = Table::new(schema, &["id"]).unwrap();
        for &(id, x) in rows {
            t.insert(vec![Value::Int(id), Value::Float(x)]).unwrap();
        }
        t
    }

    #[test]
    fn paired_keys_subtract() {
        let clean = trans_table(&table(&[(1, 5.0), (2, 7.0)]), |r| r[1].as_f64());
        let dirty = trans_table(&table(&[(1, 4.0), (2, 7.0)]), |r| r[1].as_f64());
        let mut d = correspondence_subtract(&clean, &dirty);
        d.sort_by(f64::total_cmp);
        assert_eq!(d, vec![0.0, 1.0]);
    }

    #[test]
    fn missing_and_superfluous_keys_count_as_zero() {
        // Key 3 only in clean (a missing row now sampled); key 9 only in
        // dirty (a superfluous row removed by cleaning).
        let clean = trans_table(&table(&[(1, 5.0), (3, 2.0)]), |r| r[1].as_f64());
        let dirty = trans_table(&table(&[(1, 5.0), (9, 4.0)]), |r| r[1].as_f64());
        let d = correspondence_subtract(&clean, &dirty);
        assert_eq!(d.len(), 3);
        let sum: f64 = d.iter().sum();
        assert_eq!(sum, 2.0 - 4.0);
    }

    #[test]
    fn filter_omits_rows() {
        let t = table(&[(1, 5.0), (2, -3.0)]);
        let trans = trans_table(&t, |r| r[1].as_f64().filter(|x| *x > 0.0));
        assert_eq!(trans.len(), 1);
    }

    #[test]
    fn deterministic_order() {
        let clean = trans_table(&table(&[(3, 1.0), (1, 2.0), (2, 3.0)]), |r| r[1].as_f64());
        let dirty = TransTable::new();
        let d1 = correspondence_subtract(&clean, &dirty);
        let d2 = correspondence_subtract(&clean, &dirty);
        assert_eq!(d1, d2);
        assert_eq!(d1, vec![2.0, 3.0, 1.0]); // sorted by key 1,2,3
    }
}
