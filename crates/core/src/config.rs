//! SVC configuration.

use svc_storage::{HashFamily, HashSpec};

/// Tuning knobs for a [`crate::SvcView`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvcConfig {
    /// Sampling ratio `m ∈ [0, 1]` — the accuracy/cost dial of the paper.
    pub ratio: f64,
    /// Hash family used by η.
    pub family: HashFamily,
    /// Hash seed; different seeds give independent samples.
    pub seed: u64,
    /// Confidence level for intervals (e.g. 0.95).
    pub confidence: f64,
    /// Bootstrap resample count for non-sample-mean aggregates.
    pub bootstrap_iterations: usize,
}

impl Default for SvcConfig {
    fn default() -> Self {
        SvcConfig {
            ratio: 0.1,
            family: HashFamily::SplitMix,
            seed: 0x51a1e_u64,
            confidence: 0.95,
            bootstrap_iterations: 200,
        }
    }
}

impl SvcConfig {
    /// Default configuration at a given sampling ratio.
    pub fn with_ratio(ratio: f64) -> SvcConfig {
        SvcConfig { ratio, ..SvcConfig::default() }
    }

    /// Same configuration with a different seed.
    pub fn reseeded(self, seed: u64) -> SvcConfig {
        SvcConfig { seed, ..self }
    }

    /// The concrete hash function for η.
    pub fn hash_spec(&self) -> HashSpec {
        HashSpec { family: self.family, seed: self.seed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SvcConfig::default();
        assert!(c.ratio > 0.0 && c.ratio < 1.0);
        assert!(c.confidence > 0.5 && c.confidence < 1.0);
    }

    #[test]
    fn with_ratio_overrides_only_ratio() {
        let c = SvcConfig::with_ratio(0.33);
        assert_eq!(c.ratio, 0.33);
        assert_eq!(c.confidence, SvcConfig::default().confidence);
        assert_ne!(c.hash_spec(), SvcConfig::default().reseeded(1).hash_spec());
    }
}
