#![forbid(unsafe_code)]

//! # svc-fault
//!
//! Deterministic failpoint injection for chaos-testing the maintenance
//! stack.
//!
//! A *failpoint* is a named site in production code where a test can
//! schedule a failure: after `skip` passes through the site, the next
//! `count` passes fail with the scheduled [`FailAction`] (a returned error
//! or a panic). Sites are identified by the string constants in [`site`];
//! schedules are installed in a process-global registry via [`set`] (or
//! derived from a seed via [`seeded_schedule`]) and removed with
//! [`clear_all`].
//!
//! The registry is always compiled — it is a few atomics and a mutex — but
//! the *call sites* are compiled into consumer crates only when those
//! crates enable their own `failpoints` feature: the [`fail_point!`] and
//! [`fail_point_panic!`] macros expand to a branch on
//! `cfg!(feature = "failpoints")` evaluated in the **calling** crate, so a
//! default build carries a constant-false branch the optimizer removes and
//! the hot paths pay nothing. The workspace umbrella feature `failpoints`
//! turns every site on at once for the chaos harness
//! (`tests/fault_prop.rs`).
//!
//! Determinism: scheduling is per-site hit counting under one lock — for a
//! fixed schedule and a deterministic workload, the same hit of the same
//! site fails on every run. [`seeded_schedule`] derives schedules from a
//! `u64` seed with a SplitMix64 generator, so a failing chaos run is
//! reproducible from its seed alone.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use svc_telemetry::Counter;

/// What a firing failpoint does at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// The site returns an error through its normal error channel. At
    /// sites with no error channel (e.g. worker task dispatch) this
    /// degrades to a panic, which the surrounding pool machinery catches
    /// and surfaces as a session error.
    Error,
    /// The site panics. Production code never swallows these silently:
    /// either a `catch_unwind` boundary converts them into session errors,
    /// or the caller unwinds — both are legitimate chaos outcomes.
    Panic,
}

/// A failure schedule for one site: pass `skip` times, then fail the next
/// `count` passes with `action`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailSpec {
    /// Hits that pass through unharmed before the first failure.
    pub skip: u64,
    /// Consecutive hits that fail once `skip` is exhausted.
    pub count: u64,
    /// What a failing hit does.
    pub action: FailAction,
}

impl FailSpec {
    /// Fail the first `count` hits with `action` (no skip).
    pub fn immediate(count: u64, action: FailAction) -> FailSpec {
        FailSpec { skip: 0, count, action }
    }
}

/// One firing of a failpoint, as observed by the site.
#[derive(Debug, Clone)]
pub struct Fired {
    /// The scheduled action.
    pub action: FailAction,
    /// A diagnosis string naming the site and its hit/fire counts; embedded
    /// in the injected error or panic message (always containing the word
    /// "failpoint", so harnesses can tell injected failures from real ones).
    pub message: String,
}

#[derive(Debug)]
struct SiteState {
    spec: FailSpec,
    hits: u64,
    fired: u64,
}

/// Number of configured sites — the lock-free fast path: when zero (the
/// steady state outside chaos tests), [`check`] returns immediately.
static ARMED: AtomicUsize = AtomicUsize::new(0);

/// Total failpoint firings process-wide, on the shared telemetry counter
/// primitive ([`fires_total`]).
static FIRES: Counter = Counter::new();

fn registry() -> &'static Mutex<HashMap<String, SiteState>> {
    static REG: OnceLock<Mutex<HashMap<String, SiteState>>> = OnceLock::new();
    REG.get_or_init(Mutex::default)
}

/// The registry must stay usable even if a thread panicked while holding
/// it (injected panics are this crate's whole business): recover the guard
/// from the poison instead of propagating it.
fn lock() -> MutexGuard<'static, HashMap<String, SiteState>> {
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Install (or replace) the failure schedule of one site. Hit counting
/// restarts from zero.
pub fn set(site: &str, spec: FailSpec) {
    let mut reg = lock();
    reg.insert(site.to_string(), SiteState { spec, hits: 0, fired: 0 });
    ARMED.store(reg.len(), Ordering::SeqCst);
}

/// Remove one site's schedule (its hit/fire counts are forgotten).
pub fn clear(site: &str) {
    let mut reg = lock();
    reg.remove(site);
    ARMED.store(reg.len(), Ordering::SeqCst);
}

/// Remove every schedule. Chaos harnesses call this between runs; the
/// registry is process-global, so concurrent chaos tests must serialize.
pub fn clear_all() {
    let mut reg = lock();
    reg.clear();
    ARMED.store(0, Ordering::SeqCst);
}

/// Record one pass through `site`; returns the action to take if the
/// site's schedule says this hit fails. Lock-free `None` when no site at
/// all is configured.
pub fn check(site: &str) -> Option<Fired> {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return None;
    }
    let mut reg = lock();
    let st = reg.get_mut(site)?;
    st.hits += 1;
    if st.hits > st.spec.skip && st.fired < st.spec.count {
        st.fired += 1;
        FIRES.inc();
        Some(Fired {
            action: st.spec.action,
            message: format!(
                "failpoint `{site}` fired (hit {}, fire {}/{})",
                st.hits, st.fired, st.spec.count
            ),
        })
    } else {
        None
    }
}

/// Like [`check`], but for sites with no error channel: **any** scheduled
/// action panics here. The panic message contains "failpoint".
pub fn maybe_panic(site: &str) {
    if let Some(fired) = check(site) {
        panic!("{}", fired.message);
    }
}

/// Hits recorded at `site` since its schedule was installed (0 if none).
pub fn hits(site: &str) -> u64 {
    lock().get(site).map_or(0, |s| s.hits)
}

/// Failures injected at `site` since its schedule was installed.
pub fn fired(site: &str) -> u64 {
    lock().get(site).map_or(0, |s| s.fired)
}

/// Total failpoint firings process-wide, across all sites and schedules —
/// the telemetry surface chaos runs report.
pub fn fires_total() -> u64 {
    FIRES.get()
}

/// Inject a failure at a `Result`-returning site. The second operand maps
/// the diagnosis [`String`] into the site's error type (typically an error
/// enum's tuple constructor):
///
/// ```ignore
/// svc_fault::fail_point!(svc_fault::site::TABLE_MUTATE, StorageError::Invalid);
/// ```
///
/// Expands to a branch on `cfg!(feature = "failpoints")` **of the calling
/// crate**: without the feature the branch is constant-false and the site
/// costs nothing.
#[macro_export]
macro_rules! fail_point {
    ($site:expr, $wrap:expr) => {
        if cfg!(feature = "failpoints") {
            if let Some(fired) = $crate::check($site) {
                match fired.action {
                    $crate::FailAction::Panic => panic!("{}", fired.message),
                    $crate::FailAction::Error => return Err(($wrap)(fired.message)),
                }
            }
        }
    };
}

/// Inject a failure at a site with no error channel: any scheduled action
/// panics (see [`maybe_panic`]). Gated exactly like [`fail_point!`].
#[macro_export]
macro_rules! fail_point_panic {
    ($site:expr) => {
        if cfg!(feature = "failpoints") {
            $crate::maybe_panic($site);
        }
    };
}

/// The named injection sites threaded through the workspace. Naming them
/// here (rather than as string literals at each site) keeps schedules and
/// sites in sync and gives harnesses one list to draw from.
pub mod site {
    /// `Table::insert` / `Table::upsert` — every materialized result table
    /// is built through these, so this site fails plan evaluation on
    /// workers and merge folds on the driver alike.
    pub const TABLE_MUTATE: &str = "storage::table::mutate";
    /// One morsel task of a parallel plan run (`exec::run` fan-out).
    pub const EXEC_MORSEL: &str = "relalg::exec::morsel";
    /// One per-partition map-build task of a partitioned hash join
    /// (`exec::partition::build_join_par` fan-out), mid-build: the scatter
    /// pass has run, the build's partition maps are half-assembled.
    pub const JOIN_BUILD: &str = "relalg::exec::join_build";
    /// `WorkerPool` task dispatch, inside the per-task `catch_unwind` (so
    /// injected failures become session errors, never dead workers).
    pub const POOL_DISPATCH: &str = "cluster::pool::dispatch";
    /// Compiling a batch's change plans (the compile-cache miss path).
    pub const BATCH_COMPILE: &str = "cluster::batch::compile";
    /// Evaluating a batch's change plans on the pool.
    pub const BATCH_EVALUATE: &str = "cluster::batch::evaluate";
    /// Folding one change table into the shadow view (driver side).
    pub const BATCH_FOLD: &str = "cluster::batch::fold";
    /// The non-change-table fallback maintenance plan of `BatchPipeline`.
    pub const BATCH_FALLBACK: &str = "cluster::batch::fallback";
    /// `MaterializedView::maintain_with_mode`, before the commit.
    pub const VIEW_MAINTAIN: &str = "ivm::view::maintain";
    /// `SvcView::clean_sample_with_mode`, before counters are touched.
    pub const CORE_CLEAN: &str = "core::svc::clean";

    /// Every site, for schedule generators.
    pub const ALL: [&str; 10] = [
        TABLE_MUTATE,
        EXEC_MORSEL,
        JOIN_BUILD,
        POOL_DISPATCH,
        BATCH_COMPILE,
        BATCH_EVALUATE,
        BATCH_FOLD,
        BATCH_FALLBACK,
        VIEW_MAINTAIN,
        CORE_CLEAN,
    ];
}

/// SplitMix64: the standard 64-bit mixer — tiny, dependency-free, and
/// deterministic across platforms, which is all a failure-schedule
/// generator needs.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A value in `[0, n)` (`n` clamped to at least 1).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// Derive a deterministic failure schedule from `seed`: one or two
/// distinct sites drawn from `sites`, each failing 1–3 consecutive hits
/// after a skip in `[0, max_skip)`, with the action split between errors
/// and panics. The returned schedule is *not* installed — pass it to
/// [`apply_schedule`] (so harnesses can log it first).
pub fn seeded_schedule(
    seed: u64,
    sites: &[&'static str],
    max_skip: u64,
) -> Vec<(&'static str, FailSpec)> {
    let mut r = SplitMix64::new(seed ^ 0x5fa1_7f00_c8a0_55ed);
    let want = 1 + r.below(2) as usize;
    let mut out: Vec<(&'static str, FailSpec)> = Vec::new();
    for _ in 0..want {
        let s = sites[r.below(sites.len() as u64) as usize];
        let spec = FailSpec {
            skip: r.below(max_skip.max(1)),
            count: 1 + r.below(3),
            action: if r.next_u64() & 1 == 0 { FailAction::Error } else { FailAction::Panic },
        };
        if !out.iter().any(|(seen, _)| *seen == s) {
            out.push((s, spec));
        }
    }
    out
}

/// Install every `(site, spec)` pair of a schedule.
pub fn apply_schedule(schedule: &[(&'static str, FailSpec)]) {
    for (s, spec) in schedule {
        set(s, *spec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global: these tests serialize on one lock
    /// (the same discipline the chaos harness uses).
    static TESTS: Mutex<()> = Mutex::new(());

    fn guard() -> MutexGuard<'static, ()> {
        let g = TESTS.lock().unwrap_or_else(PoisonError::into_inner);
        clear_all();
        g
    }

    #[test]
    fn unconfigured_sites_never_fire() {
        let _g = guard();
        assert!(check("nowhere").is_none());
        assert_eq!(hits("nowhere"), 0);
    }

    #[test]
    fn skip_then_count_semantics() {
        let _g = guard();
        set("s", FailSpec { skip: 2, count: 2, action: FailAction::Error });
        assert!(check("s").is_none(), "hit 1 skipped");
        assert!(check("s").is_none(), "hit 2 skipped");
        let f = check("s").expect("hit 3 fires");
        assert_eq!(f.action, FailAction::Error);
        assert!(f.message.contains("failpoint `s`"));
        assert!(check("s").is_some(), "hit 4 fires");
        assert!(check("s").is_none(), "count exhausted");
        assert_eq!(hits("s"), 5);
        assert_eq!(fired("s"), 2);
        clear_all();
        assert!(check("s").is_none(), "cleared schedules are gone");
    }

    #[test]
    fn maybe_panic_panics_on_any_action() {
        let _g = guard();
        set("p", FailSpec::immediate(1, FailAction::Error));
        let err = std::panic::catch_unwind(|| maybe_panic("p")).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("failpoint `p`"), "got: {msg}");
        // Count exhausted: no further panic.
        maybe_panic("p");
    }

    #[test]
    fn seeded_schedules_are_deterministic_and_valid() {
        let _g = guard();
        let sites = ["a", "b", "c"];
        for seed in 0..200u64 {
            let s1 = seeded_schedule(seed, &sites, 16);
            let s2 = seeded_schedule(seed, &sites, 16);
            assert_eq!(s1, s2, "seed {seed} not reproducible");
            assert!(!s1.is_empty() && s1.len() <= 2);
            for (site, spec) in &s1 {
                assert!(sites.contains(site));
                assert!(spec.skip < 16);
                assert!((1..=3).contains(&spec.count));
            }
        }
        // Different seeds explore different schedules.
        let distinct: std::collections::HashSet<_> =
            (0..200u64).map(|s| format!("{:?}", seeded_schedule(s, &sites, 16))).collect();
        assert!(distinct.len() > 50, "only {} distinct schedules", distinct.len());
    }

    #[test]
    fn apply_schedule_installs_every_site() {
        let _g = guard();
        let schedule = seeded_schedule(7, &site::ALL, 8);
        apply_schedule(&schedule);
        for (s, _) in &schedule {
            assert_eq!(hits(s), 0);
            // Drive the site to its firing point.
            while check(s).is_none() {
                assert!(hits(s) < 16, "schedule for {s} never fires");
            }
        }
        clear_all();
    }

    #[test]
    fn poisoned_registry_recovers() {
        let _g = guard();
        set("q", FailSpec::immediate(1, FailAction::Panic));
        // Poison the registry mutex by panicking while holding it.
        let _ = std::panic::catch_unwind(|| {
            let _reg = registry().lock().unwrap();
            panic!("poison the registry");
        });
        // Every entry point still works.
        assert!(check("q").is_some());
        clear_all();
        assert!(check("q").is_none());
    }
}
