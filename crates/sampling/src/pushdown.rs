//! Hash push-down: the Definition 3 rewrite — now a thin wrapper over the
//! η rule of the `svc-relalg` optimizer.
//!
//! Historically this module carried its own traversal; that logic moved to
//! [`svc_relalg::optimizer::eta`] so view definitions, maintenance
//! strategies, and cleaning expressions all share one rewrite engine. The
//! public surface here is unchanged: [`push_down`] rewrites a plan and
//! emits the same [`PushdownReport`] (descent depth, blockers, sampled
//! leaves) as before.
//!
//! Theorem 1 — the rewritten plan materializes the *identical* sample — is
//! exercised by the tests in this module and by property tests at the
//! workspace level.

use svc_storage::Result;

use svc_relalg::derive::LeafProvider;
use svc_relalg::optimizer::{EtaReport, Optimizer};
use svc_relalg::plan::Plan;

/// What the rewriter did: how far hashes moved and where they stopped.
#[derive(Debug, Clone, Default)]
pub struct PushdownReport {
    /// Number of operators the hash was pushed through.
    pub descended: usize,
    /// Human-readable reasons the push stopped somewhere above a leaf.
    pub blockers: Vec<String>,
    /// Leaf relations that ended up with a hash directly above them; only
    /// these are eligible carriers for outlier indexes (Section 6.2).
    pub sampled_leaves: Vec<String>,
}

impl PushdownReport {
    /// True iff every hash reached the leaves unimpeded.
    pub fn fully_pushed(&self) -> bool {
        self.blockers.is_empty()
    }
}

impl From<EtaReport> for PushdownReport {
    fn from(r: EtaReport) -> PushdownReport {
        PushdownReport {
            descended: r.descended,
            blockers: r.blockers,
            sampled_leaves: r.sampled_leaves,
        }
    }
}

/// Rewrite `plan`, pushing every η node as deep as Definition 3 allows.
/// Returns the rewritten plan (which materializes the identical sample,
/// Theorem 1) and a report of what happened.
pub fn push_down(plan: &Plan, leaves: &impl LeafProvider) -> Result<(Plan, PushdownReport)> {
    let (out, report) = Optimizer::eta_only().run(plan, leaves)?;
    Ok((out, report.eta.into()))
}
#[cfg(test)]
mod tests {
    use super::*;
    use svc_relalg::aggregate::AggSpec;
    use svc_relalg::eval::{evaluate, Bindings};
    use svc_relalg::plan::JoinKind;
    use svc_relalg::scalar::{col, lit, Expr, Func};
    use svc_storage::{DataType, Database, HashSpec, Schema, Table, Value};

    /// Log / Video database of the running example, sized so samples are
    /// non-trivial.
    fn video_db() -> Database {
        let mut db = Database::new();
        let mut video = Table::new(
            Schema::from_pairs(&[
                ("videoId", DataType::Int),
                ("ownerId", DataType::Int),
                ("duration", DataType::Float),
            ])
            .unwrap(),
            &["videoId"],
        )
        .unwrap();
        for v in 0..300i64 {
            video
                .insert(vec![
                    Value::Int(v),
                    Value::Int(v % 17),
                    Value::Float(0.25 + (v % 40) as f64 * 0.05),
                ])
                .unwrap();
        }
        let mut log = Table::new(
            Schema::from_pairs(&[("sessionId", DataType::Int), ("videoId", DataType::Int)])
                .unwrap(),
            &["sessionId"],
        )
        .unwrap();
        for s in 0..5000i64 {
            log.insert(vec![Value::Int(s), Value::Int((s * 7 + s % 13) % 300)]).unwrap();
        }
        db.create_table("video", video);
        db.create_table("log", log);
        db
    }

    fn visit_view() -> Plan {
        Plan::scan("log")
            .join(Plan::scan("video"), JoinKind::Inner, &[("videoId", "videoId")])
            .aggregate(&["videoId"], vec![AggSpec::count_all("visitCount")])
    }

    /// Assert Theorem 1 on a plan: η applied at the top and the pushed-down
    /// rewrite materialize identical samples.
    fn assert_theorem1(plan: Plan, key: &[&str], db: &Database) -> PushdownReport {
        let hashed = plan.hash(key, 0.35, HashSpec::with_seed(77));
        let b = Bindings::from_database(db);
        let unpushed = evaluate(&hashed, &b).unwrap();
        let (optimized, report) = push_down(&hashed, db).unwrap();
        let pushed = evaluate(&optimized, &b).unwrap();
        assert!(
            pushed.same_contents(&unpushed),
            "Theorem 1 violated: pushed {} rows vs unpushed {} rows",
            pushed.len(),
            unpushed.len()
        );
        report
    }

    #[test]
    fn figure3_visit_view_pushes_to_both_leaves() {
        let db = video_db();
        let report = assert_theorem1(visit_view(), &["videoId"], &db);
        assert!(report.fully_pushed(), "blockers: {:?}", report.blockers);
        let mut sampled = report.sampled_leaves;
        sampled.sort();
        assert_eq!(sampled, vec!["log", "video"]);
    }

    #[test]
    fn select_and_project_pass_hash_through() {
        let db = video_db();
        let plan = Plan::scan("video")
            .select(col("duration").gt(lit(0.5)))
            .project(vec![("videoId", col("videoId")), ("mins", col("duration").mul(lit(60.0)))]);
        let report = assert_theorem1(plan, &["videoId"], &db);
        assert!(report.fully_pushed());
        assert_eq!(report.sampled_leaves, vec!["video"]);
    }

    #[test]
    fn fk_join_pushes_to_fact_side_only() {
        // Sample the join on the log's key: video is joined on its whole
        // primary key, so the hash commutes to log alone.
        let db = video_db();
        let plan =
            Plan::scan("log").join(Plan::scan("video"), JoinKind::Inner, &[("videoId", "videoId")]);
        let report = assert_theorem1(plan, &["sessionId"], &db);
        assert!(report.fully_pushed(), "blockers: {:?}", report.blockers);
        assert_eq!(report.sampled_leaves, vec!["log"]);
    }

    #[test]
    fn nested_aggregate_blocks_pushdown() {
        // Example 4's blocked query: SELECT c, count(1) FROM (SELECT
        // videoId, count(1) c FROM log GROUP BY videoId) GROUP BY c.
        let db = video_db();
        let inner = Plan::scan("log").aggregate(&["videoId"], vec![AggSpec::count_all("c")]);
        let outer = inner.aggregate(&["c"], vec![AggSpec::count_all("n")]);
        let report = assert_theorem1(outer, &["c"], &db);
        assert!(!report.fully_pushed());
        assert!(report.sampled_leaves.is_empty());
        assert!(report.blockers[0].contains("group-by"));
    }

    #[test]
    fn key_transforming_projection_blocks_pushdown() {
        // V22-style string transformation of the key blocks the push.
        let db = video_db();
        let plan = Plan::scan("video").project(vec![
            ("videoId", col("videoId")),
            ("vkey", Expr::Call { func: Func::Concat, args: vec![lit("v-"), col("videoId")] }),
            ("duration", col("duration")),
        ]);
        // Hashing on the *transformed* column cannot be pushed below Π: the
        // base relation must be scanned in full, exactly the paper's V22
        // observation.
        let hashed = plan.hash(&["vkey"], 0.4, HashSpec::with_seed(3));
        let b = Bindings::from_database(&db);
        let unpushed = evaluate(&hashed, &b).unwrap();
        let (optimized, report) = push_down(&hashed, &db).unwrap();
        assert!(!report.fully_pushed());
        assert!(report.sampled_leaves.is_empty());
        let pushed = evaluate(&optimized, &b).unwrap();
        assert!(pushed.same_contents(&unpushed));
    }

    #[test]
    fn union_pushes_to_both_branches() {
        let db = video_db();
        let recent = Plan::scan("video").select(col("videoId").ge(lit(150i64)));
        let long = Plan::scan("video").select(col("duration").gt(lit(1.5)));
        let plan = recent.union(long);
        let report = assert_theorem1(plan, &["videoId"], &db);
        assert!(report.fully_pushed());
        assert_eq!(report.sampled_leaves, vec!["video", "video"]);
    }

    #[test]
    fn difference_and_intersect_push() {
        let db = video_db();
        let a = Plan::scan("video").select(col("ownerId").lt(lit(9i64)));
        let b_ = Plan::scan("video").select(col("duration").lt(lit(1.0)));
        let report = assert_theorem1(a.clone().difference(b_.clone()), &["videoId"], &db);
        assert!(report.fully_pushed());
        let report = assert_theorem1(a.intersect(b_), &["videoId"], &db);
        assert!(report.fully_pushed());
    }

    #[test]
    fn full_view_equivalence_at_ratio_one() {
        // ratio 1.0: both plans materialize the whole view.
        let db = video_db();
        let hashed = visit_view().hash(&["videoId"], 1.0, HashSpec::default());
        let b = Bindings::from_database(&db);
        let (optimized, _) = push_down(&hashed, &db).unwrap();
        let full = evaluate(&visit_view(), &b).unwrap();
        let sampled = evaluate(&optimized, &b).unwrap();
        assert!(sampled.same_contents(&full));
    }

    #[test]
    fn pushdown_reduces_intermediate_work() {
        // The optimized plan feeds far fewer rows into the join: verify by
        // comparing leaf sample sizes against the full tables.
        let db = video_db();
        let hashed = visit_view().hash(&["videoId"], 0.1, HashSpec::with_seed(5));
        let (optimized, report) = push_down(&hashed, &db).unwrap();
        assert!(report.fully_pushed());
        // Extract the hash directly above the log scan and evaluate it.
        fn find_leaf_hash(plan: &Plan, table: &str) -> Option<Plan> {
            match plan {
                Plan::Hash { input, .. } => match input.as_ref() {
                    Plan::Scan { table: t } if t == table => Some(plan.clone()),
                    _ => find_leaf_hash(input, table),
                },
                Plan::Select { input, .. }
                | Plan::Project { input, .. }
                | Plan::Aggregate { input, .. } => find_leaf_hash(input, table),
                Plan::Join { left, right, .. }
                | Plan::Union { left, right }
                | Plan::Intersect { left, right }
                | Plan::Difference { left, right } => {
                    find_leaf_hash(left, table).or_else(|| find_leaf_hash(right, table))
                }
                Plan::Scan { .. } => None,
            }
        }
        let log_sample = find_leaf_hash(&optimized, "log").expect("log is sampled");
        let b = Bindings::from_database(&db);
        let sampled_log = evaluate(&log_sample, &b).unwrap();
        let full_log = db.table("log").unwrap().len() as f64;
        let frac = sampled_log.len() as f64 / full_log;
        assert!(frac < 0.2, "expected ~10% of log, got {frac}");
    }
}
