//! Hash push-down: the Definition 3 rewrite.
//!
//! `η_{a,m}` is semantically a selection on a deterministic predicate of the
//! key columns `a`, so it commutes with σ, ∪, ∩, −, with Π when the key
//! survives as bare columns, and with γ when the key is part of the group-by
//! clause. Joins block push-down in general; the two special cases of
//! Section 4.4 are implemented:
//!
//! * **Equality join**: if every hash-key column is part of the equality
//!   condition, matched rows carry equal values on both sides, so the same
//!   hash decision can be enforced on both inputs (`Inner` joins; also the
//!   internal `Semi`/`Anti` joins used by maintenance plans).
//! * **Foreign-key join**: if the hash key lives entirely on one side, the
//!   filter commutes to that side (`Inner`/`Left` for the left side,
//!   `Inner`/`Right` for the right side). The classic FK pattern — fact
//!   table sampled on its key while the dimension is joined on its whole
//!   primary key — is an instance of this rule.
//!
//! Every spot where the rewrite must stop is recorded as a *blocker*; nested
//! group-by aggregates (NP-hard in general, Appendix 12.4) and
//! key-transforming projections (the paper's V21/V22) surface here.
//!
//! Theorem 1 — the rewritten plan materializes the *identical* sample — is
//! exercised by the tests in this module and by property tests at the
//! workspace level.

use svc_storage::{HashSpec, Result};

use svc_relalg::derive::{derive, LeafProvider};
use svc_relalg::plan::{JoinKind, Plan};

/// What the rewriter did: how far hashes moved and where they stopped.
#[derive(Debug, Clone, Default)]
pub struct PushdownReport {
    /// Number of operators the hash was pushed through.
    pub descended: usize,
    /// Human-readable reasons the push stopped somewhere above a leaf.
    pub blockers: Vec<String>,
    /// Leaf relations that ended up with a hash directly above them; only
    /// these are eligible carriers for outlier indexes (Section 6.2).
    pub sampled_leaves: Vec<String>,
}

impl PushdownReport {
    /// True iff every hash reached the leaves unimpeded.
    pub fn fully_pushed(&self) -> bool {
        self.blockers.is_empty()
    }
}

/// Rewrite `plan`, pushing every η node as deep as Definition 3 allows.
/// Returns the rewritten plan (which materializes the identical sample,
/// Theorem 1) and a report of what happened.
pub fn push_down(plan: &Plan, leaves: &impl LeafProvider) -> Result<(Plan, PushdownReport)> {
    let mut report = PushdownReport::default();
    let out = rewrite(plan.clone(), leaves, &mut report)?;
    Ok((out, report))
}

fn rewrite(
    plan: Plan,
    leaves: &impl LeafProvider,
    report: &mut PushdownReport,
) -> Result<Plan> {
    Ok(match plan {
        Plan::Hash { input, key, ratio, spec } => {
            let inner = rewrite(*input, leaves, report)?;
            push(key, ratio, spec, inner, leaves, report)?
        }
        Plan::Scan { .. } => plan,
        Plan::Select { input, predicate } => Plan::Select {
            input: Box::new(rewrite(*input, leaves, report)?),
            predicate,
        },
        Plan::Project { input, columns } => Plan::Project {
            input: Box::new(rewrite(*input, leaves, report)?),
            columns,
        },
        Plan::Join { left, right, kind, on } => Plan::Join {
            left: Box::new(rewrite(*left, leaves, report)?),
            right: Box::new(rewrite(*right, leaves, report)?),
            kind,
            on,
        },
        Plan::Aggregate { input, group_by, aggregates } => Plan::Aggregate {
            input: Box::new(rewrite(*input, leaves, report)?),
            group_by,
            aggregates,
        },
        Plan::Union { left, right } => Plan::Union {
            left: Box::new(rewrite(*left, leaves, report)?),
            right: Box::new(rewrite(*right, leaves, report)?),
        },
        Plan::Intersect { left, right } => Plan::Intersect {
            left: Box::new(rewrite(*left, leaves, report)?),
            right: Box::new(rewrite(*right, leaves, report)?),
        },
        Plan::Difference { left, right } => Plan::Difference {
            left: Box::new(rewrite(*left, leaves, report)?),
            right: Box::new(rewrite(*right, leaves, report)?),
        },
    })
}

/// Push one hash (with `key`/`ratio`/`spec`) into `input`, which has already
/// been rewritten.
fn push(
    key: Vec<String>,
    ratio: f64,
    spec: HashSpec,
    input: Plan,
    leaves: &impl LeafProvider,
    report: &mut PushdownReport,
) -> Result<Plan> {
    match input {
        Plan::Scan { ref table } => {
            report.sampled_leaves.push(table.clone());
            Ok(Plan::Hash { input: Box::new(input), key, ratio, spec })
        }
        Plan::Select { input: inner, predicate } => {
            report.descended += 1;
            Ok(Plan::Select {
                input: Box::new(push(key, ratio, spec, *inner, leaves, report)?),
                predicate,
            })
        }
        Plan::Hash { input: inner, key: k2, ratio: r2, spec: s2 } => {
            // η commutes with η: push through the inner hash.
            report.descended += 1;
            Ok(Plan::Hash {
                input: Box::new(push(key, ratio, spec, *inner, leaves, report)?),
                key: k2,
                ratio: r2,
                spec: s2,
            })
        }
        Plan::Project { input: inner, columns } => {
            // Each key column must be a bare column reference in the
            // projection; map output names back to input names.
            let out_schema = derive(
                &Plan::Project { input: inner.clone(), columns: columns.clone() },
                leaves,
            )?
            .schema;
            let mut mapped = Vec::with_capacity(key.len());
            let mut ok = true;
            for k in &key {
                match out_schema.resolve(k).ok().and_then(|p| columns[p].1.as_col()) {
                    Some(src) => mapped.push(src.to_string()),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                report.descended += 1;
                Ok(Plan::Project {
                    input: Box::new(push(mapped, ratio, spec, *inner, leaves, report)?),
                    columns,
                })
            } else {
                report.blockers.push(format!(
                    "projection transforms hash key ({}); η stays above Π",
                    key.join(",")
                ));
                Ok(Plan::Hash {
                    input: Box::new(Plan::Project { input: inner, columns }),
                    key,
                    ratio,
                    spec,
                })
            }
        }
        Plan::Aggregate { input: inner, group_by, aggregates } => {
            let out_schema = derive(
                &Plan::Aggregate {
                    input: inner.clone(),
                    group_by: group_by.clone(),
                    aggregates: aggregates.clone(),
                },
                leaves,
            )?
            .schema;
            let mut mapped = Vec::with_capacity(key.len());
            let mut ok = true;
            for k in &key {
                match out_schema.resolve(k).ok().filter(|&p| p < group_by.len()) {
                    Some(p) => mapped.push(group_by[p].clone()),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                report.descended += 1;
                Ok(Plan::Aggregate {
                    input: Box::new(push(mapped, ratio, spec, *inner, leaves, report)?),
                    group_by,
                    aggregates,
                })
            } else {
                report.blockers.push(format!(
                    "hash key ({}) is not contained in the group-by clause ({}); η stays \
                     above γ (nested-aggregate blocker, Appendix 12.4)",
                    key.join(","),
                    group_by.join(",")
                ));
                Ok(Plan::Hash {
                    input: Box::new(Plan::Aggregate { input: inner, group_by, aggregates }),
                    key,
                    ratio,
                    spec,
                })
            }
        }
        Plan::Join { left, right, kind, on } => {
            push_join(key, ratio, spec, *left, *right, kind, on, leaves, report)
        }
        Plan::Union { left, right } => {
            push_setop(key, ratio, spec, *left, *right, SetOp::Union, leaves, report)
        }
        Plan::Intersect { left, right } => {
            push_setop(key, ratio, spec, *left, *right, SetOp::Intersect, leaves, report)
        }
        Plan::Difference { left, right } => {
            push_setop(key, ratio, spec, *left, *right, SetOp::Difference, leaves, report)
        }
    }
}

enum SetOp {
    Union,
    Intersect,
    Difference,
}

/// ∪/∩/− are positional: map key names through the left schema's positions
/// onto the right schema's names and push into both branches.
#[allow(clippy::too_many_arguments)]
fn push_setop(
    key: Vec<String>,
    ratio: f64,
    spec: HashSpec,
    left: Plan,
    right: Plan,
    op: SetOp,
    leaves: &impl LeafProvider,
    report: &mut PushdownReport,
) -> Result<Plan> {
    let l_schema = derive(&left, leaves)?.schema;
    let r_schema = derive(&right, leaves)?.schema;
    let mut right_key = Vec::with_capacity(key.len());
    for k in &key {
        let p = l_schema.resolve(k)?;
        right_key.push(r_schema.field(p).name.clone());
    }
    report.descended += 1;
    let l = Box::new(push(key, ratio, spec, left, leaves, report)?);
    let r = Box::new(push(right_key, ratio, spec, right, leaves, report)?);
    Ok(match op {
        SetOp::Union => Plan::Union { left: l, right: r },
        SetOp::Intersect => Plan::Intersect { left: l, right: r },
        SetOp::Difference => Plan::Difference { left: l, right: r },
    })
}

#[allow(clippy::too_many_arguments)]
fn push_join(
    key: Vec<String>,
    ratio: f64,
    spec: HashSpec,
    left: Plan,
    right: Plan,
    kind: JoinKind,
    on: Vec<(String, String)>,
    leaves: &impl LeafProvider,
    report: &mut PushdownReport,
) -> Result<Plan> {
    let l_d = derive(&left, leaves)?;
    let r_d = derive(&right, leaves)?;
    let out_schema = derive(
        &Plan::Join {
            left: Box::new(left.clone()),
            right: Box::new(right.clone()),
            kind,
            on: on.clone(),
        },
        leaves,
    )?
    .schema;

    let l_arity = l_d.schema.len();
    // Classify each key column: Some(Left(name)) / Some(Right(name)) by the
    // side it lives on in the join output.
    enum Side {
        Left(String),
        Right(String),
    }
    let mut sides = Vec::with_capacity(key.len());
    for k in &key {
        let p = out_schema.resolve(k)?;
        // Semi/Anti joins expose only the left schema, so p is a left position.
        if p < l_arity {
            sides.push(Side::Left(l_d.schema.field(p).name.clone()));
        } else {
            sides.push(Side::Right(r_d.schema.field(p - l_arity).name.clone()));
        }
    }

    let partner_right = |lname: &str| -> Option<String> {
        let li = l_d.schema.resolve(lname).ok()?;
        on.iter()
            .find(|(l, _)| l_d.schema.resolve(l).ok() == Some(li))
            .map(|(_, r)| r.clone())
    };
    let partner_left = |rname: &str| -> Option<String> {
        let ri = r_d.schema.resolve(rname).ok()?;
        on.iter()
            .find(|(_, r)| r_d.schema.resolve(r).ok() == Some(ri))
            .map(|(l, _)| l.clone())
    };

    // Case 1 — equality join: every key column participates in the join
    // condition, so the hash can be enforced on both inputs.
    let equality_eligible = matches!(kind, JoinKind::Inner | JoinKind::Semi | JoinKind::Anti);
    if equality_eligible {
        let mut lk = Vec::with_capacity(key.len());
        let mut rk = Vec::with_capacity(key.len());
        let mut all = true;
        for side in &sides {
            match side {
                Side::Left(name) => match partner_right(name) {
                    Some(r) => {
                        lk.push(name.clone());
                        rk.push(r);
                    }
                    None => {
                        all = false;
                        break;
                    }
                },
                Side::Right(name) => match partner_left(name) {
                    Some(l) => {
                        lk.push(l);
                        rk.push(name.clone());
                    }
                    None => {
                        all = false;
                        break;
                    }
                },
            }
        }
        if all {
            report.descended += 1;
            let l = Box::new(push(lk, ratio, spec, left, leaves, report)?);
            let r = Box::new(push(rk, ratio, spec, right, leaves, report)?);
            return Ok(Plan::Join { left: l, right: r, kind, on });
        }
    }

    // Case 2 — one-sided push (the FK-join case and its generalization):
    // the filter commutes to the side holding all key columns, provided the
    // join kind cannot fabricate NULLs for that side.
    let all_left = sides.iter().all(|s| matches!(s, Side::Left(_)));
    let all_right = sides.iter().all(|s| matches!(s, Side::Right(_)));
    if all_left && matches!(kind, JoinKind::Inner | JoinKind::Left | JoinKind::Semi | JoinKind::Anti)
    {
        let lk: Vec<String> = sides
            .iter()
            .map(|s| match s {
                Side::Left(n) => n.clone(),
                Side::Right(_) => unreachable!(),
            })
            .collect();
        report.descended += 1;
        let l = Box::new(push(lk, ratio, spec, left, leaves, report)?);
        return Ok(Plan::Join { left: l, right: Box::new(right), kind, on });
    }
    if all_right && matches!(kind, JoinKind::Inner | JoinKind::Right) {
        let rk: Vec<String> = sides
            .iter()
            .map(|s| match s {
                Side::Right(n) => n.clone(),
                Side::Left(_) => unreachable!(),
            })
            .collect();
        report.descended += 1;
        let r = Box::new(push(rk, ratio, spec, right, leaves, report)?);
        return Ok(Plan::Join { left: Box::new(left), right: r, kind, on });
    }

    report.blockers.push(format!(
        "join blocks η on key ({}): key spans both inputs and is not covered by the \
         equality condition",
        key.join(",")
    ));
    Ok(Plan::Hash {
        input: Box::new(Plan::Join {
            left: Box::new(left),
            right: Box::new(right),
            kind,
            on,
        }),
        key,
        ratio,
        spec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use svc_relalg::aggregate::{AggFunc, AggSpec};
    use svc_relalg::eval::{evaluate, Bindings};
    use svc_relalg::scalar::{col, lit, Expr, Func};
    use svc_storage::{Database, DataType, Schema, Table, Value};

    /// Log / Video database of the running example, sized so samples are
    /// non-trivial.
    fn video_db() -> Database {
        let mut db = Database::new();
        let mut video = Table::new(
            Schema::from_pairs(&[
                ("videoId", DataType::Int),
                ("ownerId", DataType::Int),
                ("duration", DataType::Float),
            ])
            .unwrap(),
            &["videoId"],
        )
        .unwrap();
        for v in 0..300i64 {
            video
                .insert(vec![
                    Value::Int(v),
                    Value::Int(v % 17),
                    Value::Float(0.25 + (v % 40) as f64 * 0.05),
                ])
                .unwrap();
        }
        let mut log = Table::new(
            Schema::from_pairs(&[("sessionId", DataType::Int), ("videoId", DataType::Int)])
                .unwrap(),
            &["sessionId"],
        )
        .unwrap();
        for s in 0..5000i64 {
            log.insert(vec![Value::Int(s), Value::Int((s * 7 + s % 13) % 300)]).unwrap();
        }
        db.create_table("video", video);
        db.create_table("log", log);
        db
    }

    fn visit_view() -> Plan {
        Plan::scan("log")
            .join(Plan::scan("video"), JoinKind::Inner, &[("videoId", "videoId")])
            .aggregate(&["videoId"], vec![AggSpec::count_all("visitCount")])
    }

    /// Assert Theorem 1 on a plan: η applied at the top and the pushed-down
    /// rewrite materialize identical samples.
    fn assert_theorem1(plan: Plan, key: &[&str], db: &Database) -> PushdownReport {
        let hashed = plan.hash(key, 0.35, HashSpec::with_seed(77));
        let b = Bindings::from_database(db);
        let unpushed = evaluate(&hashed, &b).unwrap();
        let (optimized, report) = push_down(&hashed, db).unwrap();
        let pushed = evaluate(&optimized, &b).unwrap();
        assert!(
            pushed.same_contents(&unpushed),
            "Theorem 1 violated: pushed {} rows vs unpushed {} rows",
            pushed.len(),
            unpushed.len()
        );
        report
    }

    #[test]
    fn figure3_visit_view_pushes_to_both_leaves() {
        let db = video_db();
        let report = assert_theorem1(visit_view(), &["videoId"], &db);
        assert!(report.fully_pushed(), "blockers: {:?}", report.blockers);
        let mut sampled = report.sampled_leaves.clone();
        sampled.sort();
        assert_eq!(sampled, vec!["log", "video"]);
    }

    #[test]
    fn select_and_project_pass_hash_through() {
        let db = video_db();
        let plan = Plan::scan("video")
            .select(col("duration").gt(lit(0.5)))
            .project(vec![
                ("videoId", col("videoId")),
                ("mins", col("duration").mul(lit(60.0))),
            ]);
        let report = assert_theorem1(plan, &["videoId"], &db);
        assert!(report.fully_pushed());
        assert_eq!(report.sampled_leaves, vec!["video"]);
    }

    #[test]
    fn fk_join_pushes_to_fact_side_only() {
        // Sample the join on the log's key: video is joined on its whole
        // primary key, so the hash commutes to log alone.
        let db = video_db();
        let plan = Plan::scan("log").join(
            Plan::scan("video"),
            JoinKind::Inner,
            &[("videoId", "videoId")],
        );
        let report = assert_theorem1(plan, &["sessionId"], &db);
        assert!(report.fully_pushed(), "blockers: {:?}", report.blockers);
        assert_eq!(report.sampled_leaves, vec!["log"]);
    }

    #[test]
    fn nested_aggregate_blocks_pushdown() {
        // Example 4's blocked query: SELECT c, count(1) FROM (SELECT
        // videoId, count(1) c FROM log GROUP BY videoId) GROUP BY c.
        let db = video_db();
        let inner = Plan::scan("log")
            .aggregate(&["videoId"], vec![AggSpec::count_all("c")]);
        let outer = inner.aggregate(&["c"], vec![AggSpec::count_all("n")]);
        let report = assert_theorem1(outer, &["c"], &db);
        assert!(!report.fully_pushed());
        assert!(report.sampled_leaves.is_empty());
        assert!(report.blockers[0].contains("group-by"));
    }

    #[test]
    fn key_transforming_projection_blocks_pushdown() {
        // V22-style string transformation of the key blocks the push.
        let db = video_db();
        let plan = Plan::scan("video").project(vec![
            ("videoId", col("videoId")),
            (
                "vkey",
                Expr::Call { func: Func::Concat, args: vec![lit("v-"), col("videoId")] },
            ),
            ("duration", col("duration")),
        ]);
        // Hashing on the *transformed* column cannot be pushed below Π: the
        // base relation must be scanned in full, exactly the paper's V22
        // observation.
        let hashed = plan.hash(&["vkey"], 0.4, HashSpec::with_seed(3));
        let b = Bindings::from_database(&db);
        let unpushed = evaluate(&hashed, &b).unwrap();
        let (optimized, report) = push_down(&hashed, &db).unwrap();
        assert!(!report.fully_pushed());
        assert!(report.sampled_leaves.is_empty());
        let pushed = evaluate(&optimized, &b).unwrap();
        assert!(pushed.same_contents(&unpushed));
    }

    #[test]
    fn union_pushes_to_both_branches() {
        let db = video_db();
        let recent = Plan::scan("video").select(col("videoId").ge(lit(150i64)));
        let long = Plan::scan("video").select(col("duration").gt(lit(1.5)));
        let plan = recent.union(long);
        let report = assert_theorem1(plan, &["videoId"], &db);
        assert!(report.fully_pushed());
        assert_eq!(report.sampled_leaves, vec!["video", "video"]);
    }

    #[test]
    fn difference_and_intersect_push() {
        let db = video_db();
        let a = Plan::scan("video").select(col("ownerId").lt(lit(9i64)));
        let b_ = Plan::scan("video").select(col("duration").lt(lit(1.0)));
        let report = assert_theorem1(a.clone().difference(b_.clone()), &["videoId"], &db);
        assert!(report.fully_pushed());
        let report = assert_theorem1(a.intersect(b_), &["videoId"], &db);
        assert!(report.fully_pushed());
    }

    #[test]
    fn full_view_equivalence_at_ratio_one() {
        // ratio 1.0: both plans materialize the whole view.
        let db = video_db();
        let hashed = visit_view().hash(&["videoId"], 1.0, HashSpec::default());
        let b = Bindings::from_database(&db);
        let (optimized, _) = push_down(&hashed, &db).unwrap();
        let full = evaluate(&visit_view(), &b).unwrap();
        let sampled = evaluate(&optimized, &b).unwrap();
        assert!(sampled.same_contents(&full));
    }

    #[test]
    fn pushdown_reduces_intermediate_work() {
        // The optimized plan feeds far fewer rows into the join: verify by
        // comparing leaf sample sizes against the full tables.
        let db = video_db();
        let hashed = visit_view().hash(&["videoId"], 0.1, HashSpec::with_seed(5));
        let (optimized, report) = push_down(&hashed, &db).unwrap();
        assert!(report.fully_pushed());
        // Extract the hash directly above the log scan and evaluate it.
        fn find_leaf_hash(plan: &Plan, table: &str) -> Option<Plan> {
            match plan {
                Plan::Hash { input, .. } => match input.as_ref() {
                    Plan::Scan { table: t } if t == table => Some(plan.clone()),
                    _ => find_leaf_hash(input, table),
                },
                Plan::Select { input, .. }
                | Plan::Project { input, .. }
                | Plan::Aggregate { input, .. } => find_leaf_hash(input, table),
                Plan::Join { left, right, .. }
                | Plan::Union { left, right }
                | Plan::Intersect { left, right }
                | Plan::Difference { left, right } => {
                    find_leaf_hash(left, table).or_else(|| find_leaf_hash(right, table))
                }
                Plan::Scan { .. } => None,
            }
        }
        let log_sample = find_leaf_hash(&optimized, "log").expect("log is sampled");
        let b = Bindings::from_database(&db);
        let sampled_log = evaluate(&log_sample, &b).unwrap();
        let full_log = db.table("log").unwrap().len() as f64;
        let frac = sampled_log.len() as f64 / full_log;
        assert!(frac < 0.2, "expected ~10% of log, got {frac}");
    }
}
