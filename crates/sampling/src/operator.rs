//! Direct application of the η hashing operator to materialized tables.
//!
//! The selection predicate hashes each row's key columns *in place*
//! ([`HashSpec::selects_row`]) — the old implementation extracted a
//! `KeyTuple` per row, which cloned every key value for every row of the
//! input whether it survived or not. Survivor rows are cloned exactly once
//! into a table built with [`Table::from_unique_rows`] (a subset of a keyed
//! table needs no duplicate-key checking). Sampling an *owned* intermediate
//! moves rows instead of cloning — that path lives in the evaluator's η
//! case (`svc_relalg::eval`), which retains over `Table::into_rows`.

use svc_storage::{HashSpec, Result, Table};

/// `η_{key,m}(t)`: keep the rows whose hashed key is ≤ `ratio`.
pub fn sample_table(t: &Table, key_names: &[&str], ratio: f64, spec: HashSpec) -> Result<Table> {
    let key_idx = t.schema().resolve_all(key_names)?;
    let rows = t.rows().iter().filter(|r| spec.selects_row(r, &key_idx, ratio)).cloned().collect();
    Table::from_unique_rows(t.schema().clone(), t.key().to_vec(), rows)
}

/// `η` keyed by the table's own primary key — the common case of sampling a
/// view uniformly by its row identity.
pub fn sample_by_key(t: &Table, ratio: f64, spec: HashSpec) -> Table {
    let key_idx = t.key().to_vec();
    let rows = t.rows().iter().filter(|r| spec.selects_row(r, &key_idx, ratio)).cloned().collect();
    Table::from_unique_rows(t.schema().clone(), t.key().to_vec(), rows)
        .expect("sampling preserves key uniqueness")
}

#[cfg(test)]
mod tests {
    use super::*;
    use svc_storage::{DataType, Schema, Value};

    fn table(n: i64) -> Table {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("x", DataType::Float)]).unwrap();
        let mut t = Table::new(schema, &["id"]).unwrap();
        for i in 0..n {
            t.insert(vec![Value::Int(i), Value::Float(i as f64)]).unwrap();
        }
        t
    }

    #[test]
    fn ratio_zero_and_one() {
        let t = table(100);
        let spec = HashSpec::default();
        assert_eq!(sample_by_key(&t, 1.0, spec).len(), 100);
        assert_eq!(sample_by_key(&t, 0.0, spec).len(), 0);
    }

    #[test]
    fn sample_size_tracks_ratio() {
        let t = table(10_000);
        let s = sample_by_key(&t, 0.1, HashSpec::with_seed(5));
        let frac = s.len() as f64 / t.len() as f64;
        assert!((frac - 0.1).abs() < 0.02, "observed {frac}");
    }

    #[test]
    fn sample_is_subset_and_deterministic() {
        let t = table(500);
        let spec = HashSpec::with_seed(9);
        let s1 = sample_by_key(&t, 0.3, spec);
        let s2 = sample_by_key(&t, 0.3, spec);
        assert!(s1.same_contents(&s2));
        for (k, _) in s1.iter_keyed() {
            assert!(t.contains_key(&k));
        }
    }

    #[test]
    fn nested_samples_via_smaller_ratio() {
        // η_{m1}(η_{m2}(R)) = η_{min(m1,m2)}(R) for the same spec.
        let t = table(2000);
        let spec = HashSpec::with_seed(2);
        let outer = sample_by_key(&sample_by_key(&t, 0.5, spec), 0.2, spec);
        let direct = sample_by_key(&t, 0.2, spec);
        assert!(outer.same_contents(&direct));
    }

    #[test]
    fn explicit_key_names() {
        let t = table(100);
        let s = sample_table(&t, &["id"], 0.5, HashSpec::default()).unwrap();
        assert!(s.len() < 100 && s.len() > 20);
        assert!(sample_table(&t, &["nope"], 0.5, HashSpec::default()).is_err());
    }
}
