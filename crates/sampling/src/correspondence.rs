//! Property 1 — *corresponding samples*.
//!
//! SVC+CORR's variance advantage (Section 5.2.2) rests on the stale sample
//! `Ŝ` and the cleaned sample `Ŝ′` being **correlated**: because the hash is
//! a deterministic function of the primary key, the same keys are selected
//! on both sides (Proposition 2). This module verifies the four conditions
//! of Property 1 against concrete tables, and provides the key-pairing used
//! by the correspondence-subtract operator of Definition 4.

use std::collections::HashSet;

use svc_storage::{HashSpec, KeyTuple, Table};

/// Check Property 1 for a `(Ŝ, Ŝ′)` pair sampled from `(S, S′)` with
/// `spec`/`ratio`. Returns the list of violations; an empty list means the
/// samples correspond.
pub fn check_correspondence(
    stale_sample: &Table,
    clean_sample: &Table,
    stale_view: &Table,
    fresh_view: &Table,
    ratio: f64,
    spec: HashSpec,
) -> Vec<String> {
    let mut violations = Vec::new();

    // Condition 1 (uniformity): each sample must equal η applied to its
    // population — the sample contains exactly the hash-selected keys.
    let check_eta = |sample: &Table, pop: &Table, label: &str, out: &mut Vec<String>| {
        let mut expected: HashSet<KeyTuple> = HashSet::new();
        for (k, _) in pop.iter_keyed() {
            if spec.selects(&k.0, ratio) {
                expected.insert(k);
            }
        }
        if sample.len() != expected.len() {
            out.push(format!(
                "{label}: sample has {} rows but η selects {}",
                sample.len(),
                expected.len()
            ));
        }
        for (k, _) in sample.iter_keyed() {
            if !expected.contains(&k) {
                out.push(format!("{label}: key {k} is not η-selected from the population"));
            }
        }
    };
    check_eta(stale_sample, stale_view, "Ŝ vs S", &mut violations);
    check_eta(clean_sample, fresh_view, "Ŝ′ vs S′", &mut violations);

    // Condition 2 (removal of superfluous rows): keys sampled from S that no
    // longer exist in S′ must not appear in Ŝ′.
    for (k, _) in stale_sample.iter_keyed() {
        if !fresh_view.contains_key(&k) && clean_sample.contains_key(&k) {
            violations.push(format!("superfluous key {k} survived cleaning"));
        }
    }

    // Condition 3 (sampling of missing rows): keys of Ŝ′ that are absent
    // from S must be exactly the η-selected missing keys.
    for (k, _) in clean_sample.iter_keyed() {
        if !stale_view.contains_key(&k) && !spec.selects(&k.0, ratio) {
            violations.push(format!("missing-row key {k} is in Ŝ′ but not η-selected"));
        }
    }

    // Condition 4 (key preservation for updated rows): keys in Ŝ that still
    // exist in S′ must appear in Ŝ′.
    for (k, _) in stale_sample.iter_keyed() {
        if fresh_view.contains_key(&k) && !clean_sample.contains_key(&k) {
            violations.push(format!("key {k} from Ŝ was lost by cleaning"));
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::sample_by_key;
    use svc_storage::{DataType, Schema, Value};

    fn view(ids: &[i64], bump: i64) -> Table {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("v", DataType::Int)]).unwrap();
        let mut t = Table::new(schema, &["id"]).unwrap();
        for &i in ids {
            t.insert(vec![Value::Int(i), Value::Int(i * 10 + bump)]).unwrap();
        }
        t
    }

    #[test]
    fn hashed_samples_correspond() {
        // S = ids 0..400; S′ = ids 50..450 with updated values: incorporates
        // missing rows (400..450), superfluous rows (0..50), and updates.
        let stale: Vec<i64> = (0..400).collect();
        let fresh: Vec<i64> = (50..450).collect();
        let s = view(&stale, 0);
        let s2 = view(&fresh, 1);
        let spec = HashSpec::with_seed(21);
        let m = 0.2;
        let s_hat = sample_by_key(&s, m, spec);
        let s2_hat = sample_by_key(&s2, m, spec);
        let violations = check_correspondence(&s_hat, &s2_hat, &s, &s2, m, spec);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn detects_lost_keys() {
        let s = view(&(0..100).collect::<Vec<_>>(), 0);
        let s2 = view(&(0..100).collect::<Vec<_>>(), 1);
        let spec = HashSpec::with_seed(4);
        let s_hat = sample_by_key(&s, 0.3, spec);
        let mut s2_hat = sample_by_key(&s2, 0.3, spec);
        // Corrupt the clean sample by dropping one row.
        let victim = s_hat.rows()[0].clone();
        s2_hat.delete(&s2_hat.key_of(&victim));
        let violations = check_correspondence(&s_hat, &s2_hat, &s, &s2, 0.3, spec);
        assert!(!violations.is_empty());
    }

    #[test]
    fn detects_non_eta_sample() {
        // A random (non-hash) sample of the same size fails condition 1
        // with overwhelming probability.
        let s = view(&(0..200).collect::<Vec<_>>(), 0);
        let spec = HashSpec::with_seed(10);
        let s_hat = sample_by_key(&s, 0.25, spec);
        // "Sample" made of the first k rows instead.
        let schema = s.schema().clone();
        let mut fake = Table::new(schema, &["id"]).unwrap();
        for row in s.rows().iter().take(s_hat.len()) {
            fake.insert(row.clone()).unwrap();
        }
        let violations = check_correspondence(&fake, &s_hat, &s, &s, 0.25, spec);
        assert!(!violations.is_empty());
    }
}
