#![forbid(unsafe_code)]

//! # svc-sampling
//!
//! The sampling machinery of Section 4 of the paper:
//!
//! * [`operator`] — apply the η hashing operator directly to tables;
//! * [`pushdown`] — the Definition 3 rewrite that pushes `η` down a plan
//!   tree (with the foreign-key and equality-join special cases and the
//!   blockers of Section 7.3 / Appendix 12.4), so that a sample of a derived
//!   relation is materialized *without* materializing the full relation;
//! * [`correspondence`] — checks of Property 1 ("corresponding samples"),
//!   the statistical contract between the stale sample `Ŝ` and the cleaned
//!   sample `Ŝ′` that SVC+CORR relies on.

pub mod correspondence;
pub mod operator;
pub mod pushdown;

pub use correspondence::check_correspondence;
pub use operator::{sample_by_key, sample_table};
pub use pushdown::{push_down, PushdownReport};
