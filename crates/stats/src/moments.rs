//! Streaming first and second moments (Welford's algorithm).

/// Running count, mean, and variance of a stream of numbers, numerically
/// stable under long streams.
#[derive(Debug, Clone, Copy, Default)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Moments {
    /// An empty accumulator.
    pub fn new() -> Moments {
        Moments::default()
    }

    /// Accumulate all values of a slice.
    pub fn of(values: &[f64]) -> Moments {
        let mut m = Moments::new();
        for &v in values {
            m.push(v);
        }
        m
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty stream).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean * self.n as f64
    }

    /// Unbiased sample variance (n−1 denominator; 0 when n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (n denominator; 0 when n == 0).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean: `σ / √n`.
    pub fn standard_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }

    /// Merge two accumulators (parallel Welford).
    pub fn merge(&self, other: &Moments) -> Moments {
        if self.n == 0 {
            return *other;
        }
        if other.n == 0 {
            return *self;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        Moments { n, mean, m2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let m = Moments::of(&xs);
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.population_variance() - 4.0).abs() < 1e-12);
        assert!((m.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert!((m.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole = Moments::of(&xs);
        let merged = Moments::of(&xs[..37]).merge(&Moments::of(&xs[37..]));
        assert!((whole.mean() - merged.mean()).abs() < 1e-10);
        assert!((whole.variance() - merged.variance()).abs() < 1e-10);
    }

    #[test]
    fn degenerate_cases() {
        let empty = Moments::new();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.variance(), 0.0);
        assert_eq!(empty.standard_error(), 0.0);
        let one = Moments::of(&[42.0]);
        assert_eq!(one.variance(), 0.0);
        assert_eq!(one.mean(), 42.0);
    }
}
