#![forbid(unsafe_code)]

//! # svc-stats
//!
//! The estimation-theory toolbox of Section 5 and Appendix 12.1 of the
//! paper:
//!
//! * [`moments`] — streaming mean/variance (Welford);
//! * [`clt`] — Central Limit Theorem confidence intervals for sample-mean
//!   aggregates (`sum`, `count`, `avg`; Section 5.2.1);
//! * [`bootstrap`] — the statistical bootstrap for aggregates that are not
//!   sample means (`median`, percentiles; Section 5.2.5);
//! * [`cantelli`] — Cantelli-inequality tail bounds for `min`/`max`
//!   (Appendix 12.1.1);
//! * [`quantile`] — exact quantiles of small vectors.

pub mod bootstrap;
pub mod cantelli;
pub mod clt;
pub mod moments;
pub mod quantile;

pub use bootstrap::{bootstrap_ci, bootstrap_distribution};
pub use cantelli::{cantelli_exceedance, cantelli_subceedance};
pub use clt::{gaussian_gamma, ConfidenceInterval};
pub use moments::Moments;
pub use quantile::{median, quantile};
