//! Central Limit Theorem confidence intervals (Section 5.2.1).
//!
//! For aggregates expressible as sample means, the error `(µ − µ̄)` is
//! asymptotically `N(0, σ²/k)`, so the interval is `µ̄ ± γ·√(σ²/k)` where γ
//! is the Gaussian tail value (1.96 for 95%, 2.57 for 99% — the constants
//! quoted in the paper).

/// A symmetric confidence interval around an estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub estimate: f64,
    /// Half-width of the interval (`γ·se`).
    pub half_width: f64,
    /// Confidence level in (0, 1), e.g. 0.95.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.estimate - self.half_width
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.estimate + self.half_width
    }

    /// True iff `x` falls inside the interval.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }
}

/// Two-sided Gaussian tail value γ for a confidence level: the z with
/// `P(|Z| ≤ z) = confidence`. Computed with the Acklam rational
/// approximation of the inverse normal CDF (|relative error| < 1.15e-9),
/// so arbitrary levels work, not just the tabulated ones.
pub fn gaussian_gamma(confidence: f64) -> f64 {
    assert!((0.0..1.0).contains(&confidence), "confidence must be in (0,1), got {confidence}");
    let p = 0.5 + confidence / 2.0;
    inverse_normal_cdf(p)
}

/// Inverse standard-normal CDF (Acklam's algorithm).
fn inverse_normal_cdf(p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p) && p > 0.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inverse_normal_cdf(1.0 - p)
    }
}

/// CI for a *sample mean* from its moments: `mean ± γ·σ/√k`.
pub fn mean_interval(mean: f64, variance: f64, k: u64, confidence: f64) -> ConfidenceInterval {
    let se = if k == 0 { 0.0 } else { (variance / k as f64).sqrt() };
    ConfidenceInterval { estimate: mean, half_width: gaussian_gamma(confidence) * se, confidence }
}

/// CI for a *sample sum* `Σ xᵢ` of k iid terms: `sum ± γ·σ·√k`.
pub fn sum_interval(sum: f64, variance: f64, k: u64, confidence: f64) -> ConfidenceInterval {
    let se = variance.sqrt() * (k as f64).sqrt();
    ConfidenceInterval { estimate: sum, half_width: gaussian_gamma(confidence) * se, confidence }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_gamma_constants() {
        // "1.96 for 95%, 2.57 for 99%" (Section 5.2.1).
        assert!((gaussian_gamma(0.95) - 1.959964).abs() < 1e-4);
        assert!((gaussian_gamma(0.99) - 2.575829).abs() < 1e-4);
        assert!((gaussian_gamma(0.5) - 0.674490).abs() < 1e-4);
    }

    #[test]
    fn interval_geometry() {
        let ci = mean_interval(10.0, 4.0, 100, 0.95);
        assert!((ci.half_width - 1.96 * 0.2).abs() < 1e-3);
        assert!(ci.contains(10.0));
        assert!(ci.contains(ci.lo()) && ci.contains(ci.hi()));
        assert!(!ci.contains(ci.hi() + 1e-6));
    }

    #[test]
    fn coverage_simulation() {
        // Empirical check: ~95% of CLT intervals over repeated samples cover
        // the true mean. Deterministic LCG sampling keeps the test stable.
        let mut state = 88172645463325252u64;
        let mut uniform = || {
            // xorshift64
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let true_mean = 0.5;
        let trials = 400;
        let k = 200;
        let mut covered = 0;
        for _ in 0..trials {
            let xs: Vec<f64> = (0..k).map(|_| uniform()).collect();
            let m = crate::moments::Moments::of(&xs);
            let ci = mean_interval(m.mean(), m.variance(), k as u64, 0.95);
            if ci.contains(true_mean) {
                covered += 1;
            }
        }
        let rate = covered as f64 / trials as f64;
        assert!((0.90..=0.99).contains(&rate), "coverage {rate}");
    }

    #[test]
    fn sum_interval_scales_with_k() {
        let a = sum_interval(100.0, 1.0, 100, 0.95);
        let b = sum_interval(100.0, 1.0, 400, 0.95);
        assert!((b.half_width / a.half_width - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn invalid_confidence_panics() {
        gaussian_gamma(1.0);
    }
}
