//! Cantelli (one-sided Chebyshev) bounds for `min`/`max` queries
//! (Appendix 12.1.1).
//!
//! `min`/`max` cannot be bootstrap-bounded; instead the paper reports the
//! probability that an element *larger* (resp. *smaller*) than the
//! corrected extreme exists in the unsampled portion:
//!
//! `P(X ≥ µ + ε) ≤ var(X) / (var(X) + ε²)`.

/// Cantelli upper-tail bound: probability that a random element exceeds the
/// mean by at least `epsilon`. Returns 1 when `epsilon ≤ 0`.
pub fn cantelli_exceedance(variance: f64, epsilon: f64) -> f64 {
    assert!(variance >= 0.0, "variance must be non-negative");
    if epsilon <= 0.0 {
        return 1.0;
    }
    variance / (variance + epsilon * epsilon)
}

/// Cantelli lower-tail bound: probability that a random element falls below
/// the mean by at least `epsilon` — symmetric to the upper bound.
pub fn cantelli_subceedance(variance: f64, epsilon: f64) -> f64 {
    cantelli_exceedance(variance, epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_decreases_with_epsilon() {
        let v = 4.0;
        let p1 = cantelli_exceedance(v, 1.0);
        let p2 = cantelli_exceedance(v, 2.0);
        let p4 = cantelli_exceedance(v, 4.0);
        assert!(p1 > p2 && p2 > p4);
        assert!((p2 - 0.5).abs() < 1e-12); // var=4, ε=2 → 4/(4+4)
    }

    #[test]
    fn degenerate_epsilon() {
        assert_eq!(cantelli_exceedance(1.0, 0.0), 1.0);
        assert_eq!(cantelli_exceedance(1.0, -1.0), 1.0);
    }

    #[test]
    fn zero_variance_is_certain() {
        assert_eq!(cantelli_exceedance(0.0, 0.5), 0.0);
    }

    #[test]
    fn bound_is_valid_probability() {
        for &v in &[0.0, 0.5, 10.0, 1e6] {
            for &e in &[0.1, 1.0, 100.0] {
                let p = cantelli_exceedance(v, e);
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }
}
