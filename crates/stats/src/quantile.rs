//! Exact quantiles of in-memory samples (linear interpolation between order
//! statistics, the common "type 7" definition).

/// The `q`-quantile (`q ∈ [0,1]`) of a *sorted* or unsorted slice; the input
/// is copied and sorted internally. Panics on an empty slice.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    assert!(!data.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
    let mut v: Vec<f64> = data.to_vec();
    v.sort_by(f64::total_cmp);
    quantile_sorted(&v, q)
}

/// The `q`-quantile of an already-sorted slice (no copy).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Exact median.
pub fn median(data: &[f64]) -> f64 {
    quantile(data, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[5.0]), 5.0);
    }

    #[test]
    fn quantile_endpoints() {
        let d = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&d, 0.0), 1.0);
        assert_eq!(quantile(&d, 1.0), 4.0);
    }

    #[test]
    fn interpolation() {
        let d = [0.0, 10.0];
        assert!((quantile(&d, 0.75) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn p75_of_uniform() {
        let d: Vec<f64> = (0..101).map(|i| i as f64).collect();
        assert!((quantile(&d, 0.75) - 75.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn empty_panics() {
        median(&[]);
    }
}
