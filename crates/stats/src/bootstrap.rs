//! The statistical bootstrap (Section 5.2.5).
//!
//! For aggregates that are not sample means (`median`, percentiles) the
//! paper bounds estimates empirically: repeatedly subsample *with
//! replacement*, apply the statistic, and read confidence bounds off the
//! empirical distribution. SVC+CORR uses the variant that bootstraps the
//! *difference* `c` between the clean-sample and dirty-sample statistics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::clt::ConfidenceInterval;
use crate::quantile::quantile;

/// Bootstrap the sampling distribution of `statistic` over `data`:
/// `iterations` resamples with replacement, each of `data.len()` elements.
/// Deterministic for a given `seed`.
pub fn bootstrap_distribution<F>(
    data: &[f64],
    statistic: F,
    iterations: usize,
    seed: u64,
) -> Vec<f64>
where
    F: Fn(&[f64]) -> f64,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let n = data.len();
    let mut resample = vec![0.0; n];
    let mut out = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        for slot in resample.iter_mut() {
            *slot = data[rng.random_range(0..n)];
        }
        out.push(statistic(&resample));
    }
    out
}

/// Percentile-method bootstrap confidence interval: the (α/2, 1−α/2)
/// percentiles of the bootstrap distribution around the point estimate on
/// the full sample.
pub fn bootstrap_ci<F>(
    data: &[f64],
    statistic: F,
    iterations: usize,
    confidence: f64,
    seed: u64,
) -> ConfidenceInterval
where
    F: Fn(&[f64]) -> f64,
{
    assert!(!data.is_empty(), "bootstrap of an empty sample");
    let point = statistic(data);
    let mut dist = bootstrap_distribution(data, &statistic, iterations, seed);
    dist.sort_by(f64::total_cmp);
    let alpha = 1.0 - confidence;
    let lo = quantile(&dist, alpha / 2.0);
    let hi = quantile(&dist, 1.0 - alpha / 2.0);
    // Report symmetrized half-width around the point estimate; the paper's
    // procedure returns the raw percentiles (step 5 of Section 5.2.5), which
    // we preserve through lo/hi by centering on their midpoint.
    let estimate = point;
    let half_width = ((hi - lo) / 2.0).max((estimate - lo).abs().max((hi - estimate).abs()));
    ConfidenceInterval { estimate, half_width, confidence }
}

/// Bootstrap for paired data: the distribution of
/// `statistic(clean) − statistic(dirty)` over simultaneous resamples, used
/// by SVC+CORR to bound the correction `c` (Section 5.2.5).
pub fn bootstrap_paired_diff<F>(
    clean: &[f64],
    dirty: &[f64],
    statistic: F,
    iterations: usize,
    seed: u64,
) -> Vec<f64>
where
    F: Fn(&[f64]) -> f64,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(iterations);
    let mut c_buf = vec![0.0; clean.len()];
    let mut d_buf = vec![0.0; dirty.len()];
    for _ in 0..iterations {
        for slot in c_buf.iter_mut() {
            *slot = clean[rng.random_range(0..clean.len())];
        }
        for slot in d_buf.iter_mut() {
            *slot = dirty[rng.random_range(0..dirty.len())];
        }
        out.push(statistic(&c_buf) - statistic(&d_buf));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::median;

    fn data() -> Vec<f64> {
        (0..500).map(|i| ((i * 37) % 101) as f64).collect()
    }

    #[test]
    fn deterministic_per_seed() {
        let d = data();
        let a = bootstrap_distribution(&d, median, 50, 7);
        let b = bootstrap_distribution(&d, median, 50, 7);
        assert_eq!(a, b);
        let c = bootstrap_distribution(&d, median, 50, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn median_ci_covers_sample_median() {
        let d = data();
        let ci = bootstrap_ci(&d, median, 300, 0.95, 11);
        assert!(ci.contains(median(&d)));
        assert!(ci.half_width > 0.0);
        assert!(ci.half_width < 20.0, "median CI suspiciously wide: {}", ci.half_width);
    }

    #[test]
    fn tighter_with_more_data() {
        let small: Vec<f64> = data().into_iter().take(50).collect();
        let big = data();
        let ci_small = bootstrap_ci(&small, median, 300, 0.95, 3);
        let ci_big = bootstrap_ci(&big, median, 300, 0.95, 3);
        assert!(ci_big.half_width <= ci_small.half_width * 1.5);
    }

    #[test]
    fn paired_diff_centers_near_true_difference() {
        let clean: Vec<f64> = (0..400).map(|i| (i % 100) as f64 + 10.0).collect();
        let dirty: Vec<f64> = (0..400).map(|i| (i % 100) as f64).collect();
        let dist = bootstrap_paired_diff(&clean, &dirty, median, 200, 5);
        let m = crate::moments::Moments::of(&dist);
        assert!((m.mean() - 10.0).abs() < 2.0, "diff mean {}", m.mean());
    }
}
