//! A bounded span recorder with chrome-trace export.
//!
//! [`TraceRecorder`] keeps the most recent `capacity` completed spans in a
//! ring; when full, the oldest span is dropped. Spans are coarse-grained —
//! a plan run, a maintenance batch, a compile — recorded via the RAII
//! [`TraceSpan`] guard, so the mutex on the ring is touched twice per span,
//! never per row. [`TraceRecorder::chrome_trace_json`] exports the ring in
//! the Trace Event Format (`"ph": "X"` complete events) that
//! `chrome://tracing` and Perfetto load directly.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Small dense thread ids for trace rows: assigned once per OS thread, in
/// first-span order (`ThreadId::as_u64` is unstable).
fn trace_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// One completed span.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Span name (e.g. `"batch-fold"`, `"compile"`).
    pub name: String,
    /// Category tag, used by trace viewers for filtering/coloring.
    pub cat: &'static str,
    /// Start, microseconds since the recorder was created.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Recorder-assigned dense id of the recording thread.
    pub tid: u64,
}

/// The bounded span ring. Creation is counted by
/// [`crate::metric_allocs`] — a recorder only exists when tracing was
/// explicitly installed.
#[derive(Debug)]
pub struct TraceRecorder {
    epoch: Instant,
    capacity: usize,
    ring: Mutex<VecDeque<TraceEvent>>,
}

impl TraceRecorder {
    /// A recorder retaining at most `capacity` spans (minimum 1).
    pub fn new(capacity: usize) -> TraceRecorder {
        crate::note_metric_alloc();
        let capacity = capacity.max(1);
        TraceRecorder {
            epoch: Instant::now(),
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Open a span; it is recorded when the returned guard drops.
    pub fn span(&self, name: impl Into<String>, cat: &'static str) -> TraceSpan<'_> {
        TraceSpan { rec: self, name: Some(name.into()), cat, start: Instant::now() }
    }

    /// Record an already-measured span.
    pub fn record(&self, name: String, cat: &'static str, start: Instant, end: Instant) {
        let start_us = start.saturating_duration_since(self.epoch).as_micros() as u64;
        let dur_us = end.saturating_duration_since(start).as_micros() as u64;
        let ev = TraceEvent { name, cat, start_us, dur_us, tid: trace_tid() };
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace ring poisoned").len()
    }

    /// True when no span has been recorded (or all have been evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the retained spans, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.lock().expect("trace ring poisoned").iter().cloned().collect()
    }

    /// Export the ring in Chrome Trace Event Format: a JSON object with a
    /// `traceEvents` array of complete (`"ph": "X"`) events, loadable by
    /// `chrome://tracing` and Perfetto.
    pub fn chrome_trace_json(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":{}}}",
                escape_json(&ev.name),
                escape_json(ev.cat),
                ev.start_us,
                ev.dur_us,
                ev.tid
            ));
        }
        out.push_str("]}");
        out
    }
}

/// RAII span guard: records `name` into the recorder on drop.
#[derive(Debug)]
pub struct TraceSpan<'a> {
    rec: &'a TraceRecorder,
    name: Option<String>,
    cat: &'static str,
    start: Instant,
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        let name = self.name.take().unwrap_or_default();
        self.rec.record(name, self.cat, self.start, Instant::now());
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_caps_and_exports_chrome_trace() {
        let rec = TraceRecorder::new(2);
        {
            let _a = rec.span("first", "exec");
        }
        {
            let _b = rec.span("second", "exec");
        }
        {
            let _c = rec.span("third \"quoted\"", "exec");
        }
        assert_eq!(rec.len(), 2, "oldest span evicted at capacity");
        let events = rec.events();
        assert_eq!(events[0].name, "second");
        assert_eq!(events[1].name, "third \"quoted\"");
        let json = rec.chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\\\"quoted\\\""), "names must be JSON-escaped: {json}");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn recorder_creation_is_counted() {
        let before = crate::metric_allocs();
        let _rec = TraceRecorder::new(8);
        assert_eq!(crate::metric_allocs(), before + 1);
    }
}
