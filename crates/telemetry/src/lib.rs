#![forbid(unsafe_code)]

//! # svc-telemetry
//!
//! The observability substrate of the SVC stack: every layer above
//! `svc-storage` reports through the primitives in this crate instead of
//! growing its own ad-hoc counters.
//!
//! * [`Counter`] / [`Gauge`] — shared atomic counters and level gauges for
//!   subsystem metrics (worker-pool queue depth, compile-cache hits,
//!   per-view rows cleaned).
//! * [`LocalCounter`] — a thread-local counter for hooks that tests read
//!   synchronously on the executing thread (`Table::clone_count`,
//!   `fresh_batch_count`): concurrently-running tests cannot pollute a
//!   reading.
//! * [`MetricsSink`] / [`OpMetrics`] — per-operator execution metrics for
//!   the streaming executor. One slot per physical plan node; morsel
//!   workers accumulate locally and merge into the slot's atomics at the
//!   barrier, so collection never adds synchronization to the morsel path.
//! * [`TraceRecorder`] — a bounded span ring buffer exporting chrome-trace
//!   JSON (`chrome://tracing`, Perfetto).
//!
//! **Gating contract.** Collection is strictly opt-in: an executor run
//! without a sink installed must allocate *zero* metric state. The
//! [`metric_allocs`] counter audits that contract the same way
//! `Table::clone_count` audits the zero-scan-clone guarantee — every
//! metric-state allocation in this crate ([`MetricsSink::with_slots`],
//! [`TraceRecorder::new`]) bumps it, and a smoke test pins uninstrumented
//! runs to a zero delta.

mod counter;
mod metrics;
mod trace;

pub use counter::{metric_allocs, note_metric_alloc, Counter, Gauge, LocalCounter};
pub use metrics::{MetricsSink, OpMetrics, OpSlot};
pub use trace::{TraceEvent, TraceRecorder, TraceSpan};
