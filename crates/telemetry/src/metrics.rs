//! Per-operator execution metrics for the streaming executor.
//!
//! A [`MetricsSink`] holds one [`OpSlot`] per physical plan node (slot `i`
//! ↔ the node at pre-order position `i` of the compiled tree). The
//! executor's drivers accumulate an [`OpMetrics`] on the stack — per node
//! sequentially, per morsel task in parallel — and [`OpSlot::merge`] folds
//! it into the slot with relaxed atomic adds at the end. Merging is
//! commutative over unsigned sums, so the recorded totals are a function
//! of the morsel split only, never of scheduler interleaving: the
//! morsel-determinism contract extends to the metrics.

use std::sync::atomic::{AtomicU64, Ordering};

/// One operator's execution metrics — a plain-value snapshot or a
/// stack-local accumulator (the executor fills one per node/morsel and
/// merges it into the shared [`OpSlot`] once).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpMetrics {
    /// Rows entering the operator (for joins: probe + build side).
    pub rows_in: u64,
    /// Rows the operator produced.
    pub rows_out: u64,
    /// Inclusive wall time (driver-side; covers the node's subtree).
    pub wall_ns: u64,
    /// Morsel tasks fanned out for this node (0 when run sequentially).
    pub morsels: u64,
    /// Column chunks driven through the vectorized kernels.
    pub vec_chunks: u64,
    /// Batches processed on the row-at-a-time fallback path.
    pub row_batches: u64,
    /// Predicate×chunk decisions settled by a zone map without scanning.
    pub zone_skips: u64,
    /// Join build-side rows (PK-probe joins: the probed relation's rows).
    pub build_rows: u64,
    /// Join probe-side rows.
    pub probe_rows: u64,
    /// Hash partitions of a join build or set-op dedup (0 when the node
    /// has no hash-partitioned phase).
    pub partitions: u64,
    /// Rows landing in the fullest hash partition — the skew profile of
    /// the partitioned build/dedup (equal to the keyed input under
    /// all-rows-one-key skew, ~input/partitions when uniform).
    pub part_max_rows: u64,
    /// Distinct groups a γ produced.
    pub groups: u64,
}

impl OpMetrics {
    /// Field-wise sum.
    pub fn merge(&mut self, other: &OpMetrics) {
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
        self.wall_ns += other.wall_ns;
        self.morsels += other.morsels;
        self.vec_chunks += other.vec_chunks;
        self.row_batches += other.row_batches;
        self.zone_skips += other.zone_skips;
        self.build_rows += other.build_rows;
        self.probe_rows += other.probe_rows;
        self.partitions += other.partitions;
        self.part_max_rows += other.part_max_rows;
        self.groups += other.groups;
    }
}

/// The shared accumulator for one plan node: the atomic twin of
/// [`OpMetrics`]. Workers only ever *add* (relaxed), readers
/// [`snapshot`](OpSlot::snapshot) after the run has been joined.
#[derive(Debug, Default)]
pub struct OpSlot {
    rows_in: AtomicU64,
    rows_out: AtomicU64,
    wall_ns: AtomicU64,
    morsels: AtomicU64,
    vec_chunks: AtomicU64,
    row_batches: AtomicU64,
    zone_skips: AtomicU64,
    build_rows: AtomicU64,
    probe_rows: AtomicU64,
    partitions: AtomicU64,
    part_max_rows: AtomicU64,
    groups: AtomicU64,
}

impl OpSlot {
    /// Fold a local accumulation into the slot — one relaxed add per
    /// non-zero field.
    pub fn merge(&self, m: &OpMetrics) {
        for (cell, v) in [
            (&self.rows_in, m.rows_in),
            (&self.rows_out, m.rows_out),
            (&self.wall_ns, m.wall_ns),
            (&self.morsels, m.morsels),
            (&self.vec_chunks, m.vec_chunks),
            (&self.row_batches, m.row_batches),
            (&self.zone_skips, m.zone_skips),
            (&self.build_rows, m.build_rows),
            (&self.probe_rows, m.probe_rows),
            (&self.partitions, m.partitions),
            (&self.part_max_rows, m.part_max_rows),
            (&self.groups, m.groups),
        ] {
            if v != 0 {
                cell.fetch_add(v, Ordering::Relaxed);
            }
        }
    }

    /// Count zone-map short-circuits from a morsel task.
    pub fn add_zone_skips(&self, n: u64) {
        if n != 0 {
            self.zone_skips.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Plain-value snapshot.
    pub fn snapshot(&self) -> OpMetrics {
        OpMetrics {
            rows_in: self.rows_in.load(Ordering::Relaxed),
            rows_out: self.rows_out.load(Ordering::Relaxed),
            wall_ns: self.wall_ns.load(Ordering::Relaxed),
            morsels: self.morsels.load(Ordering::Relaxed),
            vec_chunks: self.vec_chunks.load(Ordering::Relaxed),
            row_batches: self.row_batches.load(Ordering::Relaxed),
            zone_skips: self.zone_skips.load(Ordering::Relaxed),
            build_rows: self.build_rows.load(Ordering::Relaxed),
            probe_rows: self.probe_rows.load(Ordering::Relaxed),
            partitions: self.partitions.load(Ordering::Relaxed),
            part_max_rows: self.part_max_rows.load(Ordering::Relaxed),
            groups: self.groups.load(Ordering::Relaxed),
        }
    }

    /// Zero every field.
    pub fn reset(&self) {
        for cell in [
            &self.rows_in,
            &self.rows_out,
            &self.wall_ns,
            &self.morsels,
            &self.vec_chunks,
            &self.row_batches,
            &self.zone_skips,
            &self.build_rows,
            &self.probe_rows,
            &self.partitions,
            &self.part_max_rows,
            &self.groups,
        ] {
            cell.store(0, Ordering::Relaxed);
        }
    }
}

/// Per-operator metrics for one compiled plan: slot `i` accumulates the
/// node at pre-order position `i`. Created by the *caller* (e.g.
/// `PhysicalPlan::metrics_sink()`) and passed by reference into
/// `run_with_metrics` — runs without a sink never touch metric state.
#[derive(Debug)]
pub struct MetricsSink {
    slots: Box<[OpSlot]>,
}

impl MetricsSink {
    /// A sink with `n` zeroed slots. Counted by [`crate::metric_allocs`]:
    /// this is the only allocation instrumented execution performs.
    pub fn with_slots(n: usize) -> MetricsSink {
        crate::note_metric_alloc();
        MetricsSink { slots: (0..n).map(|_| OpSlot::default()).collect() }
    }

    /// Number of slots (= plan nodes).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the sink has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The accumulator for node `i` (pre-order). Panics out of range —
    /// the executor validates the slot count against the plan up front.
    pub fn slot(&self, i: usize) -> &OpSlot {
        &self.slots[i]
    }

    /// Snapshot of node `i`.
    pub fn snapshot(&self, i: usize) -> OpMetrics {
        self.slots[i].snapshot()
    }

    /// Snapshot of every node, in pre-order.
    pub fn snapshots(&self) -> Vec<OpMetrics> {
        self.slots.iter().map(OpSlot::snapshot).collect()
    }

    /// Zero every slot (reuse one sink across runs).
    pub fn reset(&self) {
        for s in self.slots.iter() {
            s.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_and_reset_clears() {
        let sink = MetricsSink::with_slots(2);
        sink.slot(0).merge(&OpMetrics { rows_in: 10, rows_out: 4, ..Default::default() });
        sink.slot(0).merge(&OpMetrics { rows_in: 5, rows_out: 1, ..Default::default() });
        sink.slot(1).merge(&OpMetrics { groups: 3, ..Default::default() });
        assert_eq!(sink.snapshot(0).rows_in, 15);
        assert_eq!(sink.snapshot(0).rows_out, 5);
        assert_eq!(sink.snapshot(1).groups, 3);
        sink.reset();
        assert_eq!(sink.snapshot(0), OpMetrics::default());
        assert_eq!(sink.snapshot(1), OpMetrics::default());
    }

    #[test]
    fn sink_creation_is_counted() {
        let before = crate::metric_allocs();
        let _sink = MetricsSink::with_slots(4);
        assert_eq!(crate::metric_allocs(), before + 1);
    }
}
