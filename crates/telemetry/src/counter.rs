//! Atomic counters, level gauges, and thread-local test counters.

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::thread::LocalKey;

/// A monotonically increasing event counter, shared across threads.
/// Relaxed ordering: readings are taken after the work they observe has
/// been joined (a pool barrier, a completed `maintain` call), so no extra
/// synchronization is bought here.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Cloning a counter snapshots its current value into an independent
/// counter — what a cloned owner (a cloned `SvcView`, a cache handle)
/// wants: shared history, separate future.
impl Clone for Counter {
    fn clone(&self) -> Counter {
        Counter(AtomicU64::new(self.get()))
    }
}

/// A level gauge: goes up and down (queue depth, delta backlog).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Set the level outright.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Move the level by `delta` (negative to drain).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raise the level by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Lower the level by one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Clone for Gauge {
    fn clone(&self) -> Gauge {
        Gauge(AtomicI64::new(self.get()))
    }
}

/// A per-thread counter for observability hooks that tests read
/// synchronously: take a reading, run the code under test on the same
/// thread, compare. Because each thread counts its own events, readings
/// cannot be polluted by concurrently running tests — the design
/// `Table::clone_count` and `fresh_batch_count` established, now shared
/// through one mechanism.
///
/// Declare the backing cell with `thread_local!` and wrap it:
///
/// ```
/// use std::cell::Cell;
/// use svc_telemetry::LocalCounter;
///
/// thread_local! {
///     static EVENTS_CELL: Cell<u64> = const { Cell::new(0) };
/// }
/// static EVENTS: LocalCounter = LocalCounter::new(&EVENTS_CELL);
///
/// let before = EVENTS.get();
/// EVENTS.bump();
/// assert_eq!(EVENTS.get(), before + 1);
/// ```
pub struct LocalCounter {
    key: &'static LocalKey<Cell<u64>>,
}

impl LocalCounter {
    /// Wrap a `thread_local!` cell.
    pub const fn new(key: &'static LocalKey<Cell<u64>>) -> LocalCounter {
        LocalCounter { key }
    }

    /// Increment this thread's count by one.
    pub fn bump(&self) {
        self.add(1);
    }

    /// Increment this thread's count by `n`.
    pub fn add(&self, n: u64) {
        self.key.with(|c| c.set(c.get() + n));
    }

    /// This thread's count since the thread started.
    pub fn get(&self) -> u64 {
        self.key.with(Cell::get)
    }
}

thread_local! {
    static METRIC_ALLOCS_CELL: Cell<u64> = const { Cell::new(0) };
}

/// Metric-state allocations performed on this thread — the audit hook for
/// the zero-cost-when-uninstrumented contract: running a compiled plan
/// without a sink must leave this unchanged.
static METRIC_ALLOCS: LocalCounter = LocalCounter::new(&METRIC_ALLOCS_CELL);

/// Metric-state allocations performed **on this thread** since it started
/// ([`MetricsSink::with_slots`](crate::MetricsSink::with_slots),
/// [`TraceRecorder::new`](crate::TraceRecorder::new)). Take a reading, run
/// a plan, compare — exactly like `Table::clone_count`.
pub fn metric_allocs() -> u64 {
    METRIC_ALLOCS.get()
}

/// Count one metric-state allocation (called by this crate's constructors;
/// public so higher layers allocating their own metric state can stay
/// under the same audit).
pub fn note_metric_alloc() {
    METRIC_ALLOCS.bump();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Clone snapshots the value: shared history, separate future.
        let snap = c.clone();
        c.inc();
        assert_eq!(snap.get(), 5);
        assert_eq!(c.get(), 6);

        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn local_counter_is_per_thread() {
        thread_local! {
            static CELL: Cell<u64> = const { Cell::new(0) };
        }
        static EVENTS: LocalCounter = LocalCounter::new(&CELL);
        let before = EVENTS.get();
        EVENTS.bump();
        EVENTS.add(2);
        assert_eq!(EVENTS.get(), before + 3);
        std::thread::spawn(|| assert_eq!(EVENTS.get(), 0)).join().unwrap();
    }
}
