//! Error type shared by the storage layer.

use std::fmt;

use crate::value::DataType;

/// Errors produced by the storage substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A column name could not be resolved against a schema.
    ColumnNotFound {
        /// The name that failed to resolve.
        name: String,
        /// A rendering of the schema it was resolved against.
        schema: String,
    },
    /// A column name was resolved ambiguously (several suffix matches).
    AmbiguousColumn {
        /// The ambiguous name.
        name: String,
        /// The candidate matches.
        candidates: Vec<String>,
    },
    /// Two columns in one schema share a name.
    DuplicateColumn(String),
    /// A primary key value occurred twice in one relation.
    DuplicateKey(String),
    /// A value had an unexpected type.
    TypeMismatch {
        /// The type that was required.
        expected: DataType,
        /// The type that was found.
        found: String,
        /// Where the mismatch happened.
        context: String,
    },
    /// A table name could not be resolved.
    UnknownTable(String),
    /// A row's arity did not match its schema.
    ArityMismatch {
        /// Number of fields in the schema.
        expected: usize,
        /// Number of values in the row.
        found: usize,
    },
    /// Any other invariant violation, with a description.
    Invalid(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ColumnNotFound { name, schema } => {
                write!(f, "column `{name}` not found in schema [{schema}]")
            }
            StorageError::AmbiguousColumn { name, candidates } => {
                write!(f, "column `{name}` is ambiguous; candidates: {candidates:?}")
            }
            StorageError::DuplicateColumn(name) => write!(f, "duplicate column `{name}`"),
            StorageError::DuplicateKey(key) => write!(f, "duplicate primary key {key}"),
            StorageError::TypeMismatch { expected, found, context } => {
                write!(f, "type mismatch in {context}: expected {expected:?}, found {found}")
            }
            StorageError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            StorageError::ArityMismatch { expected, found } => {
                write!(f, "row arity {found} does not match schema arity {expected}")
            }
            StorageError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Result alias used across the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;
