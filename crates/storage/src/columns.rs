//! Typed columnar projections of a [`crate::Table`]'s rows.
//!
//! The streaming executor's vectorized kernels (`svc-relalg`) operate on
//! per-column typed vectors instead of `Vec<Row>` of boxed [`Value`]s: a
//! [`ColumnSet`] holds one [`Column`] per schema field, each storing its
//! values in a primitive vector (`i64` / `f64` / `bool` / `Arc<str>`) with
//! a validity mask for NULLs. Columns whose cells do not all conform to one
//! primitive type (legal — cells are dynamically typed) fall back to a
//! [`ColumnData::Mixed`] vector of plain values, which the kernels handle
//! through the generic row-semantics path.
//!
//! Numeric columns carry a *zone map* — the `total_cmp` min/max of their
//! non-null values, the same typed min/max the statistics catalog tracks —
//! so a predicate kernel can skip scanning a column that can never (or must
//! always) satisfy a comparison.
//!
//! Extraction is exact and lossless: gathering a row back out of a
//! `ColumnSet` reproduces the original `Value`s bit for bit (floats are
//! stored uncanonicalized; NULLs round-trip through the validity mask).

use std::sync::Arc;

use crate::error::{Result, StorageError};
use crate::schema::Schema;
use crate::value::{DataType, Value};
use crate::Row;

/// The typed backing store of one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// All non-null cells are `Value::Int`.
    Int(Vec<i64>),
    /// All non-null cells are `Value::Float` (bits preserved, not
    /// canonicalized).
    Float(Vec<f64>),
    /// All non-null cells are `Value::Bool`.
    Bool(Vec<bool>),
    /// All non-null cells are `Value::Str`.
    Str(Vec<Arc<str>>),
    /// Cells of more than one type: stored as plain values (NULLs inline;
    /// the validity mask is not used).
    Mixed(Vec<Value>),
}

/// One column of a [`ColumnSet`]: typed data plus a validity mask.
#[derive(Debug, Clone)]
pub struct Column {
    /// Typed cell storage. Null cells of typed columns hold a placeholder
    /// (`0` / `0.0` / `false` / `""`) and are masked invalid.
    pub data: ColumnData,
    /// `valid[i] == false` marks row `i` NULL. `None` means every row is
    /// valid. Always `None` for [`ColumnData::Mixed`] (NULLs are inline).
    pub valid: Option<Vec<bool>>,
    /// Zone map: `total_cmp` min/max over the non-null values of a numeric
    /// column, widened to `f64` (`i64 as f64` is monotone, so integer range
    /// reasoning through the widened bounds stays sound). `None` for
    /// non-numeric, mixed, or empty columns.
    pub zone: Option<(f64, f64)>,
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Mixed(v) => v.len(),
        }
    }

    /// True iff the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True iff row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match &self.data {
            ColumnData::Mixed(v) => v[i].is_null(),
            _ => self.valid.as_ref().is_some_and(|m| !m[i]),
        }
    }

    /// True iff the column contains at least one NULL.
    pub fn has_nulls(&self) -> bool {
        match &self.data {
            ColumnData::Mixed(v) => v.iter().any(Value::is_null),
            _ => self.valid.is_some(),
        }
    }

    /// Reconstruct the cell at row `i` as a [`Value`] — exact, including
    /// float bits. Strings clone their `Arc`.
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }

    /// Cheap structural integrity check for one column (always compiled;
    /// the `verify` feature decides whether the hot-path hooks call it):
    ///
    /// * the typed vector holds exactly `expect_len` cells;
    /// * a validity mask, if present, has the same length — and is absent
    ///   for [`ColumnData::Mixed`], whose NULLs are inline;
    /// * a zone map only annotates numeric storage.
    ///
    /// O(1): data-dependent zone soundness is [`Column::check`]'s job.
    pub fn check_shape(&self, expect_len: usize) -> Result<()> {
        let fail = |msg: String| Err(StorageError::Invalid(format!("column integrity: {msg}")));
        if self.len() != expect_len {
            return fail(format!("length {} != column-set length {expect_len}", self.len()));
        }
        match (&self.data, &self.valid) {
            (ColumnData::Mixed(_), Some(_)) => {
                return fail("mixed column carries a validity mask (NULLs must be inline)".into())
            }
            (_, Some(mask)) if mask.len() != expect_len => {
                return fail(format!(
                    "validity mask length {} != column length {expect_len}",
                    mask.len()
                ))
            }
            _ => {}
        }
        if self.zone.is_some() && !matches!(self.data, ColumnData::Int(_) | ColumnData::Float(_)) {
            return fail("zone map on non-numeric storage".into());
        }
        Ok(())
    }

    /// Full integrity check: [`Column::check_shape`] plus the O(rows)
    /// data-dependent invariant that the zone map's min/max actually bound
    /// every non-null value under `total_cmp`.
    pub fn check(&self, expect_len: usize) -> Result<()> {
        self.check_shape(expect_len)?;
        let fail = |msg: String| Err(StorageError::Invalid(format!("column integrity: {msg}")));
        if let Some((lo, hi)) = self.zone {
            let values: Box<dyn Iterator<Item = f64>> = match &self.data {
                ColumnData::Int(xs) => Box::new(
                    xs.iter()
                        .enumerate()
                        .filter_map(|(i, &x)| (!masked(&self.valid, i)).then_some(x as f64)),
                ),
                ColumnData::Float(xs) => Box::new(
                    xs.iter()
                        .enumerate()
                        .filter_map(|(i, &x)| (!masked(&self.valid, i)).then_some(x)),
                ),
                _ => return fail("zone map on non-numeric storage".into()),
            };
            for x in values {
                if x.total_cmp(&lo).is_lt() || x.total_cmp(&hi).is_gt() {
                    return fail(format!("zone map [{lo}, {hi}] does not bound value {x}"));
                }
            }
        }
        Ok(())
    }
}

/// Incremental builder for one [`Column`]: starts out typed per the
/// declared [`DataType`] and demotes itself to [`ColumnData::Mixed`] the
/// first time a non-null cell of a different type arrives.
#[derive(Debug)]
pub struct ColumnBuilder {
    dtype: DataType,
    data: ColumnData,
    /// Invalid row positions seen so far (sparse; most columns have none).
    nulls: Vec<usize>,
    len: usize,
}

impl ColumnBuilder {
    /// A builder for a column declared as `dtype`, pre-sized for `cap` rows.
    pub fn new(dtype: DataType, cap: usize) -> ColumnBuilder {
        let data = match dtype {
            DataType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            DataType::Float => ColumnData::Float(Vec::with_capacity(cap)),
            DataType::Bool => ColumnData::Bool(Vec::with_capacity(cap)),
            DataType::Str => ColumnData::Str(Vec::with_capacity(cap)),
        };
        ColumnBuilder { dtype, data, nulls: Vec::new(), len: 0 }
    }

    /// Demote the accumulated typed cells to a `Mixed` vector.
    fn demote(&mut self) {
        let mut vals: Vec<Value> = Vec::with_capacity(self.len + 1);
        for i in 0..self.len {
            let v = if self.nulls.binary_search(&i).is_ok() {
                Value::Null
            } else {
                match &self.data {
                    ColumnData::Int(v) => Value::Int(v[i]),
                    ColumnData::Float(v) => Value::Float(v[i]),
                    ColumnData::Bool(v) => Value::Bool(v[i]),
                    ColumnData::Str(v) => Value::Str(v[i].clone()),
                    ColumnData::Mixed(_) => unreachable!("demoting a mixed builder"),
                }
            };
            vals.push(v);
        }
        self.data = ColumnData::Mixed(vals);
        self.nulls.clear();
    }

    /// Append one cell.
    pub fn push(&mut self, v: &Value) {
        match (&mut self.data, v) {
            (ColumnData::Mixed(vals), v) => vals.push(v.clone()),
            (ColumnData::Int(xs), Value::Int(x)) => xs.push(*x),
            (ColumnData::Float(xs), Value::Float(x)) => xs.push(*x),
            (ColumnData::Bool(xs), Value::Bool(x)) => xs.push(*x),
            (ColumnData::Str(xs), Value::Str(x)) => xs.push(x.clone()),
            (data, Value::Null) => {
                self.nulls.push(self.len);
                match data {
                    ColumnData::Int(xs) => xs.push(0),
                    ColumnData::Float(xs) => xs.push(0.0),
                    ColumnData::Bool(xs) => xs.push(false),
                    ColumnData::Str(xs) => xs.push(Arc::from("")),
                    ColumnData::Mixed(_) => unreachable!("mixed handled above"),
                }
            }
            (_, v) => {
                // A non-null cell of a type the typed vector can't hold:
                // demote everything accumulated so far and retry as mixed.
                self.demote();
                if let ColumnData::Mixed(vals) = &mut self.data {
                    vals.push(v.clone());
                }
            }
        }
        self.len += 1;
    }

    /// Finish into a [`Column`], computing the validity mask and zone map.
    pub fn finish(self) -> Column {
        let valid = if self.nulls.is_empty() || matches!(self.data, ColumnData::Mixed(_)) {
            None
        } else {
            let mut mask = vec![true; self.len];
            for &i in &self.nulls {
                mask[i] = false;
            }
            Some(mask)
        };
        let zone = match (&self.data, self.dtype) {
            (ColumnData::Int(xs), _) => zone_of(
                xs.iter()
                    .enumerate()
                    .filter_map(|(i, &x)| (!masked(&valid, i)).then_some(x as f64)),
            ),
            (ColumnData::Float(xs), _) => zone_of(
                xs.iter().enumerate().filter_map(|(i, &x)| (!masked(&valid, i)).then_some(x)),
            ),
            _ => None,
        };
        Column { data: self.data, valid, zone }
    }
}

/// True iff `valid` marks row `i` NULL.
#[inline]
fn masked(valid: &Option<Vec<bool>>, i: usize) -> bool {
    valid.as_ref().is_some_and(|m| !m[i])
}

/// `total_cmp` min/max of an `f64` stream.
fn zone_of(values: impl Iterator<Item = f64>) -> Option<(f64, f64)> {
    let mut it = values;
    let first = it.next()?;
    let (mut lo, mut hi) = (first, first);
    for x in it {
        if x.total_cmp(&lo).is_lt() {
            lo = x;
        }
        if x.total_cmp(&hi).is_gt() {
            hi = x;
        }
    }
    Some((lo, hi))
}

/// The columnar projection of a row batch: one [`Column`] per schema field,
/// all of the same length.
#[derive(Debug, Clone)]
pub struct ColumnSet {
    /// Columns in schema order.
    pub cols: Vec<Column>,
    /// Number of rows.
    pub len: usize,
}

impl ColumnSet {
    /// Extract columns from `rows` laid out per `schema`. Each column is
    /// attempted at its declared type and demoted to mixed storage if any
    /// cell disagrees.
    pub fn from_rows(schema: &Schema, rows: &[Row]) -> ColumnSet {
        let mut builders: Vec<ColumnBuilder> =
            schema.fields().iter().map(|f| ColumnBuilder::new(f.dtype, rows.len())).collect();
        for row in rows {
            for (b, v) in builders.iter_mut().zip(row) {
                b.push(v);
            }
        }
        ColumnSet {
            cols: builders.into_iter().map(ColumnBuilder::finish).collect(),
            len: rows.len(),
        }
    }

    /// Cheap structural integrity check: every column passes
    /// [`Column::check_shape`] against the set's declared row count. This
    /// is what the per-chunk executor hooks use — O(columns), no data scan.
    pub fn check_shape(&self) -> Result<()> {
        for (i, c) in self.cols.iter().enumerate() {
            c.check_shape(self.len)
                .map_err(|e| StorageError::Invalid(format!("column {i}: {e}")))?;
        }
        Ok(())
    }

    /// Full integrity check: every column passes [`Column::check`],
    /// including the O(rows) zone-map soundness scan. Run once per
    /// extraction (`Table::columns`) rather than per chunk.
    pub fn check(&self) -> Result<()> {
        for (i, c) in self.cols.iter().enumerate() {
            c.check(self.len).map_err(|e| StorageError::Invalid(format!("column {i}: {e}")))?;
        }
        Ok(())
    }

    /// Hot-path hook: panics on a corrupt set when the `verify` feature is
    /// on, compiles to nothing otherwise (the `debug_assert` idiom, but
    /// keyed to `verify` so release + verify still checks).
    #[inline]
    pub fn debug_check(&self) {
        #[cfg(feature = "verify")]
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }

    /// Reconstruct row `i` into `out` (cleared first). Exact inverse of
    /// [`ColumnSet::from_rows`] for that row.
    pub fn gather_row(&self, i: usize, out: &mut Row) {
        out.clear();
        out.reserve(self.cols.len());
        for c in &self.cols {
            out.push(c.value(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("i", DataType::Int),
            ("f", DataType::Float),
            ("b", DataType::Bool),
            ("s", DataType::Str),
        ])
        .unwrap()
    }

    #[test]
    fn round_trips_exactly_including_nulls_and_float_bits() {
        let rows: Vec<Row> = vec![
            vec![Value::Int(1), Value::Float(-0.0), Value::Bool(true), Value::str("a")],
            vec![Value::Null, Value::Float(f64::NAN), Value::Null, Value::Null],
            vec![Value::Int(-7), Value::Null, Value::Bool(false), Value::str("")],
        ];
        let cols = ColumnSet::from_rows(&schema(), &rows);
        let mut buf = Row::new();
        for (i, row) in rows.iter().enumerate() {
            cols.gather_row(i, &mut buf);
            assert_eq!(buf.len(), row.len());
            for (got, want) in buf.iter().zip(row) {
                match (got, want) {
                    // Bit-exact floats, stricter than Value::eq's canonical
                    // comparison.
                    (Value::Float(a), Value::Float(b)) => {
                        assert_eq!(a.to_bits(), b.to_bits(), "float bits must round-trip");
                    }
                    _ => assert_eq!(got, want),
                }
            }
        }
    }

    #[test]
    fn type_mismatch_demotes_to_mixed() {
        let s = Schema::from_pairs(&[("x", DataType::Int)]).unwrap();
        let rows: Vec<Row> = vec![
            vec![Value::Int(1)],
            vec![Value::Null],
            vec![Value::Float(2.5)],
            vec![Value::str("oops")],
        ];
        let cols = ColumnSet::from_rows(&s, &rows);
        assert!(matches!(cols.cols[0].data, ColumnData::Mixed(_)));
        let mut buf = Row::new();
        for (i, row) in rows.iter().enumerate() {
            cols.gather_row(i, &mut buf);
            assert_eq!(&buf, row);
        }
    }

    #[test]
    fn validity_mask_and_zone_map() {
        let s = Schema::from_pairs(&[("x", DataType::Float)]).unwrap();
        let rows: Vec<Row> =
            vec![vec![Value::Float(3.0)], vec![Value::Null], vec![Value::Float(-1.5)]];
        let cols = ColumnSet::from_rows(&s, &rows);
        let c = &cols.cols[0];
        assert!(c.has_nulls());
        assert!(!c.is_null(0) && c.is_null(1) && !c.is_null(2));
        assert_eq!(c.zone, Some((-1.5, 3.0)), "zone map skips NULLs");
    }

    #[test]
    fn int_zone_widens_monotonically() {
        let s = Schema::from_pairs(&[("x", DataType::Int)]).unwrap();
        let rows: Vec<Row> = (0..10).map(|i| vec![Value::Int(i - 4)]).collect();
        let cols = ColumnSet::from_rows(&s, &rows);
        assert_eq!(cols.cols[0].zone, Some((-4.0, 5.0)));
        assert!(!cols.cols[0].has_nulls());
    }
}
