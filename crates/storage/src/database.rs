//! A database: named base relations plus declared foreign keys.
//!
//! Foreign keys matter to SVC beyond integrity: the hash push-down rules of
//! Section 4.4 have a special case for foreign-key joins (sampling the fact
//! table's key can be pushed to the fact table alone, because each fact row
//! joins exactly one dimension row).

use std::collections::BTreeMap;

use crate::error::{Result, StorageError};
use crate::table::Table;

/// A declared foreign-key constraint `from_table(from_cols) → to_table(to_cols)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing (fact) table.
    pub from_table: String,
    /// Referencing columns.
    pub from_cols: Vec<String>,
    /// Referenced (dimension) table; `to_cols` must be its primary key.
    pub to_table: String,
    /// Referenced key columns.
    pub to_cols: Vec<String>,
}

/// A collection of named base relations and foreign keys. Tables are stored
/// in a `BTreeMap` for deterministic iteration order.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    foreign_keys: Vec<ForeignKey>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Register a table under `name`, replacing any previous one.
    pub fn create_table(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), table);
    }

    /// Remove a table.
    pub fn drop_table(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(name)
    }

    /// Fetch a table by name.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables.get(name).ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Fetch a table mutably.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables.get_mut(name).ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// True iff the table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Iterate over `(name, table)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Table)> {
        self.tables.iter().map(|(n, t)| (n.as_str(), t))
    }

    /// Declare a foreign key. Validates that both tables exist, that the
    /// referenced columns are the referenced table's primary key, and that
    /// column lists have equal length.
    pub fn add_foreign_key(&mut self, fk: ForeignKey) -> Result<()> {
        let from = self.table(&fk.from_table)?;
        from.schema().resolve_all(&fk.from_cols)?;
        let to = self.table(&fk.to_table)?;
        let mut referenced = to.schema().resolve_all(&fk.to_cols)?;
        if fk.from_cols.len() != fk.to_cols.len() {
            return Err(StorageError::Invalid(format!(
                "foreign key column count mismatch: {:?} vs {:?}",
                fk.from_cols, fk.to_cols
            )));
        }
        let mut pk: Vec<usize> = to.key().to_vec();
        pk.sort_unstable();
        referenced.sort_unstable();
        if pk != referenced {
            return Err(StorageError::Invalid(format!(
                "foreign key must reference the primary key of `{}`",
                fk.to_table
            )));
        }
        self.foreign_keys.push(fk);
        Ok(())
    }

    /// All declared foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Total row count across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::{DataType, Value};

    fn video_db() -> Database {
        let mut db = Database::new();
        let video = Table::new(
            Schema::from_pairs(&[
                ("videoId", DataType::Int),
                ("ownerId", DataType::Int),
                ("duration", DataType::Float),
            ])
            .unwrap(),
            &["videoId"],
        )
        .unwrap();
        let log = Table::new(
            Schema::from_pairs(&[("sessionId", DataType::Int), ("videoId", DataType::Int)])
                .unwrap(),
            &["sessionId"],
        )
        .unwrap();
        db.create_table("video", video);
        db.create_table("log", log);
        db
    }

    #[test]
    fn table_registry() {
        let mut db = video_db();
        assert!(db.has_table("video"));
        assert!(db.table("nope").is_err());
        db.table_mut("log").unwrap().insert(vec![Value::Int(1), Value::Int(10)]).unwrap();
        assert_eq!(db.total_rows(), 1);
        assert_eq!(db.table_names(), vec!["log", "video"]);
    }

    #[test]
    fn foreign_key_validation() {
        let mut db = video_db();
        db.add_foreign_key(ForeignKey {
            from_table: "log".into(),
            from_cols: vec!["videoId".into()],
            to_table: "video".into(),
            to_cols: vec!["videoId".into()],
        })
        .unwrap();
        assert_eq!(db.foreign_keys().len(), 1);

        // Referencing a non-key column is rejected.
        let err = db.add_foreign_key(ForeignKey {
            from_table: "log".into(),
            from_cols: vec!["videoId".into()],
            to_table: "video".into(),
            to_cols: vec!["ownerId".into()],
        });
        assert!(err.is_err());
    }
}
