//! Deterministic uniform hash families: the heart of the `η` operator.
//!
//! Section 4.4 of the paper samples a relation by hashing its primary key to
//! `[0, 1]` and keeping rows with `h(a) ≤ m`. Appendix 12.3 discusses the
//! Simple Uniform Hashing Assumption (SUHA) and the trade-off between fast
//! but less uniform hashes (a "linear" multiplicative hash) and slower,
//! highly uniform ones (MD5/SHA1 in MySQL). We reproduce that spectrum with
//! three in-repo families:
//!
//! * [`HashFamily::SplitMix`] — FNV-1a accumulation with a SplitMix64
//!   finalizer; fast and empirically very uniform (the default).
//! * [`HashFamily::Fnv1a`] — plain FNV-1a; fast, decent uniformity.
//! * [`HashFamily::Multiplicative`] — a weak LCG-style "linear hash" kept to
//!   mirror the paper's discussion of non-uniform but cheap hashing.
//!
//! All families are deterministic functions of `(seed, key bytes)`, which is
//! what makes the stale sample `Ŝ` and the cleaned sample `Ŝ′` *correspond*
//! (Proposition 2): the same keys are selected on both sides.

use crate::value::Value;

/// The available hash function families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HashFamily {
    /// FNV-1a accumulation + SplitMix64 finalizer (default; near-uniform).
    SplitMix,
    /// Plain FNV-1a.
    Fnv1a,
    /// Weak multiplicative ("linear") hash, as discussed in Appendix 12.3.
    Multiplicative,
}

/// A concrete, seeded hash function over key tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HashSpec {
    /// Which family to use.
    pub family: HashFamily,
    /// Seed mixed into the hash; different seeds give independent samples.
    pub seed: u64,
}

impl Default for HashSpec {
    fn default() -> Self {
        HashSpec { family: HashFamily::SplitMix, seed: 0x5bd1_e995 }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Incremental accumulation state for one key hash: obtained from
/// [`HashSpec::begin`], fed canonical value bytes with [`HashState::write`],
/// finalized with [`HashState::finish`]. [`HashSpec::hash_values`] is
/// defined in terms of this state, so a caller streaming the same canonical
/// bytes — e.g. the vectorized η kernel reading typed column slices without
/// materializing `Value`s — produces *identical* hashes to the row-based
/// [`HashSpec::hash_row`].
#[derive(Debug, Clone, Copy)]
pub struct HashState {
    family: HashFamily,
    h: u64,
}

impl HashState {
    /// Absorb a byte slice.
    #[inline]
    pub fn write(&mut self, bytes: &[u8]) {
        match self.family {
            HashFamily::SplitMix | HashFamily::Fnv1a => {
                for &b in bytes {
                    self.h = (self.h ^ b as u64).wrapping_mul(FNV_PRIME);
                }
            }
            HashFamily::Multiplicative => {
                // Deliberately weak: an LCG step per byte, no finalizer.
                for &b in bytes {
                    self.h = self.h.wrapping_mul(6364136223846793005).wrapping_add(b as u64 | 1);
                }
            }
        }
    }

    /// Finalize to the hash value.
    #[inline]
    pub fn finish(self) -> u64 {
        match self.family {
            HashFamily::SplitMix => splitmix64(self.h),
            HashFamily::Fnv1a | HashFamily::Multiplicative => self.h,
        }
    }
}

impl HashSpec {
    /// Construct with the default family.
    pub fn with_seed(seed: u64) -> HashSpec {
        HashSpec { family: HashFamily::SplitMix, seed }
    }

    /// Start incremental accumulation (see [`HashState`]).
    #[inline]
    pub fn begin(&self) -> HashState {
        let h = match self.family {
            HashFamily::SplitMix | HashFamily::Fnv1a => FNV_OFFSET ^ self.seed,
            HashFamily::Multiplicative => {
                self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1)
            }
        };
        HashState { family: self.family, h }
    }

    /// Hash a sequence of values to a `u64`. Shared by [`HashSpec::hash_key`]
    /// (contiguous key tuples) and [`HashSpec::hash_row`] (key columns read
    /// in place from a wider row), so both produce identical hashes.
    fn hash_values<'a>(&self, values: impl Iterator<Item = &'a Value>) -> u64 {
        let mut state = self.begin();
        for v in values {
            v.canonical_bytes(&mut |bytes| state.write(bytes));
        }
        state.finish()
    }

    /// Hash a key tuple to a `u64`.
    pub fn hash_key(&self, key: &[Value]) -> u64 {
        self.hash_values(key.iter())
    }

    /// Hash the `key_cols` of a row in place — same result as extracting the
    /// key tuple and calling [`HashSpec::hash_key`], without cloning the key
    /// values into a temporary `Vec`. This is the η hot path.
    pub fn hash_row(&self, row: &[Value], key_cols: &[usize]) -> u64 {
        self.hash_values(key_cols.iter().map(|&i| &row[i]))
    }

    /// Hash a key tuple to `[0, 1)` with 53 bits of precision, exactly as
    /// the paper normalizes a hash by `MAXINT`.
    pub fn hash01(&self, key: &[Value]) -> f64 {
        normalize01(self.hash_key(key))
    }

    /// The sampling predicate `h(key) ≤ m` of the η operator.
    pub fn selects(&self, key: &[Value], ratio: f64) -> bool {
        self.hash01(key) <= ratio
    }

    /// The sampling predicate applied to `key_cols` of a row in place.
    pub fn selects_row(&self, row: &[Value], key_cols: &[usize], ratio: f64) -> bool {
        normalize01(self.hash_row(row, key_cols)) <= ratio
    }
}

/// Map a raw hash to `[0, 1)` using its top 53 bits. One definition shared
/// by [`HashSpec::hash01`], [`HashSpec::selects_row`], and the vectorized
/// η kernel: the tuple-based, in-place, and columnar sampling predicates
/// must never diverge, or pushed and unpushed plans would materialize
/// different samples.
#[inline]
pub fn normalize01(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Chi-square statistic of hash values bucketed into `buckets` equal-width
/// cells of `[0,1)`. Under uniformity its expectation is `buckets - 1`.
/// Used by tests and by the uniformity micro-benchmarks.
pub fn chi_square_uniformity(hashes01: &[f64], buckets: usize) -> f64 {
    assert!(buckets >= 2, "need at least 2 buckets");
    let mut counts = vec![0usize; buckets];
    for &h in hashes01 {
        let b = ((h * buckets as f64) as usize).min(buckets - 1);
        counts[b] += 1;
    }
    let expected = hashes01.len() as f64 / buckets as f64;
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hashes(spec: HashSpec, n: i64) -> Vec<f64> {
        (0..n).map(|i| spec.hash01(&[Value::Int(i)])).collect()
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = HashSpec::with_seed(7);
        let key = vec![Value::Int(42), Value::str("k")];
        assert_eq!(spec.hash_key(&key), spec.hash_key(&key));
        let other = HashSpec::with_seed(8);
        assert_ne!(spec.hash_key(&key), other.hash_key(&key));
    }

    #[test]
    fn hash01_in_unit_interval() {
        let spec = HashSpec::default();
        for i in 0..1000 {
            let h = spec.hash01(&[Value::Int(i)]);
            assert!((0.0..1.0).contains(&h));
        }
    }

    #[test]
    fn sampling_ratio_approximates_m() {
        // Fraction of keys with h ≤ m should be close to m (SUHA).
        let spec = HashSpec::default();
        let n = 20_000;
        for &m in &[0.05, 0.1, 0.5] {
            let hits = (0..n).filter(|&i| spec.selects(&[Value::Int(i)], m)).count();
            let frac = hits as f64 / n as f64;
            assert!((frac - m).abs() < 0.01, "family SplitMix ratio {m}: observed {frac}");
        }
    }

    #[test]
    fn splitmix_behaves_like_random_but_multiplicative_does_not() {
        // Under SUHA, chi-square with b-1 = 63 degrees of freedom has mean 63
        // and std ≈ sqrt(2·63) ≈ 11.2. SplitMix should land in a normal band.
        // The LCG "linear" hash on sequential integers produces a lattice:
        // its bucket counts are *abnormally even* (chi-square many sigmas
        // below the mean), which is exactly the kind of SUHA violation the
        // paper's Appendix 12.3 warns about.
        let n = 50_000;
        let dof = 63.0_f64;
        let sigma = (2.0 * dof).sqrt();
        let good = chi_square_uniformity(&hashes(HashSpec::default(), n), 64);
        let weak = chi_square_uniformity(
            &hashes(HashSpec { family: HashFamily::Multiplicative, seed: 1 }, n),
            64,
        );
        assert!(
            (good - dof).abs() < 4.0 * sigma,
            "SplitMix chi-square {good} too far from expectation {dof}"
        );
        assert!(
            (weak - dof).abs() > 4.0 * sigma,
            "expected multiplicative hash ({weak}) to deviate from SUHA expectation {dof}"
        );
    }

    #[test]
    fn composite_keys_hash_like_single_keys() {
        let spec = HashSpec::default();
        let n = 20_000;
        let hs: Vec<f64> =
            (0..n).map(|i| spec.hash01(&[Value::Int(i % 200), Value::Int(i / 200)])).collect();
        let chi = chi_square_uniformity(&hs, 32);
        assert!(chi < 120.0, "composite-key chi-square too high: {chi}");
    }

    #[test]
    fn fnv_family_works() {
        let spec = HashSpec { family: HashFamily::Fnv1a, seed: 3 };
        let n = 20_000;
        let hits = (0..n).filter(|&i| spec.selects(&[Value::Int(i)], 0.1)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.02, "fnv observed {frac}");
    }
}
