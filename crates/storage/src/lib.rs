//! # svc-storage
//!
//! In-memory relational storage substrate for the Stale View Cleaning (SVC)
//! reproduction (Krishnan et al., VLDB 2015).
//!
//! The paper assumes a conventional relational database (MySQL in the
//! single-node experiments). This crate provides the pieces of such a system
//! that SVC actually depends on:
//!
//! * typed [`Value`]s and [`Schema`]s ([`value`], [`schema`]),
//! * keyed [`Table`]s with primary-key indexes ([`table`]),
//! * a [`Database`] of base relations with declared foreign keys
//!   ([`database`]) — foreign keys drive the hash push-down special case of
//!   Section 4.4 of the paper,
//! * *delta relations* `∆R` / `∇R` ([`delta`]) — the paper's `∂D`, with
//!   updates modeled as a deletion followed by an insertion (Section 3.1),
//! * deterministic uniform hash families mapping key tuples to `[0, 1)`
//!   ([`hash`]) — the hashing operator `η` of Section 4.4 and the SUHA
//!   discussion of Appendix 12.3.
//!
//! Everything is deterministic and seedable: determinism of the hash is what
//! makes a stale sample and its cleaned counterpart *correspond*
//! (Proposition 2 in the paper).

#![forbid(unsafe_code)]

pub mod columns;
pub mod database;
pub mod delta;
pub mod error;
pub mod hash;
pub mod schema;
pub mod table;
pub mod value;

pub use columns::{Column, ColumnBuilder, ColumnData, ColumnSet};
pub use database::{Database, ForeignKey};
pub use delta::{DeltaSet, Deltas};
pub use error::{Result, StorageError};
pub use hash::{normalize01, HashFamily, HashSpec, HashState};
pub use schema::{Field, Schema};
pub use table::{KeyTuple, Table};
pub use value::{DataType, Value};

/// A row is a positional tuple of values, aligned with a [`Schema`].
pub type Row = Vec<Value>;
