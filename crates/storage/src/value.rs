//! Typed scalar values and their data types.
//!
//! Values are the cells of rows. They are strictly typed: `Int(1)` and
//! `Float(1.0)` are *different* values for grouping, keying, and hashing
//! purposes (numeric coercion happens in the expression layer of
//! `svc-relalg`, not here). Equality, ordering, and hashing are total — in
//! particular floats are compared with [`f64::total_cmp`] and hashed through
//! canonical bit patterns — so values can be used as group-by and primary
//! keys.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer. Dates are stored as days-since-epoch integers.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string (cheaply clonable).
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Bool => write!(f, "bool"),
            DataType::Int => write!(f, "int"),
            DataType::Float => write!(f, "float"),
            DataType::Str => write!(f, "str"),
        }
    }
}

/// A scalar value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Any column may be null regardless of its declared type.
    Null,
    /// Boolean value.
    Bool(bool),
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// String value. `Arc<str>` keeps row clones cheap.
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The data type of this value, or `None` for NULL.
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// True iff this is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: integers widen to floats; other types are `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Integer view (floats are not narrowed).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Canonical bit pattern for a float: collapses `-0.0` to `0.0` and all
    /// NaNs to one representative, so equal-looking floats hash equally.
    pub fn canonical_f64_bits(x: f64) -> u64 {
        if x.is_nan() {
            f64::NAN.to_bits()
        } else if x == 0.0 {
            0u64
        } else {
            x.to_bits()
        }
    }

    /// A small integer identifying the variant, used for cross-type ordering
    /// and hashing.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }

    /// Feed the canonical byte representation of this value to `sink`.
    /// Used by the hash families in [`crate::hash`], which must not depend
    /// on Rust's unspecified default hasher.
    pub fn canonical_bytes(&self, sink: &mut impl FnMut(&[u8])) {
        sink(&[self.type_rank()]);
        match self {
            Value::Null => {}
            Value::Bool(b) => sink(&[*b as u8]),
            Value::Int(i) => sink(&i.to_le_bytes()),
            Value::Float(x) => sink(&Self::canonical_f64_bits(*x).to_le_bytes()),
            Value::Str(s) => sink(s.as_bytes()),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => {
                Value::canonical_f64_bits(*a) == Value::canonical_f64_bits(*b)
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u8(self.type_rank());
        match self {
            Value::Null => {}
            Value::Bool(b) => state.write_u8(*b as u8),
            Value::Int(i) => state.write_i64(*i),
            Value::Float(x) => state.write_u64(Value::canonical_f64_bits(*x)),
            Value::Str(s) => state.write(s.as_bytes()),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: NULL < Bool < Int < Float < Str, values within a type
    /// ordered naturally (floats by `total_cmp`). Cross-type numeric
    /// comparison is intentionally *not* performed here; the expression
    /// layer coerces before comparing.
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn std_hash(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn strict_type_equality() {
        assert_ne!(Value::Int(1), Value::Float(1.0));
        assert_eq!(Value::Int(1), Value::Int(1));
        assert_eq!(Value::str("a"), Value::from("a"));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn float_canonicalization() {
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(std_hash(&Value::Float(0.0)), std_hash(&Value::Float(-0.0)));
        assert_eq!(Value::Float(f64::NAN), Value::Float(-f64::NAN));
    }

    #[test]
    fn total_order_is_consistent() {
        let vals = vec![
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-3),
            Value::Int(7),
            Value::Float(-1.5),
            Value::Float(2.5),
            Value::str("a"),
            Value::str("b"),
        ];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                assert_eq!(a.cmp(b), i.cmp(&j), "ordering of {a} vs {b}");
            }
        }
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(4).as_f64(), Some(4.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
        assert_eq!(Value::Float(2.5).as_i64(), None);
    }

    #[test]
    fn canonical_bytes_distinguish_types() {
        fn bytes(v: &Value) -> Vec<u8> {
            let mut out = Vec::new();
            v.canonical_bytes(&mut |b| out.extend_from_slice(b));
            out
        }
        assert_ne!(bytes(&Value::Int(1)), bytes(&Value::Bool(true)));
        assert_ne!(bytes(&Value::Int(1)), bytes(&Value::Float(1.0)));
        assert_eq!(bytes(&Value::Float(0.0)), bytes(&Value::Float(-0.0)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("hi").to_string(), "hi");
    }
}
