//! Keyed tables: the physical representation of base relations, derived
//! relations, and materialized views.
//!
//! Every table carries a *primary key* (a subset of columns) as required by
//! Section 3.1 of the paper: "we assume that each of the base relations has
//! a primary key; if this is not the case, we can always add an extra column
//! that assigns an increasing sequence of integers to each record". Derived
//! relations receive keys via the Definition 2 rules in `svc-relalg`.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use crate::columns::ColumnSet;
use crate::error::{Result, StorageError};
use crate::schema::Schema;
use crate::value::Value;
use crate::Row;

/// The value tuple of a row's primary key; hashable and comparable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyTuple(pub Vec<Value>);

impl KeyTuple {
    /// Extract the key tuple of `row` given key column positions.
    pub fn of(row: &Row, key_cols: &[usize]) -> KeyTuple {
        KeyTuple(key_cols.iter().map(|&i| row[i].clone()).collect())
    }

    /// Hash the `key_cols` of `row` in place — the borrow-based companion
    /// of [`KeyTuple::of`] for probe paths that only need a hash code: no
    /// `Vec` is allocated and no `Value` is cloned. Two rows whose key
    /// columns are equal (`Value::eq`) always hash equally; callers verify
    /// candidate matches by comparing the columns themselves.
    #[inline]
    pub fn hash_of(row: &[Value], key_cols: &[usize]) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for &i in key_cols {
            row[i].hash(&mut h);
        }
        h.finish()
    }

    /// Column-wise equality of two rows' key projections, without
    /// extracting either tuple. Pairs with [`KeyTuple::hash_of`] to verify
    /// hash-map candidates on join/group probe paths.
    #[inline]
    pub fn cols_eq(a: &[Value], a_cols: &[usize], b: &[Value], b_cols: &[usize]) -> bool {
        a_cols.len() == b_cols.len() && a_cols.iter().zip(b_cols).all(|(&i, &j)| a[i] == b[j])
    }
}

impl fmt::Display for KeyTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// An in-memory relation: a schema, a primary key, and rows with a key
/// index for point lookups, updates, and deletes.
#[derive(Debug)]
pub struct Table {
    schema: Schema,
    key: Vec<usize>,
    rows: Vec<Row>,
    index: HashMap<KeyTuple, usize>,
    /// Mutation epoch: bumped by every row-changing method, so the cached
    /// columnar projection below knows when it is stale.
    epoch: u64,
    /// Lazily-built columnar projection of `rows` ([`Table::columns`]),
    /// tagged with the epoch it was built at. Interior mutability because
    /// extraction happens on shared read paths (plan execution).
    colcache: Mutex<Option<(u64, Arc<ColumnSet>)>>,
}

thread_local! {
    static TABLE_CLONES_CELL: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Per-thread count of full-table clones (see [`Table::clone_count`]).
/// A telemetry [`svc_telemetry::LocalCounter`] — thread-local on purpose:
/// plan execution is synchronous on the calling thread, so a test can read
/// the counter, run a plan, and compare without clones from
/// concurrently-running tests (cargo runs test binaries multi-threaded)
/// polluting the reading.
static TABLE_CLONES: svc_telemetry::LocalCounter =
    svc_telemetry::LocalCounter::new(&TABLE_CLONES_CELL);

impl Clone for Table {
    fn clone(&self) -> Table {
        // Cloning a table copies every row *and* rebuilds nothing — the key
        // index is cloned too. It is exactly the cost the streaming
        // executor exists to avoid on scan paths, so each clone is counted:
        // tests assert that fused pipelines never take this path.
        TABLE_CLONES.bump();
        Table {
            schema: self.schema.clone(),
            key: self.key.clone(),
            rows: self.rows.clone(),
            index: self.index.clone(),
            epoch: 0,
            colcache: Mutex::new(None),
        }
    }
}

impl Table {
    /// Create an empty table with the given schema and key column names.
    pub fn new(schema: Schema, key_names: &[impl AsRef<str>]) -> Result<Table> {
        let key = schema.resolve_all(key_names)?;
        Table::with_key_indices(schema, key)
    }

    /// Create an empty table keyed by column positions.
    pub fn with_key_indices(schema: Schema, key: Vec<usize>) -> Result<Table> {
        for &i in &key {
            if i >= schema.len() {
                return Err(StorageError::Invalid(format!(
                    "key column index {i} out of range for schema [{schema}]"
                )));
            }
        }
        Ok(Table {
            schema,
            key,
            rows: Vec::new(),
            index: HashMap::new(),
            epoch: 0,
            colcache: Mutex::new(None),
        })
    }

    /// Bulk-build a table from rows, validating arity and key uniqueness.
    pub fn from_rows(schema: Schema, key: Vec<usize>, rows: Vec<Row>) -> Result<Table> {
        let mut t = Table::with_key_indices(schema, key)?;
        t.rows.reserve(rows.len());
        t.index.reserve(rows.len());
        for row in rows {
            t.insert(row)?;
        }
        Ok(t)
    }

    /// Number of full-table clones performed **on this thread** since it
    /// started. Observability hook for the zero-scan-clone guarantee of
    /// the streaming executor: take a reading, run a plan (execution is
    /// synchronous on the calling thread), compare. Thin shim over the
    /// shared telemetry counter mechanism ([`svc_telemetry::LocalCounter`]).
    pub fn clone_count() -> usize {
        TABLE_CLONES.get() as usize
    }

    /// Bulk-build from rows already known to be key-unique and of the right
    /// arity — e.g. a filtered subset of an existing keyed table. Skips the
    /// per-row duplicate-key error path of [`Table::from_rows`] (uniqueness
    /// is debug-asserted), which matters on evaluator hot paths.
    pub fn from_unique_rows(schema: Schema, key: Vec<usize>, rows: Vec<Row>) -> Result<Table> {
        let mut t = Table::with_key_indices(schema, key)?;
        let mut index = HashMap::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            debug_assert_eq!(row.len(), t.schema.len(), "row arity mismatch");
            let prev = index.insert(KeyTuple::of(row, &t.key), i);
            debug_assert!(prev.is_none(), "duplicate key in from_unique_rows");
        }
        t.rows = rows;
        t.index = index;
        Ok(t)
    }

    /// Consume the table, returning its rows (insertion order). The key
    /// index is dropped; used by the evaluator to move rows through
    /// filters instead of cloning them.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Primary key column positions.
    pub fn key(&self) -> &[usize] {
        &self.key
    }

    /// Primary key column names.
    pub fn key_names(&self) -> Vec<&str> {
        self.key.iter().map(|&i| self.schema.field(i).name.as_str()).collect()
    }

    /// All rows, in insertion order (with holes from deletion compacted).
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The key tuple of a row of this table.
    pub fn key_of(&self, row: &Row) -> KeyTuple {
        KeyTuple::of(row, &self.key)
    }

    /// Record a row mutation so the cached columnar projection goes stale.
    #[inline]
    fn touch(&mut self) {
        self.epoch += 1;
    }

    /// The typed columnar projection of this table's rows
    /// ([`ColumnSet`]), built lazily and cached until the next mutation:
    /// re-running a compiled vectorized plan against unchanged bindings
    /// extracts each leaf exactly once per mutation epoch. Cheap to call
    /// when warm (one lock, one `Arc` clone).
    pub fn columns(&self) -> Arc<ColumnSet> {
        let mut guard = self.colcache.lock().expect("column cache poisoned");
        if let Some((epoch, cols)) = guard.as_ref() {
            if *epoch == self.epoch {
                // With the verifier on, prove the epoch cache is honest: a
                // cache hit whose row count disagrees with the table means
                // some mutator forgot to bump the epoch.
                #[cfg(feature = "verify")]
                assert_eq!(
                    cols.len,
                    self.rows.len(),
                    "columnar cache hit at epoch {epoch} holds {} rows but the table has {} — \
                     a mutator skipped Table::touch",
                    cols.len,
                    self.rows.len()
                );
                return Arc::clone(cols);
            }
        }
        let cols = Arc::new(ColumnSet::from_rows(&self.schema, &self.rows));
        #[cfg(feature = "verify")]
        cols.check().expect("freshly extracted ColumnSet failed integrity check");
        *guard = Some((self.epoch, Arc::clone(&cols)));
        cols
    }

    /// Insert a row; errors on arity mismatch or duplicate key.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        svc_fault::fail_point!(svc_fault::site::TABLE_MUTATE, StorageError::Invalid);
        if row.len() != self.schema.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.len(),
                found: row.len(),
            });
        }
        let key = self.key_of(&row);
        if self.index.contains_key(&key) {
            return Err(StorageError::DuplicateKey(key.to_string()));
        }
        self.touch();
        self.index.insert(key, self.rows.len());
        self.rows.push(row);
        Ok(())
    }

    /// Insert or replace by primary key; returns the replaced row, if any.
    pub fn upsert(&mut self, row: Row) -> Result<Option<Row>> {
        svc_fault::fail_point!(svc_fault::site::TABLE_MUTATE, StorageError::Invalid);
        if row.len() != self.schema.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.len(),
                found: row.len(),
            });
        }
        let key = self.key_of(&row);
        self.touch();
        if let Some(&pos) = self.index.get(&key) {
            let old = std::mem::replace(&mut self.rows[pos], row);
            Ok(Some(old))
        } else {
            self.index.insert(key, self.rows.len());
            self.rows.push(row);
            Ok(None)
        }
    }

    /// Look up a row by key.
    pub fn get(&self, key: &KeyTuple) -> Option<&Row> {
        self.index.get(key).map(|&i| &self.rows[i])
    }

    /// True iff a row with this key exists.
    pub fn contains_key(&self, key: &KeyTuple) -> bool {
        self.index.contains_key(key)
    }

    /// Delete a row by key, returning it. Uses swap-remove; row order is not
    /// stable across deletions.
    pub fn delete(&mut self, key: &KeyTuple) -> Option<Row> {
        let pos = self.index.remove(key)?;
        self.touch();
        let row = self.rows.swap_remove(pos);
        if pos < self.rows.len() {
            let moved_key = self.key_of(&self.rows[pos]);
            self.index.insert(moved_key, pos);
        }
        Some(row)
    }

    /// An empty table with the same schema and key.
    pub fn empty_like(&self) -> Table {
        Table {
            schema: self.schema.clone(),
            key: self.key.clone(),
            rows: Vec::new(),
            index: HashMap::new(),
            epoch: 0,
            colcache: Mutex::new(None),
        }
    }

    /// Iterate over `(key, row)` pairs.
    pub fn iter_keyed(&self) -> impl Iterator<Item = (KeyTuple, &Row)> + '_ {
        self.rows.iter().map(move |r| (self.key_of(r), r))
    }

    /// Sort rows by primary key (stable, ascending). Useful for deterministic
    /// output and comparisons in tests.
    pub fn sort_by_key(&mut self) {
        self.touch();
        let key = self.key.clone();
        self.rows.sort_by(|a, b| KeyTuple::of(a, &key).cmp(&KeyTuple::of(b, &key)));
        self.reindex();
    }

    fn reindex(&mut self) {
        self.index.clear();
        for (i, r) in self.rows.iter().enumerate() {
            self.index.insert(KeyTuple::of(r, &self.key), i);
        }
    }

    /// Two tables are *equivalent* if they have the same schema, key, and
    /// the same set of rows (order-insensitive, keyed comparison).
    pub fn same_contents(&self, other: &Table) -> bool {
        if self.schema != other.schema || self.key != other.key || self.len() != other.len() {
            return false;
        }
        self.iter_keyed().all(|(k, row)| other.get(&k) == Some(row))
    }

    /// Like [`Table::same_contents`] but floats are compared with relative
    /// tolerance `eps`. Incremental maintenance accumulates sums in a
    /// different order than recomputation, so derived float columns can
    /// differ in the last few ulps while being semantically equal.
    pub fn approx_same_contents(&self, other: &Table, eps: f64) -> bool {
        fn value_close(a: &Value, b: &Value, eps: f64) -> bool {
            match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    (x - y).abs() <= eps * scale
                }
                _ => a == b,
            }
        }
        if self.schema != other.schema || self.key != other.key || self.len() != other.len() {
            return false;
        }
        self.iter_keyed().all(|(k, row)| match other.get(&k) {
            Some(o) => row.iter().zip(o).all(|(a, b)| value_close(a, b, eps)),
            None => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn table() -> Table {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("name", DataType::Str)]).unwrap();
        Table::new(schema, &["id"]).unwrap()
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::str("a")]).unwrap();
        t.insert(vec![Value::Int(2), Value::str("b")]).unwrap();
        assert_eq!(t.len(), 2);
        let key = KeyTuple(vec![Value::Int(2)]);
        assert_eq!(t.get(&key).unwrap()[1], Value::str("b"));
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::str("a")]).unwrap();
        let err = t.insert(vec![Value::Int(1), Value::str("b")]).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateKey(_)));
    }

    #[test]
    fn arity_checked() {
        let mut t = table();
        assert!(matches!(t.insert(vec![Value::Int(1)]), Err(StorageError::ArityMismatch { .. })));
    }

    #[test]
    fn upsert_replaces() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::str("a")]).unwrap();
        let old = t.upsert(vec![Value::Int(1), Value::str("z")]).unwrap();
        assert_eq!(old.unwrap()[1], Value::str("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&KeyTuple(vec![Value::Int(1)])).unwrap()[1], Value::str("z"));
    }

    #[test]
    fn delete_keeps_index_consistent() {
        let mut t = table();
        for i in 0..10 {
            t.insert(vec![Value::Int(i), Value::str(format!("r{i}"))]).unwrap();
        }
        let removed = t.delete(&KeyTuple(vec![Value::Int(3)])).unwrap();
        assert_eq!(removed[0], Value::Int(3));
        assert_eq!(t.len(), 9);
        for i in (0..10).filter(|&i| i != 3) {
            let k = KeyTuple(vec![Value::Int(i)]);
            assert_eq!(t.get(&k).unwrap()[0], Value::Int(i));
        }
        assert!(t.get(&KeyTuple(vec![Value::Int(3)])).is_none());
    }

    #[test]
    fn same_contents_is_order_insensitive() {
        let mut a = table();
        let mut b = table();
        a.insert(vec![Value::Int(1), Value::str("x")]).unwrap();
        a.insert(vec![Value::Int(2), Value::str("y")]).unwrap();
        b.insert(vec![Value::Int(2), Value::str("y")]).unwrap();
        b.insert(vec![Value::Int(1), Value::str("x")]).unwrap();
        assert!(a.same_contents(&b));
        b.upsert(vec![Value::Int(1), Value::str("z")]).unwrap();
        assert!(!a.same_contents(&b));
    }

    #[test]
    fn hash_of_agrees_with_tuple_hash_semantics() {
        // hash_of must be a function of the key *values* only: equal key
        // projections hash equally regardless of where the columns sit.
        let a = vec![Value::Int(7), Value::str("x"), Value::Float(1.5)];
        let b = vec![Value::str("x"), Value::Int(7)];
        assert_eq!(KeyTuple::hash_of(&a, &[0, 1]), KeyTuple::hash_of(&b, &[1, 0]));
        assert!(KeyTuple::cols_eq(&a, &[0, 1], &b, &[1, 0]));
        assert!(!KeyTuple::cols_eq(&a, &[0], &b, &[0]));
        // Distinct values should (overwhelmingly) hash differently.
        assert_ne!(KeyTuple::hash_of(&a, &[0]), KeyTuple::hash_of(&a, &[2]));
    }

    #[test]
    fn clone_counter_observes_full_clones() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::str("a")]).unwrap();
        let before = Table::clone_count();
        let _copy = t.clone();
        assert!(Table::clone_count() > before, "clone must be counted");
    }

    #[test]
    fn composite_key() {
        let schema = Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("v", DataType::Float),
        ])
        .unwrap();
        let mut t = Table::new(schema, &["a", "b"]).unwrap();
        t.insert(vec![Value::Int(1), Value::Int(1), Value::Float(0.5)]).unwrap();
        t.insert(vec![Value::Int(1), Value::Int(2), Value::Float(0.7)]).unwrap();
        assert!(t.insert(vec![Value::Int(1), Value::Int(2), Value::Float(0.9)]).is_err());
        assert_eq!(t.len(), 2);
    }
}
