//! Delta relations: the paper's `∂D = {∆R₁..∆Rₖ} ∪ {∇R₁..∇Rₖ}`.
//!
//! Every base relation `R` has an insertion relation `∆R` and a deletion
//! relation `∇R` with the same schema and key. An *update* to an existing
//! record is modeled as a deletion followed by an insertion (Section 3.1).
//! A view is *stale* as soon as any delta relation is non-empty.

use std::collections::BTreeMap;

use crate::database::Database;
use crate::error::{Result, StorageError};
use crate::table::Table;
use crate::Row;

/// Pending insertions and deletions for one base relation.
#[derive(Debug, Clone)]
pub struct DeltaSet {
    /// `∆R`: rows to insert (full rows).
    pub insertions: Table,
    /// `∇R`: rows to delete (full old rows, so delta plans can join them).
    pub deletions: Table,
}

impl DeltaSet {
    /// Empty deltas shaped like `base`.
    pub fn empty_like(base: &Table) -> DeltaSet {
        DeltaSet { insertions: base.empty_like(), deletions: base.empty_like() }
    }

    /// True iff there are neither insertions nor deletions.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.deletions.is_empty()
    }

    /// Total number of delta records.
    pub fn len(&self) -> usize {
        self.insertions.len() + self.deletions.len()
    }
}

/// All pending deltas, by table name. This is the `∂D` handed to a
/// maintenance strategy `M(S, D, ∂D)`.
#[derive(Debug, Clone, Default)]
pub struct Deltas {
    sets: BTreeMap<String, DeltaSet>,
}

impl Deltas {
    /// No pending changes.
    pub fn new() -> Deltas {
        Deltas::default()
    }

    /// The delta set for `table`, if any changes are pending.
    pub fn get(&self, table: &str) -> Option<&DeltaSet> {
        self.sets.get(table)
    }

    /// Iterate `(table, delta_set)` pairs, sorted by table name.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &DeltaSet)> {
        self.sets.iter().map(|(n, d)| (n.as_str(), d))
    }

    /// True iff no table has pending changes — i.e. no view is stale.
    pub fn is_empty(&self) -> bool {
        self.sets.values().all(DeltaSet::is_empty)
    }

    /// Total number of pending delta records across all tables.
    pub fn len(&self) -> usize {
        self.sets.values().map(DeltaSet::len).sum()
    }

    /// Names of tables with pending changes.
    pub fn touched_tables(&self) -> Vec<&str> {
        self.sets.iter().filter(|(_, d)| !d.is_empty()).map(|(n, _)| n.as_str()).collect()
    }

    fn set_for<'a>(&'a mut self, db: &Database, table: &str) -> Result<&'a mut DeltaSet> {
        if !self.sets.contains_key(table) {
            let base = db.table(table)?;
            self.sets.insert(table.to_string(), DeltaSet::empty_like(base));
        }
        Ok(self.sets.get_mut(table).expect("just inserted"))
    }

    /// Record an insertion of a brand-new row into `table`.
    pub fn insert(&mut self, db: &Database, table: &str, row: Row) -> Result<()> {
        let set = self.set_for(db, table)?;
        set.insertions.insert(row)
    }

    /// Record a deletion of an existing row of `table` (looked up by key in
    /// the *base* table so the deletion relation carries the full old row).
    pub fn delete(&mut self, db: &Database, table: &str, key_row: &Row) -> Result<()> {
        let base = db.table(table)?;
        let key = base.key_of(key_row);
        let old = base
            .get(&key)
            .ok_or_else(|| StorageError::Invalid(format!("no row with key {key} in `{table}`")))?
            .clone();
        let set = self.set_for(db, table)?;
        set.deletions.insert(old)
    }

    /// Record an update: delete the current row with `new_row`'s key, then
    /// insert `new_row` (the paper's update = deletion + insertion).
    pub fn update(&mut self, db: &Database, table: &str, new_row: Row) -> Result<()> {
        self.delete(db, table, &new_row)?;
        let set = self.set_for(db, table)?;
        set.insertions.insert(new_row)
    }

    /// Merge another delta set into this one (e.g. accumulate streamed
    /// update chunks between maintenance periods). Keys must not conflict.
    pub fn merge(&mut self, other: Deltas) -> Result<()> {
        for (name, set) in other.sets {
            match self.sets.get_mut(&name) {
                None => {
                    self.sets.insert(name, set);
                }
                Some(mine) => {
                    for row in set.insertions.rows() {
                        mine.insertions.insert(row.clone())?;
                    }
                    for row in set.deletions.rows() {
                        mine.deletions.insert(row.clone())?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Apply all pending deltas to the base tables (deletions first, then
    /// insertions), clearing this delta set. This is the "commit" that ends
    /// a maintenance period.
    pub fn apply_to(&mut self, db: &mut Database) -> Result<()> {
        for (name, set) in std::mem::take(&mut self.sets) {
            let base = db.table_mut(&name)?;
            for row in set.deletions.rows() {
                let key = base.key_of(row);
                if base.delete(&key).is_none() {
                    return Err(StorageError::Invalid(format!(
                        "deletion of missing key {key} from `{name}`"
                    )));
                }
            }
            for row in set.insertions.rows() {
                base.insert(row.clone())?;
            }
        }
        Ok(())
    }

    /// The subset of this delta set touching only the named tables. Used to
    /// scope a maintenance pass to the tables a view actually reads; delta
    /// sets of other tables are dropped (they stay pending in `self`).
    pub fn restricted_to(&self, tables: &[&str]) -> Deltas {
        Deltas {
            sets: self
                .sets
                .iter()
                .filter(|(name, set)| !set.is_empty() && tables.contains(&name.as_str()))
                .map(|(name, set)| (name.clone(), set.clone()))
                .collect(),
        }
    }

    /// Split the pending deltas row-wise into at most `parts` chunks of
    /// near-equal size (insertions and deletions of every table are dealt
    /// round-robin). Keys stay unique within each chunk because they were
    /// unique in `self`; merging the chunks back reproduces `self` exactly.
    /// Chunks that would be empty are omitted, so short tails never produce
    /// zero-record partitions.
    ///
    /// Consumes the delta set: every row is *moved* into its chunk — the
    /// mini-batch path partitions the full pending stream per batch, and
    /// cloning each row (with its boxed values) dominated that hot path.
    /// Callers that still need the original clone it explicitly.
    pub fn partition(self, parts: usize) -> Vec<Deltas> {
        let parts = parts.max(1);
        let mut out: Vec<Deltas> = (0..parts).map(|_| Deltas::new()).collect();
        for (name, set) in self.sets {
            if set.is_empty() {
                continue;
            }
            for chunk in out.iter_mut() {
                chunk
                    .sets
                    .entry(name.clone())
                    .or_insert_with(|| DeltaSet::empty_like(&set.insertions));
            }
            let deletions = set.deletions.into_rows();
            for (i, row) in set.insertions.into_rows().into_iter().enumerate() {
                let target = out[i % parts].sets.get_mut(&name).expect("chunk set");
                target.insertions.insert(row).expect("unique keys split uniquely");
            }
            for (i, row) in deletions.into_iter().enumerate() {
                let target = out[i % parts].sets.get_mut(&name).expect("chunk set");
                target.deletions.insert(row).expect("unique keys split uniquely");
            }
        }
        out.retain(|d| !d.is_empty());
        out
    }

    /// Build the *new state* of one base table without touching the
    /// database: `(R − ∇R) ∪ ∆R`. Used by recomputation maintenance and as
    /// ground truth in tests.
    pub fn applied_state(&self, db: &Database, table: &str) -> Result<Table> {
        let base = db.table(table)?;
        let mut out = base.clone();
        if let Some(set) = self.sets.get(table) {
            for row in set.deletions.rows() {
                let key = out.key_of(row);
                out.delete(&key);
            }
            for row in set.insertions.rows() {
                out.insert(row.clone())?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::table::KeyTuple;
    use crate::value::{DataType, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let mut t = Table::new(
            Schema::from_pairs(&[("id", DataType::Int), ("v", DataType::Int)]).unwrap(),
            &["id"],
        )
        .unwrap();
        for i in 0..5 {
            t.insert(vec![Value::Int(i), Value::Int(i * 10)]).unwrap();
        }
        db.create_table("t", t);
        db
    }

    #[test]
    fn insert_delete_update_roundtrip() {
        let mut db = db();
        let mut deltas = Deltas::new();
        deltas.insert(&db, "t", vec![Value::Int(100), Value::Int(1)]).unwrap();
        deltas.delete(&db, "t", &vec![Value::Int(0), Value::Null]).unwrap();
        deltas.update(&db, "t", vec![Value::Int(3), Value::Int(999)]).unwrap();

        assert!(!deltas.is_empty());
        assert_eq!(deltas.len(), 4); // 2 ins + 2 del
        assert_eq!(deltas.touched_tables(), vec!["t"]);

        let applied = deltas.applied_state(&db, "t").unwrap();
        assert_eq!(applied.len(), 5); // 5 - 2 + 2
        assert_eq!(applied.get(&KeyTuple(vec![Value::Int(3)])).unwrap()[1], Value::Int(999));
        assert!(applied.get(&KeyTuple(vec![Value::Int(0)])).is_none());

        deltas.apply_to(&mut db).unwrap();
        assert!(deltas.is_empty());
        assert!(db.table("t").unwrap().same_contents(&applied));
    }

    #[test]
    fn partition_round_trips_and_skips_empty_chunks() {
        let mut db = db();
        let mut deltas = Deltas::new();
        for i in 100..107i64 {
            deltas.insert(&db, "t", vec![Value::Int(i), Value::Int(1)]).unwrap();
        }
        deltas.delete(&db, "t", &vec![Value::Int(0), Value::Null]).unwrap();
        deltas.delete(&db, "t", &vec![Value::Int(1), Value::Null]).unwrap();

        let chunks = deltas.clone().partition(4);
        assert!(chunks.len() <= 4 && !chunks.is_empty());
        assert!(chunks.iter().all(|c| !c.is_empty()), "no empty chunks");
        assert_eq!(chunks.iter().map(Deltas::len).sum::<usize>(), deltas.len());

        // Merging the chunks back reproduces the original delta set.
        let mut merged = Deltas::new();
        for c in &chunks {
            merged.merge(c.clone()).unwrap();
        }
        let direct = deltas.applied_state(&db, "t").unwrap();
        let via_chunks = merged.applied_state(&db, "t").unwrap();
        assert!(direct.same_contents(&via_chunks));

        // Far more parts than records: every chunk still carries work.
        let wide = deltas.clone().partition(64);
        assert!(wide.len() <= deltas.len());
        assert!(wide.iter().all(|c| !c.is_empty()));

        deltas.apply_to(&mut db).unwrap();
    }

    #[test]
    fn delete_of_missing_row_is_rejected() {
        let db = db();
        let mut deltas = Deltas::new();
        let err = deltas.delete(&db, "t", &vec![Value::Int(42), Value::Null]);
        assert!(err.is_err());
    }

    #[test]
    fn update_preserves_key() {
        let db = db();
        let mut deltas = Deltas::new();
        deltas.update(&db, "t", vec![Value::Int(2), Value::Int(-1)]).unwrap();
        let set = deltas.get("t").unwrap();
        assert_eq!(set.insertions.len(), 1);
        assert_eq!(set.deletions.len(), 1);
        // The deletion carries the full OLD row.
        assert_eq!(set.deletions.rows()[0], vec![Value::Int(2), Value::Int(20)]);
    }
}
