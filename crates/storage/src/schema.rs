//! Schemas: ordered, named, typed columns with qualified-name resolution.

use std::fmt;

use crate::error::{Result, StorageError};
use crate::value::DataType;

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name, possibly qualified (`"lineitem.l_orderkey"`).
    pub name: String,
    /// Declared type of the column.
    pub dtype: DataType,
}

impl Field {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Field {
        Field { name: name.into(), dtype }
    }
}

/// An ordered list of fields. Column resolution first tries an exact match,
/// then a unique `".suffix"` match so that `"videoId"` resolves against a
/// join output column `"video.videoId"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema, rejecting duplicate column names.
    pub fn new(fields: Vec<Field>) -> Result<Schema> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(StorageError::DuplicateColumn(f.name.clone()));
            }
        }
        Ok(Schema { fields })
    }

    /// Build a schema from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Result<Schema> {
        Schema::new(pairs.iter().map(|(n, t)| Field::new(*n, *t)).collect())
    }

    /// The fields, in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True iff the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The field at position `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// All column names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Resolve a column name to its position. Exact match wins; otherwise a
    /// *unique* match on the unqualified suffix (`x` matches `t.x`) is
    /// accepted. Ambiguity and absence are errors.
    pub fn resolve(&self, name: &str) -> Result<usize> {
        if let Some(i) = self.fields.iter().position(|f| f.name == name) {
            return Ok(i);
        }
        let suffix = format!(".{name}");
        let matches: Vec<usize> = self
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.name.ends_with(&suffix))
            .map(|(i, _)| i)
            .collect();
        match matches.as_slice() {
            [i] => Ok(*i),
            [] => Err(StorageError::ColumnNotFound {
                name: name.to_string(),
                schema: self.to_string(),
            }),
            many => Err(StorageError::AmbiguousColumn {
                name: name.to_string(),
                candidates: many.iter().map(|&i| self.fields[i].name.clone()).collect(),
            }),
        }
    }

    /// Resolve several column names at once.
    pub fn resolve_all(&self, names: &[impl AsRef<str>]) -> Result<Vec<usize>> {
        names.iter().map(|n| self.resolve(n.as_ref())).collect()
    }

    /// Concatenate two schemas (join output). Columns of `right` whose names
    /// collide with `left` are renamed to `"{right_prefix}.{name}"`; if that
    /// still collides, a numeric suffix is appended.
    pub fn concat(left: &Schema, right: &Schema, right_prefix: &str) -> Result<Schema> {
        let mut fields = left.fields.clone();
        for f in &right.fields {
            let mut name = f.name.clone();
            if fields.iter().any(|g| g.name == name) {
                name = format!("{right_prefix}.{}", f.name);
            }
            let mut k = 2;
            while fields.iter().any(|g| g.name == name) {
                name = format!("{right_prefix}.{}#{k}", f.name);
                k += 1;
            }
            fields.push(Field::new(name, f.dtype));
        }
        Schema::new(fields)
    }

    /// Project a subset of columns by position, preserving order of `idx`.
    pub fn project(&self, idx: &[usize]) -> Schema {
        Schema { fields: idx.iter().map(|&i| self.fields[i].clone()).collect() }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> =
            self.fields.iter().map(|fd| format!("{}:{}", fd.name, fd.dtype)).collect();
        write!(f, "{}", cols.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("a", DataType::Int),
            ("t.b", DataType::Str),
            ("u.c", DataType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn exact_resolution() {
        let s = schema();
        assert_eq!(s.resolve("a").unwrap(), 0);
        assert_eq!(s.resolve("t.b").unwrap(), 1);
    }

    #[test]
    fn suffix_resolution() {
        let s = schema();
        assert_eq!(s.resolve("b").unwrap(), 1);
        assert_eq!(s.resolve("c").unwrap(), 2);
    }

    #[test]
    fn missing_and_ambiguous() {
        let s = Schema::from_pairs(&[("t.x", DataType::Int), ("u.x", DataType::Int)]).unwrap();
        assert!(matches!(s.resolve("y"), Err(StorageError::ColumnNotFound { .. })));
        assert!(matches!(s.resolve("x"), Err(StorageError::AmbiguousColumn { .. })));
        assert_eq!(s.resolve("t.x").unwrap(), 0);
    }

    #[test]
    fn duplicate_rejected() {
        assert!(Schema::from_pairs(&[("a", DataType::Int), ("a", DataType::Int)]).is_err());
    }

    #[test]
    fn concat_renames_collisions() {
        let l = Schema::from_pairs(&[("id", DataType::Int), ("x", DataType::Int)]).unwrap();
        let r = Schema::from_pairs(&[("id", DataType::Int), ("y", DataType::Int)]).unwrap();
        let j = Schema::concat(&l, &r, "r").unwrap();
        assert_eq!(j.names(), vec!["id", "x", "r.id", "y"]);
        assert_eq!(j.resolve("r.id").unwrap(), 2);
    }

    #[test]
    fn project_subset() {
        let s = schema();
        let p = s.project(&[2, 0]);
        assert_eq!(p.names(), vec!["u.c", "a"]);
    }
}
