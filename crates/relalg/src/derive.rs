//! Output schema and primary-key derivation for every plan node —
//! Definition 2 ("Primary Key Generation") of the paper.
//!
//! Each rule both *infers* the output schema and *constructs* the output
//! primary key:
//!
//! * σ, η: key of the input;
//! * Π: key of the input, which **must** be projected as bare columns
//!   ("the primary key must always be included in the projection");
//! * ⋈: the concatenation of both input keys — except that when one side is
//!   joined on its entire primary key (the foreign-key special case of
//!   Section 4.4), the other side's key alone already identifies rows and
//!   the key is *reduced* accordingly;
//! * γ: the group-by columns;
//! * ∪: the union of the input keys; ∩: their intersection (falling back to
//!   the left key when the intersection is empty, which is still unique
//!   because the result is a subset of the left input); −: the left key.

use svc_storage::{DataType, Database, Field, Result, Schema, StorageError};

use crate::aggregate::AggSpec;
use crate::plan::{JoinKind, Plan};
use crate::scalar::Expr;

/// The derived "type" of a relation: its schema plus primary-key positions.
#[derive(Debug, Clone, PartialEq)]
pub struct Derived {
    /// Output schema.
    pub schema: Schema,
    /// Positions of the primary-key columns within `schema`.
    pub key: Vec<usize>,
}

impl Derived {
    /// The names of the key columns.
    pub fn key_names(&self) -> Vec<&str> {
        self.key.iter().map(|&i| self.schema.field(i).name.as_str()).collect()
    }
}

/// Resolves leaf relation names to their derived type.
pub trait LeafProvider {
    /// The schema and key of leaf `name`, if known.
    fn leaf(&self, name: &str) -> Option<Derived>;
}

impl<T: LeafProvider + ?Sized> LeafProvider for &T {
    fn leaf(&self, name: &str) -> Option<Derived> {
        (**self).leaf(name)
    }
}

impl LeafProvider for Database {
    fn leaf(&self, name: &str) -> Option<Derived> {
        self.table(name).ok().map(|t| Derived { schema: t.schema().clone(), key: t.key().to_vec() })
    }
}

/// Derive schema and key for a whole plan.
pub fn derive(plan: &Plan, leaves: &(impl LeafProvider + ?Sized)) -> Result<Derived> {
    match plan {
        Plan::Scan { table } => {
            leaves.leaf(table).ok_or_else(|| StorageError::UnknownTable(table.clone()))
        }
        Plan::Select { input, predicate } => {
            let d = derive(input, leaves)?;
            derive_select(&d, predicate)
        }
        Plan::Project { input, columns } => {
            let d = derive(input, leaves)?;
            derive_project(&d, columns)
        }
        Plan::Join { left, right, kind, on } => {
            let l = derive(left, leaves)?;
            let r = derive(right, leaves)?;
            Ok(derive_join(&l, &r, *kind, on, right.name_hint())?.0)
        }
        Plan::Aggregate { input, group_by, aggregates } => {
            let d = derive(input, leaves)?;
            derive_aggregate(&d, group_by, aggregates)
        }
        Plan::Union { left, right } => {
            let l = derive(left, leaves)?;
            let r = derive(right, leaves)?;
            derive_setop(&l, &r, SetOpKind::Union)
        }
        Plan::Intersect { left, right } => {
            let l = derive(left, leaves)?;
            let r = derive(right, leaves)?;
            derive_setop(&l, &r, SetOpKind::Intersect)
        }
        Plan::Difference { left, right } => {
            let l = derive(left, leaves)?;
            let r = derive(right, leaves)?;
            derive_setop(&l, &r, SetOpKind::Difference)
        }
        Plan::Hash { input, key, ratio, .. } => {
            let d = derive(input, leaves)?;
            derive_hash(&d, key, *ratio)
        }
    }
}

/// The derived type of every node of a plan, mirroring the plan's tree
/// shape: `children` are in plan order (`input`, or `left` then `right`).
///
/// One [`derive_tree`] pass costs O(nodes) total because each node's type is
/// computed from its children's already-derived types. The optimizer rules
/// walk a plan and its `DerivedTree` in lockstep instead of calling
/// [`derive`] (an O(subtree) recursion) at every node they visit, which is
/// what kept a full optimize() sweep at O(n²) derive work before.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedTree {
    /// This node's derived type.
    pub derived: Derived,
    /// Children in plan order.
    pub children: Vec<DerivedTree>,
}

impl DerivedTree {
    /// A leaf (no children).
    pub fn leaf(derived: Derived) -> DerivedTree {
        DerivedTree { derived, children: Vec::new() }
    }

    /// A unary node above `child`.
    pub fn unary(derived: Derived, child: DerivedTree) -> DerivedTree {
        DerivedTree { derived, children: vec![child] }
    }

    /// A binary node above `left` and `right`.
    pub fn binary(derived: Derived, left: DerivedTree, right: DerivedTree) -> DerivedTree {
        DerivedTree { derived, children: vec![left, right] }
    }

    /// The single child of a unary node.
    pub fn input(&self) -> &DerivedTree {
        &self.children[0]
    }

    /// The two children of a binary node.
    pub fn pair(&self) -> (&DerivedTree, &DerivedTree) {
        (&self.children[0], &self.children[1])
    }
}

/// Derive the whole plan bottom-up in one O(nodes) pass.
pub fn derive_tree(plan: &Plan, leaves: &(impl LeafProvider + ?Sized)) -> Result<DerivedTree> {
    Ok(match plan {
        Plan::Scan { table } => DerivedTree::leaf(
            leaves.leaf(table).ok_or_else(|| StorageError::UnknownTable(table.clone()))?,
        ),
        Plan::Select { input, predicate } => {
            let c = derive_tree(input, leaves)?;
            DerivedTree::unary(derive_select(&c.derived, predicate)?, c)
        }
        Plan::Project { input, columns } => {
            let c = derive_tree(input, leaves)?;
            DerivedTree::unary(derive_project(&c.derived, columns)?, c)
        }
        Plan::Join { left, right, kind, on } => {
            let l = derive_tree(left, leaves)?;
            let r = derive_tree(right, leaves)?;
            let d = derive_join(&l.derived, &r.derived, *kind, on, right.name_hint())?.0;
            DerivedTree::binary(d, l, r)
        }
        Plan::Aggregate { input, group_by, aggregates } => {
            let c = derive_tree(input, leaves)?;
            DerivedTree::unary(derive_aggregate(&c.derived, group_by, aggregates)?, c)
        }
        Plan::Union { left, right } => {
            let l = derive_tree(left, leaves)?;
            let r = derive_tree(right, leaves)?;
            let d = derive_setop(&l.derived, &r.derived, SetOpKind::Union)?;
            DerivedTree::binary(d, l, r)
        }
        Plan::Intersect { left, right } => {
            let l = derive_tree(left, leaves)?;
            let r = derive_tree(right, leaves)?;
            let d = derive_setop(&l.derived, &r.derived, SetOpKind::Intersect)?;
            DerivedTree::binary(d, l, r)
        }
        Plan::Difference { left, right } => {
            let l = derive_tree(left, leaves)?;
            let r = derive_tree(right, leaves)?;
            let d = derive_setop(&l.derived, &r.derived, SetOpKind::Difference)?;
            DerivedTree::binary(d, l, r)
        }
        Plan::Hash { input, key, ratio, .. } => {
            let c = derive_tree(input, leaves)?;
            DerivedTree::unary(derive_hash(&c.derived, key, *ratio)?, c)
        }
    })
}

/// σ: validate the predicate binds; schema and key pass through.
pub fn derive_select(input: &Derived, predicate: &Expr) -> Result<Derived> {
    predicate.bind(&input.schema)?;
    Ok(input.clone())
}

/// Π: compute the output schema from the column expressions and require the
/// input key to survive as bare column references.
pub fn derive_project(input: &Derived, columns: &[(String, Expr)]) -> Result<Derived> {
    let mut fields = Vec::with_capacity(columns.len());
    for (alias, expr) in columns {
        expr.bind(&input.schema)?;
        fields.push(Field::new(alias.clone(), expr.infer_type(&input.schema)?));
    }
    let schema = Schema::new(fields)?;

    let mut key = Vec::with_capacity(input.key.len());
    for &kidx in &input.key {
        let pos = columns.iter().position(|(_, e)| {
            e.as_col().and_then(|name| input.schema.resolve(name).ok()).is_some_and(|i| i == kidx)
        });
        match pos {
            Some(p) => key.push(p),
            None => {
                return Err(StorageError::Invalid(format!(
                    "projection drops primary key column `{}` (Definition 2 requires the key \
                     to be included in the projection)",
                    input.schema.field(kidx).name
                )))
            }
        }
    }
    Ok(Derived { schema, key })
}

/// ⋈: concatenated schema (right-side collisions renamed via `right_hint`),
/// key per Definition 2 with foreign-key reduction. Returns the resolved
/// join column index pairs alongside the derived type.
pub fn derive_join(
    left: &Derived,
    right: &Derived,
    kind: JoinKind,
    on: &[(String, String)],
    right_hint: &str,
) -> Result<(Derived, Vec<(usize, usize)>)> {
    let mut on_idx = Vec::with_capacity(on.len());
    for (l, r) in on {
        let li = left.schema.resolve(l)?;
        let ri = right.schema.resolve(r)?;
        let lt = left.schema.field(li).dtype;
        let rt = right.schema.field(ri).dtype;
        let numeric = |t: DataType| matches!(t, DataType::Int | DataType::Float);
        if lt != rt && !(numeric(lt) && numeric(rt)) {
            return Err(StorageError::TypeMismatch {
                expected: lt,
                found: rt.to_string(),
                context: format!("join condition {l} = {r}"),
            });
        }
        on_idx.push((li, ri));
    }

    if matches!(kind, JoinKind::Semi | JoinKind::Anti) {
        return Ok((left.clone(), on_idx));
    }

    let schema = Schema::concat(&left.schema, &right.schema, right_hint)?;
    let right_offset = left.schema.len();

    let covers = |key: &[usize], join_cols: &[usize]| -> bool {
        !key.is_empty() && key.iter().all(|k| join_cols.contains(k))
    };
    let right_join_cols: Vec<usize> = on_idx.iter().map(|&(_, r)| r).collect();
    let left_join_cols: Vec<usize> = on_idx.iter().map(|&(l, _)| l).collect();

    // Key reduction: joining on the entire key of one side means each row of
    // the other side matches at most one partner (the FK-join case).
    let key = if matches!(kind, JoinKind::Inner | JoinKind::Left)
        && covers(&right.key, &right_join_cols)
    {
        left.key.clone()
    } else if matches!(kind, JoinKind::Inner | JoinKind::Right)
        && covers(&left.key, &left_join_cols)
    {
        right.key.iter().map(|&k| k + right_offset).collect()
    } else {
        let mut k = left.key.clone();
        k.extend(right.key.iter().map(|&i| i + right_offset));
        k
    };

    Ok((Derived { schema, key }, on_idx))
}

/// γ: schema = group columns followed by aggregate outputs; key = the group
/// columns.
pub fn derive_aggregate(input: &Derived, group_by: &[String], aggs: &[AggSpec]) -> Result<Derived> {
    let mut fields = Vec::with_capacity(group_by.len() + aggs.len());
    for g in group_by {
        let i = input.schema.resolve(g)?;
        fields.push(input.schema.field(i).clone());
    }
    for spec in aggs {
        spec.arg.bind(&input.schema)?;
        let arg_type = spec.arg.infer_type(&input.schema)?;
        fields.push(Field::new(spec.alias.clone(), spec.func.output_type(arg_type)));
    }
    let schema = Schema::new(fields)?;
    Ok(Derived { schema, key: (0..group_by.len()).collect() })
}

/// Which set operation a [`derive_setop`] call is for. Also used by the
/// optimizer rules as the shared tag when destructuring and rebuilding
/// set-operation nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOpKind {
    /// ∪
    Union,
    /// ∩
    Intersect,
    /// −
    Difference,
}

impl SetOpKind {
    /// Rebuild the matching [`Plan`] node from two inputs.
    pub fn rebuild(self, left: Plan, right: Plan) -> Plan {
        let (left, right) = (Box::new(left), Box::new(right));
        match self {
            SetOpKind::Union => Plan::Union { left, right },
            SetOpKind::Intersect => Plan::Intersect { left, right },
            SetOpKind::Difference => Plan::Difference { left, right },
        }
    }
}

/// ∪ / ∩ / −: inputs must agree positionally on types; output takes the left
/// schema; keys follow Definition 2.
pub fn derive_setop(left: &Derived, right: &Derived, op: SetOpKind) -> Result<Derived> {
    if left.schema.len() != right.schema.len() {
        return Err(StorageError::Invalid(format!(
            "set operation arity mismatch: {} vs {}",
            left.schema.len(),
            right.schema.len()
        )));
    }
    for i in 0..left.schema.len() {
        let lt = left.schema.field(i).dtype;
        let rt = right.schema.field(i).dtype;
        if lt != rt {
            return Err(StorageError::TypeMismatch {
                expected: lt,
                found: rt.to_string(),
                context: format!("set operation column {i}"),
            });
        }
    }
    let key = match op {
        SetOpKind::Union => {
            let mut k: Vec<usize> = left.key.iter().chain(right.key.iter()).copied().collect();
            k.sort_unstable();
            k.dedup();
            k
        }
        SetOpKind::Intersect => {
            let k: Vec<usize> =
                left.key.iter().copied().filter(|i| right.key.contains(i)).collect();
            if k.is_empty() {
                left.key.clone()
            } else {
                k
            }
        }
        SetOpKind::Difference => left.key.clone(),
    };
    Ok(Derived { schema: left.schema.clone(), key })
}

/// η: key columns must resolve; schema and key pass through.
pub fn derive_hash(input: &Derived, key: &[String], ratio: f64) -> Result<Derived> {
    if !(0.0..=1.0).contains(&ratio) {
        return Err(StorageError::Invalid(format!("sampling ratio {ratio} outside [0, 1]")));
    }
    input.schema.resolve_all(key)?;
    Ok(input.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::{col, lit};
    use std::collections::HashMap;

    struct Leaves(HashMap<String, Derived>);

    impl LeafProvider for Leaves {
        fn leaf(&self, name: &str) -> Option<Derived> {
            self.0.get(name).cloned()
        }
    }

    fn leaves() -> Leaves {
        let mut m = HashMap::new();
        m.insert(
            "log".to_string(),
            Derived {
                schema: Schema::from_pairs(&[
                    ("sessionId", DataType::Int),
                    ("videoId", DataType::Int),
                ])
                .unwrap(),
                key: vec![0],
            },
        );
        m.insert(
            "video".to_string(),
            Derived {
                schema: Schema::from_pairs(&[
                    ("videoId", DataType::Int),
                    ("ownerId", DataType::Int),
                    ("duration", DataType::Float),
                ])
                .unwrap(),
                key: vec![0],
            },
        );
        Leaves(m)
    }

    /// The running-example view: join Log ⋈ Video on videoId, group by
    /// videoId — Figure 2's key-generation walkthrough.
    #[test]
    fn figure2_key_generation() {
        let join =
            Plan::scan("log").join(Plan::scan("video"), JoinKind::Inner, &[("videoId", "videoId")]);
        let d = derive(&join, &leaves()).unwrap();
        // FK reduction: video is joined on its full key, so the join is
        // keyed by log's key (sessionId) alone. This refines the paper's
        // (videoId, sessionId) composite, which remains a superkey.
        assert_eq!(d.key_names(), vec!["sessionId"]);

        let view = join.aggregate(&["videoId"], vec![AggSpec::count_all("visitCount")]);
        let d = derive(&view, &leaves()).unwrap();
        assert_eq!(d.key_names(), vec!["videoId"]);
        assert_eq!(d.schema.names(), vec!["videoId", "visitCount"]);
    }

    #[test]
    fn join_without_reduction_concatenates_keys() {
        let plan = Plan::scan("log").join(
            Plan::scan("video"),
            JoinKind::Inner,
            &[("videoId", "ownerId")], // ownerId is not video's key
        );
        let d = derive(&plan, &leaves()).unwrap();
        assert_eq!(d.key_names(), vec!["sessionId", "video.videoId"]);
    }

    #[test]
    fn full_join_keeps_concatenated_key() {
        let plan =
            Plan::scan("log").join(Plan::scan("video"), JoinKind::Full, &[("videoId", "videoId")]);
        let d = derive(&plan, &leaves()).unwrap();
        assert_eq!(d.key_names(), vec!["sessionId", "video.videoId"]);
    }

    #[test]
    fn projection_must_keep_key() {
        let ok = Plan::scan("video")
            .project(vec![("videoId", col("videoId")), ("mins", col("duration").mul(lit(60.0)))]);
        let d = derive(&ok, &leaves()).unwrap();
        assert_eq!(d.key_names(), vec!["videoId"]);

        let bad = Plan::scan("video").project(vec![("mins", col("duration"))]);
        assert!(derive(&bad, &leaves()).is_err());
    }

    #[test]
    fn select_and_hash_pass_through() {
        let plan = Plan::scan("video").select(col("duration").gt(lit(1.5))).hash(
            &["videoId"],
            0.1,
            Default::default(),
        );
        let d = derive(&plan, &leaves()).unwrap();
        assert_eq!(d.key_names(), vec!["videoId"]);
    }

    #[test]
    fn hash_ratio_validated() {
        let plan = Plan::scan("video").hash(&["videoId"], 1.5, Default::default());
        assert!(derive(&plan, &leaves()).is_err());
    }

    #[test]
    fn semi_and_anti_join_keep_left_type() {
        let plan =
            Plan::scan("video").join(Plan::scan("log"), JoinKind::Anti, &[("videoId", "videoId")]);
        let d = derive(&plan, &leaves()).unwrap();
        assert_eq!(d.schema.names(), vec!["videoId", "ownerId", "duration"]);
        assert_eq!(d.key_names(), vec!["videoId"]);
    }

    #[test]
    fn setop_type_checking() {
        let ok = Plan::scan("log").union(Plan::scan("log"));
        assert!(derive(&ok, &leaves()).is_ok());
        let bad = Plan::scan("log").union(Plan::scan("video"));
        assert!(derive(&bad, &leaves()).is_err());
    }

    #[test]
    fn global_aggregate_has_empty_key() {
        let plan = Plan::scan("log").aggregate(&[], vec![AggSpec::count_all("n")]);
        let d = derive(&plan, &leaves()).unwrap();
        assert!(d.key.is_empty());
        assert_eq!(d.schema.names(), vec!["n"]);
    }

    #[test]
    fn derive_tree_agrees_with_derive_at_every_node() {
        let plan = Plan::scan("log")
            .join(Plan::scan("video"), JoinKind::Inner, &[("videoId", "videoId")])
            .aggregate(&["videoId"], vec![AggSpec::count_all("n")])
            .select(col("n").gt(lit(1i64)))
            .hash(&["videoId"], 0.5, Default::default());
        let leaves = leaves();
        fn check(plan: &Plan, tree: &DerivedTree, leaves: &Leaves) {
            assert_eq!(tree.derived, derive(plan, leaves).unwrap());
            let children: Vec<&Plan> = match plan {
                Plan::Scan { .. } => vec![],
                Plan::Select { input, .. }
                | Plan::Project { input, .. }
                | Plan::Aggregate { input, .. }
                | Plan::Hash { input, .. } => vec![input],
                Plan::Join { left, right, .. }
                | Plan::Union { left, right }
                | Plan::Intersect { left, right }
                | Plan::Difference { left, right } => vec![left, right],
            };
            assert_eq!(children.len(), tree.children.len());
            for (c, t) in children.iter().zip(&tree.children) {
                check(c, t, leaves);
            }
        }
        let tree = derive_tree(&plan, &leaves).unwrap();
        check(&plan, &tree, &leaves);
    }

    #[test]
    fn join_type_mismatch_rejected() {
        let mut m = leaves();
        m.0.insert(
            "tags".to_string(),
            Derived {
                schema: Schema::from_pairs(&[("tag", DataType::Str)]).unwrap(),
                key: vec![0],
            },
        );
        let plan =
            Plan::scan("log").join(Plan::scan("tags"), JoinKind::Inner, &[("videoId", "tag")]);
        assert!(derive(&plan, &m).is_err());
    }
}
