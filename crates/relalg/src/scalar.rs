//! Scalar expressions: the language of selection predicates and generalized
//! projections (`Π_{a1+a2,...}` in the paper's notation).
//!
//! Semantics follow SQL closely enough for the paper's workloads:
//! * arithmetic coerces `Int` to `Float` when mixed; division is always
//!   float; NULL propagates through arithmetic and comparisons;
//! * boolean connectives use Kleene three-valued logic;
//! * `coalesce` implements the "treat NULL as 0" merge idiom of the
//!   change-table maintenance strategy (Example 1, step 3).
//!
//! Expressions are *bound* against a schema once ([`Expr::bind`]) producing
//! a [`BoundExpr`] with positional column references that evaluates rows
//! without repeated name resolution.

use std::fmt;

use svc_storage::{DataType, Result, Schema, StorageError, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (always float; division by zero yields NULL).
    Div,
    /// Modulo on integers.
    Mod,
    /// Equality (NULL-propagating).
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical AND (Kleene).
    And,
    /// Logical OR (Kleene).
    Or,
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// First non-NULL argument.
    Coalesce,
    /// Minimum of the arguments (NULLs ignored).
    Least,
    /// Maximum of the arguments (NULLs ignored).
    Greatest,
    /// Absolute value.
    Abs,
    /// String concatenation of all arguments (used by the V22-style
    /// "key transformation" views that block hash push-down).
    Concat,
}

/// A scalar expression over a row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference by (possibly qualified) name.
    Col(String),
    /// A literal value.
    Lit(Value),
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation (Kleene: NOT NULL = NULL).
    Not(Box<Expr>),
    /// `expr IS NULL`.
    IsNull(Box<Expr>),
    /// A function application.
    Call {
        /// The function.
        func: Func,
        /// Arguments.
        args: Vec<Expr>,
    },
}

/// Shorthand for [`Expr::Col`].
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Col(name.into())
}

/// Shorthand for [`Expr::Lit`].
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Lit(v.into())
}

macro_rules! binop_method {
    ($name:ident, $op:ident) => {
        /// Combine two expressions with the corresponding operator.
        ///
        /// Deliberately named like the `std::ops` method: this is the
        /// expression-builder DSL (`col("a").add(lit(1))`), not arithmetic
        /// on `Expr` values.
        #[allow(clippy::should_implement_trait)]
        pub fn $name(self, rhs: Expr) -> Expr {
            Expr::Binary { op: BinOp::$op, left: Box::new(self), right: Box::new(rhs) }
        }
    };
}

impl Expr {
    binop_method!(add, Add);
    binop_method!(sub, Sub);
    binop_method!(mul, Mul);
    binop_method!(div, Div);
    binop_method!(rem, Mod);
    binop_method!(eq, Eq);
    binop_method!(ne, Ne);
    binop_method!(lt, Lt);
    binop_method!(le, Le);
    binop_method!(gt, Gt);
    binop_method!(ge, Ge);
    binop_method!(and, And);
    binop_method!(or, Or);

    /// Logical negation (builder DSL; see the binary-operator methods).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `IS NULL` test.
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }

    /// `coalesce(self, other)`.
    pub fn coalesce(self, other: Expr) -> Expr {
        Expr::Call { func: Func::Coalesce, args: vec![self, other] }
    }

    /// If this expression is a bare column reference, its name.
    pub fn as_col(&self) -> Option<&str> {
        match self {
            Expr::Col(name) => Some(name),
            _ => None,
        }
    }

    /// Names of all columns referenced by this expression.
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Col(name) => out.push(name),
            Expr::Lit(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Not(e) | Expr::IsNull(e) => e.collect_columns(out),
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
        }
    }

    /// Resolve column names to positions in `schema`.
    pub fn bind(&self, schema: &Schema) -> Result<BoundExpr> {
        Ok(match self {
            Expr::Col(name) => BoundExpr::Col(schema.resolve(name)?),
            Expr::Lit(v) => BoundExpr::Lit(v.clone()),
            Expr::Binary { op, left, right } => BoundExpr::Binary {
                op: *op,
                left: Box::new(left.bind(schema)?),
                right: Box::new(right.bind(schema)?),
            },
            Expr::Not(e) => BoundExpr::Not(Box::new(e.bind(schema)?)),
            Expr::IsNull(e) => BoundExpr::IsNull(Box::new(e.bind(schema)?)),
            Expr::Call { func, args } => BoundExpr::Call {
                func: *func,
                args: args.iter().map(|a| a.bind(schema)).collect::<Result<_>>()?,
            },
        })
    }

    /// Infer the output type of this expression against `schema`. NULL
    /// literals type as `Float` by convention (they only occur in merge
    /// projections over numeric columns).
    pub fn infer_type(&self, schema: &Schema) -> Result<DataType> {
        Ok(match self {
            Expr::Col(name) => schema.field(schema.resolve(name)?).dtype,
            Expr::Lit(v) => v.dtype().unwrap_or(DataType::Float),
            Expr::Binary { op, left, right } => match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul => {
                    let l = left.infer_type(schema)?;
                    let r = right.infer_type(schema)?;
                    if l == DataType::Float || r == DataType::Float {
                        DataType::Float
                    } else {
                        DataType::Int
                    }
                }
                BinOp::Div => DataType::Float,
                BinOp::Mod => DataType::Int,
                _ => DataType::Bool,
            },
            Expr::Not(_) | Expr::IsNull(_) => DataType::Bool,
            Expr::Call { func, args } => match func {
                Func::Concat => DataType::Str,
                Func::Abs | Func::Coalesce | Func::Least | Func::Greatest => {
                    args.first().map(|a| a.infer_type(schema)).transpose()?.ok_or_else(|| {
                        StorageError::Invalid(format!("{func:?} requires arguments"))
                    })?
                }
            },
        })
    }
}

/// An expression with column references resolved to row positions.
#[derive(Debug, Clone)]
pub enum BoundExpr {
    /// Positional column reference.
    Col(usize),
    /// Literal.
    Lit(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<BoundExpr>,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// Negation.
    Not(Box<BoundExpr>),
    /// NULL test.
    IsNull(Box<BoundExpr>),
    /// Function application.
    Call {
        /// The function.
        func: Func,
        /// Arguments.
        args: Vec<BoundExpr>,
    },
}

fn numeric_pair(l: &Value, r: &Value) -> Option<(f64, f64, bool)> {
    let both_int = matches!((l, r), (Value::Int(_), Value::Int(_)));
    Some((l.as_f64()?, r.as_f64()?, both_int))
}

fn eval_cmp(op: BinOp, l: &Value, r: &Value) -> Value {
    if l.is_null() || r.is_null() {
        return Value::Null;
    }
    // Numeric comparison coerces Int/Float; everything else compares within
    // its own type via the total order.
    let ord = match numeric_pair(l, r) {
        Some((a, b, _)) => a.total_cmp(&b),
        None => l.cmp(r),
    };
    let res = match op {
        BinOp::Eq => ord.is_eq(),
        BinOp::Ne => ord.is_ne(),
        BinOp::Lt => ord.is_lt(),
        BinOp::Le => ord.is_le(),
        BinOp::Gt => ord.is_gt(),
        BinOp::Ge => ord.is_ge(),
        _ => unreachable!("eval_cmp called with non-comparison operator"),
    };
    Value::Bool(res)
}

fn eval_arith(op: BinOp, l: &Value, r: &Value) -> Value {
    if l.is_null() || r.is_null() {
        return Value::Null;
    }
    match op {
        BinOp::Div => match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) if b != 0.0 => Value::Float(a / b),
            _ => Value::Null,
        },
        BinOp::Mod => match (l.as_i64(), r.as_i64()) {
            (Some(a), Some(b)) if b != 0 => Value::Int(a.rem_euclid(b)),
            _ => Value::Null,
        },
        _ => match numeric_pair(l, r) {
            Some((a, b, both_int)) => {
                let x = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    _ => unreachable!(),
                };
                if both_int {
                    Value::Int(x as i64)
                } else {
                    Value::Float(x)
                }
            }
            None => Value::Null,
        },
    }
}

fn eval_logic(op: BinOp, l: &Value, r: &Value) -> Value {
    // Kleene three-valued logic.
    let (a, b) = (l.as_bool(), r.as_bool());
    match op {
        BinOp::And => match (a, b) {
            (Some(false), _) | (_, Some(false)) => Value::Bool(false),
            (Some(true), Some(true)) => Value::Bool(true),
            _ => Value::Null,
        },
        BinOp::Or => match (a, b) {
            (Some(true), _) | (_, Some(true)) => Value::Bool(true),
            (Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        },
        _ => unreachable!("eval_logic called with non-logical operator"),
    }
}

impl BoundExpr {
    /// Evaluate against a row (any `Value` slice — owned rows and rows
    /// borrowed from a base table both work, which is what lets the
    /// streaming executor filter without cloning first).
    pub fn eval(&self, row: &[Value]) -> Value {
        match self {
            BoundExpr::Col(i) => row[*i].clone(),
            BoundExpr::Lit(v) => v.clone(),
            BoundExpr::Binary { op, left, right } => {
                let l = left.eval(row);
                let r = right.eval(row);
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                        eval_arith(*op, &l, &r)
                    }
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        eval_cmp(*op, &l, &r)
                    }
                    BinOp::And | BinOp::Or => eval_logic(*op, &l, &r),
                }
            }
            BoundExpr::Not(e) => match e.eval(row).as_bool() {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            },
            BoundExpr::IsNull(e) => Value::Bool(e.eval(row).is_null()),
            BoundExpr::Call { func, args } => {
                let vals: Vec<Value> = args.iter().map(|a| a.eval(row)).collect();
                match func {
                    Func::Coalesce => {
                        vals.into_iter().find(|v| !v.is_null()).unwrap_or(Value::Null)
                    }
                    Func::Least => {
                        vals.into_iter().filter(|v| !v.is_null()).min().unwrap_or(Value::Null)
                    }
                    Func::Greatest => {
                        vals.into_iter().filter(|v| !v.is_null()).max().unwrap_or(Value::Null)
                    }
                    Func::Abs => match vals.first() {
                        Some(Value::Int(i)) => Value::Int(i.abs()),
                        Some(Value::Float(x)) => Value::Float(x.abs()),
                        _ => Value::Null,
                    },
                    Func::Concat => {
                        if vals.iter().any(Value::is_null) {
                            Value::Null
                        } else {
                            let mut s = String::new();
                            for v in &vals {
                                s.push_str(&v.to_string());
                            }
                            Value::from(s)
                        }
                    }
                }
            }
        }
    }

    /// Evaluate as a predicate: true iff the result is exactly `Bool(true)`
    /// (SQL WHERE semantics: NULL filters the row out).
    pub fn matches(&self, row: &[Value]) -> bool {
        self.eval(row) == Value::Bool(true)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(n) => write!(f, "{n}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Binary { op, left, right } => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Mod => "%",
                    BinOp::Eq => "=",
                    BinOp::Ne => "<>",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::And => "AND",
                    BinOp::Or => "OR",
                };
                write!(f, "({left} {sym} {right})")
            }
            Expr::Not(e) => write!(f, "NOT {e}"),
            Expr::IsNull(e) => write!(f, "{e} IS NULL"),
            Expr::Call { func, args } => {
                let name = match func {
                    Func::Coalesce => "coalesce",
                    Func::Least => "least",
                    Func::Greatest => "greatest",
                    Func::Abs => "abs",
                    Func::Concat => "concat",
                };
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svc_storage::Row;

    fn schema() -> Schema {
        Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Float), ("s", DataType::Str)])
            .unwrap()
    }

    // By-value keeps ~30 call sites free of `&`; nothing is reused after.
    #[allow(clippy::needless_pass_by_value)]
    fn eval(e: Expr, row: Row) -> Value {
        e.bind(&schema()).unwrap().eval(&row)
    }

    fn row(a: i64, b: f64, s: &str) -> Row {
        vec![Value::Int(a), Value::Float(b), Value::str(s)]
    }

    #[test]
    fn arithmetic_and_coercion() {
        assert_eq!(eval(col("a").add(lit(1i64)), row(2, 0.0, "")), Value::Int(3));
        assert_eq!(eval(col("a").add(col("b")), row(2, 0.5, "")), Value::Float(2.5));
        assert_eq!(eval(col("a").div(lit(4i64)), row(2, 0.0, "")), Value::Float(0.5));
        assert_eq!(eval(col("a").div(lit(0i64)), row(2, 0.0, "")), Value::Null);
        assert_eq!(eval(col("a").rem(lit(3i64)), row(7, 0.0, "")), Value::Int(1));
    }

    #[test]
    fn comparisons_cross_numeric() {
        assert_eq!(eval(col("a").eq(lit(2.0)), row(2, 0.0, "")), Value::Bool(true));
        assert_eq!(eval(col("a").lt(col("b")), row(1, 1.5, "")), Value::Bool(true));
        assert_eq!(eval(col("s").ge(lit("m")), row(0, 0.0, "zebra")), Value::Bool(true));
    }

    #[test]
    fn null_propagation_and_kleene_logic() {
        let null_row = vec![Value::Null, Value::Float(1.0), Value::str("x")];
        assert_eq!(eval(col("a").add(lit(1i64)), null_row.clone()), Value::Null);
        assert_eq!(eval(col("a").eq(lit(1i64)), null_row.clone()), Value::Null);
        // NULL AND false = false; NULL OR true = true.
        assert_eq!(
            eval(col("a").eq(lit(1i64)).and(lit(false)), null_row.clone()),
            Value::Bool(false)
        );
        assert_eq!(eval(col("a").eq(lit(1i64)).or(lit(true)), null_row.clone()), Value::Bool(true));
        assert_eq!(eval(col("a").is_null(), null_row), Value::Bool(true));
    }

    #[test]
    fn predicate_matches_filters_null() {
        let pred = col("a").gt(lit(0i64)).bind(&schema()).unwrap();
        assert!(pred.matches(&row(1, 0.0, "")));
        assert!(!pred.matches(&row(-1, 0.0, "")));
        assert!(!pred.matches(&[Value::Null, Value::Float(0.0), Value::str("")]));
    }

    #[test]
    fn coalesce_and_extrema() {
        assert_eq!(
            eval(col("a").coalesce(lit(0i64)), vec![Value::Null, Value::Null, Value::Null]),
            Value::Int(0)
        );
        let e = Expr::Call { func: Func::Greatest, args: vec![col("a"), lit(10i64)] };
        assert_eq!(eval(e, row(3, 0.0, "")), Value::Int(10));
    }

    #[test]
    fn concat_builds_strings() {
        let e = Expr::Call { func: Func::Concat, args: vec![col("s"), lit("-"), col("a")] };
        assert_eq!(eval(e, row(7, 0.0, "k")), Value::str("k-7"));
    }

    #[test]
    fn type_inference() {
        let s = schema();
        assert_eq!(col("a").add(lit(1i64)).infer_type(&s).unwrap(), DataType::Int);
        assert_eq!(col("a").add(col("b")).infer_type(&s).unwrap(), DataType::Float);
        assert_eq!(col("a").div(lit(2i64)).infer_type(&s).unwrap(), DataType::Float);
        assert_eq!(col("a").eq(lit(1i64)).infer_type(&s).unwrap(), DataType::Bool);
        assert_eq!(col("s").infer_type(&s).unwrap(), DataType::Str);
    }

    #[test]
    fn referenced_columns_collects_all() {
        let e = col("a").add(col("b")).gt(col("a"));
        let mut cols = e.referenced_columns();
        cols.sort();
        cols.dedup();
        assert_eq!(cols, vec!["a", "b"]);
    }

    #[test]
    fn unknown_column_fails_to_bind() {
        assert!(col("zzz").bind(&schema()).is_err());
    }
}
