//! Reusable `Vec<Row>` batch buffers for the streaming executor.
//!
//! Every pipeline breaker materializes a plain `Vec<Row>`; allocating a
//! fresh one per breaker per [`super::PhysicalPlan::run`] call adds up on
//! the mini-batch maintenance path, where one compiled plan runs hundreds
//! of times. This pool keeps a small per-thread stack of emptied batch
//! buffers: breakers [`take`] a buffer (reusing its capacity) and
//! [`recycle`] consumed inputs, so steady-state runs allocate only the one
//! buffer the output [`svc_storage::Table`] keeps.
//!
//! The pool is thread-local on purpose: morsel workers and the driver each
//! recycle into their own stack with no synchronization, and the
//! [`fresh_batch_count`] counter reads cleanly from tests (execution on the
//! counting thread is synchronous, so a reading cannot be polluted by
//! concurrently running tests — the same design as
//! [`svc_storage::Table::clone_count`]).

use std::cell::{Cell, RefCell};

use svc_storage::Row;
use svc_telemetry::LocalCounter;

/// Buffers retained per thread. Beyond this the extra buffers are dropped:
/// a deep plan briefly needs many live batches, but steady state needs few,
/// and each retained buffer pins its full capacity.
const POOL_CAP: usize = 8;

thread_local! {
    static POOL: RefCell<Vec<Vec<Row>>> = const { RefCell::new(Vec::new()) };
    static FRESH_CELL: Cell<u64> = const { Cell::new(0) };
}

/// Fresh-allocation counter behind [`fresh_batch_count`], on the shared
/// telemetry counter mechanism.
static FRESH: LocalCounter = LocalCounter::new(&FRESH_CELL);

/// Take a batch buffer with at least `cap` capacity: recycled when the
/// thread's pool has one, freshly allocated (and counted) otherwise.
pub(super) fn take(cap: usize) -> Vec<Row> {
    POOL.with(|p| match p.borrow_mut().pop() {
        Some(mut v) => {
            debug_assert!(v.is_empty());
            v.reserve(cap);
            v
        }
        None => {
            FRESH.bump();
            Vec::with_capacity(cap)
        }
    })
}

/// Return a consumed batch buffer to the thread's pool (cleared, capacity
/// kept). Buffers beyond [`POOL_CAP`] are simply dropped.
pub(super) fn recycle(mut v: Vec<Row>) {
    v.clear();
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < POOL_CAP {
            pool.push(v);
        }
    });
}

/// Number of *fresh* batch-buffer allocations performed on this thread
/// since it started — the observability hook behind the buffer-reuse
/// guarantee: after a warm-up run, re-running a compiled plan allocates at
/// most one fresh batch (the root buffer the output table keeps; every
/// intermediate batch is served from the pool). Take a reading, run a
/// plan, compare. Thin shim over the shared telemetry counter mechanism
/// ([`svc_telemetry::LocalCounter`]).
pub fn fresh_batch_count() -> usize {
    FRESH.get() as usize
}
