//! Columnar chunks and vectorized kernels for the streaming executor.
//!
//! Conversion happens at exactly two boundaries: a leaf turns the bound
//! [`svc_storage::Table`] into typed columns once per mutation epoch
//! (`Table::columns`, shared by every chunk and every morsel), and the
//! survivors of a fused pipeline are gathered back into rows only where a
//! pipeline breaker (join, γ, set op, the keyed root) needs them. In
//! between, operators touch per-column typed slices through a selection
//! vector — no `Value` boxing, no row allocation for non-survivors.

pub mod chunk;
pub mod kernels;
pub mod selection;

pub use chunk::{ChunkCols, ColumnChunk};
pub(crate) use kernels::hash_key_at;
pub use kernels::{apply_hash, compile_map, compile_pred, ColPred, MapPlan, VecOp};
pub use selection::SelVec;

use svc_storage::Row;

/// True when driving this compiled op chain columnar beats the row path:
/// the leading op must be vectorizable ([`VecOp::profitable`]). Once a
/// real kernel has refined the selection, later row-fallback ops gather
/// survivors only, so only the head of the chain decides.
pub fn profitable(ops: &[VecOp]) -> bool {
    ops.first().is_some_and(VecOp::profitable)
}

/// Run a vectorized operator chain over a chunk, in order. `scratch` is
/// the shared row buffer for kernels that fall back to row evaluation.
/// Returns the number of predicate×slice decisions settled by a zone map
/// without scanning (the `zone_skips` metric; free to ignore).
/// Under the `verify` feature, the chunk's integrity (column lengths,
/// validity masks, selection-vector ordering — see
/// [`crate::verify::columnar`]) is checked on entry and after every
/// kernel; the hooks compile to nothing otherwise.
pub fn run_ops(chunk: &mut ColumnChunk<'_>, ops: &[VecOp], scratch: &mut Row) -> u32 {
    crate::verify::columnar::debug_check_chunk(chunk);
    let mut zone_skips = 0;
    for op in ops {
        if chunk.is_empty() {
            return zone_skips;
        }
        match op {
            VecOp::Filter(pred) => {
                let ColumnChunk { cols, sel } = chunk;
                let cs = match cols {
                    ChunkCols::Shared(c) => *c,
                    ChunkCols::Owned(c) => &*c,
                };
                zone_skips += pred.apply(cs, sel, scratch);
            }
            VecOp::Map(plan) => {
                let mapped = plan.apply(chunk.columns(), &chunk.sel, scratch);
                chunk.replace(mapped);
            }
            VecOp::Hash { key_idx, ratio, spec } => {
                let ColumnChunk { cols, sel } = chunk;
                let cs = match cols {
                    ChunkCols::Shared(c) => *c,
                    ChunkCols::Owned(c) => &*c,
                };
                apply_hash(cs, sel, key_idx, *ratio, *spec);
            }
        }
        crate::verify::columnar::debug_check_chunk(chunk);
    }
    zone_skips
}
