//! Vectorized operator kernels over column slices.
//!
//! Each fused-pipeline operator has a columnar counterpart ([`VecOp`]):
//! filters compile to [`ColPred`] kernels that refine a [`SelVec`] with
//! typed constant-vs-column and column-vs-column loops, projections become
//! per-output-column loops ([`MapPlan`]), and η hashes key columns through
//! [`svc_storage::HashState`] straight from typed storage. Expression
//! shapes with no fast path keep exact row semantics via a scratch-row
//! fallback to [`BoundExpr`] evaluation.
//!
//! **Equivalence is the contract.** Every kernel reproduces the row-at-a-
//! time semantics bit for bit: comparisons coerce numerics through `f64`
//! `total_cmp` exactly like `eval_cmp` (cross-type pairs order by type
//! rank), arithmetic replicates `eval_arith` including the
//! compute-in-`f64`-then-narrow integer path, NULL propagates identically,
//! and the η byte stream matches [`Value::canonical_bytes`]. The property
//! harnesses (`tests/exec_prop.rs`) hold the two executors to row-for-row
//! equality.
//!
//! Numeric columns additionally carry zone maps (`total_cmp` min/max —
//! the same typed bounds the statistics catalog tracks), letting a
//! constant-vs-column kernel skip scanning a slice that can never, or must
//! always, satisfy its comparison.

use std::cmp::Ordering;

use svc_storage::{
    normalize01, Column, ColumnData, ColumnSet, DataType, HashSpec, HashState, Row, Value,
};

use crate::scalar::{BinOp, BoundExpr};

use super::selection::SelVec;

/// One vectorized operator; mirrors `FusedOp` position by position.
#[derive(Debug, Clone)]
pub enum VecOp {
    /// σ: refine the selection vector.
    Filter(ColPred),
    /// Π: rebuild the chunk's columns from output expressions.
    Map(MapPlan),
    /// η: keep rows whose key columns hash under the ratio.
    Hash {
        /// Key column positions in the incoming chunk shape.
        key_idx: Vec<usize>,
        /// Sampling ratio `m`.
        ratio: f64,
        /// Seeded hash function.
        spec: HashSpec,
    },
}

/// A compiled columnar predicate.
#[derive(Debug, Clone)]
pub enum ColPred {
    /// `col <op> literal` (or the flipped literal-vs-column form).
    CmpColLit {
        /// Column position.
        col: usize,
        /// Comparison operator (literal on the right).
        op: BinOp,
        /// The literal.
        lit: Value,
    },
    /// `col <op> col`.
    CmpColCol {
        /// Left column position.
        left: usize,
        /// Comparison operator.
        op: BinOp,
        /// Right column position.
        right: usize,
    },
    /// `col IS NULL` / `NOT (col IS NULL)`.
    IsNull {
        /// Column position.
        col: usize,
        /// True for the `NOT` form (keep non-null rows).
        negated: bool,
    },
    /// Conjunction: children refine the selection in sequence.
    And(Vec<ColPred>),
    /// Disjunction: evaluated per row (a row survives if either side
    /// matches — equivalent to Kleene OR under `matches` semantics).
    Or(Box<ColPred>, Box<ColPred>),
    /// No fast path: gather the row and run the bound expression.
    Row(BoundExpr),
}

/// True for the six comparison operators.
fn is_cmp(op: BinOp) -> bool {
    matches!(op, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
}

/// Mirror a comparison across its operands (`lit < col` ⇔ `col > lit`).
fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Does `op` hold for an ordering?
#[inline]
fn cmp_keeps(op: BinOp, ord: Ordering) -> bool {
    match op {
        BinOp::Eq => ord.is_eq(),
        BinOp::Ne => ord.is_ne(),
        BinOp::Lt => ord.is_lt(),
        BinOp::Le => ord.is_le(),
        BinOp::Gt => ord.is_gt(),
        BinOp::Ge => ord.is_ge(),
        _ => unreachable!("cmp_keeps on non-comparison operator"),
    }
}

/// `eval_cmp` on two non-scratch values, as a predicate: false on NULL,
/// `f64` `total_cmp` for numeric pairs, type-rank total order otherwise.
#[inline]
fn value_cmp_matches(op: BinOp, l: &Value, r: &Value) -> bool {
    if l.is_null() || r.is_null() {
        return false;
    }
    let ord = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => a.total_cmp(&b),
        _ => l.cmp(r),
    };
    cmp_keeps(op, ord)
}

/// Compile a bound predicate into a columnar kernel. Always succeeds:
/// shapes with no fast path become [`ColPred::Row`], which keeps exact
/// row semantics through scratch-row evaluation.
pub fn compile_pred(e: &BoundExpr) -> ColPred {
    match e {
        BoundExpr::Binary { op, left, right } if is_cmp(*op) => match (&**left, &**right) {
            (BoundExpr::Col(c), BoundExpr::Lit(v)) => {
                ColPred::CmpColLit { col: *c, op: *op, lit: v.clone() }
            }
            (BoundExpr::Lit(v), BoundExpr::Col(c)) => {
                ColPred::CmpColLit { col: *c, op: flip(*op), lit: v.clone() }
            }
            (BoundExpr::Col(a), BoundExpr::Col(b)) => {
                ColPred::CmpColCol { left: *a, op: *op, right: *b }
            }
            _ => ColPred::Row(e.clone()),
        },
        // `matches(AND)` ⇔ both children match and `matches(OR)` ⇔ either
        // child matches, even under Kleene three-valued evaluation — NULL
        // and non-boolean results never satisfy `matches` on either side.
        BoundExpr::Binary { op: BinOp::And, left, right } => {
            let mut ps = Vec::new();
            flatten_and(left, &mut ps);
            flatten_and(right, &mut ps);
            // Conjunct refinement is set intersection — the surviving
            // selection is order-free — so typed kernels run first: any
            // row-fallback conjunct then gathers only the rows the
            // kernels already kept.
            let (mut kernels, fallbacks): (Vec<_>, Vec<_>) =
                ps.into_iter().partition(ColPred::has_kernel);
            kernels.extend(fallbacks);
            ColPred::And(kernels)
        }
        BoundExpr::Binary { op: BinOp::Or, left, right } => {
            ColPred::Or(Box::new(compile_pred(left)), Box::new(compile_pred(right)))
        }
        BoundExpr::IsNull(inner) => match &**inner {
            BoundExpr::Col(c) => ColPred::IsNull { col: *c, negated: false },
            _ => ColPred::Row(e.clone()),
        },
        // General NOT needs three-valued logic (NOT NULL = NULL) → row
        // fallback; NOT(col IS NULL) is two-valued and keeps a kernel.
        BoundExpr::Not(inner) => match &**inner {
            BoundExpr::IsNull(nested) => match &**nested {
                BoundExpr::Col(c) => ColPred::IsNull { col: *c, negated: true },
                _ => ColPred::Row(e.clone()),
            },
            _ => ColPred::Row(e.clone()),
        },
        _ => ColPred::Row(e.clone()),
    }
}

impl ColPred {
    /// True when applying this predicate reads column slices directly;
    /// false when it must gather every candidate row into the scratch
    /// buffer for interpreted evaluation ([`ColPred::Row`], or an `Or`
    /// with a row-fallback arm).
    pub fn has_kernel(&self) -> bool {
        match self {
            ColPred::CmpColLit { .. } | ColPred::CmpColCol { .. } | ColPred::IsNull { .. } => true,
            // Conjuncts are ordered kernels-first at compile time, so the
            // chain has a kernel iff its first conjunct does.
            ColPred::And(ps) => ps.first().is_some_and(ColPred::has_kernel),
            ColPred::Or(a, b) => a.has_kernel() && b.has_kernel(),
            ColPred::Row(_) => false,
        }
    }
}

impl VecOp {
    /// True when this op, as the *leading* op of a fused chain, makes the
    /// columnar drive worthwhile — it must touch column slices while the
    /// selection is still dense. A leading row-fallback filter gathers
    /// every input row the row path already has, and a leading map
    /// re-materializes every column before anything filters; both lose to
    /// the row path, so chains they lead stay row-based.
    pub fn profitable(&self) -> bool {
        match self {
            VecOp::Filter(p) => p.has_kernel(),
            VecOp::Map(_) => false,
            VecOp::Hash { .. } => true,
        }
    }
}

fn flatten_and(e: &BoundExpr, out: &mut Vec<ColPred>) {
    match e {
        BoundExpr::Binary { op: BinOp::And, left, right } => {
            flatten_and(left, out);
            flatten_and(right, out);
        }
        other => out.push(compile_pred(other)),
    }
}

/// Zone-map verdict for a constant-vs-column comparison.
enum ZoneHit {
    /// No non-null row can match: clear the selection without scanning.
    NoneMatch,
    /// Every non-null row matches: skip the scan if the column has no
    /// NULLs.
    AllMatch,
    /// The bounds straddle the literal; scan normally.
    Scan,
}

/// Decide a comparison against a numeric column purely from its zone map
/// (`total_cmp` min/max of the non-null values widened to `f64`).
fn zone_check(op: BinOp, lo: f64, hi: f64, lit: f64) -> ZoneHit {
    let lo_l = lo.total_cmp(&lit);
    let hi_l = hi.total_cmp(&lit);
    let (all, none) = match op {
        BinOp::Lt => (hi_l.is_lt(), lo_l.is_ge()),
        BinOp::Le => (hi_l.is_le(), lo_l.is_gt()),
        BinOp::Gt => (lo_l.is_gt(), hi_l.is_le()),
        BinOp::Ge => (lo_l.is_ge(), hi_l.is_lt()),
        BinOp::Eq => (lo_l.is_eq() && hi_l.is_eq(), lo_l.is_gt() || hi_l.is_lt()),
        BinOp::Ne => (lo_l.is_gt() || hi_l.is_lt(), lo_l.is_eq() && hi_l.is_eq()),
        _ => (false, false),
    };
    if none {
        ZoneHit::NoneMatch
    } else if all {
        ZoneHit::AllMatch
    } else {
        ZoneHit::Scan
    }
}

/// NULL test against a column's validity mask, inlined for the hot loops.
#[inline]
fn live(valid: Option<&[bool]>, i: usize) -> bool {
    valid.is_none_or(|m| m[i])
}

impl ColPred {
    /// Refine `sel` to the rows matching this predicate. Returns the
    /// number of predicate×slice decisions settled by a zone map without
    /// scanning (the executor's `zone_skips` metric).
    pub fn apply(&self, cols: &ColumnSet, sel: &mut SelVec, scratch: &mut Row) -> u32 {
        match self {
            ColPred::CmpColLit { col, op, lit } => {
                let c = &cols.cols[*col];
                if lit.is_null() {
                    // eval_cmp(_, NULL) is NULL for every row: nothing
                    // matches.
                    sel.clear();
                    return 0;
                }
                // Zone-map short-circuit: decide the whole slice from the
                // column's min/max when the bounds are conclusive.
                if let (Some((lo, hi)), Some(lv)) = (c.zone, lit.as_f64()) {
                    match zone_check(*op, lo, hi, lv) {
                        ZoneHit::NoneMatch => {
                            sel.clear();
                            return 1;
                        }
                        ZoneHit::AllMatch if !c.has_nulls() => return 1,
                        _ => {}
                    }
                }
                let valid = c.valid.as_deref();
                match (&c.data, lit.as_f64()) {
                    (ColumnData::Int(xs), Some(lv)) => {
                        sel.retain(|i| {
                            live(valid, i) && cmp_keeps(*op, (xs[i] as f64).total_cmp(&lv))
                        });
                    }
                    (ColumnData::Float(xs), Some(lv)) => {
                        sel.retain(|i| live(valid, i) && cmp_keeps(*op, xs[i].total_cmp(&lv)));
                    }
                    (ColumnData::Str(xs), _) if matches!(lit, Value::Str(_)) => {
                        let s = lit.as_str().expect("checked Str");
                        sel.retain(|i| live(valid, i) && cmp_keeps(*op, xs[i].as_ref().cmp(s)));
                    }
                    (ColumnData::Bool(xs), _) if matches!(lit, Value::Bool(_)) => {
                        let bv = matches!(lit, Value::Bool(true));
                        sel.retain(|i| live(valid, i) && cmp_keeps(*op, xs[i].cmp(&bv)));
                    }
                    (ColumnData::Mixed(vs), _) => {
                        sel.retain(|i| value_cmp_matches(*op, &vs[i], lit));
                    }
                    (data, _) => {
                        // Typed column vs a literal of a different,
                        // non-coercible type: every non-null cell compares
                        // by type rank, so the verdict is constant.
                        let repr = match data {
                            ColumnData::Int(_) => Value::Int(0),
                            ColumnData::Float(_) => Value::Float(0.0),
                            ColumnData::Bool(_) => Value::Bool(false),
                            ColumnData::Str(_) => Value::str(""),
                            ColumnData::Mixed(_) => unreachable!("mixed handled above"),
                        };
                        if value_cmp_matches(*op, &repr, lit) {
                            if c.has_nulls() {
                                sel.retain(|i| live(valid, i));
                            }
                        } else {
                            sel.clear();
                        }
                    }
                }
                0
            }
            ColPred::CmpColCol { left, op, right } => {
                let (lc, rc) = (&cols.cols[*left], &cols.cols[*right]);
                let (lv, rv) = (lc.valid.as_deref(), rc.valid.as_deref());
                match (&lc.data, &rc.data) {
                    (ColumnData::Int(a), ColumnData::Int(b)) => sel.retain(|i| {
                        live(lv, i)
                            && live(rv, i)
                            && cmp_keeps(*op, (a[i] as f64).total_cmp(&(b[i] as f64)))
                    }),
                    (ColumnData::Int(a), ColumnData::Float(b)) => sel.retain(|i| {
                        live(lv, i) && live(rv, i) && cmp_keeps(*op, (a[i] as f64).total_cmp(&b[i]))
                    }),
                    (ColumnData::Float(a), ColumnData::Int(b)) => sel.retain(|i| {
                        live(lv, i) && live(rv, i) && cmp_keeps(*op, a[i].total_cmp(&(b[i] as f64)))
                    }),
                    (ColumnData::Float(a), ColumnData::Float(b)) => sel.retain(|i| {
                        live(lv, i) && live(rv, i) && cmp_keeps(*op, a[i].total_cmp(&b[i]))
                    }),
                    (ColumnData::Str(a), ColumnData::Str(b)) => sel
                        .retain(|i| live(lv, i) && live(rv, i) && cmp_keeps(*op, a[i].cmp(&b[i]))),
                    (ColumnData::Bool(a), ColumnData::Bool(b)) => sel
                        .retain(|i| live(lv, i) && live(rv, i) && cmp_keeps(*op, a[i].cmp(&b[i]))),
                    _ => sel.retain(|i| value_cmp_matches(*op, &lc.value(i), &rc.value(i))),
                }
                0
            }
            ColPred::IsNull { col, negated } => {
                let c = &cols.cols[*col];
                if !c.has_nulls() {
                    if !*negated {
                        sel.clear();
                    }
                    return 0;
                }
                let negated = *negated;
                sel.retain(|i| c.is_null(i) != negated);
                0
            }
            ColPred::And(ps) => {
                let mut skips = 0;
                for p in ps {
                    if sel.is_empty() {
                        break;
                    }
                    skips += p.apply(cols, sel, scratch);
                }
                skips
            }
            ColPred::Or(p, q) => {
                sel.retain(|i| p.matches_at(cols, i, scratch) || q.matches_at(cols, i, scratch));
                0
            }
            ColPred::Row(e) => {
                sel.retain(|i| {
                    cols.gather_row(i, scratch);
                    e.matches(scratch)
                });
                0
            }
        }
    }

    /// Per-row evaluation, used inside `Or` where children cannot refine
    /// the selection independently.
    fn matches_at(&self, cols: &ColumnSet, i: usize, scratch: &mut Row) -> bool {
        match self {
            ColPred::CmpColLit { col, op, lit } => {
                value_cmp_matches(*op, &cols.cols[*col].value(i), lit)
            }
            ColPred::CmpColCol { left, op, right } => {
                value_cmp_matches(*op, &cols.cols[*left].value(i), &cols.cols[*right].value(i))
            }
            ColPred::IsNull { col, negated } => cols.cols[*col].is_null(i) != *negated,
            ColPred::And(ps) => ps.iter().all(|p| p.matches_at(cols, i, scratch)),
            ColPred::Or(p, q) => p.matches_at(cols, i, scratch) || q.matches_at(cols, i, scratch),
            ColPred::Row(e) => {
                cols.gather_row(i, scratch);
                e.matches(scratch)
            }
        }
    }
}

/// A compiled columnar projection: one output column per expression, with
/// the declared output type (from the plan's derived schema) seeding the
/// typed builder.
#[derive(Debug, Clone)]
pub struct MapPlan {
    /// `(declared output type, compiled expression)` per output column.
    pub outs: Vec<(DataType, ColExpr)>,
}

/// One output column of a projection.
#[derive(Debug, Clone)]
pub enum ColExpr {
    /// Pass an input column through.
    Take(usize),
    /// A constant column.
    Lit(Value),
    /// Arithmetic over two column/literal operands.
    Bin {
        /// Arithmetic operator (`Add`/`Sub`/`Mul`/`Div`/`Mod`).
        op: BinOp,
        /// Left operand.
        left: Arg,
        /// Right operand.
        right: Arg,
    },
    /// No fast path: gather the row and evaluate the bound expression.
    Row(BoundExpr),
}

/// A leaf operand of [`ColExpr::Bin`].
#[derive(Debug, Clone)]
pub enum Arg {
    /// Input column position.
    Col(usize),
    /// Constant.
    Lit(Value),
}

fn arg_of(e: &BoundExpr) -> Option<Arg> {
    match e {
        BoundExpr::Col(i) => Some(Arg::Col(*i)),
        BoundExpr::Lit(v) => Some(Arg::Lit(v.clone())),
        _ => None,
    }
}

/// Compile projection expressions into a [`MapPlan`] given the declared
/// output column types.
pub fn compile_map(exprs: &[BoundExpr], dtypes: &[DataType]) -> MapPlan {
    let outs = exprs
        .iter()
        .zip(dtypes)
        .map(|(e, &dt)| {
            let ce = match e {
                BoundExpr::Col(i) => ColExpr::Take(*i),
                BoundExpr::Lit(v) => ColExpr::Lit(v.clone()),
                BoundExpr::Binary { op, left, right }
                    if matches!(
                        op,
                        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
                    ) =>
                {
                    match (arg_of(left), arg_of(right)) {
                        (Some(l), Some(r)) => ColExpr::Bin { op: *op, left: l, right: r },
                        _ => ColExpr::Row(e.clone()),
                    }
                }
                other => ColExpr::Row(other.clone()),
            };
            (dt, ce)
        })
        .collect();
    MapPlan { outs }
}

/// A numeric view of one cell for the arithmetic kernel.
#[derive(Clone, Copy)]
enum Cell {
    Null,
    I(i64),
    F(f64),
    /// Non-null, non-numeric (arithmetic yields NULL, same as `eval_arith`
    /// failing its coercions).
    Other,
}

#[inline]
fn cell_of_value(v: &Value) -> Cell {
    match v {
        Value::Null => Cell::Null,
        Value::Int(i) => Cell::I(*i),
        Value::Float(x) => Cell::F(*x),
        _ => Cell::Other,
    }
}

#[inline]
fn load(arg: &Arg, cols: &ColumnSet, i: usize) -> Cell {
    match arg {
        Arg::Lit(v) => cell_of_value(v),
        Arg::Col(c) => {
            let col = &cols.cols[*c];
            if col.is_null(i) {
                return Cell::Null;
            }
            match &col.data {
                ColumnData::Int(xs) => Cell::I(xs[i]),
                ColumnData::Float(xs) => Cell::F(xs[i]),
                ColumnData::Mixed(vs) => cell_of_value(&vs[i]),
                _ => Cell::Other,
            }
        }
    }
}

/// `eval_arith` over numeric cell views: NULL propagates; `Div` is always
/// float with `/0 → NULL`; `Mod` is integer-only with `%0 → NULL`;
/// `Add`/`Sub`/`Mul` compute in `f64` and narrow back to `Int` only when
/// *both* operands were integers — the exact row-path semantics, including
/// the precision loss of the `f64` round trip on huge integers.
fn arith(op: BinOp, l: Cell, r: Cell) -> Value {
    if matches!(l, Cell::Null) || matches!(r, Cell::Null) {
        return Value::Null;
    }
    let as_f = |c: Cell| match c {
        Cell::I(i) => Some(i as f64),
        Cell::F(x) => Some(x),
        _ => None,
    };
    match op {
        BinOp::Div => match (as_f(l), as_f(r)) {
            (Some(a), Some(b)) if b != 0.0 => Value::Float(a / b),
            _ => Value::Null,
        },
        BinOp::Mod => match (l, r) {
            (Cell::I(a), Cell::I(b)) if b != 0 => Value::Int(a.rem_euclid(b)),
            _ => Value::Null,
        },
        _ => match (as_f(l), as_f(r)) {
            (Some(a), Some(b)) => {
                let x = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    _ => unreachable!("arith on non-arithmetic operator"),
                };
                if matches!((l, r), (Cell::I(_), Cell::I(_))) {
                    Value::Int(x as i64)
                } else {
                    Value::Float(x)
                }
            }
            _ => Value::Null,
        },
    }
}

impl MapPlan {
    /// Build the projected column set over the selected rows.
    pub fn apply(&self, cols: &ColumnSet, sel: &SelVec, scratch: &mut Row) -> ColumnSet {
        let n = sel.len();
        let mut out: Vec<svc_storage::Column> = Vec::with_capacity(self.outs.len());
        for (dt, ce) in &self.outs {
            let mut b = svc_storage::ColumnBuilder::new(*dt, n);
            match ce {
                ColExpr::Take(c) => {
                    let src = &cols.cols[*c];
                    for i in sel.iter() {
                        b.push(&src.value(i));
                    }
                }
                ColExpr::Lit(v) => {
                    for _ in 0..n {
                        b.push(v);
                    }
                }
                ColExpr::Bin { op, left, right } => {
                    for i in sel.iter() {
                        b.push(&arith(*op, load(left, cols, i), load(right, cols, i)));
                    }
                }
                ColExpr::Row(e) => {
                    for i in sel.iter() {
                        cols.gather_row(i, scratch);
                        b.push(&e.eval(scratch));
                    }
                }
            }
            out.push(b.finish());
        }
        ColumnSet { cols: out, len: n }
    }
}

/// Feed the canonical byte stream of a cell into a hash state — the exact
/// stream [`Value::canonical_bytes`] produces, without constructing a
/// `Value`. Type-rank prefixes match `Value::type_rank`
/// (NULL 0, Bool 1, Int 2, Float 3, Str 4); the η property harness pins
/// this equality against `HashSpec::selects_row`.
#[inline]
fn write_cell(c: &Column, i: usize, st: &mut HashState) {
    if c.is_null(i) {
        st.write(&[0]);
        return;
    }
    match &c.data {
        ColumnData::Int(xs) => {
            st.write(&[2]);
            st.write(&xs[i].to_le_bytes());
        }
        ColumnData::Float(xs) => {
            st.write(&[3]);
            st.write(&Value::canonical_f64_bits(xs[i]).to_le_bytes());
        }
        ColumnData::Bool(xs) => {
            st.write(&[1]);
            st.write(&[xs[i] as u8]);
        }
        ColumnData::Str(xs) => {
            st.write(&[4]);
            st.write(xs[i].as_bytes());
        }
        ColumnData::Mixed(vs) => vs[i].canonical_bytes(&mut |b| st.write(b)),
    }
}

/// Hash the key columns of row `i` straight out of typed storage — the
/// columnar twin of [`HashSpec::hash_row`], producing identical hashes
/// (both stream the canonical bytes). `None` when any key cell is NULL,
/// mirroring the join rule that NULL keys never enter a build map. This is
/// what lets the partitioned join's scatter pass run chunk-at-a-time over
/// a leaf's shared column set while row-built and column-built partitions
/// agree bit for bit (`exec::partition`).
#[inline]
pub(crate) fn hash_key_at(
    cols: &ColumnSet,
    key_idx: &[usize],
    i: usize,
    spec: HashSpec,
) -> Option<u64> {
    let mut st = spec.begin();
    for &k in key_idx {
        let c = &cols.cols[k];
        if c.is_null(i) {
            return None;
        }
        write_cell(c, i, &mut st);
    }
    Some(st.finish())
}

/// The η kernel: refine `sel` to rows whose key columns hash under
/// `ratio`, reading key bytes straight out of typed storage.
pub fn apply_hash(
    cols: &ColumnSet,
    sel: &mut SelVec,
    key_idx: &[usize],
    ratio: f64,
    spec: HashSpec,
) {
    sel.retain(|i| {
        let mut st = spec.begin();
        for &k in key_idx {
            write_cell(&cols.cols[k], i, &mut st);
        }
        normalize01(st.finish()) <= ratio
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use svc_storage::Schema;

    fn colset(rows: &[Vec<Value>], dts: &[(&str, DataType)]) -> ColumnSet {
        let schema = Schema::from_pairs(dts).unwrap();
        let rows: Vec<Row> = rows.to_vec();
        ColumnSet::from_rows(&schema, &rows)
    }

    #[test]
    fn zone_check_is_conclusive_only_when_sound() {
        // Column values span [3, 9].
        assert!(matches!(zone_check(BinOp::Lt, 3.0, 9.0, 10.0), ZoneHit::AllMatch));
        assert!(matches!(zone_check(BinOp::Lt, 3.0, 9.0, 3.0), ZoneHit::NoneMatch));
        assert!(matches!(zone_check(BinOp::Lt, 3.0, 9.0, 5.0), ZoneHit::Scan));
        assert!(matches!(zone_check(BinOp::Eq, 3.0, 9.0, 2.0), ZoneHit::NoneMatch));
        assert!(matches!(zone_check(BinOp::Eq, 4.0, 4.0, 4.0), ZoneHit::AllMatch));
        assert!(matches!(zone_check(BinOp::Ge, 3.0, 9.0, 3.0), ZoneHit::AllMatch));
        assert!(matches!(zone_check(BinOp::Ne, 3.0, 9.0, 11.0), ZoneHit::AllMatch));
    }

    #[test]
    fn flipped_literal_comparison_matches_row_semantics() {
        use crate::scalar::{col, lit};
        let schema = Schema::from_pairs(&[("x", DataType::Int)]).unwrap();
        let rows: Vec<Row> = (0..10).map(|i| vec![Value::Int(i)]).collect();
        let cols = ColumnSet::from_rows(&schema, &rows);
        // 4 < x, compiled through the flip path.
        let bound = lit(4i64).lt(col("x")).bind(&schema).unwrap();
        let pred = compile_pred(&bound);
        assert!(matches!(pred, ColPred::CmpColLit { op: BinOp::Gt, .. }));
        let mut sel = SelVec::range(0, 10);
        let mut scratch = Row::new();
        pred.apply(&cols, &mut sel, &mut scratch);
        let got: Vec<usize> = sel.iter().collect();
        let want: Vec<usize> =
            rows.iter().enumerate().filter(|(_, r)| bound.matches(r)).map(|(i, _)| i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn cross_type_literal_is_constant_by_rank() {
        // Int column vs Str literal: Int < Str for every non-null cell.
        let cols = colset(
            &[vec![Value::Int(1)], vec![Value::Null], vec![Value::Int(5)]],
            &[("x", DataType::Int)],
        );
        let mut scratch = Row::new();
        let lt = ColPred::CmpColLit { col: 0, op: BinOp::Lt, lit: Value::str("z") };
        let mut sel = SelVec::range(0, 3);
        lt.apply(&cols, &mut sel, &mut scratch);
        assert_eq!(sel.iter().collect::<Vec<_>>(), vec![0, 2], "NULL never matches");
        let gt = ColPred::CmpColLit { col: 0, op: BinOp::Gt, lit: Value::str("z") };
        let mut sel = SelVec::range(0, 3);
        gt.apply(&cols, &mut sel, &mut scratch);
        assert!(sel.is_empty());
    }

    #[test]
    fn vectorized_hash_equals_selects_row() {
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("s", DataType::Str)]).unwrap();
        let rows: Vec<Row> =
            (0..200).map(|i| vec![Value::Int(i), Value::str(format!("key-{i}"))]).collect();
        let cols = ColumnSet::from_rows(&schema, &rows);
        for spec in [
            HashSpec::with_seed(7),
            HashSpec { family: svc_storage::HashFamily::Fnv1a, seed: 9 },
            HashSpec { family: svc_storage::HashFamily::Multiplicative, seed: 3 },
        ] {
            let mut sel = SelVec::range(0, rows.len());
            apply_hash(&cols, &mut sel, &[1, 0], 0.4, spec);
            let got: Vec<usize> = sel.iter().collect();
            let want: Vec<usize> = rows
                .iter()
                .enumerate()
                .filter(|(_, r)| spec.selects_row(r, &[1, 0], 0.4))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, want, "η kernel diverged for {spec:?}");
        }
    }

    #[test]
    fn arith_kernel_replicates_eval_arith() {
        use crate::scalar::{col, lit};
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Float)]).unwrap();
        let rows: Vec<Row> = vec![
            vec![Value::Int(7), Value::Float(2.5)],
            vec![Value::Int(-3), Value::Float(0.0)],
            vec![Value::Null, Value::Float(1.0)],
            vec![Value::Int(i64::MAX), Value::Float(f64::NAN)],
        ];
        let cols = ColumnSet::from_rows(&schema, &rows);
        let sel = SelVec::range(0, rows.len());
        let mut scratch = Row::new();
        for e in [
            col("a").add(lit(1i64)),
            col("a").mul(col("b")),
            col("a").div(col("b")),
            col("a").rem(lit(4i64)),
            col("b").sub(col("a")),
        ] {
            let bound = e.bind(&schema).unwrap();
            let dt = e.infer_type(&schema).unwrap();
            let plan = compile_map(std::slice::from_ref(&bound), &[dt]);
            assert!(
                matches!(plan.outs[0].1, ColExpr::Bin { .. }),
                "expected arithmetic kernel for {e}"
            );
            let out = plan.apply(&cols, &sel, &mut scratch);
            for (i, row) in rows.iter().enumerate() {
                let want = bound.eval(row);
                let got = out.cols[0].value(i);
                match (&got, &want) {
                    (Value::Float(a), Value::Float(b)) => {
                        assert_eq!(a.to_bits(), b.to_bits(), "{e} row {i}");
                    }
                    _ => assert_eq!(got, want, "{e} row {i}"),
                }
            }
        }
    }
}
