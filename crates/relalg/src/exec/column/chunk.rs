//! Column chunks: the unit of vectorized execution.
//!
//! A [`ColumnChunk`] pairs a set of typed columns with a [`SelVec`] naming
//! the rows still alive. Chunks over a base table *share* the table's
//! cached [`ColumnSet`] (`Table::columns`, built once per mutation epoch) —
//! a morsel is just a chunk whose initial selection is the morsel's row
//! range. A projection produces an *owned* column set sized to the
//! survivors, after which the selection resets to dense.

use svc_storage::{ColumnSet, Row};

use super::selection::SelVec;

/// The column storage behind a chunk: borrowed from a table's cached
/// columnar projection, or owned (built by a projection kernel).
pub enum ChunkCols<'a> {
    /// Columns shared with the source table (zero-copy leaf conversion).
    Shared(&'a ColumnSet),
    /// Columns materialized by a projection over the survivors.
    Owned(ColumnSet),
}

/// A batch of rows in columnar form with a selection vector.
pub struct ColumnChunk<'a> {
    /// Column storage.
    pub cols: ChunkCols<'a>,
    /// Live rows, in increasing source order.
    pub sel: SelVec,
}

impl<'a> ColumnChunk<'a> {
    /// A chunk over the row range `[lo, hi)` of shared columns — how a
    /// morsel enters the vectorized pipeline.
    pub fn over(cols: &'a ColumnSet, lo: usize, hi: usize) -> ColumnChunk<'a> {
        debug_assert!(hi <= cols.len);
        ColumnChunk { cols: ChunkCols::Shared(cols), sel: SelVec::range(lo, hi) }
    }

    /// The column set currently backing this chunk.
    #[inline]
    pub fn columns(&self) -> &ColumnSet {
        match &self.cols {
            ChunkCols::Shared(c) => c,
            ChunkCols::Owned(c) => c,
        }
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        self.sel.len()
    }

    /// True iff no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.sel.is_empty()
    }

    /// Replace the backing columns with an owned set over exactly the
    /// current survivors; the selection resets to dense.
    pub fn replace(&mut self, cols: ColumnSet) {
        let n = cols.len;
        self.cols = ChunkCols::Owned(cols);
        self.sel = SelVec::range(0, n);
    }

    /// Gather the selected rows into `out` as owned [`Row`]s — the
    /// chunk→row conversion at the pipeline boundary. Values round-trip
    /// exactly (float bits included), so the gathered rows are bitwise
    /// identical to what the row-at-a-time path would have produced.
    pub fn gather_into(&self, out: &mut Vec<Row>) {
        let cols = self.columns();
        out.reserve(self.sel.len());
        for i in self.sel.iter() {
            let mut row = Row::with_capacity(cols.cols.len());
            for c in &cols.cols {
                row.push(c.value(i));
            }
            out.push(row);
        }
    }
}
