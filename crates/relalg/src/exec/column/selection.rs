//! Selection vectors: which rows of a column chunk are still alive.
//!
//! A fresh chunk starts as a dense [`SelVec::Range`]; the first filter that
//! drops a row switches to an explicit, strictly increasing index list
//! ([`SelVec::Idx`]). Kernels *refine* the selection — they never reorder
//! it — so surviving rows keep their source order, which is what makes the
//! vectorized executor's output bitwise identical to the row-at-a-time
//! reference path.

/// The live rows of a chunk, in increasing row order.
#[derive(Debug, Clone)]
pub enum SelVec {
    /// All rows in `[lo, hi)` are selected.
    Range(u32, u32),
    /// Exactly these rows (strictly increasing) are selected.
    Idx(Vec<u32>),
}

impl SelVec {
    /// A dense selection over `[lo, hi)`.
    pub fn range(lo: usize, hi: usize) -> SelVec {
        debug_assert!(lo <= hi);
        SelVec::Range(lo as u32, hi as u32)
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        match self {
            SelVec::Range(lo, hi) => (hi - lo) as usize,
            SelVec::Idx(v) => v.len(),
        }
    }

    /// True iff nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate the selected row indices in increasing order.
    pub fn iter(&self) -> SelIter<'_> {
        match self {
            SelVec::Range(lo, hi) => SelIter::Range(*lo..*hi),
            SelVec::Idx(v) => SelIter::Idx(v.iter()),
        }
    }

    /// Replace the selection with the rows for which `keep` holds —
    /// evaluated once per currently selected row, in order.
    pub fn retain(&mut self, mut keep: impl FnMut(usize) -> bool) {
        match self {
            SelVec::Range(lo, hi) => {
                let mut idx = Vec::with_capacity((*hi - *lo) as usize);
                for i in *lo..*hi {
                    if keep(i as usize) {
                        idx.push(i);
                    }
                }
                // Staying dense keeps later kernels on the cheap path.
                if idx.len() == (*hi - *lo) as usize {
                    return;
                }
                *self = SelVec::Idx(idx);
            }
            SelVec::Idx(v) => v.retain(|&i| keep(i as usize)),
        }
    }

    /// Drop every selected row.
    pub fn clear(&mut self) {
        *self = SelVec::Idx(Vec::new());
    }
}

/// Iterator over selected row indices.
pub enum SelIter<'a> {
    /// Dense range.
    Range(std::ops::Range<u32>),
    /// Explicit indices.
    Idx(std::slice::Iter<'a, u32>),
}

impl Iterator for SelIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            SelIter::Range(r) => r.next().map(|i| i as usize),
            SelIter::Idx(it) => it.next().map(|&i| i as usize),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            SelIter::Range(r) => r.size_hint(),
            SelIter::Idx(it) => it.size_hint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_refines_to_indices() {
        let mut sel = SelVec::range(2, 8);
        assert_eq!(sel.len(), 6);
        sel.retain(|i| i % 2 == 0);
        assert_eq!(sel.iter().collect::<Vec<_>>(), vec![2, 4, 6]);
        sel.retain(|i| i > 2);
        assert_eq!(sel.iter().collect::<Vec<_>>(), vec![4, 6]);
        sel.clear();
        assert!(sel.is_empty());
    }

    #[test]
    fn full_retain_stays_dense() {
        let mut sel = SelVec::range(0, 5);
        sel.retain(|_| true);
        assert!(matches!(sel, SelVec::Range(0, 5)));
    }
}
