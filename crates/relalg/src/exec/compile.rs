//! Lowering [`Plan`]s to physical nodes: schemas derived, predicates and
//! projections bound, join columns resolved, group maps sized — all
//! exactly once, at compile time. Running the compiled plan does none of
//! that work again.

use svc_storage::{DataType, Result, Schema, StorageError, Table};

use crate::aggregate::{bind_aggs, AggFunc};
use crate::derive::{derive_join, derive_tree, DerivedTree, LeafProvider, SetOpKind};
use crate::optimizer::cost::CardEstimator;
use crate::plan::{JoinKind, Plan};
use crate::scalar::BoundExpr;

use super::column::{compile_map, compile_pred, VecOp};
use super::pipeline::FusedOp;

/// A leaf reference resolved at compile time: the bound table is looked up
/// by name at run time and validated against the compiled schema/key, so a
/// compiled plan can safely be reused against fresh bindings (new delta
/// chunks, an updated stale view) as long as the shapes still match.
#[derive(Debug, Clone)]
pub struct LeafRef {
    /// Binding name of the relation.
    pub name: String,
    /// Schema the plan was compiled against.
    pub schema: Schema,
    /// Key positions the plan was compiled against.
    pub key: Vec<usize>,
}

impl LeafRef {
    /// Look the leaf up in `bindings` and verify it still has the compiled
    /// shape — schema **and** key: fused-scan roots skip duplicate-key
    /// validation trusting the compiled key, and PK-probe joins trust the
    /// bound table's own index, so a same-schema rebind with a different
    /// primary key must be rejected, not silently mis-executed.
    pub fn resolve<'a>(&self, bindings: &crate::eval::Bindings<'a>) -> Result<&'a Table> {
        let t = bindings.table(&self.name)?;
        if t.schema() != &self.schema {
            return Err(StorageError::Invalid(format!(
                "leaf `{}` was rebound with schema [{}], but the plan was compiled against [{}]",
                self.name,
                t.schema(),
                self.schema
            )));
        }
        if t.key() != self.key {
            return Err(StorageError::Invalid(format!(
                "leaf `{}` was rebound with a different primary key than the plan was compiled \
                 against",
                self.name
            )));
        }
        Ok(t)
    }
}

/// The right input of a physical join.
#[derive(Debug, Clone)]
pub enum JoinRight {
    /// Probe the bound table's existing primary-key index — the right side
    /// is a bare leaf joined on exactly its key. Zero materialization, no
    /// build pass: delta-sized left inputs probe large base relations in
    /// O(|left|).
    PkProbeLeaf(LeafRef),
    /// Materialize the right child and hash-build over its join columns.
    Build(Box<Node>),
}

/// One physical operator. Unary σ/Π/η chains are fused into their source
/// node ([`Node::FusedScan`] / [`Node::Fused`]); joins, aggregates, and
/// set operations are pipeline breakers that materialize plain `Vec<Row>`
/// batches — never an intermediate keyed [`Table`].
#[derive(Debug, Clone)]
pub enum Node {
    /// A fused chain rooted at a leaf: rows are borrowed straight from the
    /// bound table and only survivors are cloned. Carries both the
    /// row-at-a-time ops (the reference path) and their vectorized
    /// counterparts, compiled position for position at lowering time.
    FusedScan {
        /// The source relation.
        leaf: LeafRef,
        /// Compiled operator chain (may be empty for a bare scan).
        ops: Vec<FusedOp>,
        /// Vectorized counterparts of `ops` (always the same length).
        vops: Vec<VecOp>,
    },
    /// A fused chain over a materialized child batch; rows move through.
    Fused {
        /// The breaker producing the input batch.
        input: Box<Node>,
        /// Compiled operator chain.
        ops: Vec<FusedOp>,
    },
    /// Equi-join breaker.
    Join {
        /// Left (probe) input.
        left: Box<Node>,
        /// Right (build or PK-probe) input.
        right: JoinRight,
        /// Join flavor.
        kind: JoinKind,
        /// Resolved `(left, right)` join column positions.
        on_idx: Vec<(usize, usize)>,
        /// Left input arity (NULL padding for right-outer rows).
        pad_left: usize,
        /// Right input arity (NULL padding for left-outer rows).
        pad_right: usize,
    },
    /// γ breaker. When the input is a fused scan, rows stream borrowed from
    /// the base table directly into the group map — the input batch is
    /// never materialized.
    Aggregate {
        /// Input node.
        input: Box<Node>,
        /// Resolved group column positions.
        group_idx: Vec<usize>,
        /// Bound aggregate specs.
        aggs: Vec<(AggFunc, DataType, BoundExpr)>,
        /// Distinct-group estimate (catalog NDV) for pre-sizing, if known.
        groups_hint: Option<usize>,
    },
    /// ∪ / ∩ / − breaker.
    SetOp {
        /// Which set operation.
        kind: SetOpKind,
        /// Left input.
        left: Box<Node>,
        /// Right input.
        right: Box<Node>,
    },
}

impl Node {
    /// Append a fused op, wrapping breakers in a [`Node::Fused`] shell.
    /// The vectorized counterpart rides along only on [`Node::FusedScan`]
    /// chains — fused chains over breaker batches stay row-at-a-time
    /// (their input is already rows; converting it to columns would move
    /// the leaf conversion boundary into the middle of the plan).
    fn push_op(self, op: FusedOp, vop: VecOp) -> Node {
        match self {
            Node::FusedScan { leaf, mut ops, mut vops } => {
                ops.push(op);
                vops.push(vop);
                Node::FusedScan { leaf, ops, vops }
            }
            Node::Fused { input, mut ops } => {
                ops.push(op);
                Node::Fused { input, ops }
            }
            other => Node::Fused { input: Box::new(other), ops: vec![op] },
        }
    }

    /// Number of nodes in this subtree, root included, in the canonical
    /// pre-order the telemetry layer indexes metric slots by: a node at
    /// pre-order id `i` has its first child at `i + 1` and its second at
    /// `i + 1 + first.subtree_size()`. A PK-probe join right side is not a
    /// node (the probed leaf is resolved inline; its size shows up in the
    /// join's `build_rows` metric).
    pub fn subtree_size(&self) -> usize {
        1 + match self {
            Node::FusedScan { .. } => 0,
            Node::Fused { input, .. } => input.subtree_size(),
            Node::Join { left, right, .. } => {
                left.subtree_size()
                    + match right {
                        JoinRight::PkProbeLeaf(_) => 0,
                        JoinRight::Build(r) => r.subtree_size(),
                    }
            }
            Node::Aggregate { input, .. } => input.subtree_size(),
            Node::SetOp { left, right, .. } => left.subtree_size() + right.subtree_size(),
        }
    }

    /// Compact structural description (`fused-scan(T)[σ,η] → γ` style) for
    /// tests and debugging.
    pub fn describe(&self) -> String {
        fn tags(ops: &[FusedOp]) -> String {
            if ops.is_empty() {
                String::new()
            } else {
                format!("[{}]", ops.iter().map(FusedOp::tag).collect::<String>())
            }
        }
        match self {
            Node::FusedScan { leaf, ops, .. } => format!("fused-scan({}){}", leaf.name, tags(ops)),
            Node::Fused { input, ops } => format!("fused({}){}", input.describe(), tags(ops)),
            Node::Join { left, right, kind, .. } => {
                let r = match right {
                    JoinRight::PkProbeLeaf(leaf) => format!("pk-probe({})", leaf.name),
                    JoinRight::Build(node) => format!("build({})", node.describe()),
                };
                format!("join:{kind:?}({}, {r})", left.describe())
            }
            Node::Aggregate { input, .. } => format!("γ({})", input.describe()),
            Node::SetOp { kind, left, right } => {
                format!("{kind:?}({}, {})", left.describe(), right.describe())
            }
        }
    }
}

/// Lowering context: the leaf provider (for estimator calls) and an
/// optional cardinality estimator for group-map sizing.
pub(super) struct Lowering<'a> {
    pub leaves: &'a dyn LeafProvider,
    pub est: Option<&'a dyn CardEstimator>,
}

/// Cap on pre-sized group maps: a wild NDV estimate must not allocate
/// gigabytes up front.
const MAX_GROUPS_HINT: usize = 1 << 22;

impl Lowering<'_> {
    /// Lower `plan` against its derived tree (computed once at the root).
    pub(super) fn lower(&self, plan: &Plan, tree: &DerivedTree) -> Result<Node> {
        Ok(match plan {
            Plan::Scan { table } => Node::FusedScan {
                leaf: LeafRef {
                    name: table.clone(),
                    schema: tree.derived.schema.clone(),
                    key: tree.derived.key.clone(),
                },
                ops: Vec::new(),
                vops: Vec::new(),
            },
            Plan::Select { input, predicate } => {
                let child = self.lower(input, tree.input())?;
                let pred = predicate.bind(&tree.input().derived.schema)?;
                let vop = VecOp::Filter(compile_pred(&pred));
                child.push_op(FusedOp::Filter(pred), vop)
            }
            Plan::Project { input, columns } => {
                let child = self.lower(input, tree.input())?;
                let in_schema = &tree.input().derived.schema;
                let bound: Vec<BoundExpr> =
                    columns.iter().map(|(_, e)| e.bind(in_schema)).collect::<Result<_>>()?;
                // Output column types come from the projection's own
                // derived schema — they seed the typed output builders.
                let dtypes: Vec<DataType> =
                    tree.derived.schema.fields().iter().map(|f| f.dtype).collect();
                let vop = VecOp::Map(compile_map(&bound, &dtypes));
                child.push_op(FusedOp::Map(bound), vop)
            }
            Plan::Hash { input, key, ratio, spec } => {
                let child = self.lower(input, tree.input())?;
                let key_idx = tree.input().derived.schema.resolve_all(key)?;
                let vop = VecOp::Hash { key_idx: key_idx.clone(), ratio: *ratio, spec: *spec };
                child.push_op(FusedOp::Hash { key_idx, ratio: *ratio, spec: *spec }, vop)
            }
            Plan::Join { left, right, kind, on } => {
                let (lt, rt) = tree.pair();
                let (_, on_idx) =
                    derive_join(&lt.derived, &rt.derived, *kind, on, right.name_hint())?;
                let pad_left = lt.derived.schema.len();
                let pad_right = rt.derived.schema.len();
                let right_cols: Vec<usize> = on_idx.iter().map(|&(_, r)| r).collect();
                let lowered_left = Box::new(self.lower(left, lt)?);
                // PK-probe only for *bare* leaves: a filtered right side
                // must materialize so the probe sees post-filter rows.
                let right = if matches!(&**right, Plan::Scan { .. })
                    && crate::join::pk_probe_applies(*kind, &right_cols, &rt.derived.key)
                {
                    JoinRight::PkProbeLeaf(LeafRef {
                        name: right.leaf_tables()[0].to_string(),
                        schema: rt.derived.schema.clone(),
                        key: rt.derived.key.clone(),
                    })
                } else {
                    JoinRight::Build(Box::new(self.lower(right, rt)?))
                };
                Node::Join { left: lowered_left, right, kind: *kind, on_idx, pad_left, pad_right }
            }
            Plan::Aggregate { input, group_by, aggregates } => {
                let child = self.lower(input, tree.input())?;
                let in_schema = &tree.input().derived.schema;
                let group_idx = in_schema.resolve_all(group_by)?;
                let aggs = bind_aggs(aggregates, in_schema)?;
                let groups_hint = self.groups_hint(input, &group_idx);
                Node::Aggregate { input: Box::new(child), group_idx, aggs, groups_hint }
            }
            Plan::Union { left, right } => self.lower_setop(SetOpKind::Union, left, right, tree)?,
            Plan::Intersect { left, right } => {
                self.lower_setop(SetOpKind::Intersect, left, right, tree)?
            }
            Plan::Difference { left, right } => {
                self.lower_setop(SetOpKind::Difference, left, right, tree)?
            }
        })
    }

    fn lower_setop(
        &self,
        kind: SetOpKind,
        left: &Plan,
        right: &Plan,
        tree: &DerivedTree,
    ) -> Result<Node> {
        let (lt, rt) = tree.pair();
        Ok(Node::SetOp {
            kind,
            left: Box::new(self.lower(left, lt)?),
            right: Box::new(self.lower(right, rt)?),
        })
    }

    /// Estimated distinct-group count of a γ over `input`, from the
    /// caller's cardinality estimator (catalog NDV): the product of the
    /// group columns' distinct counts, capped by the input row estimate.
    /// Estimation failures fall back to the input-length heuristic.
    fn groups_hint(&self, input: &Plan, group_idx: &[usize]) -> Option<usize> {
        let est = self.est?;
        let card = est.estimate(input, self.leaves).ok()?;
        let mut groups = 1.0f64;
        for &i in group_idx {
            groups *= card.distinct.get(i).copied().unwrap_or(1.0).max(1.0);
        }
        Some(groups.min(card.rows.max(1.0)).min(MAX_GROUPS_HINT as f64) as usize)
    }
}

/// Re-derive the tree and lower — the single entry used by
/// [`super::compile`] / [`super::compile_with`].
pub(super) fn lower_plan(
    plan: &Plan,
    leaves: &dyn LeafProvider,
    est: Option<&dyn CardEstimator>,
) -> Result<(Node, crate::derive::Derived)> {
    let tree = derive_tree(plan, &leaves)?;
    let out = tree.derived.clone();
    let node = Lowering { leaves, est }.lower(plan, &tree)?;
    Ok((node, out))
}
