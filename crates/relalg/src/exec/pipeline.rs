//! Fused row pipelines: maximal `Scan→σ→Π→η` chains execute as one pass.
//!
//! A [`FusedOp`] sequence is compiled once (predicates bound, projection
//! expressions bound, η key columns resolved) and then applied row by row.
//! Rows enter *borrowed* — straight out of a bound base table or an
//! upstream batch — and stay borrowed through every filter; a row is only
//! cloned (or built, for projections) once it has survived the whole chain
//! and reaches the sink. That is the "clone only survivors" contract: a
//! selective filter over a large base relation touches every row but
//! copies almost none.

use svc_storage::{HashSpec, Row, Value};

use crate::aggregate::GroupMap;
use crate::scalar::BoundExpr;

/// One fused operator. Filters and η never change the row shape; a
/// projection rebuilds the row, after which the remaining ops see the
/// projected shape (their indices were compiled against it).
#[derive(Debug, Clone)]
pub enum FusedOp {
    /// σ: keep rows matching the bound predicate.
    Filter(BoundExpr),
    /// Π: rebuild the row from bound output expressions.
    Map(Vec<BoundExpr>),
    /// η: keep rows whose key columns hash under the ratio.
    Hash {
        /// Key column positions in the incoming row shape.
        key_idx: Vec<usize>,
        /// Sampling ratio `m`.
        ratio: f64,
        /// Seeded hash function.
        spec: HashSpec,
    },
}

impl FusedOp {
    /// One-character operator tag for plan descriptions.
    pub fn tag(&self) -> char {
        match self {
            FusedOp::Filter(_) => 'σ',
            FusedOp::Map(_) => 'π',
            FusedOp::Hash { .. } => 'η',
        }
    }
}

/// Where surviving rows land. `Vec<Row>` collects materialized batches
/// (cloning borrowed survivors); [`GroupMap`] accumulates γ groups without
/// materializing the input at all.
pub trait RowSink {
    /// Accept a row the pipeline already owns.
    fn owned(&mut self, row: Row);
    /// Accept a row still borrowed from its source; implementations clone
    /// only if they need to keep it.
    fn borrowed(&mut self, row: &[Value]) {
        self.owned(row.to_vec());
    }
}

impl RowSink for Vec<Row> {
    fn owned(&mut self, row: Row) {
        self.push(row);
    }
}

impl RowSink for GroupMap<'_> {
    fn owned(&mut self, row: Row) {
        self.push(&row);
    }

    /// Group accumulation reads the row in place — no survivor clone.
    fn borrowed(&mut self, row: &[Value]) {
        self.push(row);
    }
}

/// Stream one borrowed row through `ops` into `sink`. Filters run on the
/// borrowed row; the first projection takes over ownership.
pub fn feed_borrowed(row: &[Value], ops: &[FusedOp], sink: &mut impl RowSink) {
    for (i, op) in ops.iter().enumerate() {
        match op {
            FusedOp::Filter(pred) => {
                if !pred.matches(row) {
                    return;
                }
            }
            FusedOp::Hash { key_idx, ratio, spec } => {
                if !spec.selects_row(row, key_idx, *ratio) {
                    return;
                }
            }
            FusedOp::Map(exprs) => {
                let mapped: Row = exprs.iter().map(|e| e.eval(row)).collect();
                return feed_owned(mapped, &ops[i + 1..], sink);
            }
        }
    }
    sink.borrowed(row);
}

/// Stream one owned row through `ops` into `sink`; the row moves all the
/// way (projections rebuild it in place of the old one).
pub fn feed_owned(mut row: Row, ops: &[FusedOp], sink: &mut impl RowSink) {
    for op in ops {
        match op {
            FusedOp::Filter(pred) => {
                if !pred.matches(&row) {
                    return;
                }
            }
            FusedOp::Hash { key_idx, ratio, spec } => {
                if !spec.selects_row(&row, key_idx, *ratio) {
                    return;
                }
            }
            FusedOp::Map(exprs) => {
                row = exprs.iter().map(|e| e.eval(&row)).collect();
            }
        }
    }
    sink.owned(row);
}
