//! `EXPLAIN ANALYZE` for compiled plans: run a plan with a metrics sink
//! installed and render the physical tree with per-node **actual** rows,
//! wall time, and operator detail next to the catalog's **estimated**
//! rows.
//!
//! Estimates come from walking the logical [`Plan`] in lock-step with the
//! physical [`Node`] tree: a fused chain of `k` unary ops corresponds to
//! the `k` `Select`/`Project`/`Hash` wrappers above its source, a join
//! node to `Plan::Join`, and so on — the same correspondence the lowering
//! in [`super::compile`] establishes. Nodes where the walk loses sync (or
//! where estimation fails) simply render without an estimate; actuals are
//! never affected.

use std::fmt;

use svc_storage::{Result, Table};
use svc_telemetry::OpMetrics;

use crate::derive::LeafProvider;
use crate::eval::Bindings;
use crate::optimizer::cost::CardEstimator;
use crate::plan::Plan;

use super::compile::{JoinRight, Node};
use super::pipeline::FusedOp;
use super::{compile_with, ExecMode};

/// One annotated node of an explained plan, in pre-order (the metric-slot
/// order).
#[derive(Debug, Clone)]
pub struct ExplainNode {
    /// Pre-order id — the node's slot index in the metrics sink.
    pub id: usize,
    /// Tree depth (root = 0), for rendering.
    pub depth: usize,
    /// Single-node operator label, e.g. `fused-scan(log)[ση]`.
    pub label: String,
    /// Catalog-estimated output rows, when an estimator was supplied and
    /// the logical walk stayed in sync.
    pub est_rows: Option<f64>,
    /// Measured execution metrics for this node.
    pub metrics: OpMetrics,
}

/// The result of [`explain_analyze`]: the query output plus the annotated
/// plan tree. `Display` renders the tree.
#[derive(Debug, Clone)]
pub struct Explain {
    /// The query result (the run is a real run).
    pub table: Table,
    /// Annotated nodes in pre-order.
    pub nodes: Vec<ExplainNode>,
}

impl Explain {
    /// The root node's metrics (`rows_out` equals `table.len()`).
    pub fn root(&self) -> &ExplainNode {
        &self.nodes[0]
    }

    /// Render the annotated tree (same text as `Display`).
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for n in &self.nodes {
            let pad = "  ".repeat(n.depth);
            let m = &n.metrics;
            write!(f, "{pad}{} (#{})  rows={}", n.label, n.id, m.rows_out)?;
            match n.est_rows {
                Some(e) => write!(f, " (est {})", e.round() as u64)?,
                None => write!(f, " (est -)")?,
            }
            write!(f, "  in={}  wall={}", m.rows_in, fmt_ns(m.wall_ns))?;
            if m.morsels > 0 {
                write!(f, "  morsels={}", m.morsels)?;
            }
            if m.vec_chunks > 0 {
                write!(f, "  vec_chunks={}", m.vec_chunks)?;
            }
            if m.row_batches > 0 {
                write!(f, "  row_batches={}", m.row_batches)?;
            }
            if m.zone_skips > 0 {
                write!(f, "  zone_skips={}", m.zone_skips)?;
            }
            if m.build_rows > 0 || m.probe_rows > 0 {
                write!(f, "  build={} probe={}", m.build_rows, m.probe_rows)?;
            }
            if m.partitions > 0 {
                write!(f, "  partitions={} part_max={}", m.partitions, m.part_max_rows)?;
            }
            if m.groups > 0 {
                write!(f, "  groups={}", m.groups)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Format nanoseconds human-readably (`412ns`, `3.2µs`, `1.7ms`, `2.1s`).
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// Compile `plan`, execute it under `mode` with a metrics sink installed,
/// and return the output table plus the annotated tree. `est` feeds both
/// the compile (γ pre-sizing) and the per-node estimated-rows column; pass
/// `None` to explain without a catalog.
///
/// The measured actuals obey the executor's determinism contract: per-node
/// row counts are identical across schedulers, worker counts, and
/// vectorized-vs-rowwise modes (only wall times differ). See
/// `tests/telemetry.rs`.
pub fn explain_analyze(
    plan: &Plan,
    bindings: &Bindings<'_>,
    est: Option<&dyn CardEstimator>,
    mode: ExecMode<'_>,
) -> Result<Explain> {
    let compiled = compile_with(plan, bindings, est)?;
    let sink = compiled.metrics_sink();
    let table = compiled.run_with_metrics(bindings, mode, &sink)?;
    let mut nodes = Vec::with_capacity(sink.len());
    annotate(&compiled.root, Some(plan), 0, est, bindings, &mut nodes);
    debug_assert_eq!(nodes.len(), sink.len());
    for n in &mut nodes {
        n.metrics = sink.snapshot(n.id);
    }
    Ok(Explain { table, nodes })
}

/// Peel `k` unary wrappers (`Select`/`Project`/`Hash`) off a logical plan
/// — the inverse of the lowering's op fusion. `None` when the plan has a
/// different shape (lock-step walk lost).
fn peel(plan: &Plan, k: usize) -> Option<&Plan> {
    let mut p = plan;
    for _ in 0..k {
        p = match p {
            Plan::Select { input, .. } | Plan::Project { input, .. } | Plan::Hash { input, .. } => {
                input
            }
            _ => return None,
        };
    }
    Some(p)
}

/// Estimated output rows of `plan` under `est`, if both exist.
fn est_rows(
    plan: Option<&Plan>,
    est: Option<&dyn CardEstimator>,
    leaves: &dyn LeafProvider,
) -> Option<f64> {
    let (p, e) = (plan?, est?);
    e.estimate(p, leaves).ok().map(|c| c.rows)
}

/// Single-node label (children rendered as their own lines, not inline).
fn label(node: &Node) -> String {
    fn tags(ops: &[FusedOp]) -> String {
        if ops.is_empty() {
            String::new()
        } else {
            format!("[{}]", ops.iter().map(FusedOp::tag).collect::<String>())
        }
    }
    match node {
        Node::FusedScan { leaf, ops, .. } => format!("fused-scan({}){}", leaf.name, tags(ops)),
        Node::Fused { ops, .. } => format!("fused{}", tags(ops)),
        Node::Join { right, kind, .. } => match right {
            JoinRight::PkProbeLeaf(leaf) => format!("join:{kind:?} pk-probe({})", leaf.name),
            JoinRight::Build(_) => format!("join:{kind:?} build"),
        },
        Node::Aggregate { group_idx, .. } => format!("γ(group_cols={group_idx:?})"),
        Node::SetOp { kind, .. } => format!("{kind:?}"),
    }
}

/// Pre-order labels of a physical tree — index `i` names the operator
/// whose metrics land in sink slot `i`. Backs
/// [`PhysicalPlan::node_labels`](super::PhysicalPlan::node_labels).
pub(super) fn labels(root: &Node) -> Vec<String> {
    fn walk(node: &Node, out: &mut Vec<String>) {
        out.push(label(node));
        match node {
            Node::FusedScan { .. } => {}
            Node::Fused { input, .. } | Node::Aggregate { input, .. } => walk(input, out),
            Node::Join { left, right, .. } => {
                walk(left, out);
                if let JoinRight::Build(r) = right {
                    walk(r, out);
                }
            }
            Node::SetOp { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
        }
    }
    let mut out = Vec::new();
    walk(root, &mut out);
    out
}

/// Pre-order walk emitting one [`ExplainNode`] per physical node, carrying
/// the matching logical plan alongside for estimation (dropped to `None`
/// on any shape mismatch).
fn annotate(
    node: &Node,
    plan: Option<&Plan>,
    depth: usize,
    est: Option<&dyn CardEstimator>,
    bindings: &Bindings<'_>,
    out: &mut Vec<ExplainNode>,
) {
    out.push(ExplainNode {
        id: out.len(),
        depth,
        label: label(node),
        est_rows: est_rows(plan, est, bindings),
        metrics: OpMetrics::default(),
    });
    match node {
        Node::FusedScan { .. } => {}
        Node::Fused { input, ops } => {
            // The child is whatever the fused chain wraps.
            let child = plan.and_then(|p| peel(p, ops.len()));
            annotate(input, child, depth + 1, est, bindings, out);
        }
        Node::Join { left, right, .. } => {
            let (lp, rp) = match plan {
                Some(Plan::Join { left, right, .. }) => (Some(&**left), Some(&**right)),
                _ => (None, None),
            };
            annotate(left, lp, depth + 1, est, bindings, out);
            match right {
                JoinRight::PkProbeLeaf(_) => {}
                JoinRight::Build(r) => annotate(r, rp, depth + 1, est, bindings, out),
            }
        }
        Node::Aggregate { input, .. } => {
            let child = match plan {
                Some(Plan::Aggregate { input, .. }) => Some(&**input),
                _ => None,
            };
            annotate(input, child, depth + 1, est, bindings, out);
        }
        Node::SetOp { left, right, .. } => {
            let (lp, rp) = match plan {
                Some(
                    Plan::Union { left, right }
                    | Plan::Intersect { left, right }
                    | Plan::Difference { left, right },
                ) => (Some(&**left), Some(&**right)),
                _ => (None, None),
            };
            annotate(left, lp, depth + 1, est, bindings, out);
            annotate(right, rp, depth + 1, est, bindings, out);
        }
    }
}
