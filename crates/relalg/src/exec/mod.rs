//! The compile-once streaming executor.
//!
//! [`compile`] lowers a [`Plan`] into a [`PhysicalPlan`]: every schema is
//! derived, every predicate/projection/aggregate bound, every join column
//! resolved — once. [`PhysicalPlan::run`] then evaluates against
//! [`Bindings`] with none of that per-call work, and with a radically
//! cheaper data path than the legacy materializing evaluator
//! ([`crate::eval::evaluate_materializing`]):
//!
//! * **No scan clones.** A `Scan` leaf is read in place from the bound
//!   table. The legacy evaluator cloned the entire base relation —
//!   including its key index — before filtering it.
//! * **Fused pipelines.** Maximal `Scan→σ→Π→η` chains run as a single pass
//!   that borrows source rows and clones only survivors
//!   ([`pipeline::FusedOp`]).
//! * **Plain batches between breakers.** Joins, γ, and set operations
//!   materialize `Vec<Row>` — not a keyed [`svc_storage::Table`] with a
//!   rebuilt `HashMap` index that no operator ever probes.
//! * **Allocation-free probes.** Join build/probe and group-by hash
//!   borrowed key columns in place ([`svc_storage::KeyTuple::hash_of`])
//!   and verify candidates by column equality; `KeyTuple`s are allocated
//!   only for keys that are actually kept (first group insertion, the
//!   reusable PK-probe buffer).
//! * **One keyed table, at the root.** The output `Table` and its index
//!   are built exactly once, from the final batch.
//!
//! Compiled plans are reusable: [`PhysicalPlan::run`] only looks leaves up
//! by name and validates their shape, so the mini-batch maintenance path
//! compiles its per-partition change plans once per partitioning epoch and
//! reruns them across batches (`svc-cluster`'s `BatchPipeline`).

mod batch;
pub mod column;
pub mod compile;
pub mod explain;
mod partition;
pub mod pipeline;
mod run;

use std::fmt;

use svc_storage::{Result, StorageError, Table};
use svc_telemetry::MetricsSink;

use crate::derive::{Derived, LeafProvider};
use crate::eval::Bindings;
use crate::optimizer::cost::CardEstimator;
use crate::plan::Plan;

pub use batch::fresh_batch_count;
pub use column::{ColPred, ColumnChunk, MapPlan, SelVec, VecOp};
pub use compile::{JoinRight, LeafRef, Node};
pub use explain::{explain_analyze, Explain, ExplainNode};
pub use pipeline::{FusedOp, RowSink};

/// Something that can execute a batch of independent morsel tasks —
/// typically `svc-cluster`'s `WorkerPool`, whose shared work queue
/// interleaves morsels from concurrent plans across one set of worker
/// threads. Implementations must run every index in `0..n` exactly once
/// (concurrently or not) before returning, and should catch task panics,
/// reporting them as an `Err` instead of unwinding into unrelated work.
pub trait MorselScheduler: Sync {
    /// Execute tasks `0..n` to completion.
    fn run_tasks(&self, n: usize, task: &(dyn Fn(usize) + Sync)) -> Result<()>;
}

/// Runs every morsel inline on the calling thread — the no-pool fallback,
/// and the degenerate point of the parallel-vs-sequential equivalence
/// matrix (`tests/morsel_prop.rs`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialScheduler;

impl MorselScheduler for SequentialScheduler {
    fn run_tasks(&self, n: usize, task: &(dyn Fn(usize) + Sync)) -> Result<()> {
        for i in 0..n {
            task(i);
        }
        Ok(())
    }
}

/// How a compiled plan executes: sequentially on the calling thread
/// (default), or morsel-parallel on a scheduler; vectorized fused-scan
/// kernels (default), or the row-at-a-time reference path. A copyable
/// knob so the higher layers (`MaterializedView::maintain_with_mode`,
/// `SvcView::clean_sample_with_mode`, `BatchPipeline`) can thread one
/// execution policy through their hot paths.
#[derive(Clone, Copy, Default)]
pub struct ExecMode<'a> {
    sched: Option<&'a dyn MorselScheduler>,
    /// Rows per morsel; `0` with a scheduler attached means "derive from
    /// the bound leaf sizes at run time" ([`auto_morsel_size`]).
    morsel: usize,
    /// Hash partitions for join builds and set-op dedup; `0` means
    /// "derive from the build input size at run time"
    /// ([`auto_partition_count`]). Rounded up to a power of two.
    partitions: usize,
    rowwise: bool,
}

impl<'a> ExecMode<'a> {
    /// Sequential execution on the calling thread.
    pub fn sequential() -> ExecMode<'static> {
        ExecMode { sched: None, morsel: 0, partitions: 0, rowwise: false }
    }

    /// Morsel-parallel execution on `sched` with `morsel_size` rows per
    /// morsel.
    pub fn morsel(sched: &'a dyn MorselScheduler, morsel_size: usize) -> ExecMode<'a> {
        ExecMode { sched: Some(sched), morsel: morsel_size, partitions: 0, rowwise: false }
    }

    /// Morsel-parallel execution with the morsel size derived from the
    /// largest bound leaf at run time ([`auto_morsel_size`]).
    pub fn morsel_auto(sched: &'a dyn MorselScheduler) -> ExecMode<'a> {
        ExecMode { sched: Some(sched), morsel: 0, partitions: 0, rowwise: false }
    }

    /// Switch to the row-at-a-time reference path (the vectorized kernels
    /// are the default). Used by the equivalence harnesses and benches.
    pub fn rowwise(mut self) -> ExecMode<'a> {
        self.rowwise = true;
        self
    }

    /// Set the hash-partition count for join builds and set-op dedup
    /// (rounded up to a power of two; `0` restores the size-based auto
    /// tune). Join results are identical for every value — partitioning a
    /// chain map by key hash cannot change which rows a probe key finds,
    /// or their order — so this is purely a parallelism/skew knob.
    /// Ignored without a scheduler: sequential runs build one map.
    pub fn partitions(mut self, partitions: usize) -> ExecMode<'a> {
        self.partitions = partitions;
        self
    }

    /// True when a scheduler is attached.
    pub fn is_parallel(&self) -> bool {
        self.sched.is_some()
    }
}

impl fmt::Debug for ExecMode<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let path = if self.rowwise { "rowwise" } else { "vectorized" };
        let parts: &dyn fmt::Display = match self.partitions {
            0 => &"auto",
            ref p => p,
        };
        match self.sched {
            Some(_) if self.morsel == 0 => {
                write!(f, "ExecMode::Morsel(auto, parts={parts}, {path})")
            }
            Some(_) => write!(f, "ExecMode::Morsel({}, parts={parts}, {path})", self.morsel),
            None => write!(f, "ExecMode::Sequential({path})"),
        }
    }
}

/// Rows per morsel targeting ~64k values per column chunk (`rows ×
/// width`), while still splitting small inputs at least ~8 ways so a pool
/// has work to steal; clamped to `[256, 65536]` so degenerate shapes
/// (thousands of columns, tiny tables) stay sane.
pub fn auto_morsel_size(rows: usize, width: usize) -> usize {
    const TARGET_VALUES: usize = 64 * 1024;
    let by_width = TARGET_VALUES / width.max(1);
    let by_split = rows.div_ceil(8).max(1);
    by_width.min(by_split).clamp(256, 65_536)
}

/// Hash partitions for a join build (or set-op dedup) over `rows` input
/// rows: ~4k rows per partition, always a power of two (so the partition
/// of a hash is a mask), clamped to `[1, 64]`. Small inputs resolve to 1 —
/// a single map built inline, no scatter pass — so partitioning only
/// engages where a fan-out can pay for itself.
pub fn auto_partition_count(rows: usize) -> usize {
    const TARGET_ROWS: usize = 4096;
    (rows / TARGET_ROWS).next_power_of_two().clamp(1, 64)
}

/// A compiled, reusable physical plan. `Send + Sync`: worker pools share
/// one compiled plan across threads.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    root: Node,
    out: Derived,
}

impl PhysicalPlan {
    /// Evaluate against concrete bindings, producing the keyed output
    /// table. May be called any number of times, against different
    /// bindings, as long as every leaf keeps the compiled schema.
    /// Fused-scan segments run on the vectorized column kernels; the
    /// result is row-for-row identical to [`PhysicalPlan::run_rowwise`].
    pub fn run(&self, bindings: &Bindings<'_>) -> Result<Table> {
        let rows = run::run_node(&self.root, bindings, true, None)?;
        run::finish_root(&self.root, &self.out, rows)
    }

    /// Evaluate on the row-at-a-time reference path — same semantics, no
    /// columnar kernels. Kept for the equivalence harnesses
    /// (`tests/exec_prop.rs`) and the `fig_vector` benchmark baseline.
    pub fn run_rowwise(&self, bindings: &Bindings<'_>) -> Result<Table> {
        let rows = run::run_node(&self.root, bindings, false, None)?;
        run::finish_root(&self.root, &self.out, rows)
    }

    /// Evaluate morsel-parallel: base scans split into `morsel_size`-row
    /// chunk ranges over the leaf's shared column set, one vectorized
    /// pass runs per morsel on the scheduler, join morsels probe a build
    /// side constructed once, and per-morsel γ group maps merge at the
    /// pipeline barrier. Hash-join build sides (and large set-op dedups)
    /// hash-partition ([`auto_partition_count`] partitions by default) and
    /// build one map shard per partition concurrently — each shard owned by
    /// exactly one task, probed read-only by every morsel. The result —
    /// including output order at the keyed root — is a function of the
    /// morsel size only, never of the scheduler's thread count,
    /// interleaving, or the partition count; it matches
    /// [`PhysicalPlan::run`] exactly up to float-sum rounding (partial sums
    /// per morsel combine at the barrier).
    pub fn run_parallel(
        &self,
        bindings: &Bindings<'_>,
        sched: &dyn MorselScheduler,
        morsel_size: usize,
    ) -> Result<Table> {
        self.run_parallel_impl(bindings, sched, morsel_size, 0, true, None)
    }

    fn run_parallel_impl(
        &self,
        bindings: &Bindings<'_>,
        sched: &dyn MorselScheduler,
        morsel_size: usize,
        partitions: usize,
        vec: bool,
        m: run::OptMeter<'_>,
    ) -> Result<Table> {
        if morsel_size == 0 {
            return Err(StorageError::Invalid("morsel_size must be at least 1".into()));
        }
        let par = run::Par { sched, morsel: morsel_size, vec, parts: partitions };
        let rows = run::run_node_par(&self.root, bindings, &par, m)?;
        run::finish_root(&self.root, &self.out, rows)
    }

    /// Dispatch on an [`ExecMode`]: sequential or morsel-parallel,
    /// vectorized or rowwise. A parallel mode without an explicit morsel
    /// size ([`ExecMode::morsel_auto`]) derives one from the largest
    /// bound leaf via [`auto_morsel_size`].
    pub fn run_with(&self, bindings: &Bindings<'_>, mode: ExecMode<'_>) -> Result<Table> {
        self.dispatch(bindings, mode, None)
    }

    fn dispatch(
        &self,
        bindings: &Bindings<'_>,
        mode: ExecMode<'_>,
        m: run::OptMeter<'_>,
    ) -> Result<Table> {
        match mode.sched {
            Some(sched) => {
                let morsel = if mode.morsel == 0 {
                    let (rows, width) = largest_leaf(&self.root, bindings);
                    auto_morsel_size(rows, width)
                } else {
                    mode.morsel
                };
                self.run_parallel_impl(bindings, sched, morsel, mode.partitions, !mode.rowwise, m)
            }
            None => {
                let rows = run::run_node(&self.root, bindings, !mode.rowwise, m)?;
                run::finish_root(&self.root, &self.out, rows)
            }
        }
    }

    /// Number of physical nodes in the compiled tree — the slot count a
    /// [`MetricsSink`] for this plan must have. Node ids are pre-order:
    /// the root is 0, a node's first child is `id + 1`, and a second child
    /// follows the first child's whole subtree. PK-probed leaves are part
    /// of their join node (reported as its `build_rows`), not nodes of
    /// their own.
    pub fn node_count(&self) -> usize {
        self.root.subtree_size()
    }

    /// Allocate a metrics sink sized for this plan — one
    /// [`svc_telemetry::OpSlot`] per physical node, addressed by pre-order
    /// id.
    pub fn metrics_sink(&self) -> MetricsSink {
        MetricsSink::with_slots(self.node_count())
    }

    /// Operator labels in pre-order: `node_labels()[i]` names the operator
    /// whose metrics land in sink slot `i`. Lets callers pair
    /// [`MetricsSink::snapshots`] with operator names without building a
    /// full [`Explain`].
    pub fn node_labels(&self) -> Vec<String> {
        explain::labels(&self.root)
    }

    /// [`PhysicalPlan::run_with`], recording per-operator execution
    /// metrics into `sink` (not reset first — counts accumulate, so one
    /// sink can total several runs). Morsel tasks fold stack-local
    /// counters into the sink's per-node atomic slots at the session
    /// barrier; the sums are commutative, so recorded totals — like the
    /// rows themselves — depend on the morsel size only, never on the
    /// scheduler's thread count. The plain `run*` paths never touch a
    /// sink: with no sink installed the executor allocates zero metric
    /// state (see `metric_allocs` and `tests/telemetry.rs`).
    pub fn run_with_metrics(
        &self,
        bindings: &Bindings<'_>,
        mode: ExecMode<'_>,
        sink: &MetricsSink,
    ) -> Result<Table> {
        if sink.len() != self.node_count() {
            return Err(StorageError::Invalid(format!(
                "metrics sink has {} slots but the plan has {} nodes",
                sink.len(),
                self.node_count()
            )));
        }
        self.dispatch(bindings, mode, Some(run::Meter { sink, id: 0 }))
    }

    /// The derived output type (schema + key) of the plan.
    pub fn output(&self) -> &Derived {
        &self.out
    }

    /// Run the physical verifier over this compiled plan: bound indices in
    /// range, FusedOp/VecOp twins agreeing, every breaker producing its
    /// declared arity, and the root matching the declared output type. See
    /// [`crate::verify::physical`]. [`compile_with`] calls this on every
    /// compile when the `verify` feature is on.
    pub fn verify(&self) -> Result<()> {
        crate::verify::physical::verify_physical(&self.root, &self.out)
    }

    /// Compact structural description, e.g.
    /// `γ(fused-scan(lineitem)[σσ])` — used by tests asserting fusion
    /// boundaries and by debugging.
    pub fn describe(&self) -> String {
        self.root.describe()
    }
}

/// Row count and width of the largest leaf a plan reads under `bindings`
/// — the input the morsel auto-tuner sizes chunks for. Unresolvable
/// leaves (caught properly at run time) are skipped.
fn largest_leaf(node: &Node, b: &Bindings<'_>) -> (usize, usize) {
    fn note(leaf: &LeafRef, b: &Bindings<'_>, best: &mut (usize, usize)) {
        if let Ok(t) = leaf.resolve(b) {
            if t.len() > best.0 {
                *best = (t.len(), t.schema().len());
            }
        }
    }
    fn walk(node: &Node, b: &Bindings<'_>, best: &mut (usize, usize)) {
        match node {
            Node::FusedScan { leaf, .. } => note(leaf, b, best),
            Node::Fused { input, .. } => walk(input, b, best),
            Node::Join { left, right, .. } => {
                walk(left, b, best);
                match right {
                    JoinRight::PkProbeLeaf(leaf) => note(leaf, b, best),
                    JoinRight::Build(n) => walk(n, b, best),
                }
            }
            Node::Aggregate { input, .. } => walk(input, b, best),
            Node::SetOp { left, right, .. } => {
                walk(left, b, best);
                walk(right, b, best);
            }
        }
    }
    let mut best = (0, 1);
    walk(node, b, &mut best);
    best
}

/// Compile a plan against a leaf provider (typically the [`Bindings`] or
/// [`svc_storage::Database`] it will run against, or the maintenance
/// catalog for maintenance plans).
pub fn compile(plan: &Plan, leaves: &(impl LeafProvider + ?Sized)) -> Result<PhysicalPlan> {
    compile_with(plan, leaves, None)
}

/// [`compile`] with an optional cardinality estimator: γ group maps are
/// then pre-sized from catalog NDV estimates instead of the input-length
/// heuristic.
pub fn compile_with(
    plan: &Plan,
    leaves: &(impl LeafProvider + ?Sized),
    est: Option<&dyn CardEstimator>,
) -> Result<PhysicalPlan> {
    let leaves: &dyn LeafProvider = &leaves;
    let (root, out) = compile::lower_plan(plan, leaves, est)?;
    let plan = PhysicalPlan { root, out };
    #[cfg(feature = "verify")]
    plan.verify()?;
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AggFunc, AggSpec};
    use crate::eval::evaluate_materializing;
    use crate::plan::JoinKind;
    use crate::scalar::{col, lit};
    use svc_storage::{DataType, Database, HashSpec, Schema, Value};

    fn video_db() -> Database {
        let mut db = Database::new();
        let mut video = Table::new(
            Schema::from_pairs(&[
                ("videoId", DataType::Int),
                ("ownerId", DataType::Int),
                ("duration", DataType::Float),
            ])
            .unwrap(),
            &["videoId"],
        )
        .unwrap();
        for v in 0..50i64 {
            video
                .insert(vec![Value::Int(v), Value::Int(v % 7), Value::Float(0.5 + v as f64 * 0.1)])
                .unwrap();
        }
        let mut log = Table::new(
            Schema::from_pairs(&[("sessionId", DataType::Int), ("videoId", DataType::Int)])
                .unwrap(),
            &["sessionId"],
        )
        .unwrap();
        for s in 0..400i64 {
            log.insert(vec![Value::Int(s), Value::Int(s % 50)]).unwrap();
        }
        db.create_table("video", video);
        db.create_table("log", log);
        db
    }

    fn visit_view() -> Plan {
        Plan::scan("log")
            .join(Plan::scan("video"), JoinKind::Inner, &[("videoId", "videoId")])
            .aggregate(
                &["videoId"],
                vec![
                    AggSpec::count_all("visits"),
                    AggSpec::new("maxDur", AggFunc::Max, col("duration")),
                ],
            )
    }

    /// The acceptance guarantee: a fused σ/η pipeline over a `Scan` clones
    /// zero tables — the legacy evaluator cloned the whole base relation.
    #[test]
    fn fused_scan_pipeline_performs_zero_table_clones() {
        let db = video_db();
        let b = Bindings::from_database(&db);
        let plan = Plan::scan("log").select(col("videoId").lt(lit(5i64))).hash(
            &["sessionId"],
            0.5,
            HashSpec::with_seed(3),
        );
        let compiled = compile(&plan, &b).unwrap();
        assert_eq!(compiled.describe(), "fused-scan(log)[ση]");
        let before = Table::clone_count();
        let out = compiled.run(&b).unwrap();
        assert_eq!(Table::clone_count(), before, "fused scan must not clone any table");
        assert!(out.len() < 40, "filter + hash must select");
        let expected = evaluate_materializing(&plan, &b).unwrap();
        assert!(out.same_contents(&expected));
    }

    /// FK joins against a bare base-table leaf probe its existing PK index:
    /// no build pass, no clone of the base relation.
    #[test]
    fn fk_join_probes_leaf_index_without_cloning() {
        let db = video_db();
        let b = Bindings::from_database(&db);
        let plan = visit_view();
        let compiled = compile(&plan, &b).unwrap();
        assert!(
            compiled.describe().contains("pk-probe(video)"),
            "expected PK probe, got {}",
            compiled.describe()
        );
        let before = Table::clone_count();
        let out = compiled.run(&b).unwrap();
        assert_eq!(Table::clone_count(), before, "probe side must not be cloned or rebuilt");
        let expected = evaluate_materializing(&plan, &b).unwrap();
        assert!(out.same_contents(&expected));
    }

    /// A compiled plan is reusable against different bindings with the
    /// same leaf shapes — and rejects bindings whose shape changed.
    #[test]
    fn compiled_plans_rerun_against_fresh_bindings() {
        let db = video_db();
        let b = Bindings::from_database(&db);
        let plan = Plan::scan("log").select(col("videoId").lt(lit(10i64)));
        let compiled = compile(&plan, &b).unwrap();
        let first = compiled.run(&b).unwrap();

        // Rebind `log` to a different table of the same schema.
        let mut other = db.table("log").unwrap().empty_like();
        other.insert(vec![Value::Int(9_999), Value::Int(3)]).unwrap();
        let mut b2 = Bindings::from_database(&db);
        b2.bind("log", &other);
        let second = compiled.run(&b2).unwrap();
        assert_eq!(second.len(), 1);
        assert_ne!(first.len(), second.len());

        // A schema change is caught, not silently mis-executed.
        let wrong = db.table("video").unwrap().clone();
        let mut b3 = Bindings::from_database(&db);
        b3.bind("log", &wrong);
        let err = compiled.run(&b3).unwrap_err();
        assert!(err.to_string().contains("compiled"), "unexpected error: {err}");

        // So is a same-schema table with a different primary key: fused
        // roots trust the compiled key for the unique-rows fast path.
        let rekeyed = Table::new(db.table("log").unwrap().schema().clone(), &["videoId"]).unwrap();
        let mut b4 = Bindings::from_database(&db);
        b4.bind("log", &rekeyed);
        let err = compiled.run(&b4).unwrap_err();
        assert!(err.to_string().contains("primary key"), "unexpected error: {err}");
    }

    /// γ over a fused scan streams rows into the group map without
    /// materializing the filtered input.
    #[test]
    fn aggregate_streams_over_fused_scan() {
        let db = video_db();
        let b = Bindings::from_database(&db);
        let plan = Plan::scan("log")
            .select(col("sessionId").lt(lit(100i64)))
            .aggregate(&["videoId"], vec![AggSpec::count_all("n")]);
        let compiled = compile(&plan, &b).unwrap();
        assert_eq!(compiled.describe(), "γ(fused-scan(log)[σ])");
        let before = Table::clone_count();
        let out = compiled.run(&b).unwrap();
        assert_eq!(Table::clone_count(), before);
        let expected = evaluate_materializing(&plan, &b).unwrap();
        assert!(out.same_contents(&expected));
    }

    /// All operator kinds agree with the legacy materializing evaluator.
    #[test]
    fn streaming_matches_materializing_across_operators() {
        let db = video_db();
        let b = Bindings::from_database(&db);
        let plans = vec![
            Plan::scan("video"),
            visit_view(),
            visit_view().select(col("visits").gt(lit(2i64))).project(vec![
                ("videoId", col("videoId")),
                ("density", col("visits").div(col("maxDur"))),
            ]),
            Plan::scan("video")
                .select(col("ownerId").lt(lit(3i64)))
                .union(Plan::scan("video").select(col("ownerId").gt(lit(4i64)))),
            Plan::scan("video")
                .difference(Plan::scan("video").select(col("ownerId").eq(lit(2i64)))),
            Plan::scan("video").intersect(Plan::scan("video").select(col("ownerId").le(lit(5i64)))),
            Plan::scan("log")
                .join(Plan::scan("video"), JoinKind::Full, &[("videoId", "ownerId")])
                .select(col("sessionId").lt(lit(30i64)).or(col("duration").gt(lit(4.0)))),
            Plan::scan("video").join(Plan::scan("log"), JoinKind::Anti, &[("videoId", "videoId")]),
        ];
        for plan in plans {
            let got = compile(&plan, &b).unwrap().run(&b).unwrap();
            let expected = evaluate_materializing(&plan, &b).unwrap();
            assert!(got.same_contents(&expected), "divergence on {plan:?}");
        }
    }

    #[test]
    fn missing_leaf_errors_at_compile_time() {
        let b = Bindings::new();
        assert!(compile(&Plan::scan("nope"), &b).is_err());
    }

    /// The batch-buffer pool contract: after a warm-up run, re-running a
    /// compiled plan allocates at most ONE fresh batch buffer per run (the
    /// root batch the output table keeps) — every intermediate breaker
    /// batch is served from the per-thread pool. Without recycling this
    /// plan allocates a buffer per breaker per run.
    #[test]
    fn rerunning_a_compiled_plan_reuses_batch_buffers() {
        let db = video_db();
        let b = Bindings::from_database(&db);
        // Two shapes: join (pk-probe) → γ → σ, and a union over filtered
        // scans — covering fused batches, breaker batches, and the set-op
        // path through the pool.
        let plans = [
            visit_view().select(col("visits").gt(lit(1i64))),
            Plan::scan("video")
                .select(col("ownerId").lt(lit(3i64)))
                .union(Plan::scan("video").select(col("ownerId").gt(lit(4i64)))),
        ];
        for plan in plans {
            let compiled = compile(&plan, &b).unwrap();
            let first = compiled.run(&b).unwrap();
            for round in 0..5 {
                let before = fresh_batch_count();
                let out = compiled.run(&b).unwrap();
                let allocs = fresh_batch_count() - before;
                assert!(
                    allocs <= 1,
                    "warmed-up run {round} of {plan:?} must allocate at most the root batch, \
                     got {allocs}"
                );
                assert!(out.same_contents(&first));
            }
        }
    }

    /// The morsel auto-tuner targets ~64k values per chunk and stays
    /// inside its clamps for every degenerate shape.
    #[test]
    fn auto_morsel_size_bounds() {
        const TARGET: usize = 64 * 1024;
        // Nominal shape: rows × width lands on the value target.
        assert_eq!(auto_morsel_size(10_000_000, 8), TARGET / 8);
        // Wide tables shrink the morsel; the floor stops the shrinkage.
        assert_eq!(auto_morsel_size(10_000_000, 1_000_000), 256);
        // Narrow tables grow it; the ceiling stops the growth.
        assert_eq!(auto_morsel_size(100_000_000, 1), 65_536);
        // Small inputs still split ~8 ways so a pool has work to steal…
        assert_eq!(auto_morsel_size(8_000, 1), 1_000);
        // …down to the floor, and zero-row/zero-width inputs stay sane.
        for (rows, width) in [(0, 0), (0, 5), (1, 0), (17, 3), (1 << 30, 1 << 20)] {
            let m = auto_morsel_size(rows, width);
            assert!((256..=65_536).contains(&m), "({rows},{width}) gave {m}");
        }
        // Never more than the value target per chunk for real widths.
        for width in [1, 2, 7, 64, 300] {
            let m = auto_morsel_size(5_000_000, width);
            assert!(m * width <= TARGET.max(256 * width), "width {width} gave {m}");
        }
    }

    /// The partition auto-tuner: powers of two only, `[1, 64]`, and 1 for
    /// anything too small to be worth a scatter pass.
    #[test]
    fn auto_partition_count_bounds() {
        assert_eq!(auto_partition_count(0), 1);
        assert_eq!(auto_partition_count(4_095), 1);
        assert_eq!(auto_partition_count(4_096), 1);
        assert_eq!(auto_partition_count(8_192), 2);
        assert_eq!(auto_partition_count(40_000), 16);
        assert_eq!(auto_partition_count(1 << 30), 64);
        for rows in [0, 1, 100, 5_000, 123_456, usize::MAX / 2] {
            let p = auto_partition_count(rows);
            assert!(p.is_power_of_two() && (1..=64).contains(&p), "{rows} gave {p}");
        }
    }

    /// The partition knob never changes results — build joins and set ops
    /// included — for any count, on either kernel path.
    #[test]
    fn partition_count_is_result_invariant() {
        let db = video_db();
        let b = Bindings::from_database(&db);
        for plan in [
            // Non-key right column forces the hash-build join path.
            Plan::scan("log").join(Plan::scan("video"), JoinKind::Left, &[("videoId", "ownerId")]),
            Plan::scan("video").union(Plan::scan("video").select(col("ownerId").ge(lit(2i64)))),
            Plan::scan("video").intersect(Plan::scan("video").select(col("ownerId").le(lit(5i64)))),
        ] {
            let compiled = compile(&plan, &b).unwrap();
            let seq = compiled.run(&b).unwrap();
            for parts in [1usize, 2, 3, 8, 64] {
                for rowwise in [false, true] {
                    let mut mode = ExecMode::morsel(&SequentialScheduler, 16).partitions(parts);
                    if rowwise {
                        mode = mode.rowwise();
                    }
                    let got = compiled.run_with(&b, mode).unwrap();
                    assert!(
                        got.rows() == seq.rows(),
                        "parts={parts} rowwise={rowwise} changed rows or order on {plan:?}"
                    );
                }
            }
        }
    }

    /// `run_parallel` with the inline scheduler is the sequential executor
    /// with extra seams; results and output order must match exactly.
    #[test]
    fn inline_parallel_run_matches_run_exactly() {
        let db = video_db();
        let b = Bindings::from_database(&db);
        for plan in [
            visit_view(),
            Plan::scan("log").select(col("videoId").lt(lit(20i64))).hash(
                &["sessionId"],
                0.4,
                HashSpec::with_seed(9),
            ),
            Plan::scan("video")
                .difference(Plan::scan("video").select(col("ownerId").eq(lit(2i64)))),
        ] {
            let compiled = compile(&plan, &b).unwrap();
            let seq = compiled.run(&b).unwrap();
            for morsel in [1, 13, usize::MAX] {
                let par = compiled.run_parallel(&b, &SequentialScheduler, morsel).unwrap();
                assert!(par.rows() == seq.rows(), "morsel {morsel} changed rows or order");
                assert_eq!(par.schema(), seq.schema());
            }
        }
    }
}
