//! Partition-parallel hash builds: the scatter→build protocol behind the
//! partitioned join and the partitioned set-op dedup.
//!
//! Both follow the same two-pass shape on the morsel scheduler:
//!
//! 1. **Scatter** (morsel-parallel over input chunks): hash the key
//!    columns of every row — chunk-at-a-time through the columnar hash
//!    kernel when the input is a bare leaf's shared column set, row-wise
//!    otherwise; the two produce identical hashes — and append
//!    `(row id, hash)` to the chunk's list for partition `hash & (P-1)`.
//! 2. **Build** (one task per partition): drain the chunks' lists for this
//!    partition *in chunk order*, so every chain/set observes rows in
//!    global input order. Each task owns its partition's map outright —
//!    zero cross-thread sharing.
//!
//! Determinism: partition assignment is a pure function of the row bytes
//! (fixed-seed [`join_hash`]), chunk order restores global row order
//! within each partition, and the driver-side merges iterate partitions
//! `0..P` — so results depend on the morsel and partition parameters only,
//! never on scheduler interleaving. For the join, the output is moreover
//! independent of `P` itself (see [`JoinBuild`]); for set-ops, the merge
//! emits survivors by draining the inputs in order, which reproduces the
//! sequential cores' first-occurrence output exactly.

use std::collections::HashMap;

use svc_storage::{ColumnSet, Result, Row, StorageError, Value};

use crate::join::{join_hash, key_has_null, JoinBuild};

use super::column::hash_key_at;
use super::run::{fan_out, ranges, Par};

/// One scatter chunk's output: per partition, the `(row id, hash)` pairs
/// that landed there, in row order.
type Scatter = Vec<Vec<(u32, u64)>>;

/// Rows landing in the fullest partition — the `part_max_rows` skew metric.
fn max_partition(scattered: &[Scatter], partitions: usize) -> u64 {
    (0..partitions)
        .map(|p| scattered.iter().map(|c| c[p].len()).sum::<usize>() as u64)
        .max()
        .unwrap_or(0)
}

/// Build a [`JoinBuild`] over `rows` with its chain maps constructed
/// concurrently, one partition per task. `cols` is the build side's shared
/// column set when it is a bare leaf (the scatter pass then hashes straight
/// from typed storage); the result is bit-identical either way, and
/// bit-identical to [`JoinBuild::with_partitions`] on one thread.
pub(super) fn build_join_par<'r>(
    rows: &'r [Row],
    cols: Option<&ColumnSet>,
    on_idx: &[(usize, usize)],
    partitions: usize,
    par: &Par<'_>,
) -> Result<JoinBuild<'r>> {
    let right_cols: Vec<usize> = on_idx.iter().map(|&(_, r)| r).collect();
    let p = partitions.max(1).next_power_of_two();
    let mask = (p - 1) as u64;
    let spec = join_hash();
    let rs = ranges(rows.len(), par.morsel);
    let scattered: Vec<Scatter> = fan_out(par, rs.len(), &|t| {
        let (lo, hi) = rs[t];
        let mut lists: Scatter = vec![Vec::new(); p];
        match cols {
            Some(cs) => {
                for i in lo..hi {
                    if let Some(h) = hash_key_at(cs, &right_cols, i, spec) {
                        lists[(h & mask) as usize].push((i as u32, h));
                    }
                }
            }
            None => {
                for (i, row) in rows.iter().enumerate().take(hi).skip(lo) {
                    if !key_has_null(row, &right_cols) {
                        let h = spec.hash_row(row, &right_cols);
                        lists[(h & mask) as usize].push((i as u32, h));
                    }
                }
            }
        }
        Ok(lists)
    })?;
    let maps = fan_out(par, p, &|pi| {
        // Failpoint site: one partition's map build, mid-fan-out. An
        // injected `Error` surfaces through this task's result slot; an
        // injected `Panic` unwinds into the scheduler's session isolation
        // — either way the whole build (and the plan run above it) fails
        // as a unit, which is what the chaos harness pins.
        if cfg!(feature = "failpoints") {
            if let Some(fired) = svc_fault::check(svc_fault::site::JOIN_BUILD) {
                match fired.action {
                    svc_fault::FailAction::Panic => panic!("{}", fired.message),
                    svc_fault::FailAction::Error => {
                        return Err(StorageError::Invalid(fired.message));
                    }
                }
            }
        }
        let n: usize = scattered.iter().map(|c| c[pi].len()).sum();
        let mut map: HashMap<u64, Vec<u32>> = HashMap::with_capacity(n);
        for chunk in &scattered {
            for &(i, h) in &chunk[pi] {
                map.entry(h).or_default().push(i);
            }
        }
        Ok(map)
    })?;
    Ok(JoinBuild::from_parts(rows, on_idx, maps))
}

/// Scatter the concatenation `left ++ right` by whole-row hash. Equal rows
/// always land in the same partition, so partition-local dedup decisions
/// equal global ones.
fn scatter_rows(l: &[Row], r: &[Row], partitions: usize, par: &Par<'_>) -> Result<Vec<Scatter>> {
    let mask = (partitions - 1) as u64;
    let spec = join_hash();
    let rs = ranges(l.len() + r.len(), par.morsel);
    fan_out(par, rs.len(), &|t| {
        let (lo, hi) = rs[t];
        let mut lists: Scatter = vec![Vec::new(); partitions];
        for i in lo..hi {
            let row: &[Value] = if i < l.len() { &l[i] } else { &r[i - l.len()] };
            let h = spec.hash_key(row);
            lists[(h & mask) as usize].push((i as u32, h));
        }
        Ok(lists)
    })
}

/// A partition-local row set over the two backing slices, chained under
/// pre-computed whole-row hashes; candidates verify by full-row equality,
/// so hash collisions cannot conflate distinct rows.
struct RowSet<'a> {
    chains: HashMap<u64, Vec<u32>>,
    l: &'a [Row],
    r: &'a [Row],
}

impl RowSet<'_> {
    fn at(&self, i: u32) -> &[Value] {
        let i = i as usize;
        if i < self.l.len() {
            &self.l[i]
        } else {
            &self.r[i - self.l.len()]
        }
    }

    fn contains(&self, i: u32, h: u64) -> bool {
        self.chains.get(&h).is_some_and(|c| c.iter().any(|&j| self.at(j) == self.at(i)))
    }

    /// Insert row `i` unless an equal row is already present; true on
    /// first occurrence.
    fn insert_if_new(&mut self, i: u32, h: u64) -> bool {
        let chain = self.chains.entry(h).or_default();
        if chain.iter().any(|&j| {
            let (a, b) = (j as usize, i as usize);
            let at =
                |k: usize| if k < self.l.len() { &self.l[k] } else { &self.r[k - self.l.len()] };
            at(a).as_slice() == at(b).as_slice()
        }) {
            return false;
        }
        chain.push(i);
        true
    }
}

/// Mark `keeps` into a survivor bitmap over `n` global indices, returning
/// it plus the survivor count.
fn survivor_map(keeps: &[Vec<u32>], n: usize) -> (Vec<bool>, usize) {
    let mut surv = vec![false; n];
    let mut total = 0;
    for keep in keeps {
        total += keep.len();
        for &i in keep {
            surv[i as usize] = true;
        }
    }
    (surv, total)
}

/// Partition-parallel ∪ dedup: bit-identical to
/// [`crate::setops::union_rows_into`] (global first occurrence, left rows
/// then right rows, input order). Returns the fullest partition's row
/// count for the skew metric.
pub(super) fn union_rows_par(
    left: &mut Vec<Row>,
    right: &mut Vec<Row>,
    partitions: usize,
    par: &Par<'_>,
    out: &mut Vec<Row>,
) -> Result<u64> {
    let p = partitions.max(1).next_power_of_two();
    let nl = left.len();
    let (l, r) = (&left[..], &right[..]);
    let scattered = scatter_rows(l, r, p, par)?;
    let keeps: Vec<Vec<u32>> = fan_out(par, p, &|pi| {
        let mut seen = RowSet { chains: HashMap::new(), l, r };
        let mut keep: Vec<u32> = Vec::new();
        // Chunk order == global row order, so first occurrences match the
        // sequential left-then-right drain.
        for chunk in &scattered {
            for &(i, h) in &chunk[pi] {
                if seen.insert_if_new(i, h) {
                    keep.push(i);
                }
            }
        }
        Ok(keep)
    })?;
    let max_part = max_partition(&scattered, p);
    let (surv, total) = survivor_map(&keeps, nl + r.len());
    out.reserve(total);
    for (i, row) in left.drain(..).enumerate() {
        if surv[i] {
            out.push(row);
        }
    }
    for (j, row) in right.drain(..).enumerate() {
        if surv[nl + j] {
            out.push(row);
        }
    }
    Ok(max_part)
}

/// Partition-parallel ∩ / − dedup (`intersect` selects which): distinct
/// left rows whose membership in the right input matches the operator —
/// bit-identical to [`crate::setops::intersect_rows_into`] /
/// [`crate::setops::difference_rows_into`]. Returns the fullest
/// partition's row count.
pub(super) fn filter_rows_par(
    intersect: bool,
    left: &mut Vec<Row>,
    right: &[Row],
    partitions: usize,
    par: &Par<'_>,
    out: &mut Vec<Row>,
) -> Result<u64> {
    let p = partitions.max(1).next_power_of_two();
    let nl = left.len();
    let l = &left[..];
    let scattered = scatter_rows(l, right, p, par)?;
    let keeps: Vec<Vec<u32>> = fan_out(par, p, &|pi| {
        // Membership set: this partition's right rows. Equal rows share a
        // partition, so the local set answers global membership exactly.
        let mut rset = RowSet { chains: HashMap::new(), l, r: right };
        for chunk in &scattered {
            for &(i, h) in &chunk[pi] {
                if i as usize >= nl {
                    rset.insert_if_new(i, h);
                }
            }
        }
        let mut seen = RowSet { chains: HashMap::new(), l, r: right };
        let mut keep: Vec<u32> = Vec::new();
        for chunk in &scattered {
            for &(i, h) in &chunk[pi] {
                if (i as usize) < nl && rset.contains(i, h) == intersect && seen.insert_if_new(i, h)
                {
                    keep.push(i);
                }
            }
        }
        Ok(keep)
    })?;
    let max_part = max_partition(&scattered, p);
    let (surv, total) = survivor_map(&keeps, nl);
    out.reserve(total);
    for (i, row) in left.drain(..).enumerate() {
        if surv[i] {
            out.push(row);
        }
    }
    Ok(max_part)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setops::{difference_rows_into, intersect_rows_into, union_rows_into};
    use svc_storage::Value;

    use crate::exec::SequentialScheduler;

    fn par(morsel: usize) -> Par<'static> {
        Par { sched: &SequentialScheduler, morsel, vec: false, parts: 0 }
    }

    fn rows(vals: &[i64]) -> Vec<Row> {
        // Low-cardinality second column forces duplicate whole rows.
        vals.iter().map(|&v| vec![Value::Int(v % 5), Value::Int(v % 3)]).collect()
    }

    /// Every partition/morsel combination reproduces the sequential set-op
    /// cores bit for bit — order included.
    #[test]
    fn partitioned_setops_match_sequential_cores() {
        let lvals: Vec<i64> = (0..83).map(|i| i * 7 + 3).collect();
        let rvals: Vec<i64> = (0..61).map(|i| i * 11 + 1).collect();
        let (lbase, rbase) = (rows(&lvals), rows(&rvals));

        let mut want_union = Vec::new();
        union_rows_into(&mut lbase.clone(), &mut rbase.clone(), &mut want_union);
        let mut want_isect = Vec::new();
        intersect_rows_into(&mut lbase.clone(), &rbase, &mut want_isect);
        let mut want_diff = Vec::new();
        difference_rows_into(&mut lbase.clone(), &rbase, &mut want_diff);

        for parts in [1usize, 2, 4, 8, 32] {
            for morsel in [1usize, 7, 64, usize::MAX] {
                let p = par(morsel);
                let mut got = Vec::new();
                union_rows_par(&mut lbase.clone(), &mut rbase.clone(), parts, &p, &mut got)
                    .unwrap();
                assert_eq!(got, want_union, "union parts={parts} morsel={morsel}");
                let mut got = Vec::new();
                filter_rows_par(true, &mut lbase.clone(), &rbase, parts, &p, &mut got).unwrap();
                assert_eq!(got, want_isect, "intersect parts={parts} morsel={morsel}");
                let mut got = Vec::new();
                filter_rows_par(false, &mut lbase.clone(), &rbase, parts, &p, &mut got).unwrap();
                assert_eq!(got, want_diff, "difference parts={parts} morsel={morsel}");
            }
        }
    }

    /// The parallel build assembles exactly the maps the sequential
    /// sharded build does, for any chunking.
    #[test]
    fn parallel_join_build_matches_sequential_partitioned_build() {
        let rrows = rows(&(0..117).map(|i| i * 13 + 2).collect::<Vec<_>>());
        let on: &[(usize, usize)] = &[(1, 1)];
        let lrows = rows(&(0..40).collect::<Vec<_>>());
        for parts in [2usize, 4, 16] {
            let reference = {
                let b = JoinBuild::with_partitions(&rrows, on, parts);
                let mut l = lrows.clone();
                let (mut out, mut m) = (Vec::new(), Vec::new());
                b.probe(&mut l, crate::plan::JoinKind::Full, &[1], 2, &mut out, &mut m);
                b.emit_unmatched_right(&m, 2, &mut out);
                out
            };
            for morsel in [1usize, 9, 1000] {
                let b = build_join_par(&rrows, None, on, parts, &par(morsel)).unwrap();
                assert_eq!(b.partition_count(), parts);
                let mut l = lrows.clone();
                let (mut out, mut m) = (Vec::new(), Vec::new());
                b.probe(&mut l, crate::plan::JoinKind::Full, &[1], 2, &mut out, &mut m);
                b.emit_unmatched_right(&m, 2, &mut out);
                assert_eq!(out, reference, "parts={parts} morsel={morsel}");
            }
        }
    }
}
