//! Executing compiled nodes: streams for fused chains, `Vec<Row>` batches
//! for breakers. No intermediate keyed [`Table`] is ever built — the
//! plan root wraps the final batch exactly once. Batch buffers come from
//! the per-thread pool ([`super::batch`]) and consumed inputs are recycled
//! into it, so re-running a compiled plan allocates almost nothing.
//!
//! Two drivers share the per-operator cores:
//!
//! * [`run_node`] — the sequential executor: one thread walks the tree.
//! * [`run_node_par`] — the morsel-parallel executor: base scans and
//!   probe/fused inputs split into row-range morsels that run on a
//!   [`super::MorselScheduler`]; per-morsel outputs concatenate **in
//!   morsel order** and per-morsel γ [`GroupMap`]s merge in morsel order
//!   at the pipeline barrier, so the result — including output order at
//!   the keyed root — is a function of the morsel size only, never of the
//!   scheduler's thread count or interleaving.
//!
//! Both drivers take an optional [`Meter`]: with `None` (the plain `run`
//! paths) no metric state is touched or allocated; with a sink installed,
//! each node accumulates an [`OpMetrics`] on the stack (per morsel task in
//! parallel) and merges it into the sink's per-node slot at the end — the
//! same merge-at-the-barrier shape as the γ group maps, so instrumented
//! totals are as deterministic as the rows.

use std::sync::Mutex;
use std::time::Instant;

use svc_storage::{Result, Row, StorageError, Table, Value};
use svc_telemetry::{MetricsSink, OpMetrics, OpSlot};

use crate::aggregate::GroupMap;
use crate::eval::Bindings;
use crate::join::{join_rows_pk_probe_into, JoinBuild};
use crate::plan::JoinKind;
use crate::setops::{difference_rows_into, intersect_rows_into, union_rows_into};

use super::batch;
use super::column::{run_ops, ColumnChunk};
use super::compile::{JoinRight, Node};
use super::pipeline::{feed_borrowed, feed_owned, RowSink};
use super::MorselScheduler;

/// A metering handle for one plan node: the shared sink plus the node's
/// pre-order slot id. Copied down the tree; absent (`None`) on the
/// uninstrumented paths.
#[derive(Clone, Copy)]
pub(super) struct Meter<'m> {
    /// The caller-owned sink (one slot per node).
    pub sink: &'m MetricsSink,
    /// Pre-order id of the node this handle meters.
    pub id: usize,
}

impl<'m> Meter<'m> {
    fn slot(&self) -> &'m OpSlot {
        self.sink.slot(self.id)
    }

    fn at(self, id: usize) -> Meter<'m> {
        Meter { sink: self.sink, id }
    }
}

pub(super) type OptMeter<'m> = Option<Meter<'m>>;

/// The meter for a node's child at pre-order offset `off` from the parent.
fn child(m: OptMeter<'_>, off: usize) -> OptMeter<'_> {
    m.map(|mm| mm.at(mm.id + off))
}

/// A [`RowSink`] adapter counting survivors on their way into a γ group
/// map — used only when metered, so the uninstrumented streaming path
/// keeps its direct `feed_borrowed(row, ops, &mut gm)` shape.
struct Counting<'a, 'g> {
    gm: &'a mut GroupMap<'g>,
    n: &'a mut u64,
}

impl RowSink for Counting<'_, '_> {
    fn owned(&mut self, row: Row) {
        *self.n += 1;
        self.gm.owned(row);
    }

    fn borrowed(&mut self, row: &[Value]) {
        *self.n += 1;
        RowSink::borrowed(self.gm, row);
    }
}

/// A node's output rows for read-only consumers (join build sides, set-op
/// right inputs): a bare leaf scan lends the bound table's rows directly —
/// no clone at all — while anything else materializes.
enum Batch<'a> {
    Borrowed(&'a [Row]),
    Owned(Vec<Row>),
}

impl Batch<'_> {
    /// Return an owned batch's buffer to the thread pool.
    fn recycle(self) {
        if let Batch::Owned(rows) = self {
            batch::recycle(rows);
        }
    }
}

impl std::ops::Deref for Batch<'_> {
    type Target = [Row];
    fn deref(&self) -> &[Row] {
        match self {
            Batch::Borrowed(rows) => rows,
            Batch::Owned(rows) => rows,
        }
    }
}

/// Run a node for a consumer that only reads the batch. A borrowed bare
/// leaf never "runs", so when metered its slot records the pass-through
/// row counts directly.
fn run_node_ref<'a>(
    node: &Node,
    b: &Bindings<'a>,
    vec: bool,
    m: OptMeter<'_>,
) -> Result<Batch<'a>> {
    match node {
        Node::FusedScan { leaf, ops, .. } if ops.is_empty() => {
            let t = leaf.resolve(b)?;
            if let Some(mm) = m {
                let n = t.len() as u64;
                mm.slot().merge(&OpMetrics { rows_in: n, rows_out: n, ..Default::default() });
            }
            Ok(Batch::Borrowed(t.rows()))
        }
        other => Ok(Batch::Owned(run_node(other, b, vec, m)?)),
    }
}

/// Run a vectorized fused-scan segment over one chunk range of the shared
/// column set, gathering the survivors into a fresh row batch. Also
/// returns the segment's zone-map skip count.
fn run_vec_segment(
    cols: &svc_storage::ColumnSet,
    vops: &[super::column::VecOp],
    lo: usize,
    hi: usize,
) -> (Vec<Row>, u32) {
    let mut chunk = ColumnChunk::over(cols, lo, hi);
    let mut scratch = Row::new();
    let zone_skips = run_ops(&mut chunk, vops, &mut scratch);
    let mut out = batch::take(chunk.len());
    chunk.gather_into(&mut out);
    (out, zone_skips)
}

/// Run a node to a materialized row batch. `vec` selects the vectorized
/// kernels for fused-scan segments; everything downstream of the
/// chunk→row boundary is identical either way.
pub(super) fn run_node(
    node: &Node,
    b: &Bindings<'_>,
    vec: bool,
    m: OptMeter<'_>,
) -> Result<Vec<Row>> {
    let t0 = m.is_some().then(Instant::now);
    let mut stat = OpMetrics::default();
    let out = match node {
        Node::FusedScan { leaf, ops, vops } => {
            let t = leaf.resolve(b)?;
            stat.rows_in = t.len() as u64;
            if ops.is_empty() {
                // Bare scan: every row survives; clone the rows, skip the
                // per-row op dispatch.
                let mut out = batch::take(t.len());
                out.extend_from_slice(t.rows());
                out
            } else if vec && super::column::profitable(vops) {
                // Leaf conversion: the bound table's cached columnar
                // projection (built once per mutation epoch).
                let cols = t.columns();
                let (out, zone_skips) = run_vec_segment(&cols, vops, 0, cols.len);
                stat.vec_chunks = 1;
                stat.zone_skips = u64::from(zone_skips);
                out
            } else {
                stat.row_batches = 1;
                let mut out = batch::take(0);
                for row in t.rows() {
                    feed_borrowed(row, ops, &mut out);
                }
                out
            }
        }
        Node::Fused { input, ops } => {
            let mut rows = run_node(input, b, vec, child(m, 1))?;
            stat.rows_in = rows.len() as u64;
            stat.row_batches = 1;
            let mut out = batch::take(rows.len());
            for row in rows.drain(..) {
                feed_owned(row, ops, &mut out);
            }
            batch::recycle(rows);
            out
        }
        Node::Join { left, right, kind, on_idx, pad_left, pad_right } => {
            let mut lrows = run_node(left, b, vec, child(m, 1))?;
            stat.probe_rows = lrows.len() as u64;
            let left_cols: Vec<usize> = on_idx.iter().map(|&(l, _)| l).collect();
            let mut out = batch::take(lrows.len());
            match right {
                JoinRight::PkProbeLeaf(leaf) => {
                    let t = leaf.resolve(b)?;
                    stat.build_rows = t.len() as u64;
                    join_rows_pk_probe_into(&mut lrows, t, *kind, &left_cols, *pad_right, &mut out);
                }
                JoinRight::Build(rnode) => {
                    let rrows = run_node_ref(rnode, b, vec, child(m, 1 + left.subtree_size()))?;
                    stat.build_rows = rrows.len() as u64;
                    let build = JoinBuild::new(&rrows, on_idx);
                    stat.partitions = build.partition_count() as u64;
                    stat.part_max_rows = build.max_partition_rows();
                    let mut matched: Vec<u32> = Vec::new();
                    build.probe(&mut lrows, *kind, &left_cols, *pad_right, &mut out, &mut matched);
                    if matches!(kind, JoinKind::Right | JoinKind::Full) {
                        build.emit_unmatched_right(&matched, *pad_left, &mut out);
                    }
                    rrows.recycle();
                }
            }
            stat.rows_in = stat.probe_rows + stat.build_rows;
            batch::recycle(lrows);
            out
        }
        Node::Aggregate { input, group_idx, aggs, groups_hint } => {
            let make = |input_len: usize| match groups_hint {
                Some(h) => GroupMap::with_capacity(group_idx, aggs, *h),
                None => GroupMap::with_input_len(group_idx, aggs, input_len),
            };
            let cm = child(m, 1);
            let gm = match &**input {
                // γ over a fused scan: the filtered input batch never
                // exists. Vectorized, kernels refine the selection first
                // and only survivors are gathered (into a reused scratch
                // row) for group accumulation — same order, so the group
                // map contents are identical to the row path's.
                Node::FusedScan { leaf, ops, vops }
                    if vec && !ops.is_empty() && super::column::profitable(vops) =>
                {
                    let t = leaf.resolve(b)?;
                    let cols = t.columns();
                    let mut chunk = ColumnChunk::over(&cols, 0, cols.len);
                    let mut scratch = Row::new();
                    let zone_skips = run_ops(&mut chunk, vops, &mut scratch);
                    let mut gm = make(chunk.len());
                    let cs = chunk.columns();
                    for i in chunk.sel.iter() {
                        cs.gather_row(i, &mut scratch);
                        gm.push(&scratch);
                    }
                    if let Some(c) = cm {
                        c.slot().merge(&OpMetrics {
                            rows_in: t.len() as u64,
                            rows_out: chunk.len() as u64,
                            vec_chunks: 1,
                            zone_skips: u64::from(zone_skips),
                            ..Default::default()
                        });
                    }
                    stat.rows_in = chunk.len() as u64;
                    gm
                }
                Node::FusedScan { leaf, ops, .. } => {
                    let t = leaf.resolve(b)?;
                    let mut gm = make(t.len());
                    if let Some(c) = cm {
                        let mut survivors = 0u64;
                        {
                            let mut sink = Counting { gm: &mut gm, n: &mut survivors };
                            for row in t.rows() {
                                feed_borrowed(row, ops, &mut sink);
                            }
                        }
                        c.slot().merge(&OpMetrics {
                            rows_in: t.len() as u64,
                            rows_out: survivors,
                            row_batches: 1,
                            ..Default::default()
                        });
                        stat.rows_in = survivors;
                    } else {
                        for row in t.rows() {
                            feed_borrowed(row, ops, &mut gm);
                        }
                    }
                    gm
                }
                other => {
                    let rows = run_node(other, b, vec, cm)?;
                    stat.rows_in = rows.len() as u64;
                    let mut gm = make(rows.len());
                    for row in &rows {
                        gm.push(row);
                    }
                    batch::recycle(rows);
                    gm
                }
            };
            stat.groups = gm.group_count() as u64;
            let mut out = batch::take(gm.group_count());
            gm.finish_into(&mut out);
            out
        }
        Node::SetOp { kind, left, right } => {
            let rm = child(m, 1 + left.subtree_size());
            let mut lrows = run_node(left, b, vec, child(m, 1))?;
            stat.rows_in = lrows.len() as u64;
            let mut out = batch::take(lrows.len());
            match kind {
                crate::derive::SetOpKind::Union => {
                    let mut rrows = run_node(right, b, vec, rm)?;
                    stat.rows_in += rrows.len() as u64;
                    union_rows_into(&mut lrows, &mut rrows, &mut out);
                    batch::recycle(rrows);
                }
                crate::derive::SetOpKind::Intersect => {
                    let rrows = run_node_ref(right, b, vec, rm)?;
                    stat.rows_in += rrows.len() as u64;
                    intersect_rows_into(&mut lrows, &rrows, &mut out);
                    rrows.recycle();
                }
                crate::derive::SetOpKind::Difference => {
                    let rrows = run_node_ref(right, b, vec, rm)?;
                    stat.rows_in += rrows.len() as u64;
                    difference_rows_into(&mut lrows, &rrows, &mut out);
                    rrows.recycle();
                }
            }
            batch::recycle(lrows);
            out
        }
    };
    if let (Some(mm), Some(t0)) = (m, t0) {
        stat.rows_out = out.len() as u64;
        stat.wall_ns = t0.elapsed().as_nanos() as u64;
        mm.slot().merge(&stat);
    }
    Ok(out)
}

/// Morsel-parallel execution context: the scheduler the morsel tasks run
/// on, the rows-per-morsel split size, whether fused-scan segments run
/// vectorized, and the hash-partition count for join builds and set-op
/// dedup (`0` = derive from the build input size at run time).
pub(super) struct Par<'e> {
    pub sched: &'e dyn MorselScheduler,
    pub morsel: usize,
    pub vec: bool,
    pub parts: usize,
}

/// The effective partition count for a hash phase over `rows` build-side
/// rows: the explicit knob rounded up to a power of two, or the size-based
/// auto tune.
fn resolve_parts(knob: usize, rows: usize) -> usize {
    if knob == 0 {
        super::auto_partition_count(rows)
    } else {
        knob.next_power_of_two()
    }
}

/// Split `len` rows into morsel-sized `(lo, hi)` index ranges.
pub(super) fn ranges(len: usize, morsel: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(len.div_ceil(morsel));
    let mut lo = 0;
    while lo < len {
        let hi = (lo + morsel).min(len);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

/// Fan a morsel closure out over `n` tasks on the scheduler and collect the
/// per-morsel results in morsel order. A scheduler failure (a panicked
/// morsel) surfaces as the scheduler's error; individual morsel errors come
/// back in index order.
pub(super) fn fan_out<T: Send>(
    par: &Par<'_>,
    n: usize,
    f: &(dyn Fn(usize) -> Result<T> + Sync),
) -> Result<Vec<T>> {
    let slots: Vec<Mutex<Option<Result<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    par.sched.run_tasks(n, &|i| {
        // Failpoint site: one morsel of a parallel run. The closure has no
        // error channel of its own, so an injected `Error` lands in the
        // morsel's result slot (surfacing through the index-order collect
        // below) and an injected `Panic` unwinds into the scheduler's
        // per-session panic isolation — both the paths a real morsel
        // failure would take.
        if cfg!(feature = "failpoints") {
            if let Some(fired) = svc_fault::check(svc_fault::site::EXEC_MORSEL) {
                match fired.action {
                    svc_fault::FailAction::Panic => panic!("{}", fired.message),
                    svc_fault::FailAction::Error => {
                        *slots[i].lock().expect("morsel slot poisoned") =
                            Some(Err(StorageError::Invalid(fired.message)));
                        return;
                    }
                }
            }
        }
        *slots[i].lock().expect("morsel slot poisoned") = Some(f(i));
    })?;
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("morsel slot poisoned").unwrap_or_else(|| {
                Err(StorageError::Invalid("morsel task was not executed".into()))
            })
        })
        .collect()
}

/// Move a batch into morsel-sized owned chunks — rows are moved, never
/// cloned — each behind a `Mutex` so exactly one morsel task takes it.
fn owned_chunks(rows: Vec<Row>, morsel: usize) -> Vec<Mutex<Option<Vec<Row>>>> {
    let mut chunks = Vec::with_capacity(rows.len().div_ceil(morsel));
    let mut it = rows.into_iter();
    loop {
        let chunk: Vec<Row> = it.by_ref().take(morsel).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(Mutex::new(Some(chunk)));
    }
    chunks
}

/// Take the chunk a morsel task owns.
fn take_chunk(chunks: &[Mutex<Option<Vec<Row>>>], i: usize) -> Vec<Row> {
    chunks[i].lock().expect("chunk poisoned").take().expect("chunk taken once")
}

/// Concatenate per-morsel batches in morsel order, recycling the drained
/// buffers.
fn concat(outs: Vec<Vec<Row>>) -> Vec<Row> {
    let mut it = outs.into_iter();
    let Some(mut all) = it.next() else {
        return batch::take(0);
    };
    for mut v in it {
        all.append(&mut v);
        batch::recycle(v);
    }
    all
}

/// Run a node for a read-only consumer, children morsel-parallel.
fn run_node_ref_par<'a>(
    node: &Node,
    b: &Bindings<'a>,
    par: &Par<'_>,
    m: OptMeter<'_>,
) -> Result<Batch<'a>> {
    match node {
        Node::FusedScan { leaf, ops, .. } if ops.is_empty() => {
            let t = leaf.resolve(b)?;
            if let Some(mm) = m {
                let n = t.len() as u64;
                mm.slot().merge(&OpMetrics { rows_in: n, rows_out: n, ..Default::default() });
            }
            Ok(Batch::Borrowed(t.rows()))
        }
        other => Ok(Batch::Owned(run_node_par(other, b, par, m)?)),
    }
}

/// Run a node morsel-parallel to a materialized row batch. Inputs at or
/// below the morsel size fall back to the sequential core inline — the
/// scheduler is only engaged where a split exists (those delegations
/// record through [`run_node`]'s meter, so metrics stay complete).
pub(super) fn run_node_par(
    node: &Node,
    b: &Bindings<'_>,
    par: &Par<'_>,
    m: OptMeter<'_>,
) -> Result<Vec<Row>> {
    let t0 = m.is_some().then(Instant::now);
    let mut stat = OpMetrics::default();
    let out = match node {
        Node::FusedScan { leaf, ops, vops } => {
            let t = leaf.resolve(b)?;
            let rows = t.rows();
            // A bare scan is a plain copy; splitting it buys nothing.
            if ops.is_empty() || rows.len() <= par.morsel {
                return run_node(node, b, par.vec, m);
            }
            stat.rows_in = rows.len() as u64;
            if par.vec && super::column::profitable(vops) {
                // Morsels are chunk ranges over the one shared column set:
                // the leaf conversion happens (at most) once per epoch, not
                // per morsel.
                let cols = t.columns();
                let cols = &*cols;
                let rs = ranges(cols.len, par.morsel);
                stat.morsels = rs.len() as u64;
                stat.vec_chunks = rs.len() as u64;
                // Zone skips are per-morsel facts; they flow straight into
                // the slot's atomics (commutative adds — deterministic).
                let slot = m.map(|mm| mm.slot());
                let outs = fan_out(par, rs.len(), &|i| {
                    let (out, zone_skips) = run_vec_segment(cols, vops, rs[i].0, rs[i].1);
                    if let Some(s) = slot {
                        s.add_zone_skips(u64::from(zone_skips));
                    }
                    Ok(out)
                })?;
                concat(outs)
            } else {
                let rs = ranges(rows.len(), par.morsel);
                stat.morsels = rs.len() as u64;
                stat.row_batches = rs.len() as u64;
                let outs = fan_out(par, rs.len(), &|i| {
                    let (lo, hi) = rs[i];
                    let mut out = batch::take(0);
                    for row in &rows[lo..hi] {
                        feed_borrowed(row, ops, &mut out);
                    }
                    Ok(out)
                })?;
                concat(outs)
            }
        }
        Node::Fused { input, ops } => {
            let mut rows = run_node_par(input, b, par, child(m, 1))?;
            stat.rows_in = rows.len() as u64;
            if rows.len() <= par.morsel {
                stat.row_batches = 1;
                let mut out = batch::take(rows.len());
                for row in rows.drain(..) {
                    feed_owned(row, ops, &mut out);
                }
                batch::recycle(rows);
                out
            } else {
                let chunks = owned_chunks(rows, par.morsel);
                stat.morsels = chunks.len() as u64;
                stat.row_batches = chunks.len() as u64;
                let outs = fan_out(par, chunks.len(), &|i| {
                    let mut chunk = take_chunk(&chunks, i);
                    let mut out = batch::take(chunk.len());
                    for row in chunk.drain(..) {
                        feed_owned(row, ops, &mut out);
                    }
                    batch::recycle(chunk);
                    Ok(out)
                })?;
                concat(outs)
            }
        }
        Node::Join { left, right, kind, on_idx, pad_left, pad_right } => {
            let mut lrows = run_node_par(left, b, par, child(m, 1))?;
            stat.probe_rows = lrows.len() as u64;
            let left_cols: Vec<usize> = on_idx.iter().map(|&(l, _)| l).collect();
            let out = match right {
                JoinRight::PkProbeLeaf(leaf) => {
                    let t = leaf.resolve(b)?;
                    stat.build_rows = t.len() as u64;
                    if lrows.len() <= par.morsel {
                        let mut out = batch::take(lrows.len());
                        join_rows_pk_probe_into(
                            &mut lrows, t, *kind, &left_cols, *pad_right, &mut out,
                        );
                        batch::recycle(lrows);
                        out
                    } else {
                        let chunks = owned_chunks(lrows, par.morsel);
                        stat.morsels = chunks.len() as u64;
                        let outs = fan_out(par, chunks.len(), &|i| {
                            let mut chunk = take_chunk(&chunks, i);
                            let mut out = batch::take(chunk.len());
                            join_rows_pk_probe_into(
                                &mut chunk, t, *kind, &left_cols, *pad_right, &mut out,
                            );
                            batch::recycle(chunk);
                            Ok(out)
                        })?;
                        concat(outs)
                    }
                }
                JoinRight::Build(rnode) => {
                    // Build side constructed once; every morsel probes it
                    // read-only. A bare leaf resolves inline (instead of
                    // through `run_node_ref_par`) so the partition scatter
                    // can hash its cached columnar projection directly.
                    let rm = child(m, 1 + left.subtree_size());
                    let (rrows, leaf_cols) = match &**rnode {
                        Node::FusedScan { leaf, ops, .. } if ops.is_empty() => {
                            let t = leaf.resolve(b)?;
                            if let Some(mm) = rm {
                                let n = t.len() as u64;
                                mm.slot().merge(&OpMetrics {
                                    rows_in: n,
                                    rows_out: n,
                                    ..Default::default()
                                });
                            }
                            (Batch::Borrowed(t.rows()), par.vec.then(|| t.columns()))
                        }
                        other => (Batch::Owned(run_node_par(other, b, par, rm)?), None),
                    };
                    stat.build_rows = rrows.len() as u64;
                    let parts = resolve_parts(par.parts, rrows.len());
                    let build = if parts == 1 || rrows.len() <= par.morsel {
                        // Too small to fan out: build the shards inline —
                        // same maps, same probe results, by construction.
                        JoinBuild::with_partitions(&rrows, on_idx, parts)
                    } else {
                        super::partition::build_join_par(
                            &rrows,
                            leaf_cols.as_deref(),
                            on_idx,
                            parts,
                            par,
                        )?
                    };
                    stat.partitions = build.partition_count() as u64;
                    stat.part_max_rows = build.max_partition_rows();
                    let mut out;
                    let mut matched: Vec<u32> = Vec::new();
                    if lrows.len() <= par.morsel {
                        out = batch::take(lrows.len());
                        build.probe(
                            &mut lrows,
                            *kind,
                            &left_cols,
                            *pad_right,
                            &mut out,
                            &mut matched,
                        );
                        batch::recycle(lrows);
                    } else {
                        let chunks = owned_chunks(lrows, par.morsel);
                        stat.morsels = chunks.len() as u64;
                        let outs = fan_out(par, chunks.len(), &|i| {
                            let mut chunk = take_chunk(&chunks, i);
                            let mut rows = batch::take(chunk.len());
                            let mut hit: Vec<u32> = Vec::new();
                            build.probe(
                                &mut chunk, *kind, &left_cols, *pad_right, &mut rows, &mut hit,
                            );
                            batch::recycle(chunk);
                            Ok((rows, hit))
                        })?;
                        // Barrier: concatenate probe outputs in morsel
                        // order and union the matched right indices.
                        let mut batches = Vec::with_capacity(outs.len());
                        for (rows, hit) in outs {
                            batches.push(rows);
                            matched.extend(hit);
                        }
                        out = concat(batches);
                    }
                    if matches!(kind, JoinKind::Right | JoinKind::Full) {
                        build.emit_unmatched_right(&matched, *pad_left, &mut out);
                    }
                    drop(build);
                    rrows.recycle();
                    out
                }
            };
            stat.rows_in = stat.probe_rows + stat.build_rows;
            out
        }
        Node::Aggregate { input, group_idx, aggs, groups_hint } => {
            // Per-morsel group maps, merged in morsel order at the barrier
            // (the group-map core accepts borrowed rows, so partial maps
            // merge without re-hashing values).
            let make = |len: usize| match groups_hint {
                Some(h) => GroupMap::with_capacity(group_idx, aggs, (*h).min(len.max(8))),
                None => GroupMap::with_input_len(group_idx, aggs, len),
            };
            let cm = child(m, 1);
            let merged = match &**input {
                Node::FusedScan { leaf, ops, vops } => {
                    let t = leaf.resolve(b)?;
                    let rows = t.rows();
                    if rows.len() <= par.morsel {
                        return run_node(node, b, par.vec, m);
                    }
                    if par.vec && !ops.is_empty() && super::column::profitable(vops) {
                        let cols = t.columns();
                        let cols = &*cols;
                        let rs = ranges(cols.len, par.morsel);
                        stat.morsels = rs.len() as u64;
                        let maps = fan_out(par, rs.len(), &|i| {
                            let (lo, hi) = rs[i];
                            let mut chunk = ColumnChunk::over(cols, lo, hi);
                            let mut scratch = Row::new();
                            let zone_skips = run_ops(&mut chunk, vops, &mut scratch);
                            let mut gm = make(chunk.len());
                            let cs = chunk.columns();
                            for i in chunk.sel.iter() {
                                cs.gather_row(i, &mut scratch);
                                gm.push(&scratch);
                            }
                            Ok((gm, chunk.len() as u64, zone_skips))
                        })?;
                        let mut survivors = 0u64;
                        let mut zone_skips = 0u64;
                        let mut gms = Vec::with_capacity(maps.len());
                        for (gm, n, zs) in maps {
                            survivors += n;
                            zone_skips += u64::from(zs);
                            gms.push(gm);
                        }
                        if let Some(c) = cm {
                            c.slot().merge(&OpMetrics {
                                rows_in: rows.len() as u64,
                                rows_out: survivors,
                                vec_chunks: rs.len() as u64,
                                zone_skips,
                                ..Default::default()
                            });
                        }
                        stat.rows_in = survivors;
                        merge_maps(gms)
                    } else {
                        let rs = ranges(rows.len(), par.morsel);
                        stat.morsels = rs.len() as u64;
                        let metered = m.is_some();
                        let maps = fan_out(par, rs.len(), &|i| {
                            let (lo, hi) = rs[i];
                            let mut gm = make(hi - lo);
                            let mut survivors = 0u64;
                            if metered {
                                let mut sink = Counting { gm: &mut gm, n: &mut survivors };
                                for row in &rows[lo..hi] {
                                    feed_borrowed(row, ops, &mut sink);
                                }
                            } else {
                                for row in &rows[lo..hi] {
                                    feed_borrowed(row, ops, &mut gm);
                                }
                            }
                            Ok((gm, survivors))
                        })?;
                        let mut survivors = 0u64;
                        let mut gms = Vec::with_capacity(maps.len());
                        for (gm, n) in maps {
                            survivors += n;
                            gms.push(gm);
                        }
                        if let Some(c) = cm {
                            c.slot().merge(&OpMetrics {
                                rows_in: rows.len() as u64,
                                rows_out: survivors,
                                row_batches: rs.len() as u64,
                                ..Default::default()
                            });
                        }
                        stat.rows_in = survivors;
                        merge_maps(gms)
                    }
                }
                other => {
                    let rows = run_node_par(other, b, par, cm)?;
                    stat.rows_in = rows.len() as u64;
                    let merged = if rows.len() <= par.morsel {
                        let mut gm = make(rows.len());
                        for row in &rows {
                            gm.push(row);
                        }
                        gm
                    } else {
                        let rs = ranges(rows.len(), par.morsel);
                        stat.morsels = rs.len() as u64;
                        let maps = fan_out(par, rs.len(), &|i| {
                            let (lo, hi) = rs[i];
                            let mut gm = make(hi - lo);
                            for row in &rows[lo..hi] {
                                gm.push(row);
                            }
                            Ok(gm)
                        })?;
                        merge_maps(maps)
                    };
                    batch::recycle(rows);
                    merged
                }
            };
            stat.groups = merged.group_count() as u64;
            let mut out = batch::take(merged.group_count());
            merged.finish_into(&mut out);
            out
        }
        Node::SetOp { kind, left, right } => {
            // Children run morsel-parallel. The dedup itself partitions by
            // whole-row hash when the combined input is worth fanning out
            // (equal rows share a partition, so partition-local sets answer
            // global membership; the merge drains inputs in order — output
            // bit-identical to the sequential cores, see
            // [`super::partition`]). Small inputs keep the driver-side
            // single-set pass.
            let rm = child(m, 1 + left.subtree_size());
            let mut lrows = run_node_par(left, b, par, child(m, 1))?;
            stat.rows_in = lrows.len() as u64;
            let mut out = batch::take(lrows.len());
            match kind {
                crate::derive::SetOpKind::Union => {
                    let mut rrows = run_node_par(right, b, par, rm)?;
                    stat.rows_in += rrows.len() as u64;
                    let total = lrows.len() + rrows.len();
                    let parts = resolve_parts(par.parts, total);
                    if parts > 1 && total > par.morsel {
                        stat.partitions = parts as u64;
                        stat.part_max_rows = super::partition::union_rows_par(
                            &mut lrows, &mut rrows, parts, par, &mut out,
                        )?;
                    } else {
                        union_rows_into(&mut lrows, &mut rrows, &mut out);
                    }
                    batch::recycle(rrows);
                }
                crate::derive::SetOpKind::Intersect => {
                    let rrows = run_node_ref_par(right, b, par, rm)?;
                    stat.rows_in += rrows.len() as u64;
                    let total = lrows.len() + rrows.len();
                    let parts = resolve_parts(par.parts, total);
                    if parts > 1 && total > par.morsel {
                        stat.partitions = parts as u64;
                        stat.part_max_rows = super::partition::filter_rows_par(
                            true, &mut lrows, &rrows, parts, par, &mut out,
                        )?;
                    } else {
                        intersect_rows_into(&mut lrows, &rrows, &mut out);
                    }
                    rrows.recycle();
                }
                crate::derive::SetOpKind::Difference => {
                    let rrows = run_node_ref_par(right, b, par, rm)?;
                    stat.rows_in += rrows.len() as u64;
                    let total = lrows.len() + rrows.len();
                    let parts = resolve_parts(par.parts, total);
                    if parts > 1 && total > par.morsel {
                        stat.partitions = parts as u64;
                        stat.part_max_rows = super::partition::filter_rows_par(
                            false, &mut lrows, &rrows, parts, par, &mut out,
                        )?;
                    } else {
                        difference_rows_into(&mut lrows, &rrows, &mut out);
                    }
                    rrows.recycle();
                }
            }
            batch::recycle(lrows);
            out
        }
    };
    if let (Some(mm), Some(t0)) = (m, t0) {
        stat.rows_out = out.len() as u64;
        stat.wall_ns = t0.elapsed().as_nanos() as u64;
        mm.slot().merge(&stat);
    }
    Ok(out)
}

/// Merge per-morsel group maps in morsel order.
fn merge_maps(maps: Vec<GroupMap<'_>>) -> GroupMap<'_> {
    let mut it = maps.into_iter();
    let mut base = it.next().expect("at least one morsel map");
    for m in it {
        base.merge(m);
    }
    base
}

/// Wrap the root batch into the output [`Table`], building the key index
/// exactly once. Fused chains over a keyed source are key-unique by
/// construction (filters and key-preserving maps cannot introduce
/// duplicates), so they skip per-row duplicate validation the same way the
/// legacy evaluator's σ/η nodes did; breaker roots keep the validating
/// build.
pub(super) fn finish_root(
    node: &Node,
    out: &crate::derive::Derived,
    rows: Vec<Row>,
) -> Result<Table> {
    match node {
        Node::FusedScan { .. } => {
            Table::from_unique_rows(out.schema.clone(), out.key.clone(), rows)
        }
        _ => Table::from_rows(out.schema.clone(), out.key.clone(), rows),
    }
}
