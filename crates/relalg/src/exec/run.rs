//! Executing compiled nodes: streams for fused chains, `Vec<Row>` batches
//! for breakers. No intermediate keyed [`Table`] is ever built — the
//! plan root wraps the final batch exactly once. Batch buffers come from
//! the per-thread pool ([`super::batch`]) and consumed inputs are recycled
//! into it, so re-running a compiled plan allocates almost nothing.
//!
//! Two drivers share the per-operator cores:
//!
//! * [`run_node`] — the sequential executor: one thread walks the tree.
//! * [`run_node_par`] — the morsel-parallel executor: base scans and
//!   probe/fused inputs split into row-range morsels that run on a
//!   [`super::MorselScheduler`]; per-morsel outputs concatenate **in
//!   morsel order** and per-morsel γ [`GroupMap`]s merge in morsel order
//!   at the pipeline barrier, so the result — including output order at
//!   the keyed root — is a function of the morsel size only, never of the
//!   scheduler's thread count or interleaving.

use std::sync::Mutex;

use svc_storage::{Result, Row, StorageError, Table};

use crate::aggregate::GroupMap;
use crate::eval::Bindings;
use crate::join::{join_rows_pk_probe_into, JoinBuild};
use crate::plan::JoinKind;
use crate::setops::{difference_rows_into, intersect_rows_into, union_rows_into};

use super::batch;
use super::column::{run_ops, ColumnChunk};
use super::compile::{JoinRight, Node};
use super::pipeline::{feed_borrowed, feed_owned};
use super::MorselScheduler;

/// A node's output rows for read-only consumers (join build sides, set-op
/// right inputs): a bare leaf scan lends the bound table's rows directly —
/// no clone at all — while anything else materializes.
enum Batch<'a> {
    Borrowed(&'a [Row]),
    Owned(Vec<Row>),
}

impl Batch<'_> {
    /// Return an owned batch's buffer to the thread pool.
    fn recycle(self) {
        if let Batch::Owned(rows) = self {
            batch::recycle(rows);
        }
    }
}

impl std::ops::Deref for Batch<'_> {
    type Target = [Row];
    fn deref(&self) -> &[Row] {
        match self {
            Batch::Borrowed(rows) => rows,
            Batch::Owned(rows) => rows,
        }
    }
}

/// Run a node for a consumer that only reads the batch.
fn run_node_ref<'a>(node: &Node, b: &Bindings<'a>, vec: bool) -> Result<Batch<'a>> {
    match node {
        Node::FusedScan { leaf, ops, .. } if ops.is_empty() => {
            Ok(Batch::Borrowed(leaf.resolve(b)?.rows()))
        }
        other => Ok(Batch::Owned(run_node(other, b, vec)?)),
    }
}

/// Run a vectorized fused-scan segment over one chunk range of the shared
/// column set, gathering the survivors into a fresh row batch.
fn run_vec_segment(
    cols: &svc_storage::ColumnSet,
    vops: &[super::column::VecOp],
    lo: usize,
    hi: usize,
) -> Vec<Row> {
    let mut chunk = ColumnChunk::over(cols, lo, hi);
    let mut scratch = Row::new();
    run_ops(&mut chunk, vops, &mut scratch);
    let mut out = batch::take(chunk.len());
    chunk.gather_into(&mut out);
    out
}

/// Run a node to a materialized row batch. `vec` selects the vectorized
/// kernels for fused-scan segments; everything downstream of the
/// chunk→row boundary is identical either way.
pub(super) fn run_node(node: &Node, b: &Bindings<'_>, vec: bool) -> Result<Vec<Row>> {
    Ok(match node {
        Node::FusedScan { leaf, ops, vops } => {
            let t = leaf.resolve(b)?;
            if ops.is_empty() {
                // Bare scan: every row survives; clone the rows, skip the
                // per-row op dispatch.
                let mut out = batch::take(t.len());
                out.extend_from_slice(t.rows());
                out
            } else if vec && super::column::profitable(vops) {
                // Leaf conversion: the bound table's cached columnar
                // projection (built once per mutation epoch).
                let cols = t.columns();
                run_vec_segment(&cols, vops, 0, cols.len)
            } else {
                let mut out = batch::take(0);
                for row in t.rows() {
                    feed_borrowed(row, ops, &mut out);
                }
                out
            }
        }
        Node::Fused { input, ops } => {
            let mut rows = run_node(input, b, vec)?;
            let mut out = batch::take(rows.len());
            for row in rows.drain(..) {
                feed_owned(row, ops, &mut out);
            }
            batch::recycle(rows);
            out
        }
        Node::Join { left, right, kind, on_idx, pad_left, pad_right } => {
            let mut lrows = run_node(left, b, vec)?;
            let left_cols: Vec<usize> = on_idx.iter().map(|&(l, _)| l).collect();
            let mut out = batch::take(lrows.len());
            match right {
                JoinRight::PkProbeLeaf(leaf) => {
                    let t = leaf.resolve(b)?;
                    join_rows_pk_probe_into(&mut lrows, t, *kind, &left_cols, *pad_right, &mut out);
                }
                JoinRight::Build(rnode) => {
                    let rrows = run_node_ref(rnode, b, vec)?;
                    let build = JoinBuild::new(&rrows, on_idx);
                    let mut matched: Vec<u32> = Vec::new();
                    build.probe(&mut lrows, *kind, &left_cols, *pad_right, &mut out, &mut matched);
                    if matches!(kind, JoinKind::Right | JoinKind::Full) {
                        build.emit_unmatched_right(&matched, *pad_left, &mut out);
                    }
                    rrows.recycle();
                }
            }
            batch::recycle(lrows);
            out
        }
        Node::Aggregate { input, group_idx, aggs, groups_hint } => {
            let make = |input_len: usize| match groups_hint {
                Some(h) => GroupMap::with_capacity(group_idx, aggs, *h),
                None => GroupMap::with_input_len(group_idx, aggs, input_len),
            };
            let gm = match &**input {
                // γ over a fused scan: the filtered input batch never
                // exists. Vectorized, kernels refine the selection first
                // and only survivors are gathered (into a reused scratch
                // row) for group accumulation — same order, so the group
                // map contents are identical to the row path's.
                Node::FusedScan { leaf, ops, vops }
                    if vec && !ops.is_empty() && super::column::profitable(vops) =>
                {
                    let t = leaf.resolve(b)?;
                    let cols = t.columns();
                    let mut chunk = ColumnChunk::over(&cols, 0, cols.len);
                    let mut scratch = Row::new();
                    run_ops(&mut chunk, vops, &mut scratch);
                    let mut gm = make(chunk.len());
                    let cs = chunk.columns();
                    for i in chunk.sel.iter() {
                        cs.gather_row(i, &mut scratch);
                        gm.push(&scratch);
                    }
                    gm
                }
                Node::FusedScan { leaf, ops, .. } => {
                    let t = leaf.resolve(b)?;
                    let mut gm = make(t.len());
                    for row in t.rows() {
                        feed_borrowed(row, ops, &mut gm);
                    }
                    gm
                }
                other => {
                    let rows = run_node(other, b, vec)?;
                    let mut gm = make(rows.len());
                    for row in &rows {
                        gm.push(row);
                    }
                    batch::recycle(rows);
                    gm
                }
            };
            let mut out = batch::take(gm.group_count());
            gm.finish_into(&mut out);
            out
        }
        Node::SetOp { kind, left, right } => {
            let mut lrows = run_node(left, b, vec)?;
            let mut out = batch::take(lrows.len());
            match kind {
                crate::derive::SetOpKind::Union => {
                    let mut rrows = run_node(right, b, vec)?;
                    union_rows_into(&mut lrows, &mut rrows, &mut out);
                    batch::recycle(rrows);
                }
                crate::derive::SetOpKind::Intersect => {
                    let rrows = run_node_ref(right, b, vec)?;
                    intersect_rows_into(&mut lrows, &rrows, &mut out);
                    rrows.recycle();
                }
                crate::derive::SetOpKind::Difference => {
                    let rrows = run_node_ref(right, b, vec)?;
                    difference_rows_into(&mut lrows, &rrows, &mut out);
                    rrows.recycle();
                }
            }
            batch::recycle(lrows);
            out
        }
    })
}

/// Morsel-parallel execution context: the scheduler the morsel tasks run
/// on, the rows-per-morsel split size, and whether fused-scan segments
/// run vectorized.
pub(super) struct Par<'e> {
    pub sched: &'e dyn MorselScheduler,
    pub morsel: usize,
    pub vec: bool,
}

/// Split `len` rows into morsel-sized `(lo, hi)` index ranges.
fn ranges(len: usize, morsel: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(len.div_ceil(morsel));
    let mut lo = 0;
    while lo < len {
        let hi = (lo + morsel).min(len);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

/// Fan a morsel closure out over `n` tasks on the scheduler and collect the
/// per-morsel results in morsel order. A scheduler failure (a panicked
/// morsel) surfaces as the scheduler's error; individual morsel errors come
/// back in index order.
fn fan_out<T: Send>(
    par: &Par<'_>,
    n: usize,
    f: &(dyn Fn(usize) -> Result<T> + Sync),
) -> Result<Vec<T>> {
    let slots: Vec<Mutex<Option<Result<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    par.sched.run_tasks(n, &|i| {
        *slots[i].lock().expect("morsel slot poisoned") = Some(f(i));
    })?;
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("morsel slot poisoned").unwrap_or_else(|| {
                Err(StorageError::Invalid("morsel task was not executed".into()))
            })
        })
        .collect()
}

/// Move a batch into morsel-sized owned chunks — rows are moved, never
/// cloned — each behind a `Mutex` so exactly one morsel task takes it.
fn owned_chunks(rows: Vec<Row>, morsel: usize) -> Vec<Mutex<Option<Vec<Row>>>> {
    let mut chunks = Vec::with_capacity(rows.len().div_ceil(morsel));
    let mut it = rows.into_iter();
    loop {
        let chunk: Vec<Row> = it.by_ref().take(morsel).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(Mutex::new(Some(chunk)));
    }
    chunks
}

/// Take the chunk a morsel task owns.
fn take_chunk(chunks: &[Mutex<Option<Vec<Row>>>], i: usize) -> Vec<Row> {
    chunks[i].lock().expect("chunk poisoned").take().expect("chunk taken once")
}

/// Concatenate per-morsel batches in morsel order, recycling the drained
/// buffers.
fn concat(outs: Vec<Vec<Row>>) -> Vec<Row> {
    let mut it = outs.into_iter();
    let Some(mut all) = it.next() else {
        return batch::take(0);
    };
    for mut v in it {
        all.append(&mut v);
        batch::recycle(v);
    }
    all
}

/// Run a node for a read-only consumer, children morsel-parallel.
fn run_node_ref_par<'a>(node: &Node, b: &Bindings<'a>, par: &Par<'_>) -> Result<Batch<'a>> {
    match node {
        Node::FusedScan { leaf, ops, .. } if ops.is_empty() => {
            Ok(Batch::Borrowed(leaf.resolve(b)?.rows()))
        }
        other => Ok(Batch::Owned(run_node_par(other, b, par)?)),
    }
}

/// Run a node morsel-parallel to a materialized row batch. Inputs at or
/// below the morsel size fall back to the sequential core inline — the
/// scheduler is only engaged where a split exists.
pub(super) fn run_node_par(node: &Node, b: &Bindings<'_>, par: &Par<'_>) -> Result<Vec<Row>> {
    match node {
        Node::FusedScan { leaf, ops, vops } => {
            let t = leaf.resolve(b)?;
            let rows = t.rows();
            // A bare scan is a plain copy; splitting it buys nothing.
            if ops.is_empty() || rows.len() <= par.morsel {
                return run_node(node, b, par.vec);
            }
            if par.vec && super::column::profitable(vops) {
                // Morsels are chunk ranges over the one shared column set:
                // the leaf conversion happens (at most) once per epoch, not
                // per morsel.
                let cols = t.columns();
                let cols = &*cols;
                let rs = ranges(cols.len, par.morsel);
                let outs =
                    fan_out(par, rs.len(), &|i| Ok(run_vec_segment(cols, vops, rs[i].0, rs[i].1)))?;
                return Ok(concat(outs));
            }
            let rs = ranges(rows.len(), par.morsel);
            let outs = fan_out(par, rs.len(), &|i| {
                let (lo, hi) = rs[i];
                let mut out = batch::take(0);
                for row in &rows[lo..hi] {
                    feed_borrowed(row, ops, &mut out);
                }
                Ok(out)
            })?;
            Ok(concat(outs))
        }
        Node::Fused { input, ops } => {
            let mut rows = run_node_par(input, b, par)?;
            if rows.len() <= par.morsel {
                let mut out = batch::take(rows.len());
                for row in rows.drain(..) {
                    feed_owned(row, ops, &mut out);
                }
                batch::recycle(rows);
                return Ok(out);
            }
            let chunks = owned_chunks(rows, par.morsel);
            let outs = fan_out(par, chunks.len(), &|i| {
                let mut chunk = take_chunk(&chunks, i);
                let mut out = batch::take(chunk.len());
                for row in chunk.drain(..) {
                    feed_owned(row, ops, &mut out);
                }
                batch::recycle(chunk);
                Ok(out)
            })?;
            Ok(concat(outs))
        }
        Node::Join { left, right, kind, on_idx, pad_left, pad_right } => {
            let mut lrows = run_node_par(left, b, par)?;
            let left_cols: Vec<usize> = on_idx.iter().map(|&(l, _)| l).collect();
            match right {
                JoinRight::PkProbeLeaf(leaf) => {
                    let t = leaf.resolve(b)?;
                    if lrows.len() <= par.morsel {
                        let mut out = batch::take(lrows.len());
                        join_rows_pk_probe_into(
                            &mut lrows, t, *kind, &left_cols, *pad_right, &mut out,
                        );
                        batch::recycle(lrows);
                        return Ok(out);
                    }
                    let chunks = owned_chunks(lrows, par.morsel);
                    let outs = fan_out(par, chunks.len(), &|i| {
                        let mut chunk = take_chunk(&chunks, i);
                        let mut out = batch::take(chunk.len());
                        join_rows_pk_probe_into(
                            &mut chunk, t, *kind, &left_cols, *pad_right, &mut out,
                        );
                        batch::recycle(chunk);
                        Ok(out)
                    })?;
                    Ok(concat(outs))
                }
                JoinRight::Build(rnode) => {
                    // Build side constructed once; every morsel probes it
                    // read-only.
                    let rrows = run_node_ref_par(rnode, b, par)?;
                    let build = JoinBuild::new(&rrows, on_idx);
                    let mut out;
                    let mut matched: Vec<u32> = Vec::new();
                    if lrows.len() <= par.morsel {
                        out = batch::take(lrows.len());
                        build.probe(
                            &mut lrows,
                            *kind,
                            &left_cols,
                            *pad_right,
                            &mut out,
                            &mut matched,
                        );
                        batch::recycle(lrows);
                    } else {
                        let chunks = owned_chunks(lrows, par.morsel);
                        let outs = fan_out(par, chunks.len(), &|i| {
                            let mut chunk = take_chunk(&chunks, i);
                            let mut rows = batch::take(chunk.len());
                            let mut hit: Vec<u32> = Vec::new();
                            build.probe(
                                &mut chunk, *kind, &left_cols, *pad_right, &mut rows, &mut hit,
                            );
                            batch::recycle(chunk);
                            Ok((rows, hit))
                        })?;
                        // Barrier: concatenate probe outputs in morsel
                        // order and union the matched right indices.
                        let mut batches = Vec::with_capacity(outs.len());
                        for (rows, hit) in outs {
                            batches.push(rows);
                            matched.extend(hit);
                        }
                        out = concat(batches);
                    }
                    if matches!(kind, JoinKind::Right | JoinKind::Full) {
                        build.emit_unmatched_right(&matched, *pad_left, &mut out);
                    }
                    drop(build);
                    rrows.recycle();
                    Ok(out)
                }
            }
        }
        Node::Aggregate { input, group_idx, aggs, groups_hint } => {
            // Per-morsel group maps, merged in morsel order at the barrier
            // (the group-map core accepts borrowed rows, so partial maps
            // merge without re-hashing values).
            let make = |len: usize| match groups_hint {
                Some(h) => GroupMap::with_capacity(group_idx, aggs, (*h).min(len.max(8))),
                None => GroupMap::with_input_len(group_idx, aggs, len),
            };
            let merged = match &**input {
                Node::FusedScan { leaf, ops, vops } => {
                    let t = leaf.resolve(b)?;
                    let rows = t.rows();
                    if rows.len() <= par.morsel {
                        return run_node(node, b, par.vec);
                    }
                    if par.vec && !ops.is_empty() && super::column::profitable(vops) {
                        let cols = t.columns();
                        let cols = &*cols;
                        let rs = ranges(cols.len, par.morsel);
                        let maps = fan_out(par, rs.len(), &|i| {
                            let (lo, hi) = rs[i];
                            let mut chunk = ColumnChunk::over(cols, lo, hi);
                            let mut scratch = Row::new();
                            run_ops(&mut chunk, vops, &mut scratch);
                            let mut gm = make(chunk.len());
                            let cs = chunk.columns();
                            for i in chunk.sel.iter() {
                                cs.gather_row(i, &mut scratch);
                                gm.push(&scratch);
                            }
                            Ok(gm)
                        })?;
                        merge_maps(maps)
                    } else {
                        let rs = ranges(rows.len(), par.morsel);
                        let maps = fan_out(par, rs.len(), &|i| {
                            let (lo, hi) = rs[i];
                            let mut gm = make(hi - lo);
                            for row in &rows[lo..hi] {
                                feed_borrowed(row, ops, &mut gm);
                            }
                            Ok(gm)
                        })?;
                        merge_maps(maps)
                    }
                }
                other => {
                    let rows = run_node_par(other, b, par)?;
                    let merged = if rows.len() <= par.morsel {
                        let mut gm = make(rows.len());
                        for row in &rows {
                            gm.push(row);
                        }
                        gm
                    } else {
                        let rs = ranges(rows.len(), par.morsel);
                        let maps = fan_out(par, rs.len(), &|i| {
                            let (lo, hi) = rs[i];
                            let mut gm = make(hi - lo);
                            for row in &rows[lo..hi] {
                                gm.push(row);
                            }
                            Ok(gm)
                        })?;
                        merge_maps(maps)
                    };
                    batch::recycle(rows);
                    merged
                }
            };
            let mut out = batch::take(merged.group_count());
            merged.finish_into(&mut out);
            Ok(out)
        }
        Node::SetOp { kind, left, right } => {
            // Children run morsel-parallel; the set operation itself is a
            // driver-side pass (its global dedup set does not chunk).
            let mut lrows = run_node_par(left, b, par)?;
            let mut out = batch::take(lrows.len());
            match kind {
                crate::derive::SetOpKind::Union => {
                    let mut rrows = run_node_par(right, b, par)?;
                    union_rows_into(&mut lrows, &mut rrows, &mut out);
                    batch::recycle(rrows);
                }
                crate::derive::SetOpKind::Intersect => {
                    let rrows = run_node_ref_par(right, b, par)?;
                    intersect_rows_into(&mut lrows, &rrows, &mut out);
                    rrows.recycle();
                }
                crate::derive::SetOpKind::Difference => {
                    let rrows = run_node_ref_par(right, b, par)?;
                    difference_rows_into(&mut lrows, &rrows, &mut out);
                    rrows.recycle();
                }
            }
            batch::recycle(lrows);
            Ok(out)
        }
    }
}

/// Merge per-morsel group maps in morsel order.
fn merge_maps(maps: Vec<GroupMap<'_>>) -> GroupMap<'_> {
    let mut it = maps.into_iter();
    let mut base = it.next().expect("at least one morsel map");
    for m in it {
        base.merge(m);
    }
    base
}

/// Wrap the root batch into the output [`Table`], building the key index
/// exactly once. Fused chains over a keyed source are key-unique by
/// construction (filters and key-preserving maps cannot introduce
/// duplicates), so they skip per-row duplicate validation the same way the
/// legacy evaluator's σ/η nodes did; breaker roots keep the validating
/// build.
pub(super) fn finish_root(
    node: &Node,
    out: &crate::derive::Derived,
    rows: Vec<Row>,
) -> Result<Table> {
    match node {
        Node::FusedScan { .. } => {
            Table::from_unique_rows(out.schema.clone(), out.key.clone(), rows)
        }
        _ => Table::from_rows(out.schema.clone(), out.key.clone(), rows),
    }
}
