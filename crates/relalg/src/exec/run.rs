//! Executing compiled nodes: streams for fused chains, `Vec<Row>` batches
//! for breakers. No intermediate keyed [`Table`] is ever built — the
//! plan root wraps the final batch exactly once.

use svc_storage::{Result, Row, Table};

use crate::aggregate::GroupMap;
use crate::eval::Bindings;
use crate::join::{join_rows, join_rows_pk_probe};
use crate::setops::{difference_rows, intersect_rows, union_rows};

use super::compile::{JoinRight, Node};
use super::pipeline::{feed_borrowed, feed_owned};

/// A node's output rows for read-only consumers (join build sides, set-op
/// right inputs): a bare leaf scan lends the bound table's rows directly —
/// no clone at all — while anything else materializes.
enum Batch<'a> {
    Borrowed(&'a [Row]),
    Owned(Vec<Row>),
}

impl std::ops::Deref for Batch<'_> {
    type Target = [Row];
    fn deref(&self) -> &[Row] {
        match self {
            Batch::Borrowed(rows) => rows,
            Batch::Owned(rows) => rows,
        }
    }
}

/// Run a node for a consumer that only reads the batch.
fn run_node_ref<'a>(node: &Node, b: &Bindings<'a>) -> Result<Batch<'a>> {
    match node {
        Node::FusedScan { leaf, ops } if ops.is_empty() => {
            Ok(Batch::Borrowed(leaf.resolve(b)?.rows()))
        }
        other => Ok(Batch::Owned(run_node(other, b)?)),
    }
}

/// Run a node to a materialized row batch.
pub(super) fn run_node(node: &Node, b: &Bindings<'_>) -> Result<Vec<Row>> {
    Ok(match node {
        Node::FusedScan { leaf, ops } => {
            let t = leaf.resolve(b)?;
            if ops.is_empty() {
                // Bare scan: every row survives; clone the rows, skip the
                // per-row op dispatch.
                t.rows().to_vec()
            } else {
                let mut out: Vec<Row> = Vec::new();
                for row in t.rows() {
                    feed_borrowed(row, ops, &mut out);
                }
                out
            }
        }
        Node::Fused { input, ops } => {
            let rows = run_node(input, b)?;
            let mut out: Vec<Row> = Vec::with_capacity(rows.len());
            for row in rows {
                feed_owned(row, ops, &mut out);
            }
            out
        }
        Node::Join { left, right, kind, on_idx, pad_left, pad_right } => {
            let lrows = run_node(left, b)?;
            match right {
                JoinRight::PkProbeLeaf(leaf) => {
                    let t = leaf.resolve(b)?;
                    let left_cols: Vec<usize> = on_idx.iter().map(|&(l, _)| l).collect();
                    join_rows_pk_probe(lrows, t, *kind, &left_cols, *pad_right)
                }
                JoinRight::Build(rnode) => {
                    let rrows = run_node_ref(rnode, b)?;
                    join_rows(lrows, &rrows, *kind, on_idx, *pad_left, *pad_right)
                }
            }
        }
        Node::Aggregate { input, group_idx, aggs, groups_hint } => {
            let make = |input_len: usize| match groups_hint {
                Some(h) => GroupMap::with_capacity(group_idx, aggs, *h),
                None => GroupMap::with_input_len(group_idx, aggs, input_len),
            };
            match &**input {
                // γ over a fused scan: stream borrowed rows straight into
                // the group map — the filtered input batch never exists.
                Node::FusedScan { leaf, ops } => {
                    let t = leaf.resolve(b)?;
                    let mut gm = make(t.len());
                    for row in t.rows() {
                        feed_borrowed(row, ops, &mut gm);
                    }
                    gm.finish()
                }
                other => {
                    let rows = run_node(other, b)?;
                    let mut gm = make(rows.len());
                    for row in &rows {
                        gm.push(row);
                    }
                    gm.finish()
                }
            }
        }
        Node::SetOp { kind, left, right } => {
            let lrows = run_node(left, b)?;
            match kind {
                crate::derive::SetOpKind::Union => union_rows(lrows, run_node(right, b)?),
                crate::derive::SetOpKind::Intersect => {
                    intersect_rows(lrows, &run_node_ref(right, b)?)
                }
                crate::derive::SetOpKind::Difference => {
                    difference_rows(lrows, &run_node_ref(right, b)?)
                }
            }
        }
    })
}

/// Wrap the root batch into the output [`Table`], building the key index
/// exactly once. Fused chains over a keyed source are key-unique by
/// construction (filters and key-preserving maps cannot introduce
/// duplicates), so they skip per-row duplicate validation the same way the
/// legacy evaluator's σ/η nodes did; breaker roots keep the validating
/// build.
pub(super) fn finish_root(
    node: &Node,
    out: &crate::derive::Derived,
    rows: Vec<Row>,
) -> Result<Table> {
    match node {
        Node::FusedScan { .. } => {
            Table::from_unique_rows(out.schema.clone(), out.key.clone(), rows)
        }
        _ => Table::from_rows(out.schema.clone(), out.key.clone(), rows),
    }
}
