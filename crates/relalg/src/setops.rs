//! Set operations ∪, ∩, − with set (duplicate-eliminating) semantics over
//! whole rows.
//!
//! The row-based cores ([`union_rows`], [`intersect_rows`],
//! [`difference_rows`]) are shared by the streaming executor
//! (`crate::exec`), which works on plain `Vec<Row>` batches; the `run_*`
//! wrappers keep the legacy table-in/table-out shape for the materializing
//! evaluator.

use std::collections::HashSet;

use svc_storage::{Result, Row, Table};

use crate::derive::Derived;

/// Union core: all distinct rows from both inputs, moved into the output;
/// only the dedup set pays a clone per distinct row.
pub fn union_rows(left: Vec<Row>, right: Vec<Row>) -> Vec<Row> {
    let mut left = left;
    let mut right = right;
    let mut rows = Vec::with_capacity(left.len() + right.len());
    union_rows_into(&mut left, &mut right, &mut rows);
    rows
}

/// [`union_rows`] draining both inputs into a caller-provided output
/// buffer, so the streaming executor can recycle all three batch buffers.
pub fn union_rows_into(left: &mut Vec<Row>, right: &mut Vec<Row>, rows: &mut Vec<Row>) {
    let cap = left.len() + right.len();
    let mut seen: HashSet<Row> = HashSet::with_capacity(cap);
    rows.reserve(cap);
    for row in left.drain(..).chain(right.drain(..)) {
        if !seen.contains(&row) {
            seen.insert(row.clone());
            rows.push(row);
        }
    }
}

/// Intersection core: distinct left rows present in the right input.
pub fn intersect_rows(left: Vec<Row>, right: &[Row]) -> Vec<Row> {
    let mut left = left;
    let mut rows = Vec::new();
    intersect_rows_into(&mut left, right, &mut rows);
    rows
}

/// [`intersect_rows`] draining `left` into a caller-provided buffer.
pub fn intersect_rows_into(left: &mut Vec<Row>, right: &[Row], rows: &mut Vec<Row>) {
    let right_set: HashSet<&Row> = right.iter().collect();
    let mut seen: HashSet<Row> = HashSet::new();
    for row in left.drain(..) {
        if right_set.contains(&row) && !seen.contains(&row) {
            seen.insert(row.clone());
            rows.push(row);
        }
    }
}

/// Difference core: distinct left rows not present in the right input.
pub fn difference_rows(left: Vec<Row>, right: &[Row]) -> Vec<Row> {
    let mut left = left;
    let mut rows = Vec::new();
    difference_rows_into(&mut left, right, &mut rows);
    rows
}

/// [`difference_rows`] draining `left` into a caller-provided buffer.
pub fn difference_rows_into(left: &mut Vec<Row>, right: &[Row], rows: &mut Vec<Row>) {
    let right_set: HashSet<&Row> = right.iter().collect();
    let mut seen: HashSet<Row> = HashSet::new();
    for row in left.drain(..) {
        if !right_set.contains(&row) && !seen.contains(&row) {
            seen.insert(row.clone());
            rows.push(row);
        }
    }
}

/// Union: all distinct rows from both inputs.
pub fn run_union(left: Table, right: Table, out: &Derived) -> Result<Table> {
    let rows = union_rows(left.into_rows(), right.into_rows());
    Table::from_rows(out.schema.clone(), out.key.clone(), rows)
}

/// Intersection: distinct rows present in both inputs.
pub fn run_intersect(left: Table, right: &Table, out: &Derived) -> Result<Table> {
    let rows = intersect_rows(left.into_rows(), right.rows());
    Table::from_rows(out.schema.clone(), out.key.clone(), rows)
}

/// Difference: distinct left rows not present in the right input.
pub fn run_difference(left: Table, right: &Table, out: &Derived) -> Result<Table> {
    let rows = difference_rows(left.into_rows(), right.rows());
    Table::from_rows(out.schema.clone(), out.key.clone(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svc_storage::{DataType, Schema, Value};

    fn t(ids: &[i64]) -> Table {
        let schema = Schema::from_pairs(&[("id", DataType::Int)]).unwrap();
        let mut t = Table::new(schema, &["id"]).unwrap();
        for &i in ids {
            t.insert(vec![Value::Int(i)]).unwrap();
        }
        t
    }

    fn d() -> Derived {
        let schema = Schema::from_pairs(&[("id", DataType::Int)]).unwrap();
        Derived { schema, key: vec![0] }
    }

    fn ids(t: &Table) -> Vec<i64> {
        let mut v: Vec<i64> = t.rows().iter().map(|r| r[0].as_i64().unwrap()).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn union_dedupes() {
        let out = run_union(t(&[1, 2, 3]), t(&[2, 3, 4]), &d()).unwrap();
        assert_eq!(ids(&out), vec![1, 2, 3, 4]);
    }

    #[test]
    fn intersect_keeps_common() {
        let out = run_intersect(t(&[1, 2, 3]), &t(&[2, 3, 4]), &d()).unwrap();
        assert_eq!(ids(&out), vec![2, 3]);
    }

    #[test]
    fn difference_removes_right() {
        let out = run_difference(t(&[1, 2, 3]), &t(&[2, 3, 4]), &d()).unwrap();
        assert_eq!(ids(&out), vec![1]);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(run_union(t(&[]), t(&[1]), &d()).unwrap().len(), 1);
        assert_eq!(run_intersect(t(&[]), &t(&[1]), &d()).unwrap().len(), 0);
        assert_eq!(run_difference(t(&[1]), &t(&[]), &d()).unwrap().len(), 1);
    }
}
