//! The invariant verifier: LLVM-style checkers for every representation the
//! engine carries.
//!
//! Three coupled layers each have a checker:
//!
//! * [`logical`] — well-formedness of a logical [`crate::plan::Plan`]
//!   (column references resolve, join/set-op schemas compatible, η specs
//!   legal, predicates type-consistent), plus rewrite-soundness checking
//!   that the optimizer's fixed-point engine calls before/after every rule
//!   application, blaming the offending rule and subtree;
//! * [`physical`] — bound-index and arity checking over a compiled
//!   [`crate::exec::Node`] tree, including FusedOp/VecOp twin agreement;
//! * [`columnar`] — [`svc_storage::ColumnSet`] / selection-vector integrity
//!   hooks the vectorized kernels call at chunk boundaries.
//!
//! **The checkers are always compiled** — witness tests corrupt a plan or a
//! chunk and assert rejection in every build configuration. What the
//! `verify` cargo feature gates is the *hooks*: with the feature off (the
//! default, and every release/bench build), the optimizer, the compiler,
//! and the kernels call no checker and the hooks compile to nothing; with
//! it on (`cargo test --features verify`, the CI verified configuration),
//! every rewrite, every compile, and every chunk is checked as it happens,
//! so a miscompile dies at its cause instead of surfacing as a wrong answer
//! three operators downstream.

pub mod columnar;
pub mod logical;
pub mod physical;

pub use columnar::{check_chunk, check_selvec};
pub use logical::{verify_plan, verify_rewrite};
pub use physical::{verify_node, verify_physical};

/// True when the `verify` cargo feature armed the hot-path hooks in this
/// build. The checker functions work either way; this reports whether they
/// run automatically.
pub const ENABLED: bool = cfg!(feature = "verify");
