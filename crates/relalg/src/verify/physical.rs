//! Physical plan verification: bound indices in range, FusedOp/VecOp twins
//! in agreement, breakers producing their declared arity.
//!
//! The compiled [`Node`] tree carries raw positional references everywhere
//! — `BoundExpr::Col(usize)`, join `on_idx` pairs, γ group positions,
//! declared pad widths — and the vectorized twin of every fused-scan chain
//! must mirror the row-at-a-time ops position for position. [`verify_node`]
//! walks the tree tracking arity through every operator and checks each of
//! those claims; [`verify_physical`] additionally ties the root's arity to
//! the plan's declared output type. [`crate::exec::compile_with`] runs it
//! on every compile under the `verify` feature.

use svc_storage::{Result, StorageError};

use crate::derive::Derived;
use crate::exec::column::kernels::{Arg, ColExpr};
use crate::exec::pipeline::FusedOp;
use crate::exec::{ColPred, JoinRight, LeafRef, MapPlan, Node, VecOp};
use crate::plan::JoinKind;
use crate::scalar::BoundExpr;

fn fail<T>(mut msg: String) -> Result<T> {
    msg.insert_str(0, "physical verifier: ");
    Err(StorageError::Invalid(msg))
}

/// Every positional column reference of a bound expression is `< arity`.
fn check_bound(e: &BoundExpr, arity: usize) -> Result<()> {
    match e {
        BoundExpr::Col(i) => {
            if *i >= arity {
                return fail(format!("bound column index {i} out of range (arity {arity})"));
            }
            Ok(())
        }
        BoundExpr::Lit(_) => Ok(()),
        BoundExpr::Binary { left, right, .. } => {
            check_bound(left, arity)?;
            check_bound(right, arity)
        }
        BoundExpr::Not(x) | BoundExpr::IsNull(x) => check_bound(x, arity),
        BoundExpr::Call { args, .. } => args.iter().try_for_each(|a| check_bound(a, arity)),
    }
}

/// Every column position of a columnar predicate kernel is `< arity`.
fn check_pred(p: &ColPred, arity: usize) -> Result<()> {
    let col = |i: usize| {
        if i >= arity {
            fail(format!("kernel column index {i} out of range (arity {arity})"))
        } else {
            Ok(())
        }
    };
    match p {
        ColPred::CmpColLit { col: c, .. } | ColPred::IsNull { col: c, .. } => col(*c),
        ColPred::CmpColCol { left, right, .. } => {
            col(*left)?;
            col(*right)
        }
        ColPred::And(ps) => ps.iter().try_for_each(|p| check_pred(p, arity)),
        ColPred::Or(a, b) => {
            check_pred(a, arity)?;
            check_pred(b, arity)
        }
        ColPred::Row(e) => check_bound(e, arity),
    }
}

fn check_colexpr(ce: &ColExpr, arity: usize) -> Result<()> {
    let col = |i: usize| {
        if i >= arity {
            fail(format!("map kernel column index {i} out of range (arity {arity})"))
        } else {
            Ok(())
        }
    };
    match ce {
        ColExpr::Take(i) => col(*i),
        ColExpr::Lit(_) => Ok(()),
        ColExpr::Bin { left, right, .. } => {
            for a in [left, right] {
                if let Arg::Col(i) = a {
                    col(*i)?;
                }
            }
            Ok(())
        }
        ColExpr::Row(e) => check_bound(e, arity),
    }
}

fn check_map_plan(plan: &MapPlan, arity: usize) -> Result<()> {
    plan.outs.iter().try_for_each(|(_, ce)| check_colexpr(ce, arity))
}

/// A leaf's compiled key positions all fall inside its compiled schema.
fn check_leaf(leaf: &LeafRef) -> Result<()> {
    for &k in &leaf.key {
        if k >= leaf.schema.len() {
            return fail(format!(
                "leaf `{}` key position {k} out of range (schema width {})",
                leaf.name,
                leaf.schema.len()
            ));
        }
    }
    Ok(())
}

/// Check one row-path fused op against the incoming arity; returns the
/// outgoing arity.
fn check_fused(op: &FusedOp, arity: usize) -> Result<usize> {
    match op {
        FusedOp::Filter(e) => {
            check_bound(e, arity)?;
            Ok(arity)
        }
        FusedOp::Map(exprs) => {
            exprs.iter().try_for_each(|e| check_bound(e, arity))?;
            Ok(exprs.len())
        }
        FusedOp::Hash { key_idx, ratio, .. } => {
            for &k in key_idx {
                if k >= arity {
                    return fail(format!("η key index {k} out of range (arity {arity})"));
                }
            }
            if !(0.0..=1.0).contains(ratio) {
                return fail(format!("η ratio {ratio} outside [0, 1]"));
            }
            Ok(arity)
        }
    }
}

/// Check a row op and its vectorized twin agree — same operator kind, same
/// output arity, same η parameters — and that the twin's own indices are in
/// range. Returns the outgoing arity.
fn check_twin(op: &FusedOp, vop: &VecOp, arity: usize) -> Result<usize> {
    let out = check_fused(op, arity)?;
    match (op, vop) {
        (FusedOp::Filter(_), VecOp::Filter(p)) => check_pred(p, arity)?,
        (FusedOp::Map(exprs), VecOp::Map(plan)) => {
            if plan.outs.len() != exprs.len() {
                return fail(format!(
                    "Π twin arity mismatch: row path produces {} columns, vector path {}",
                    exprs.len(),
                    plan.outs.len()
                ));
            }
            check_map_plan(plan, arity)?;
        }
        (
            FusedOp::Hash { key_idx, ratio, spec },
            VecOp::Hash { key_idx: vk, ratio: vr, spec: vs },
        ) => {
            if key_idx != vk || ratio.to_bits() != vr.to_bits() || spec != vs {
                return fail(format!(
                    "η twin disagreement: row path ({key_idx:?}, {ratio}, {spec:?}) vs vector \
                     path ({vk:?}, {vr}, {vs:?})"
                ));
            }
        }
        (op, vop) => {
            return fail(format!("twin kind mismatch: row op {op:?} paired with vector op {vop:?}"))
        }
    }
    Ok(out)
}

/// Verify a physical node tree and return its output arity.
pub fn verify_node(node: &Node) -> Result<usize> {
    match node {
        Node::FusedScan { leaf, ops, vops } => {
            check_leaf(leaf)?;
            if ops.len() != vops.len() {
                return fail(format!(
                    "fused scan of `{}` carries {} row ops but {} vector ops",
                    leaf.name,
                    ops.len(),
                    vops.len()
                ));
            }
            let mut arity = leaf.schema.len();
            for (i, (op, vop)) in ops.iter().zip(vops).enumerate() {
                arity = check_twin(op, vop, arity).map_err(|e| {
                    StorageError::Invalid(format!("{e} (fused op {i} over `{}`)", leaf.name))
                })?;
            }
            Ok(arity)
        }
        Node::Fused { input, ops } => {
            let mut arity = verify_node(input)?;
            for op in ops {
                arity = check_fused(op, arity)?;
            }
            Ok(arity)
        }
        Node::Join { left, right, kind, on_idx, pad_left, pad_right } => {
            let la = verify_node(left)?;
            if la != *pad_left {
                return fail(format!(
                    "join left input produces arity {la} but pad_left declares {pad_left}"
                ));
            }
            let ra = match right {
                JoinRight::PkProbeLeaf(leaf) => {
                    check_leaf(leaf)?;
                    leaf.schema.len()
                }
                JoinRight::Build(n) => verify_node(n)?,
            };
            if ra != *pad_right {
                return fail(format!(
                    "join right input produces arity {ra} but pad_right declares {pad_right}"
                ));
            }
            for &(l, r) in on_idx {
                if l >= la || r >= ra {
                    return fail(format!(
                        "join condition ({l}, {r}) out of range for arities ({la}, {ra})"
                    ));
                }
            }
            Ok(match kind {
                JoinKind::Semi | JoinKind::Anti => la,
                _ => la + ra,
            })
        }
        Node::Aggregate { input, group_idx, aggs, .. } => {
            let arity = verify_node(input)?;
            for &g in group_idx {
                if g >= arity {
                    return fail(format!("γ group index {g} out of range (arity {arity})"));
                }
            }
            for (_, _, e) in aggs {
                check_bound(e, arity)?;
            }
            Ok(group_idx.len() + aggs.len())
        }
        Node::SetOp { left, right, kind } => {
            let la = verify_node(left)?;
            let ra = verify_node(right)?;
            if la != ra {
                return fail(format!("{kind:?} inputs disagree on arity: {la} vs {ra}"));
            }
            Ok(la)
        }
    }
}

/// Verify a compiled plan end to end: the node tree checks out and the root
/// produces exactly the declared output type's arity, with the claimed key
/// positions in range. [`crate::exec::PhysicalPlan::verify`] is the method
/// form over a compiled plan's (private) parts.
pub fn verify_physical(root: &Node, out: &Derived) -> Result<()> {
    let arity = verify_node(root)?;
    if arity != out.schema.len() {
        return fail(format!(
            "root produces arity {arity} but the declared output schema [{}] has {} columns",
            out.schema,
            out.schema.len()
        ));
    }
    for &k in &out.key {
        if k >= arity {
            return fail(format!("declared key position {k} out of range (arity {arity})"));
        }
    }
    Ok(())
}
