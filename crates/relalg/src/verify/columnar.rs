//! Columnar integrity checks: selection vectors and column chunks.
//!
//! The vectorized kernels refine a [`SelVec`] over a [`ColumnSet`] whose
//! columns must stay mutually consistent — equal lengths, validity masks
//! matching, `SelVec::Idx` strictly increasing and in bounds. The checks
//! are always compiled; [`debug_check_chunk`] is the `debug_assert`-style
//! hook `run_ops` calls at every chunk boundary when the `verify` feature
//! is on (and compiles to nothing otherwise).
//!
//! Zone-map soundness (min/max actually bounding the data, an O(rows)
//! scan) is checked once per extraction in `Table::columns` and on owned
//! sets a projection kernel just built — not per shared chunk, where the
//! same table-wide set would be rescanned per morsel.

use svc_storage::{Result, StorageError};

use crate::exec::column::chunk::ChunkCols;
use crate::exec::{ColumnChunk, SelVec};

/// A selection vector is well-formed over `len` rows: a `Range(lo, hi)` has
/// `lo <= hi <= len`; an `Idx` list is strictly increasing with every index
/// `< len`.
pub fn check_selvec(sel: &SelVec, len: usize) -> Result<()> {
    let fail = |msg: String| Err(StorageError::Invalid(format!("selection vector: {msg}")));
    match sel {
        SelVec::Range(lo, hi) => {
            if lo > hi || *hi as usize > len {
                return fail(format!("range [{lo}, {hi}) invalid over {len} rows"));
            }
        }
        SelVec::Idx(v) => {
            for w in v.windows(2) {
                if w[0] >= w[1] {
                    return fail(format!(
                        "indices not strictly increasing: {} then {}",
                        w[0], w[1]
                    ));
                }
            }
            if let Some(&last) = v.last() {
                if last as usize >= len {
                    return fail(format!("index {last} out of range over {len} rows"));
                }
            }
        }
    }
    Ok(())
}

/// A chunk is internally consistent: its columns agree on length (shared
/// sets get the cheap shape check — they were zone-verified at extraction;
/// owned sets, fresh from a projection kernel, get the full check) and its
/// selection vector is well-formed over that length.
pub fn check_chunk(chunk: &ColumnChunk<'_>) -> Result<()> {
    match &chunk.cols {
        ChunkCols::Shared(c) => c.check_shape()?,
        ChunkCols::Owned(c) => c.check()?,
    }
    check_selvec(&chunk.sel, chunk.columns().len)
}

/// Hot-path hook: panics on a corrupt chunk when the `verify` feature is
/// on, compiles to nothing otherwise.
#[inline]
pub fn debug_check_chunk(chunk: &ColumnChunk<'_>) {
    #[cfg(feature = "verify")]
    if let Err(e) = check_chunk(chunk) {
        panic!("chunk integrity: {e}");
    }
    #[cfg(not(feature = "verify"))]
    let _ = chunk;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_and_idx_selvecs_check() {
        assert!(check_selvec(&SelVec::range(0, 10), 10).is_ok());
        assert!(check_selvec(&SelVec::Idx(vec![0, 3, 7]), 8).is_ok());
        assert!(check_selvec(&SelVec::Range(4, 2), 10).is_err(), "lo > hi");
        assert!(check_selvec(&SelVec::Range(0, 11), 10).is_err(), "hi > len");
        assert!(check_selvec(&SelVec::Idx(vec![0, 3, 3]), 8).is_err(), "not strict");
        assert!(check_selvec(&SelVec::Idx(vec![5, 2]), 8).is_err(), "descending");
        assert!(check_selvec(&SelVec::Idx(vec![0, 8]), 8).is_err(), "out of range");
    }
}
