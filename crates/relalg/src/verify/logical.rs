//! Logical plan well-formedness and rewrite-soundness checking.
//!
//! [`verify_plan`] re-derives a plan bottom-up with the same Definition 2
//! rules as [`crate::derive`], layering on checks derivation alone does not
//! make — predicate expressions must be *type-consistent* (σ predicates
//! Bool-typed, logic over Bool operands, arithmetic over numerics) — and
//! wrapping any failure with the offending subtree so the error points at
//! its node, not at the plan root.
//!
//! [`verify_rewrite`] is the optimizer's rewrite-boundary check: after a
//! rule reports a change, the rewritten plan must still verify *and* must
//! present the same output schema (and, for key-preserving rules, the same
//! primary-key claim) as before the rule ran. A broken rewrite therefore
//! fails at the rule that made it, with the rule's name in the error —
//! never as a wrong answer downstream.

use svc_storage::{DataType, Result, Schema, StorageError};

use crate::derive::{
    derive_aggregate, derive_hash, derive_join, derive_project, derive_select, derive_setop,
    Derived, LeafProvider, SetOpKind,
};
use crate::plan::Plan;
use crate::scalar::{BinOp, Expr, Func};

fn numeric(t: DataType) -> bool {
    matches!(t, DataType::Int | DataType::Float)
}

/// Type-check an expression against `schema`, stricter than
/// [`Expr::infer_type`]: arithmetic demands numeric operands and the Kleene
/// connectives demand Bool operands. Comparisons stay total across types
/// (the engine deliberately orders cross-type pairs by type rank — the
/// Mixed-column workloads rely on it), so only their *result* is checked.
pub fn check_expr(e: &Expr, schema: &Schema) -> Result<DataType> {
    let fail = |msg: String| Err(StorageError::Invalid(format!("type check: {msg}")));
    Ok(match e {
        Expr::Col(name) => schema.field(schema.resolve(name)?).dtype,
        Expr::Lit(v) => v.dtype().unwrap_or(DataType::Float),
        Expr::Binary { op, left, right } => {
            let l = check_expr(left, schema)?;
            let r = check_expr(right, schema)?;
            match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                    if !numeric(l) || !numeric(r) {
                        return fail(format!(
                            "arithmetic `{e}` over non-numeric operand types {l:?}/{r:?}"
                        ));
                    }
                    match op {
                        BinOp::Div => DataType::Float,
                        BinOp::Mod => DataType::Int,
                        _ if l == DataType::Float || r == DataType::Float => DataType::Float,
                        _ => DataType::Int,
                    }
                }
                BinOp::And | BinOp::Or => {
                    if l != DataType::Bool || r != DataType::Bool {
                        return fail(format!(
                            "logical connective `{e}` over non-Bool operand types {l:?}/{r:?}"
                        ));
                    }
                    DataType::Bool
                }
                // Comparisons: total over all value types by design.
                _ => DataType::Bool,
            }
        }
        Expr::Not(inner) => {
            if check_expr(inner, schema)? != DataType::Bool {
                return fail(format!("NOT over non-Bool operand in `{e}`"));
            }
            DataType::Bool
        }
        Expr::IsNull(inner) => {
            check_expr(inner, schema)?;
            DataType::Bool
        }
        Expr::Call { func, args } => {
            let ts: Vec<DataType> =
                args.iter().map(|a| check_expr(a, schema)).collect::<Result<_>>()?;
            let Some(&first) = ts.first() else {
                return fail(format!("{func:?} requires at least one argument"));
            };
            match func {
                // Concat stringifies any argument type.
                Func::Concat => DataType::Str,
                Func::Abs => {
                    if !numeric(first) || ts.len() != 1 {
                        return fail(format!("abs expects one numeric argument in `{e}`"));
                    }
                    first
                }
                Func::Coalesce | Func::Least | Func::Greatest => {
                    let ok = ts.iter().all(|&t| numeric(t)) || ts.iter().all(|&t| t == first);
                    if !ok {
                        return fail(format!(
                            "{func:?} arguments mix incompatible types {ts:?} in `{e}`"
                        ));
                    }
                    first
                }
            }
        }
    })
}

/// Wrap a node-local failure with the subtree it happened in. Child errors
/// pass through untouched, so the subtree in the message is the innermost
/// offending node.
fn located(e: &StorageError, plan: &Plan) -> StorageError {
    StorageError::Invalid(format!("{e}\n  in subtree:\n{plan}"))
}

/// Verify a whole plan bottom-up, returning its derived type. Every column
/// reference must resolve against the derived child schema, join and set-op
/// schemas must be compatible, Π must preserve the input key, η specs must
/// be legal (keys resolve, ratio in `[0, 1]`) and pass the claimed key
/// through, and predicates must be type-consistent per [`check_expr`].
pub fn verify_plan(plan: &Plan, leaves: &(impl LeafProvider + ?Sized)) -> Result<Derived> {
    let leaves: &dyn LeafProvider = &leaves;
    verify_inner(plan, leaves)
}

fn verify_inner(plan: &Plan, leaves: &dyn LeafProvider) -> Result<Derived> {
    match plan {
        Plan::Scan { table } => leaves
            .leaf(table)
            .ok_or_else(|| StorageError::UnknownTable(table.clone()))
            .map_err(|e| located(&e, plan)),
        Plan::Select { input, predicate } => {
            let d = verify_inner(input, leaves)?;
            (|| -> Result<Derived> {
                let t = check_expr(predicate, &d.schema)?;
                if t != DataType::Bool {
                    return Err(StorageError::Invalid(format!(
                        "σ predicate `{predicate}` has type {t:?}, expected Bool"
                    )));
                }
                derive_select(&d, predicate)
            })()
            .map_err(|e| located(&e, plan))
        }
        Plan::Project { input, columns } => {
            let d = verify_inner(input, leaves)?;
            (|| -> Result<Derived> {
                for (_, e) in columns {
                    check_expr(e, &d.schema)?;
                }
                derive_project(&d, columns)
            })()
            .map_err(|e| located(&e, plan))
        }
        Plan::Join { left, right, kind, on } => {
            let l = verify_inner(left, leaves)?;
            let r = verify_inner(right, leaves)?;
            derive_join(&l, &r, *kind, on, right.name_hint())
                .map(|(d, _)| d)
                .map_err(|e| located(&e, plan))
        }
        Plan::Aggregate { input, group_by, aggregates } => {
            let d = verify_inner(input, leaves)?;
            (|| -> Result<Derived> {
                for spec in aggregates {
                    check_expr(&spec.arg, &d.schema)?;
                }
                derive_aggregate(&d, group_by, aggregates)
            })()
            .map_err(|e| located(&e, plan))
        }
        Plan::Union { left, right } => verify_setop(plan, left, right, SetOpKind::Union, leaves),
        Plan::Intersect { left, right } => {
            verify_setop(plan, left, right, SetOpKind::Intersect, leaves)
        }
        Plan::Difference { left, right } => {
            verify_setop(plan, left, right, SetOpKind::Difference, leaves)
        }
        Plan::Hash { input, key, ratio, .. } => {
            let d = verify_inner(input, leaves)?;
            derive_hash(&d, key, *ratio).map_err(|e| located(&e, plan))
        }
    }
}

fn verify_setop(
    plan: &Plan,
    left: &Plan,
    right: &Plan,
    kind: SetOpKind,
    leaves: &dyn LeafProvider,
) -> Result<Derived> {
    let l = verify_inner(left, leaves)?;
    let r = verify_inner(right, leaves)?;
    derive_setop(&l, &r, kind).map_err(|e| located(&e, plan))
}

/// The rewrite-boundary check: after `rule` reported a change, the
/// rewritten plan must verify, keep the output schema it had before the
/// rule ran, and — when the rule claims key preservation — keep the
/// Definition 2 key too. Returns the (re-derived) output type so the
/// engine can thread it to the next rule. Errors carry the rule's name and
/// the rewritten plan.
pub fn verify_rewrite(
    rule: &str,
    before: &Derived,
    after: &Plan,
    leaves: &(impl LeafProvider + ?Sized),
    preserves_key: bool,
) -> Result<Derived> {
    let d = verify_plan(after, leaves).map_err(|e| {
        StorageError::Invalid(format!(
            "rewrite verifier: rule `{rule}` produced an ill-formed plan: {e}"
        ))
    })?;
    if d.schema != before.schema {
        return Err(StorageError::Invalid(format!(
            "rewrite verifier: rule `{rule}` changed the output schema from [{}] to [{}]\n  \
             rewritten plan:\n{after}",
            before.schema, d.schema
        )));
    }
    if preserves_key && d.key != before.key {
        return Err(StorageError::Invalid(format!(
            "rewrite verifier: rule `{rule}` changed the primary-key claim from {:?} to {:?}\n  \
             rewritten plan:\n{after}",
            before.key, d.key
        )));
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::{col, lit};
    use std::collections::HashMap;
    use svc_storage::Schema;

    struct Leaves(HashMap<String, Derived>);

    impl LeafProvider for Leaves {
        fn leaf(&self, name: &str) -> Option<Derived> {
            self.0.get(name).cloned()
        }
    }

    fn leaves() -> Leaves {
        let mut m = HashMap::new();
        m.insert(
            "t".to_string(),
            Derived {
                schema: Schema::from_pairs(&[
                    ("id", DataType::Int),
                    ("x", DataType::Float),
                    ("s", DataType::Str),
                ])
                .unwrap(),
                key: vec![0],
            },
        );
        Leaves(m)
    }

    #[test]
    fn well_formed_plan_verifies() {
        let plan = Plan::scan("t")
            .select(col("x").gt(lit(1.0)).and(col("s").eq(lit("a"))))
            .project(vec![("id", col("id")), ("x2", col("x").mul(lit(2.0)))])
            .hash(&["id"], 0.5, Default::default());
        let d = verify_plan(&plan, &leaves()).unwrap();
        assert_eq!(d.key, vec![0]);
    }

    #[test]
    fn non_bool_predicate_rejected_with_subtree() {
        let plan = Plan::scan("t").select(col("x").add(lit(1.0)));
        let err = verify_plan(&plan, &leaves()).unwrap_err().to_string();
        assert!(err.contains("expected Bool"), "{err}");
        assert!(err.contains("in subtree"), "{err}");
        assert!(err.contains("Select"), "{err}");
    }

    #[test]
    fn arithmetic_over_strings_rejected() {
        let plan = Plan::scan("t").project(vec![("bad", col("s").add(lit(1i64)))]);
        let err = verify_plan(&plan, &leaves()).unwrap_err().to_string();
        assert!(err.contains("non-numeric"), "{err}");
    }

    #[test]
    fn logic_over_non_bool_rejected() {
        let plan = Plan::scan("t").select(col("id").and(col("x").gt(lit(0.0))));
        assert!(verify_plan(&plan, &leaves()).is_err());
    }

    #[test]
    fn cross_type_comparison_is_legal() {
        // The Mixed-column workloads compare Str columns against Int
        // literals through the type-rank total order — not an error.
        let plan = Plan::scan("t").select(col("s").gt(lit(5i64)));
        assert!(verify_plan(&plan, &leaves()).is_ok());
    }

    #[test]
    fn rewrite_schema_change_blames_the_rule() {
        let before = verify_plan(&Plan::scan("t"), &leaves()).unwrap();
        let after = Plan::scan("t").project(vec![("id", col("id"))]);
        let err =
            verify_rewrite("bogus-rule", &before, &after, &leaves(), true).unwrap_err().to_string();
        assert!(err.contains("bogus-rule"), "{err}");
        assert!(err.contains("changed the output schema"), "{err}");
    }
}
