//! Group-by aggregation: the γ operator and its execution.

use std::collections::HashMap;

use svc_storage::{DataType, KeyTuple, Result, Row, Schema, StorageError, Table, Value};

use crate::derive::Derived;
use crate::scalar::{BoundExpr, Expr};

/// Aggregate functions supported on views and queries. `sum`, `count`, and
/// `avg` are the sample-mean class of Section 5.2.1; `median` requires the
/// bootstrap (Section 5.2.5); `min`/`max` are handled by the Cantelli
/// machinery of Appendix 12.1.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count over non-NULL argument values (`count(1)` counts all rows).
    Count,
    /// Sum of the argument (Int stays Int, otherwise Float).
    Sum,
    /// Arithmetic mean of the argument.
    Avg,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Exact median of the argument (as a Float).
    Median,
}

impl AggFunc {
    /// Output type given the argument type.
    pub fn output_type(&self, arg: DataType) -> DataType {
        match self {
            AggFunc::Count => DataType::Int,
            AggFunc::Sum => arg,
            AggFunc::Avg | AggFunc::Median => DataType::Float,
            AggFunc::Min | AggFunc::Max => arg,
        }
    }
}

/// One aggregate output column of a γ node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Output column name.
    pub alias: String,
    /// The aggregate function.
    pub func: AggFunc,
    /// The argument expression evaluated per input row.
    pub arg: Expr,
}

impl AggSpec {
    /// Convenience constructor.
    pub fn new(alias: impl Into<String>, func: AggFunc, arg: Expr) -> AggSpec {
        AggSpec { alias: alias.into(), func, arg }
    }

    /// `count(1) AS alias`.
    pub fn count_all(alias: impl Into<String>) -> AggSpec {
        AggSpec::new(alias, AggFunc::Count, crate::scalar::lit(1i64))
    }
}

/// Streaming accumulator for one aggregate in one group.
#[derive(Debug, Clone)]
enum Acc {
    Count(i64),
    SumInt(i64, bool),
    SumFloat(f64, bool),
    Avg { sum: f64, n: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
    Median(Vec<f64>),
}

impl Acc {
    fn new(func: AggFunc, arg_type: DataType) -> Acc {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => {
                if arg_type == DataType::Float {
                    Acc::SumFloat(0.0, false)
                } else {
                    Acc::SumInt(0, false)
                }
            }
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::Median => Acc::Median(Vec::new()),
        }
    }

    fn update(&mut self, v: Value) {
        if v.is_null() {
            return;
        }
        match self {
            Acc::Count(n) => *n += 1,
            Acc::SumInt(s, seen) => {
                if let Some(i) = v.as_i64() {
                    *s += i;
                    *seen = true;
                }
            }
            Acc::SumFloat(s, seen) => {
                if let Some(x) = v.as_f64() {
                    *s += x;
                    *seen = true;
                }
            }
            Acc::Avg { sum, n } => {
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *n += 1;
                }
            }
            Acc::Min(cur) => {
                if cur.as_ref().is_none_or(|c| v < *c) {
                    *cur = Some(v);
                }
            }
            Acc::Max(cur) => {
                if cur.as_ref().is_none_or(|c| v > *c) {
                    *cur = Some(v);
                }
            }
            Acc::Median(vals) => {
                if let Some(x) = v.as_f64() {
                    vals.push(x);
                }
            }
        }
    }

    /// Fold another accumulator of the same shape into this one — the γ
    /// pipeline barrier of morsel-parallel execution, where per-morsel
    /// partial accumulators combine into the final group state. Exact for
    /// count / integer sum / min / max / median (order-insensitive);
    /// float sums and averages add partial sums, which can differ from the
    /// sequential accumulation order by float rounding only.
    fn merge(&mut self, other: Acc) {
        match (self, other) {
            (Acc::Count(n), Acc::Count(m)) => *n += m,
            (Acc::SumInt(s, seen), Acc::SumInt(t, more)) => {
                *s += t;
                *seen |= more;
            }
            (Acc::SumFloat(s, seen), Acc::SumFloat(t, more)) => {
                *s += t;
                *seen |= more;
            }
            (Acc::Avg { sum, n }, Acc::Avg { sum: s2, n: n2 }) => {
                *sum += s2;
                *n += n2;
            }
            (Acc::Min(cur), Acc::Min(v)) => {
                if let Some(v) = v {
                    if cur.as_ref().is_none_or(|c| v < *c) {
                        *cur = Some(v);
                    }
                }
            }
            (Acc::Max(cur), Acc::Max(v)) => {
                if let Some(v) = v {
                    if cur.as_ref().is_none_or(|c| v > *c) {
                        *cur = Some(v);
                    }
                }
            }
            (Acc::Median(vals), Acc::Median(mut more)) => vals.append(&mut more),
            _ => unreachable!("merging accumulators of different aggregate shapes"),
        }
    }

    fn finish(self) -> Value {
        match self {
            Acc::Count(n) => Value::Int(n),
            Acc::SumInt(s, seen) => {
                if seen {
                    Value::Int(s)
                } else {
                    Value::Null
                }
            }
            Acc::SumFloat(s, seen) => {
                if seen {
                    Value::Float(s)
                } else {
                    Value::Null
                }
            }
            Acc::Avg { sum, n } => {
                if n > 0 {
                    Value::Float(sum / n as f64)
                } else {
                    Value::Null
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Value::Null),
            Acc::Median(mut vals) => {
                if vals.is_empty() {
                    Value::Null
                } else {
                    vals.sort_by(f64::total_cmp);
                    let n = vals.len();
                    let med = if n % 2 == 1 {
                        vals[n / 2]
                    } else {
                        (vals[n / 2 - 1] + vals[n / 2]) / 2.0
                    };
                    Value::Float(med)
                }
            }
        }
    }
}

/// Hash-grouped accumulation over rows — the γ execution core shared by the
/// legacy materializing evaluator ([`run_aggregate`]) and the streaming
/// executor's aggregate sink (`crate::exec`).
///
/// Group keys are hashed *in place* from the input row's group columns
/// ([`KeyTuple::hash_of`]) and candidates are verified by column equality
/// against the group's stored key, so a `KeyTuple` of cloned `Value`s is
/// allocated only when a group is seen for the first time — never per input
/// row.
#[derive(Debug)]
pub struct GroupMap<'a> {
    group_idx: &'a [usize],
    aggs: &'a [(AggFunc, DataType, BoundExpr)],
    /// key hash → indices into `groups` (hash-collision chain).
    map: HashMap<u64, Vec<u32>>,
    groups: Vec<(KeyTuple, Vec<Acc>)>,
}

impl<'a> GroupMap<'a> {
    /// An accumulator pre-sized for roughly `groups_hint` distinct groups.
    /// Callers with catalog NDV estimates pass those; without a hint, use
    /// [`GroupMap::with_input_len`].
    pub fn with_capacity(
        group_idx: &'a [usize],
        aggs: &'a [(AggFunc, DataType, BoundExpr)],
        groups_hint: usize,
    ) -> GroupMap<'a> {
        GroupMap {
            group_idx,
            aggs,
            map: HashMap::with_capacity(groups_hint),
            groups: Vec::with_capacity(groups_hint),
        }
    }

    /// Pre-size from the input length when no distinct-count estimate is
    /// available: a quarter of the input, floored at 8 — grouped workloads
    /// collapse heavily, and two doublings still beat starting empty. The
    /// ceiling bounds the up-front allocation when `input_len` is a loose
    /// upper bound (a selective γ-over-scan stream passes the *unfiltered*
    /// table length); beyond it, amortized growth is cheaper than
    /// speculatively allocating a huge map for what may be few groups.
    pub fn with_input_len(
        group_idx: &'a [usize],
        aggs: &'a [(AggFunc, DataType, BoundExpr)],
        input_len: usize,
    ) -> GroupMap<'a> {
        GroupMap::with_capacity(group_idx, aggs, (input_len / 4).clamp(8, 1 << 16))
    }

    /// Fold one row into its group. The row is only borrowed: group-key
    /// values are cloned exactly once per *group*, on first insertion.
    pub fn push(&mut self, row: &[Value]) {
        let h = KeyTuple::hash_of(row, self.group_idx);
        let chain = self.map.entry(h).or_default();
        let gi = match chain.iter().copied().find(|&g| {
            let key = &self.groups[g as usize].0;
            self.group_idx.iter().zip(&key.0).all(|(&i, v)| row[i] == *v)
        }) {
            Some(g) => g as usize,
            None => {
                let key = KeyTuple(self.group_idx.iter().map(|&i| row[i].clone()).collect());
                let accs = self.aggs.iter().map(|(f, t, _)| Acc::new(*f, *t)).collect();
                self.groups.push((key, accs));
                chain.push((self.groups.len() - 1) as u32);
                self.groups.len() - 1
            }
        };
        let accs = &mut self.groups[gi].1;
        for (acc, (_, _, expr)) in accs.iter_mut().zip(self.aggs) {
            acc.update(expr.eval(row));
        }
    }

    /// Merge a per-morsel partial map into this one — the γ barrier of
    /// morsel-parallel execution. Both maps must have been built with the
    /// same `group_idx` and `aggs`; groups are matched by key value and
    /// their accumulators folded with [`Acc::merge`], so merging never
    /// re-hashes or re-evaluates input rows. The merge is exact except for
    /// float sums/averages, which combine partial sums (callers that merge
    /// partials in a deterministic order get deterministic output).
    pub fn merge(&mut self, other: GroupMap<'_>) {
        debug_assert_eq!(self.group_idx, other.group_idx, "merging maps of different groupings");
        debug_assert_eq!(self.aggs.len(), other.aggs.len(), "merging maps of different aggs");
        // The stored key tuples hold the group values in `group_idx` order,
        // so hashing them positionally reproduces the probe hash of
        // [`GroupMap::push`].
        let key_cols: Vec<usize> = (0..self.group_idx.len()).collect();
        for (key, accs) in other.groups {
            let h = KeyTuple::hash_of(&key.0, &key_cols);
            let chain = self.map.entry(h).or_default();
            match chain.iter().copied().find(|&g| self.groups[g as usize].0 == key) {
                Some(g) => {
                    for (mine, theirs) in self.groups[g as usize].1.iter_mut().zip(accs) {
                        mine.merge(theirs);
                    }
                }
                None => {
                    self.groups.push((key, accs));
                    chain.push((self.groups.len() - 1) as u32);
                }
            }
        }
    }

    /// Number of distinct groups accumulated so far.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Finish all groups into output rows, sorted by group key for
    /// determinism.
    pub fn finish(self) -> Vec<Row> {
        let mut out = Vec::new();
        self.finish_into(&mut out);
        out
    }

    /// [`GroupMap::finish`] appending into a caller-provided buffer (the
    /// streaming executor recycles batch buffers across runs).
    pub fn finish_into(self, out: &mut Vec<Row>) {
        let mut entries = self.groups;
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        out.reserve(entries.len());
        for (key, accs) in entries {
            let mut row: Row = key.0;
            row.extend(accs.into_iter().map(Acc::finish));
            out.push(row);
        }
    }
}

/// Execute a γ node: group `input` rows by `group_idx` columns and apply the
/// bound aggregates. Output rows are sorted by group key for determinism.
/// `groups_hint` pre-sizes the group map (catalog NDV when the caller has
/// one); `None` falls back to an input-length heuristic.
pub fn run_aggregate(
    input: &Table,
    group_idx: &[usize],
    aggs: &[(AggFunc, DataType, BoundExpr)],
    out: &Derived,
    groups_hint: Option<usize>,
) -> Result<Table> {
    let mut groups = match groups_hint {
        Some(h) => GroupMap::with_capacity(group_idx, aggs, h),
        None => GroupMap::with_input_len(group_idx, aggs, input.len()),
    };
    for row in input.rows() {
        groups.push(row);
    }
    Table::from_rows(out.schema.clone(), out.key.clone(), groups.finish())
}

/// Validate and bind the aggregate argument expressions of a γ node.
pub fn bind_aggs(
    specs: &[AggSpec],
    input_schema: &Schema,
) -> Result<Vec<(AggFunc, DataType, BoundExpr)>> {
    specs
        .iter()
        .map(|s| {
            let dtype = s.arg.infer_type(input_schema)?;
            if matches!(s.func, AggFunc::Sum | AggFunc::Avg | AggFunc::Median)
                && !matches!(dtype, DataType::Int | DataType::Float)
            {
                return Err(StorageError::TypeMismatch {
                    expected: DataType::Float,
                    found: dtype.to_string(),
                    context: format!("aggregate {}({})", s.alias, s.arg),
                });
            }
            Ok((s.func, dtype, s.arg.bind(input_schema)?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::derive_aggregate;
    use crate::scalar::{col, lit};

    fn input() -> Table {
        let schema = Schema::from_pairs(&[
            ("g", DataType::Int),
            ("x", DataType::Float),
            ("id", DataType::Int),
        ])
        .unwrap();
        let mut t = Table::new(schema, &["id"]).unwrap();
        let data = [(1, 10.0), (1, 20.0), (2, 5.0), (2, 7.0), (2, 9.0), (3, -1.0)];
        for (i, (g, x)) in data.iter().enumerate() {
            t.insert(vec![Value::Int(*g), Value::Float(*x), Value::Int(i as i64)]).unwrap();
        }
        t
    }

    fn run(specs: &[AggSpec]) -> Table {
        let t = input();
        let input_d = Derived { schema: t.schema().clone(), key: t.key().to_vec() };
        let group = vec!["g".to_string()];
        let out = derive_aggregate(&input_d, &group, specs).unwrap();
        let group_idx = t.schema().resolve_all(&group).unwrap();
        let aggs = bind_aggs(specs, t.schema()).unwrap();
        run_aggregate(&t, &group_idx, &aggs, &out, None).unwrap()
    }

    #[test]
    fn count_sum_avg() {
        let out = run(&[
            AggSpec::count_all("n"),
            AggSpec::new("total", AggFunc::Sum, col("x")),
            AggSpec::new("mean", AggFunc::Avg, col("x")),
        ]);
        assert_eq!(out.len(), 3);
        let g2 = out.get(&KeyTuple(vec![Value::Int(2)])).unwrap();
        assert_eq!(g2[1], Value::Int(3));
        assert_eq!(g2[2], Value::Float(21.0));
        assert_eq!(g2[3], Value::Float(7.0));
    }

    #[test]
    fn min_max_median() {
        let out = run(&[
            AggSpec::new("lo", AggFunc::Min, col("x")),
            AggSpec::new("hi", AggFunc::Max, col("x")),
            AggSpec::new("med", AggFunc::Median, col("x")),
        ]);
        let g2 = out.get(&KeyTuple(vec![Value::Int(2)])).unwrap();
        assert_eq!(g2[1], Value::Float(5.0));
        assert_eq!(g2[2], Value::Float(9.0));
        assert_eq!(g2[3], Value::Float(7.0));
    }

    #[test]
    fn sum_of_ints_stays_int() {
        let t = input();
        let specs = vec![AggSpec::new("s", AggFunc::Sum, col("g").mul(lit(2i64)))];
        let input_d = Derived { schema: t.schema().clone(), key: t.key().to_vec() };
        let out_d = derive_aggregate(&input_d, &[], &specs).unwrap();
        let aggs = bind_aggs(&specs, t.schema()).unwrap();
        let out = run_aggregate(&t, &[], &aggs, &out_d, None).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(2 * (1 + 1 + 2 + 2 + 2 + 3)));
    }

    #[test]
    fn count_skips_nulls_but_count_all_does_not() {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("x", DataType::Float)]).unwrap();
        let mut t = Table::new(schema, &["id"]).unwrap();
        t.insert(vec![Value::Int(0), Value::Float(1.0)]).unwrap();
        t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        let specs =
            vec![AggSpec::count_all("all"), AggSpec::new("nonnull", AggFunc::Count, col("x"))];
        let input_d = Derived { schema: t.schema().clone(), key: t.key().to_vec() };
        let out_d = derive_aggregate(&input_d, &[], &specs).unwrap();
        let aggs = bind_aggs(&specs, t.schema()).unwrap();
        let out = run_aggregate(&t, &[], &aggs, &out_d, None).unwrap();
        assert_eq!(out.rows()[0][0], Value::Int(2));
        assert_eq!(out.rows()[0][1], Value::Int(1));
    }

    /// Splitting the input across partial maps and merging them must agree
    /// with a single-pass map — the γ barrier of morsel-parallel execution.
    /// All-exact aggregates here, so equality is bitwise.
    #[test]
    fn merged_partial_maps_equal_single_pass() {
        let t = input();
        let specs = vec![
            AggSpec::count_all("n"),
            AggSpec::new("sg", AggFunc::Sum, col("g")),
            AggSpec::new("lo", AggFunc::Min, col("x")),
            AggSpec::new("hi", AggFunc::Max, col("x")),
            AggSpec::new("med", AggFunc::Median, col("x")),
        ];
        let group_idx = t.schema().resolve_all(&["g".to_string()]).unwrap();
        let aggs = bind_aggs(&specs, t.schema()).unwrap();

        let mut single = GroupMap::with_input_len(&group_idx, &aggs, t.len());
        for row in t.rows() {
            single.push(row);
        }

        // Three uneven partials, merged in order.
        let mut parts: Vec<GroupMap<'_>> =
            (0..3).map(|_| GroupMap::with_input_len(&group_idx, &aggs, 2)).collect();
        for (i, row) in t.rows().iter().enumerate() {
            parts[if i < 1 {
                0
            } else if i < 4 {
                1
            } else {
                2
            }]
            .push(row);
        }
        let mut merged = parts.remove(0);
        for p in parts {
            merged.merge(p);
        }
        assert_eq!(merged.group_count(), single.group_count());
        assert_eq!(merged.finish(), single.finish(), "merged partials diverged");
    }

    #[test]
    fn sum_over_strings_is_rejected() {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("s", DataType::Str)]).unwrap();
        let specs = vec![AggSpec::new("bad", AggFunc::Sum, col("s"))];
        assert!(bind_aggs(&specs, &schema).is_err());
    }
}
