#![forbid(unsafe_code)]

//! # svc-relalg
//!
//! Relational algebra for the Stale View Cleaning reproduction: the view
//! definition language of Section 3.1 of the paper.
//!
//! * [`scalar`] — scalar expressions (column refs, literals, arithmetic,
//!   comparisons, three-valued logic, `coalesce`/`least`/`greatest`) used in
//!   selections and *generalized projections*.
//! * [`plan`] — the relational expression tree: σ, Π, ⋈ (inner / left /
//!   right / full / semi / anti equi-joins), γ group-by aggregates, ∪, ∩, −,
//!   plus the SVC hashing operator η as a first-class node.
//! * [`derive`] — output schema and **primary-key derivation** for every
//!   node (Definition 2): every derived relation is keyed, which is the
//!   provenance mechanism that makes hash push-down sound.
//! * [`eval`] — plan evaluation producing [`svc_storage::Table`]s from
//!   plans bound to concrete relations; [`eval::evaluate`] is a thin
//!   compile-and-run wrapper over the streaming executor.
//! * [`exec`] — the compile-once streaming executor: [`exec::compile`]
//!   binds schemas/predicates/projections once, [`exec::PhysicalPlan::run`]
//!   streams fused `Scan→σ→Π→η` chains over borrowed rows with pipeline
//!   breakers materializing plain row batches (no intermediate keyed
//!   tables, no scan clones).
//!
//! * [`optimizer`] — the rule-driven rewrite engine (predicate pushdown,
//!   projection pruning, and the Definition 3 η push-down) every evaluated
//!   plan goes through.
//!
//! The η operator lives here (not in `svc-sampling`) because the evaluator
//! must execute it; the *push-down rewrite* of Definition 3 is the
//! [`optimizer::eta`] rule, re-exported through `svc-sampling` for the
//! legacy `push_down` API.

pub mod aggregate;
pub mod derive;
pub mod display;
pub mod eval;
pub mod exec;
pub mod join;
pub mod optimizer;
pub mod plan;
pub mod scalar;
pub mod setops;
pub mod verify;

pub use aggregate::{AggFunc, AggSpec};
pub use derive::{derive, Derived, LeafProvider};
pub use eval::{evaluate, evaluate_materializing, Bindings};
pub use exec::{compile, compile_with, explain_analyze, Explain, ExplainNode, PhysicalPlan};
pub use optimizer::{optimize, EtaReport, OptimizeReport, Optimizer};
pub use plan::{JoinKind, Plan};
pub use scalar::{col, lit, BinOp, BoundExpr, Expr, Func};
