//! Projection pruning: drop columns no ancestor needs.
//!
//! A required-column set flows top-down. Projections and aggregates narrow
//! it (they name exactly what they read); selections, joins, set operations
//! and η widen it with the columns they consume themselves (predicates,
//! join conditions, hash keys). Where a child of a join or set operation
//! produces more columns than required, a bare-column Π is inserted above
//! it so the evaluator materializes (and the join copies) only what is
//! needed.
//!
//! Two invariants keep the rewrite exact:
//!
//! * **keys survive** — every inserted or narrowed projection retains the
//!   primary-key columns of its input, so Definition 2 key derivation
//!   ([`crate::derive`]) produces the same keys everywhere and every
//!   intermediate stays a valid keyed table;
//! * **names survive** — join outputs rename right-side columns that
//!   collide with left-side names (`Schema::concat`); pruning simulates the
//!   renaming on the pruned inputs and backs off to an unpruned join
//!   whenever a required output column would change its name.

use std::collections::BTreeSet;

use svc_storage::{Result, Schema};

use crate::derive::{
    derive_aggregate, derive_hash, derive_join, derive_project, derive_select, derive_setop,
    derive_tree, Derived, DerivedTree, LeafProvider, SetOpKind,
};
use crate::plan::{JoinKind, Plan};
use crate::scalar::{col, Expr};

/// Prune unused columns below joins, aggregates, and set operations.
/// `pruned` counts inserted or narrowed projections.
///
/// Schemas of the *input* plan come from one bottom-up [`derive_tree`]
/// pass; the recursion returns each *rewritten* node's [`Derived`] so
/// parents compose their own types in O(1) — no node is ever re-derived.
pub fn prune(plan: Plan, leaves: &dyn LeafProvider, pruned: &mut usize) -> Result<Plan> {
    let tree = derive_tree(&plan, leaves)?;
    Ok(prune_node(plan, &tree, None, pruned)?.0)
}

/// Resolve `names` against `schema`, returning the exact field names.
fn exact<'a>(
    schema: &Schema,
    names: impl IntoIterator<Item = &'a str>,
    out: &mut BTreeSet<String>,
) -> Result<()> {
    for n in names {
        out.insert(schema.field(schema.resolve(n)?).name.clone());
    }
    Ok(())
}

/// Wrap `child` (whose derived type is `child_d`) in a bare-column
/// projection keeping exactly the `keep` columns (in child schema order);
/// identity when nothing would be dropped.
fn wrap_keep(
    child: Plan,
    child_d: Derived,
    keep: &BTreeSet<String>,
    pruned: &mut usize,
) -> Result<(Plan, Derived)> {
    if child_d.schema.names().iter().all(|n| keep.contains(*n)) {
        return Ok((child, child_d));
    }
    let columns: Vec<(String, Expr)> = child_d
        .schema
        .names()
        .iter()
        .filter(|n| keep.contains(**n))
        .map(|n| (n.to_string(), col(*n)))
        .collect();
    *pruned += 1;
    let out = derive_project(&child_d, &columns)?;
    Ok((Plan::Project { input: Box::new(child), columns }, out))
}

/// Simulate [`Schema::concat`]'s collision renaming for a pruned join and
/// check that every required output name still maps to the same column.
fn join_names_stable(
    l_keep: &[&str],
    r_keep: &[&str],
    right_hint: &str,
    required_out: &BTreeSet<String>,
    out_schema: &Schema,
    l_arity: usize,
    r_positions_kept: &[usize],
) -> bool {
    let mut names: Vec<String> = l_keep.iter().map(|s| s.to_string()).collect();
    for (idx, rname) in r_keep.iter().enumerate() {
        let mut name = rname.to_string();
        if names.iter().any(|g| g == &name) {
            name = format!("{right_hint}.{rname}");
        }
        let mut k = 2;
        while names.iter().any(|g| g == &name) {
            name = format!("{right_hint}.{rname}#{k}");
            k += 1;
        }
        // The original output name of this right column:
        let orig = out_schema.field(l_arity + r_positions_kept[idx]).name.as_str();
        if required_out.contains(orig) && name != orig {
            return false;
        }
        names.push(name);
    }
    true
}

/// Core recursion. `required` holds exact output-schema column names the
/// parent needs; `None` means all columns are needed (the root, and any
/// context that must preserve the full schema). `dt` is the derived tree of
/// the *original* `plan`; the returned [`Derived`] describes the rewritten
/// (possibly narrowed) node.
fn prune_node(
    plan: Plan,
    dt: &DerivedTree,
    required: Option<BTreeSet<String>>,
    pruned: &mut usize,
) -> Result<(Plan, Derived)> {
    match plan {
        Plan::Scan { .. } => Ok((plan, dt.derived.clone())),
        Plan::Select { input, predicate } => {
            // Same schema below; the predicate's columns become required.
            let required = match required {
                None => None,
                Some(mut r) => {
                    let schema = &dt.input().derived.schema;
                    exact(schema, predicate.referenced_columns(), &mut r)?;
                    Some(r)
                }
            };
            let (inner, inner_d) = prune_node(*input, dt.input(), required, pruned)?;
            let out = derive_select(&inner_d, &predicate)?;
            Ok((Plan::Select { input: Box::new(inner), predicate }, out))
        }
        Plan::Hash { input, key, ratio, spec } => {
            let required = match required {
                None => None,
                Some(mut r) => {
                    let schema = &dt.input().derived.schema;
                    exact(schema, key.iter().map(String::as_str), &mut r)?;
                    Some(r)
                }
            };
            let (inner, inner_d) = prune_node(*input, dt.input(), required, pruned)?;
            let out = derive_hash(&inner_d, &key, ratio)?;
            Ok((Plan::Hash { input: Box::new(inner), key, ratio, spec }, out))
        }
        Plan::Project { input, columns } => {
            let in_d = &dt.input().derived;
            // Narrow the projection itself to required ∪ its output key.
            let columns = match &required {
                None => columns,
                Some(r) => {
                    let key_names: BTreeSet<&str> = dt.derived.key_names().into_iter().collect();
                    let kept: Vec<(String, Expr)> = columns
                        .iter()
                        .filter(|(alias, _)| {
                            r.contains(alias) || key_names.contains(alias.as_str())
                        })
                        .cloned()
                        .collect();
                    if kept.len() < columns.len() {
                        *pruned += 1;
                        kept
                    } else {
                        columns
                    }
                }
            };
            // Everything the kept expressions read, plus the input key.
            let mut input_required = BTreeSet::new();
            for (_, e) in &columns {
                exact(&in_d.schema, e.referenced_columns(), &mut input_required)?;
            }
            exact(&in_d.schema, in_d.key_names(), &mut input_required)?;
            let (inner, inner_d) = prune_node(*input, dt.input(), Some(input_required), pruned)?;
            let out = derive_project(&inner_d, &columns)?;
            Ok((Plan::Project { input: Box::new(inner), columns }, out))
        }
        Plan::Aggregate { input, group_by, aggregates } => {
            let in_d = &dt.input().derived;
            let aggregates = match &required {
                None => aggregates,
                Some(r) => {
                    let kept: Vec<_> =
                        aggregates.iter().filter(|spec| r.contains(&spec.alias)).cloned().collect();
                    if kept.len() < aggregates.len() {
                        *pruned += 1;
                        kept
                    } else {
                        aggregates
                    }
                }
            };
            let mut input_required = BTreeSet::new();
            exact(&in_d.schema, group_by.iter().map(String::as_str), &mut input_required)?;
            for spec in &aggregates {
                exact(&in_d.schema, spec.arg.referenced_columns(), &mut input_required)?;
            }
            exact(&in_d.schema, in_d.key_names(), &mut input_required)?;
            let (inner, inner_d) = prune_node(*input, dt.input(), Some(input_required), pruned)?;
            let out = derive_aggregate(&inner_d, &group_by, &aggregates)?;
            Ok((Plan::Aggregate { input: Box::new(inner), group_by, aggregates }, out))
        }
        Plan::Join { left, right, kind, on } => {
            let (l_t, r_t) = dt.pair();
            let (l_d, r_d) = (&l_t.derived, &r_t.derived);
            let out_schema = &dt.derived.schema;
            let l_arity = l_d.schema.len();
            let semi_like = matches!(kind, JoinKind::Semi | JoinKind::Anti);

            // Required output positions → per-side required names.
            let mut l_keep: BTreeSet<String> = BTreeSet::new();
            let mut r_keep: BTreeSet<String> = BTreeSet::new();
            let required_out: BTreeSet<String> = match &required {
                None => out_schema.names().iter().map(|s| s.to_string()).collect(),
                Some(r) => {
                    let mut exact_out = BTreeSet::new();
                    exact(out_schema, r.iter().map(String::as_str), &mut exact_out)?;
                    exact_out
                }
            };
            for name in &required_out {
                let p = out_schema.resolve(name)?;
                if p < l_arity {
                    l_keep.insert(l_d.schema.field(p).name.clone());
                } else {
                    r_keep.insert(r_d.schema.field(p - l_arity).name.clone());
                }
            }
            // Join condition columns and both input keys must survive.
            for (l, r) in &on {
                exact(&l_d.schema, [l.as_str()], &mut l_keep)?;
                exact(&r_d.schema, [r.as_str()], &mut r_keep)?;
            }
            exact(&l_d.schema, l_d.key_names(), &mut l_keep)?;
            exact(&r_d.schema, r_d.key_names(), &mut r_keep)?;
            // Keep left columns whose names kept right columns collide with,
            // so `Schema::concat` renames them exactly as before.
            for rname in r_keep.clone() {
                if l_d.schema.names().contains(&rname.as_str()) {
                    l_keep.insert(rname);
                }
            }
            if !semi_like {
                // Verify the renaming really is stable; back off otherwise.
                let l_names: Vec<&str> =
                    l_d.schema.names().into_iter().filter(|n| l_keep.contains(*n)).collect();
                let mut r_names: Vec<&str> = Vec::new();
                let mut r_positions: Vec<usize> = Vec::new();
                for (i, n) in r_d.schema.names().into_iter().enumerate() {
                    if r_keep.contains(n) {
                        r_names.push(n);
                        r_positions.push(i);
                    }
                }
                if !join_names_stable(
                    &l_names,
                    &r_names,
                    right.name_hint(),
                    &required_out,
                    out_schema,
                    l_arity,
                    &r_positions,
                ) {
                    l_keep = l_d.schema.names().iter().map(|s| s.to_string()).collect();
                    r_keep = r_d.schema.names().iter().map(|s| s.to_string()).collect();
                }
            }

            let right_hint = right.name_hint().to_string();
            let (l, l_d2) = prune_node(*left, l_t, Some(l_keep.clone()), pruned)?;
            let (r, r_d2) = prune_node(*right, r_t, Some(r_keep.clone()), pruned)?;
            let (l, l_d2) = wrap_keep(l, l_d2, &l_keep, pruned)?;
            let (r, r_d2) = wrap_keep(r, r_d2, &r_keep, pruned)?;
            let out = derive_join(&l_d2, &r_d2, kind, &on, &right_hint)?.0;
            Ok((Plan::Join { left: Box::new(l), right: Box::new(r), kind, on }, out))
        }
        Plan::Union { left, right } => {
            prune_setop(*left, *right, dt, SetOpKind::Union, required.as_ref(), pruned)
        }
        Plan::Intersect { left, right } => {
            prune_setop(*left, *right, dt, SetOpKind::Intersect, required.as_ref(), pruned)
        }
        Plan::Difference { left, right } => {
            prune_setop(*left, *right, dt, SetOpKind::Difference, required.as_ref(), pruned)
        }
    }
}

/// Set operations are positional: prune the same positions on both sides
/// (keeping both sides' key positions), so the inputs keep agreeing.
fn prune_setop(
    left: Plan,
    right: Plan,
    dt: &DerivedTree,
    shape: SetOpKind,
    required: Option<&BTreeSet<String>>,
    pruned: &mut usize,
) -> Result<(Plan, Derived)> {
    let (l_t, r_t) = dt.pair();
    let (l_d, r_d) = (&l_t.derived, &r_t.derived);
    let keep_pos: BTreeSet<usize> = match required {
        None => (0..l_d.schema.len()).collect(),
        Some(r) => {
            let mut pos: BTreeSet<usize> = BTreeSet::new();
            for name in r {
                pos.insert(l_d.schema.resolve(name)?);
            }
            pos.extend(l_d.key.iter().copied());
            pos.extend(r_d.key.iter().copied());
            pos
        }
    };
    let l_keep: BTreeSet<String> =
        keep_pos.iter().map(|&i| l_d.schema.field(i).name.clone()).collect();
    let r_keep: BTreeSet<String> =
        keep_pos.iter().map(|&i| r_d.schema.field(i).name.clone()).collect();
    let (l, l_d2) = prune_node(left, l_t, Some(l_keep.clone()), pruned)?;
    let (r, r_d2) = prune_node(right, r_t, Some(r_keep.clone()), pruned)?;
    let (l, l_d2) = wrap_keep(l, l_d2, &l_keep, pruned)?;
    let (r, r_d2) = wrap_keep(r, r_d2, &r_keep, pruned)?;
    let out = derive_setop(&l_d2, &r_d2, shape)?;
    Ok((shape.rebuild(l, r), out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AggFunc, AggSpec};
    use crate::derive::derive;
    use crate::eval::{evaluate, Bindings};
    use crate::scalar::lit;
    use svc_storage::{DataType, Database, Table, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let mut dim = Table::new(
            Schema::from_pairs(&[
                ("dimId", DataType::Int),
                ("w", DataType::Float),
                ("label", DataType::Str),
            ])
            .unwrap(),
            &["dimId"],
        )
        .unwrap();
        for d in 0..25i64 {
            dim.insert(vec![Value::Int(d), Value::Float(d as f64), Value::str(format!("d{d}"))])
                .unwrap();
        }
        let mut fact = Table::new(
            Schema::from_pairs(&[
                ("factId", DataType::Int),
                ("dimId", DataType::Int),
                ("x", DataType::Float),
                ("unused", DataType::Float),
            ])
            .unwrap(),
            &["factId"],
        )
        .unwrap();
        for f in 0..400i64 {
            fact.insert(vec![
                Value::Int(f),
                Value::Int(f % 25),
                Value::Float((f % 7) as f64),
                Value::Float(99.0),
            ])
            .unwrap();
        }
        db.create_table("dim", dim);
        db.create_table("fact", fact);
        db
    }

    fn run(plan: Plan) -> (Plan, usize) {
        let db = db();
        let b = Bindings::from_database(&db);
        let expected = evaluate(&plan, &b).unwrap();
        let mut count = 0;
        let out = prune(plan, &db, &mut count).unwrap();
        let got = evaluate(&out, &b).unwrap();
        assert!(
            got.same_contents(&expected),
            "pruning changed results: {} vs {} rows\n{out:?}",
            got.len(),
            expected.len()
        );
        (out, count)
    }

    fn join_input_widths(plan: &Plan, leaves: &impl LeafProvider) -> Option<(usize, usize)> {
        match plan {
            Plan::Join { left, right, .. } => Some((
                derive(left, leaves).unwrap().schema.len(),
                derive(right, leaves).unwrap().schema.len(),
            )),
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Hash { input, .. } => join_input_widths(input, leaves),
            _ => None,
        }
    }

    #[test]
    fn aggregate_over_join_prunes_unused_columns() {
        let plan = Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .aggregate(&["dimId"], vec![AggSpec::new("sx", AggFunc::Sum, col("x"))]);
        let (out, count) = run(plan);
        assert!(count > 0);
        let (lw, rw) = join_input_widths(&out, &db()).unwrap();
        // fact loses `unused`; dim shrinks to its key.
        assert!(lw <= 3, "fact side kept {lw} columns");
        assert_eq!(rw, 1, "dim side should shrink to its key");
    }

    #[test]
    fn projection_over_join_prunes_below() {
        let plan = Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .project(vec![("factId", col("factId")), ("x", col("x"))]);
        let (out, count) = run(plan);
        assert!(count > 0, "expected pruning below the projection: {out:?}");
    }

    #[test]
    fn collision_renames_are_preserved() {
        // Both sides expose `dimId`; the projection needs the right one,
        // which is renamed `dim.dimId` in the join output. Pruning must not
        // drop the left `dimId` that forces the rename.
        let plan = Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .project(vec![("factId", col("factId")), ("d", col("dim.dimId"))]);
        run(plan);
    }

    #[test]
    fn full_schema_requirements_do_not_prune() {
        let plan =
            Plan::scan("fact").join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")]);
        let (_, count) = run(plan);
        assert_eq!(count, 0, "no projection above means every column is required");
    }

    #[test]
    fn setop_sides_prune_consistently() {
        let a = Plan::scan("fact").select(col("x").lt(lit(3.0)));
        let b = Plan::scan("fact").select(col("x").ge(lit(5.0)));
        let plan = a.union(b).project(vec![("factId", col("factId"))]);
        let (out, count) = run(plan);
        // `dimId`/`x`/`unused` disappear below the union (key survives).
        assert!(count > 0, "union inputs should shrink: {out:?}");
    }

    #[test]
    fn second_pass_is_stable() {
        let db = db();
        let plan = Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .aggregate(&["dimId"], vec![AggSpec::new("sx", AggFunc::Sum, col("x"))]);
        let mut c1 = 0;
        let once = prune(plan, &db, &mut c1).unwrap();
        assert!(c1 > 0);
        let mut c2 = 0;
        let twice = prune(once.clone(), &db, &mut c2).unwrap();
        assert_eq!(c2, 0, "pruning must reach a fixed point: {twice:?}");
        assert_eq!(once, twice);
    }
}
