//! Predicate pushdown, à la Polars' `PredicatePushDown`.
//!
//! σ nodes dissolve into sets of conjuncts that descend the tree and
//! recombine with `AND` wherever they come to rest:
//!
//! * **Π** — always transparent: the conjunct is rewritten by substituting
//!   each referenced output column with its defining expression (all scalar
//!   expressions in this system are deterministic and row-local, so the
//!   substitution is exact, NULL semantics included);
//! * **⋈** — a conjunct referencing only one input moves to that input,
//!   provided the join kind cannot fabricate NULL-padded rows for that side
//!   (left for `Inner`/`Left`/`Semi`/`Anti`, right for `Inner`/`Right`);
//!   `Full` joins and conjuncts spanning both inputs stay above;
//! * **γ** — a conjunct referencing only group-by columns filters whole
//!   groups and commutes below the aggregate; anything touching an
//!   aggregate output is a HAVING clause and stays above;
//! * **∪ / ∩ / −** — conjuncts are replicated into both inputs with the
//!   positional column renaming of the set operation applied;
//! * **η** — a stopping point by convention: η is itself a deterministic
//!   filter, and adjacent filters are canonicalized with σ *above* η so this
//!   rule and the η push-down rule cannot ping-pong a σ/η pair forever.
//!
//! Filtering earlier never changes the result set (filters are row-local
//! and commute with each other), and only ever shrinks the keyed
//! intermediates the evaluator materializes, so Definition 2 key
//! uniqueness is preserved everywhere.

use svc_storage::{Result, Schema};

use crate::derive::{derive_tree, DerivedTree, LeafProvider, SetOpKind};
use crate::plan::{JoinKind, Plan};
use crate::scalar::{BinOp, Expr};

/// Push every selection in `plan` as deep as legality allows. `moved`
/// counts conjuncts that crossed at least one operator boundary.
///
/// Schemas come from one bottom-up [`derive_tree`] pass over the input plan;
/// the recursion descends the plan and the tree in lockstep, so no node's
/// subtree is ever re-derived.
pub fn pushdown(plan: Plan, leaves: &dyn LeafProvider, moved: &mut usize) -> Result<Plan> {
    let tree = derive_tree(&plan, leaves)?;
    push(plan, &tree, Vec::new(), moved)
}

/// Split a predicate into its top-level conjuncts. SQL `WHERE` keeps a row
/// iff the predicate is exactly true, and `a AND b` is exactly true iff
/// both conjuncts are, so σ_{a∧b} ≡ σ_a ∘ σ_b even under three-valued
/// logic.
fn split_conjuncts(e: Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Binary { op: BinOp::And, left, right } => {
            split_conjuncts(*left, out);
            split_conjuncts(*right, out);
        }
        other => out.push(other),
    }
}

/// Split the σ chain at the top of `plan` off into its conjuncts (in the
/// same order [`wrap`] emits them, so strip ∘ wrap is the identity).
fn strip_top_selects(plan: Plan) -> (Plan, Vec<Expr>) {
    match plan {
        Plan::Select { input, predicate } => {
            let (core, mut below) = strip_top_selects(*input);
            let mut preds = Vec::new();
            split_conjuncts(predicate, &mut preds);
            below.extend(preds);
            (core, below)
        }
        other => (other, Vec::new()),
    }
}

/// Recombine conjuncts (in collection order, so repeated passes rebuild an
/// identical tree) and wrap `plan` in a single σ; identity when empty.
fn wrap(plan: Plan, preds: Vec<Expr>) -> Plan {
    match preds.into_iter().reduce(|a, b| a.and(b)) {
        None => plan,
        Some(predicate) => Plan::Select { input: Box::new(plan), predicate },
    }
}

/// Replace every column reference with the projection expression defining
/// it, moving the predicate below a generalized projection.
fn substitute(e: &Expr, out_schema: &Schema, columns: &[(String, Expr)]) -> Result<Expr> {
    Ok(match e {
        Expr::Col(name) => columns[out_schema.resolve(name)?].1.clone(),
        Expr::Lit(v) => Expr::Lit(v.clone()),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(substitute(left, out_schema, columns)?),
            right: Box::new(substitute(right, out_schema, columns)?),
        },
        Expr::Not(x) => Expr::Not(Box::new(substitute(x, out_schema, columns)?)),
        Expr::IsNull(x) => Expr::IsNull(Box::new(substitute(x, out_schema, columns)?)),
        Expr::Call { func, args } => Expr::Call {
            func: *func,
            args: args.iter().map(|a| substitute(a, out_schema, columns)).collect::<Result<_>>()?,
        },
    })
}

/// Rewrite every column reference through `rename`.
fn rename_cols(e: &Expr, rename: &dyn Fn(&str) -> Result<String>) -> Result<Expr> {
    Ok(match e {
        Expr::Col(name) => Expr::Col(rename(name)?),
        Expr::Lit(v) => Expr::Lit(v.clone()),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(rename_cols(left, rename)?),
            right: Box::new(rename_cols(right, rename)?),
        },
        Expr::Not(x) => Expr::Not(Box::new(rename_cols(x, rename)?)),
        Expr::IsNull(x) => Expr::IsNull(Box::new(rename_cols(x, rename)?)),
        Expr::Call { func, args } => Expr::Call {
            func: *func,
            args: args.iter().map(|a| rename_cols(a, rename)).collect::<Result<_>>()?,
        },
    })
}

/// Core recursion: `preds` are conjuncts filtering this node's output,
/// with names resolvable against this node's output schema. `dt` is the
/// derived tree of `plan` (pre-rewrite; predicate movement never changes
/// any node's schema, so the annotation stays exact throughout).
fn push(plan: Plan, dt: &DerivedTree, mut preds: Vec<Expr>, moved: &mut usize) -> Result<Plan> {
    match plan {
        Plan::Select { input, predicate } => {
            split_conjuncts(predicate, &mut preds);
            push(*input, dt.input(), preds, moved)
        }
        Plan::Scan { .. } => Ok(wrap(plan, preds)),
        Plan::Hash { input, key, ratio, spec } => {
            // σ commutes with η (both are row-local filters), so conjuncts
            // continue *through* a blocked η toward the operators below it.
            // The shared canonical form with the η rule is σ-above-η: any
            // conjunct that would come to rest directly beneath the η is
            // lifted back above it, so this rule and the η push-down (which
            // sinks η below σ) can never ping-pong a σ/η pair. Conjuncts
            // that make real progress deeper — into a join side, below a
            // γ — stay down there, which is new ground the old rule (a hard
            // stop at every η) never reached.
            // Crossing the η itself is not counted as movement (a lifted
            // conjunct ends where it started); conjuncts that settle deeper
            // are counted by the join/γ/Π arms they cross.
            let inner = push(*input, dt.input(), preds, moved)?;
            let (core, rest) = strip_top_selects(inner);
            Ok(wrap(Plan::Hash { input: Box::new(core), key, ratio, spec }, rest))
        }
        Plan::Project { input, columns } => {
            if preds.is_empty() {
                let inner = push(*input, dt.input(), Vec::new(), moved)?;
                return Ok(Plan::Project { input: Box::new(inner), columns });
            }
            let out_schema = &dt.derived.schema;
            let lowered = preds
                .into_iter()
                .map(|p| substitute(&p, out_schema, &columns))
                .collect::<Result<Vec<_>>>()?;
            *moved += lowered.len();
            let inner = push(*input, dt.input(), lowered, moved)?;
            Ok(Plan::Project { input: Box::new(inner), columns })
        }
        Plan::Aggregate { input, group_by, aggregates } => {
            let out_schema = &dt.derived.schema;
            let mut below = Vec::new();
            let mut above = Vec::new();
            for p in preds {
                let group_only = p
                    .referenced_columns()
                    .iter()
                    .all(|n| matches!(out_schema.resolve(n), Ok(i) if i < group_by.len()));
                if group_only && !p.referenced_columns().is_empty() {
                    // A group-column filter removes whole groups; rows of the
                    // surviving groups are untouched, so it commutes below γ.
                    below.push(rename_cols(&p, &|n| Ok(group_by[out_schema.resolve(n)?].clone()))?);
                } else {
                    above.push(p);
                }
            }
            *moved += below.len();
            let inner = push(*input, dt.input(), below, moved)?;
            Ok(wrap(Plan::Aggregate { input: Box::new(inner), group_by, aggregates }, above))
        }
        Plan::Join { left, right, kind, on } => {
            let (l_t, r_t) = dt.pair();
            let (l_d, r_d) = (&l_t.derived, &r_t.derived);
            let out_schema = &dt.derived.schema;
            let l_arity = l_d.schema.len();

            let push_left_ok =
                matches!(kind, JoinKind::Inner | JoinKind::Left | JoinKind::Semi | JoinKind::Anti);
            let push_right_ok = matches!(kind, JoinKind::Inner | JoinKind::Right);

            let mut l_preds = Vec::new();
            let mut r_preds = Vec::new();
            let mut above = Vec::new();
            for p in preds {
                let mut positions = Vec::new();
                let mut resolvable = true;
                for name in p.referenced_columns() {
                    match out_schema.resolve(name) {
                        Ok(i) => positions.push(i),
                        Err(_) => {
                            resolvable = false;
                            break;
                        }
                    }
                }
                if !resolvable || positions.is_empty() {
                    above.push(p);
                    continue;
                }
                if positions.iter().all(|&i| i < l_arity) && push_left_ok {
                    // Left output columns keep their input names verbatim.
                    l_preds.push(rename_cols(&p, &|n| {
                        Ok(out_schema.field(out_schema.resolve(n)?).name.clone())
                    })?);
                } else if positions.iter().all(|&i| i >= l_arity) && push_right_ok {
                    // Right output columns may carry a disambiguation prefix;
                    // map positions back to the right input's names.
                    r_preds.push(rename_cols(&p, &|n| {
                        let i = out_schema.resolve(n)?;
                        Ok(r_d.schema.field(i - l_arity).name.clone())
                    })?);
                } else {
                    above.push(p);
                }
            }
            *moved += l_preds.len() + r_preds.len();
            let l = push(*left, l_t, l_preds, moved)?;
            let r = push(*right, r_t, r_preds, moved)?;
            Ok(wrap(Plan::Join { left: Box::new(l), right: Box::new(r), kind, on }, above))
        }
        Plan::Union { left, right } => {
            push_setop(*left, *right, dt, SetOpKind::Union, &preds, moved)
        }
        Plan::Intersect { left, right } => {
            push_setop(*left, *right, dt, SetOpKind::Intersect, &preds, moved)
        }
        Plan::Difference { left, right } => {
            push_setop(*left, *right, dt, SetOpKind::Difference, &preds, moved)
        }
    }
}

/// Filters replicate into both inputs of a set operation: a row survives
/// the operation iff it survives on matching rows of both sides, and the
/// filter keeps exactly the same rows on each side (columns correspond
/// positionally).
fn push_setop(
    left: Plan,
    right: Plan,
    dt: &DerivedTree,
    op: SetOpKind,
    preds: &[Expr],
    moved: &mut usize,
) -> Result<Plan> {
    let (l_t, r_t) = dt.pair();
    if preds.is_empty() {
        let l = push(left, l_t, Vec::new(), moved)?;
        let r = push(right, r_t, Vec::new(), moved)?;
        return Ok(op.rebuild(l, r));
    }
    let l_schema = &l_t.derived.schema;
    let r_schema = &r_t.derived.schema;
    let mut l_preds = Vec::with_capacity(preds.len());
    let mut r_preds = Vec::with_capacity(preds.len());
    for p in preds {
        l_preds.push(rename_cols(p, &|n| Ok(l_schema.field(l_schema.resolve(n)?).name.clone()))?);
        r_preds.push(rename_cols(p, &|n| Ok(r_schema.field(l_schema.resolve(n)?).name.clone()))?);
    }
    *moved += preds.len();
    let l = push(left, l_t, l_preds, moved)?;
    let r = push(right, r_t, r_preds, moved)?;
    Ok(op.rebuild(l, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggSpec;
    use crate::eval::{evaluate, Bindings};
    use crate::scalar::{col, lit};
    use svc_storage::{DataType, Database, Schema as St, Table, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let mut dim = Table::new(
            St::from_pairs(&[("dimId", DataType::Int), ("w", DataType::Float)]).unwrap(),
            &["dimId"],
        )
        .unwrap();
        for d in 0..30i64 {
            dim.insert(vec![Value::Int(d), Value::Float((d % 5) as f64)]).unwrap();
        }
        let mut fact = Table::new(
            St::from_pairs(&[
                ("factId", DataType::Int),
                ("dimId", DataType::Int),
                ("x", DataType::Float),
            ])
            .unwrap(),
            &["factId"],
        )
        .unwrap();
        for f in 0..500i64 {
            fact.insert(vec![Value::Int(f), Value::Int(f % 30), Value::Float((f % 11) as f64)])
                .unwrap();
        }
        db.create_table("dim", dim);
        db.create_table("fact", fact);
        db
    }

    fn run(plan: Plan) -> (Plan, usize) {
        let db = db();
        let b = Bindings::from_database(&db);
        let expected = evaluate(&plan, &b).unwrap();
        let mut moved = 0;
        let out = pushdown(plan, &db, &mut moved).unwrap();
        let got = evaluate(&out, &b).unwrap();
        assert!(got.same_contents(&expected), "pushdown changed the result");
        (out, moved)
    }

    /// The topmost σ chain above a node, as conjunct count.
    fn top_selects(plan: &Plan) -> usize {
        match plan {
            Plan::Select { input, .. } => 1 + top_selects(input),
            _ => 0,
        }
    }

    #[test]
    fn join_splits_conjuncts_per_side() {
        let plan = Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .select(col("x").gt(lit(3.0)).and(col("w").lt(lit(4.0))));
        let (out, moved) = run(plan);
        assert_eq!(moved, 2);
        assert_eq!(top_selects(&out), 0, "both conjuncts sank into the join: {out:?}");
    }

    #[test]
    fn having_stays_above_aggregate_group_filter_sinks() {
        let plan = Plan::scan("fact")
            .aggregate(&["dimId"], vec![AggSpec::count_all("n")])
            .select(col("n").gt(lit(2i64)).and(col("dimId").lt(lit(20i64))));
        let (out, moved) = run(plan);
        assert_eq!(moved, 1, "only the group filter moves");
        assert_eq!(top_selects(&out), 1, "HAVING conjunct stays above: {out:?}");
    }

    #[test]
    fn projection_substitutes_computed_columns() {
        let plan = Plan::scan("fact")
            .project(vec![("factId", col("factId")), ("x2", col("x").mul(lit(2.0)))])
            .select(col("x2").gt(lit(10.0)));
        let (out, moved) = run(plan);
        assert_eq!(moved, 1);
        // The σ now lives below the Π with the doubled expression inlined.
        let Plan::Project { input, .. } = &out else {
            panic!("expected projection on top, got {out:?}");
        };
        assert!(matches!(**input, Plan::Select { .. }));
    }

    #[test]
    fn full_join_blocks_pushdown() {
        let plan = Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Full, &[("dimId", "dimId")])
            .select(col("x").gt(lit(3.0)));
        let (out, moved) = run(plan);
        assert_eq!(moved, 0);
        assert_eq!(top_selects(&out), 1);
    }

    #[test]
    fn left_join_pushes_left_only() {
        let plan = Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Left, &[("dimId", "dimId")])
            .select(col("x").gt(lit(3.0)).and(col("w").lt(lit(2.0))));
        let (out, moved) = run(plan);
        assert_eq!(moved, 1, "only the fact-side conjunct may sink");
        assert_eq!(top_selects(&out), 1, "the dim-side conjunct guards the padding");
    }

    #[test]
    fn setops_replicate_filters() {
        let a = Plan::scan("fact").select(col("dimId").lt(lit(20i64)));
        let b = Plan::scan("fact").select(col("dimId").ge(lit(10i64)));
        let plan = a.union(b).select(col("x").gt(lit(5.0)));
        let (out, moved) = run(plan);
        assert!(moved >= 1);
        assert_eq!(top_selects(&out), 0);
    }

    #[test]
    fn conjuncts_continue_below_a_blocked_eta() {
        use svc_storage::HashSpec;
        // η rests above the join; the σ conjuncts must pass through it and
        // sink into the join sides instead of stopping at the η.
        let plan = Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .hash(&["factId", "dimId"], 0.5, HashSpec::with_seed(5))
            .select(col("x").gt(lit(3.0)).and(col("w").lt(lit(2.0))));
        let (out, moved) = run(plan);
        assert_eq!(moved, 2, "both conjuncts cross the η into the join: {out:?}");
        assert_eq!(top_selects(&out), 0);
        let Plan::Hash { input, .. } = &out else { panic!("η stays on top: {out:?}") };
        assert!(matches!(**input, Plan::Join { .. }), "no σ may rest under the η: {input:?}");
    }

    #[test]
    fn resting_conjuncts_are_lifted_back_above_eta() {
        use svc_storage::HashSpec;
        // Nothing below the η to cross: the conjunct is lifted back above
        // it (canonical σ-above-η), and a σ written below the η is
        // canonicalized up as well. Neither counts as movement.
        let spec = HashSpec::with_seed(6);
        let above = Plan::scan("fact").hash(&["factId"], 0.5, spec).select(col("x").gt(lit(3.0)));
        let (out, moved) = run(above.clone());
        assert_eq!(moved, 0);
        assert_eq!(out, above, "canonical input passes through unchanged");

        let below = Plan::scan("fact").select(col("x").gt(lit(3.0))).hash(&["factId"], 0.5, spec);
        let (out, moved) = run(below);
        assert_eq!(moved, 0);
        assert_eq!(out, above, "σ below η canonicalizes to σ above η");
    }

    #[test]
    fn eta_and_sigma_pair_reaches_fixed_point() {
        use svc_storage::HashSpec;
        let db = db();
        let plan = Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .hash(&["factId", "dimId"], 0.4, HashSpec::with_seed(7))
            .select(col("x").gt(lit(1.0)));
        let mut moved = 0;
        let once = pushdown(plan, &db, &mut moved).unwrap();
        let mut again = 0;
        let twice = pushdown(once.clone(), &db, &mut again).unwrap();
        assert_eq!(again, 0, "second pass must be a no-op");
        assert_eq!(once, twice);
    }

    #[test]
    fn fixed_point_is_stable() {
        let db = db();
        let plan = Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .select(col("x").gt(lit(3.0)));
        let mut moved = 0;
        let once = pushdown(plan, &db, &mut moved).unwrap();
        assert!(moved > 0);
        let mut again = 0;
        let twice = pushdown(once.clone(), &db, &mut again).unwrap();
        assert_eq!(again, 0, "second pass must be a no-op");
        assert_eq!(once, twice);
    }
}
