//! Cost-based join reordering.
//!
//! Maximal regions of adjacent **inner** equi-joins are flattened into a
//! join graph — relations are the non-inner-join subplans hanging off the
//! region, edges are the equality pairs — and rebuilt in the cheapest order
//! the [`CardEstimator`](crate::optimizer::cost::CardEstimator) can find:
//! dynamic programming over connected subsets (bushy trees, the Selinger
//! family) up to [`DP_MAX`] relations, a greedy smallest-result-first
//! heuristic beyond. The cost of a tree is `C_out`, the sum of estimated
//! intermediate result sizes, which is what dominates the hash-join
//! evaluator's work.
//!
//! Inner joins are freely commutative and associative: every equality pair
//! is applied exactly once, at the tree node where its two relations first
//! meet (their join-tree LCA), so any order computes the identical relation.
//! Non-inner joins (outer, semi, anti), σ/Π/γ/η nodes, and set operations
//! are region *boundaries*: they travel with their subtree as opaque
//! relations.
//!
//! Reordering changes the join output's column naming and order
//! (`Schema::concat` renames right-side collisions positionally), so every
//! rewritten region is capped with a **restoring projection** mapping the
//! new tree's columns back to the original names and order — parents of the
//! region are none the wiser. The derived *primary key* of the region can
//! still legitimately change (Definition 2's foreign-key reduction depends
//! on join orientation); the rule therefore re-derives every ancestor, and
//! if any ancestor rejects the new key (e.g. a projection that kept only
//! the old key's columns) the whole rewrite is abandoned and the original
//! plan kept — reordering is an optimization, never an obligation.

use svc_storage::{Result, Schema};

use crate::derive::{
    derive_aggregate, derive_hash, derive_join, derive_project, derive_select, derive_setop,
    derive_tree, Derived, DerivedTree, LeafProvider, SetOpKind,
};
use crate::optimizer::cost::CardEstimator;
use crate::plan::{JoinKind, Plan};
use crate::scalar::col;

/// Largest region ordered by exhaustive DP; larger regions go greedy.
pub const DP_MAX: usize = 8;

/// Reorder every inner-join region of `plan` by estimated cost. `reordered`
/// counts regions whose join tree actually changed. On any estimation or
/// re-derivation failure the original plan is returned unchanged.
pub fn reorder(
    plan: Plan,
    leaves: &dyn LeafProvider,
    est: &dyn CardEstimator,
    reordered: &mut usize,
) -> Result<Plan> {
    let tree = derive_tree(&plan, leaves)?;
    let mut count = 0;
    match rewrite(plan.clone(), tree, leaves, est, &mut count) {
        Ok((out, _)) => {
            *reordered += count;
            Ok(out)
        }
        // A rewrite that an ancestor rejects (changed key under a narrow
        // projection) is not an error of the input plan: keep it as written.
        Err(_) => Ok(plan),
    }
}

fn take_unary(dt: DerivedTree) -> DerivedTree {
    let DerivedTree { mut children, .. } = dt;
    children.pop().expect("unary node has one child")
}

fn take_binary(dt: DerivedTree) -> (DerivedTree, DerivedTree) {
    let DerivedTree { mut children, .. } = dt;
    let right = children.pop().expect("binary node has two children");
    let left = children.pop().expect("binary node has two children");
    (left, right)
}

/// One relation of a join region: a non-inner-join subplan (already
/// recursively reordered) and its derived tree.
struct Rel {
    plan: Plan,
    dt: DerivedTree,
}

/// A column's origin: `(relation index, column index within the relation)`.
type Origin = (usize, usize);

#[derive(Default)]
struct Region {
    rels: Vec<Rel>,
    /// Equality pairs between relation columns.
    edges: Vec<(Origin, Origin)>,
}

/// The original join tree over relation indices, with the original `on`
/// spellings. Rebuilding from the shape reproduces the incoming tree
/// (modulo rewritten relation subplans), which is both the cost baseline a
/// candidate order must strictly beat and the stable fallback — mirror
/// orientations of a join tie on the symmetric cost model, and without a
/// strict-improvement gate the rule would flip between them every sweep.
enum Shape {
    Leaf(usize),
    Join { left: Box<Shape>, right: Box<Shape>, on: Vec<(String, String)> },
}

/// Rewrite the plan bottom-up, re-deriving every node (keys below a
/// reordered region may change, and ancestors must accept them).
fn rewrite(
    plan: Plan,
    dt: DerivedTree,
    leaves: &dyn LeafProvider,
    est: &dyn CardEstimator,
    count: &mut usize,
) -> Result<(Plan, DerivedTree)> {
    Ok(match plan {
        Plan::Join { kind: JoinKind::Inner, .. } => reorder_region(plan, dt, leaves, est, count)?,
        Plan::Scan { .. } => (plan, dt),
        Plan::Select { input, predicate } => {
            let (inner, inner_dt) = rewrite(*input, take_unary(dt), leaves, est, count)?;
            let d = derive_select(&inner_dt.derived, &predicate)?;
            (Plan::Select { input: Box::new(inner), predicate }, DerivedTree::unary(d, inner_dt))
        }
        Plan::Project { input, columns } => {
            let (inner, inner_dt) = rewrite(*input, take_unary(dt), leaves, est, count)?;
            let d = derive_project(&inner_dt.derived, &columns)?;
            (Plan::Project { input: Box::new(inner), columns }, DerivedTree::unary(d, inner_dt))
        }
        Plan::Aggregate { input, group_by, aggregates } => {
            let (inner, inner_dt) = rewrite(*input, take_unary(dt), leaves, est, count)?;
            let d = derive_aggregate(&inner_dt.derived, &group_by, &aggregates)?;
            (
                Plan::Aggregate { input: Box::new(inner), group_by, aggregates },
                DerivedTree::unary(d, inner_dt),
            )
        }
        Plan::Hash { input, key, ratio, spec } => {
            let (inner, inner_dt) = rewrite(*input, take_unary(dt), leaves, est, count)?;
            let d = derive_hash(&inner_dt.derived, &key, ratio)?;
            (
                Plan::Hash { input: Box::new(inner), key, ratio, spec },
                DerivedTree::unary(d, inner_dt),
            )
        }
        Plan::Join { left, right, kind, on } => {
            let (l_dt, r_dt) = take_binary(dt);
            let (l, l_dt) = rewrite(*left, l_dt, leaves, est, count)?;
            let (r, r_dt) = rewrite(*right, r_dt, leaves, est, count)?;
            let d = derive_join(&l_dt.derived, &r_dt.derived, kind, &on, r.name_hint())?.0;
            (
                Plan::Join { left: Box::new(l), right: Box::new(r), kind, on },
                DerivedTree::binary(d, l_dt, r_dt),
            )
        }
        Plan::Union { left, right } => {
            rewrite_setop(*left, *right, SetOpKind::Union, dt, leaves, est, count)?
        }
        Plan::Intersect { left, right } => {
            rewrite_setop(*left, *right, SetOpKind::Intersect, dt, leaves, est, count)?
        }
        Plan::Difference { left, right } => {
            rewrite_setop(*left, *right, SetOpKind::Difference, dt, leaves, est, count)?
        }
    })
}

fn rewrite_setop(
    left: Plan,
    right: Plan,
    op: SetOpKind,
    dt: DerivedTree,
    leaves: &dyn LeafProvider,
    est: &dyn CardEstimator,
    count: &mut usize,
) -> Result<(Plan, DerivedTree)> {
    let (l_dt, r_dt) = take_binary(dt);
    let (l, l_dt) = rewrite(left, l_dt, leaves, est, count)?;
    let (r, r_dt) = rewrite(right, r_dt, leaves, est, count)?;
    let d = derive_setop(&l_dt.derived, &r_dt.derived, op)?;
    Ok((op.rebuild(l, r), DerivedTree::binary(d, l_dt, r_dt)))
}

/// Flatten the inner-join region rooted at `plan` into `region`, rewriting
/// each relation subplan recursively. Returns the layout of this subtree's
/// output (position → column origin) and its shape.
fn flatten(
    plan: Plan,
    dt: DerivedTree,
    region: &mut Region,
    leaves: &dyn LeafProvider,
    est: &dyn CardEstimator,
    count: &mut usize,
) -> Result<(Vec<Origin>, Shape)> {
    match plan {
        Plan::Join { left, right, kind: JoinKind::Inner, on } => {
            let (l_dt, r_dt) = take_binary(dt);
            let l_schema = l_dt.derived.schema.clone();
            let r_schema = r_dt.derived.schema.clone();
            let (l_layout, l_shape) = flatten(*left, l_dt, region, leaves, est, count)?;
            let (r_layout, r_shape) = flatten(*right, r_dt, region, leaves, est, count)?;
            for (ln, rn) in &on {
                let li = l_schema.resolve(ln)?;
                let ri = r_schema.resolve(rn)?;
                region.edges.push((l_layout[li], r_layout[ri]));
            }
            let mut layout = l_layout;
            layout.extend(r_layout);
            Ok((layout, Shape::Join { left: Box::new(l_shape), right: Box::new(r_shape), on }))
        }
        other => {
            let (p, pdt) = rewrite(other, dt, leaves, est, count)?;
            let idx = region.rels.len();
            let ncols = pdt.derived.schema.len();
            region.rels.push(Rel { plan: p, dt: pdt });
            Ok(((0..ncols).map(|c| (idx, c)).collect(), Shape::Leaf(idx)))
        }
    }
}

/// Rebuild the incoming tree from its shape (original `on` spellings, so
/// the result is plan-equal to the input when no relation changed) and
/// price it with the same cost model DP candidates use — except that the
/// joins keep their original `on` lists verbatim.
fn entry_from_shape(
    shape: &Shape,
    region: &Region,
    est: &dyn CardEstimator,
    leaves: &dyn LeafProvider,
) -> Result<Entry> {
    match shape {
        Shape::Leaf(i) => Entry::leaf(*i, &region.rels[*i], est, leaves),
        Shape::Join { left, right, on } => {
            let l = entry_from_shape(left, region, est, leaves)?;
            let r = entry_from_shape(right, region, est, leaves)?;
            // Price with the shared arithmetic (every region edge crossing
            // this split — identical to what a DP candidate of this shape
            // would be charged), but keep the original `on` spellings so
            // the rebuilt plan is equal to the input.
            let priced = join_entries(&l, &r, region)?;
            let plan = Plan::Join {
                left: Box::new(l.plan),
                right: Box::new(r.plan),
                kind: JoinKind::Inner,
                on: on.clone(),
            };
            Ok(Entry { plan, ..priced })
        }
    }
}

/// A candidate (partial) join tree over a subset of the region's relations.
#[derive(Clone)]
struct Entry {
    plan: Plan,
    derived: Derived,
    /// Output position → column origin.
    layout: Vec<Origin>,
    rows: f64,
    /// Per-output-column distinct estimates, aligned with `layout`.
    distinct: Vec<f64>,
    /// `C_out`: sum of estimated intermediate result sizes.
    cost: f64,
}

impl Entry {
    /// A region relation: one estimator call (the only place the DP
    /// consults the estimator — candidate joins are priced arithmetically
    /// from the leaf cardinalities).
    fn leaf(
        i: usize,
        rel: &Rel,
        est: &dyn CardEstimator,
        leaves: &dyn LeafProvider,
    ) -> Result<Entry> {
        let card = est.estimate(&rel.plan, leaves)?;
        let rows = sane(card.rows);
        let ncols = rel.dt.derived.schema.len();
        let mut distinct = card.distinct;
        distinct.resize(ncols, rows);
        Ok(Entry {
            plan: rel.plan.clone(),
            derived: rel.dt.derived.clone(),
            layout: (0..ncols).map(|c| (i, c)).collect(),
            rows,
            distinct,
            cost: 0.0,
        })
    }
}

fn sane(rows: f64) -> f64 {
    if rows.is_finite() {
        rows.max(1.0)
    } else {
        1e18
    }
}

/// Join two entries with every region edge that crosses them. Cardinality
/// is the textbook equi-join estimate over the entries' column distincts:
/// `|L|·|R| · ∏ 1/max(ndv_l, ndv_r)`.
fn join_entries(e1: &Entry, e2: &Entry, region: &Region) -> Result<Entry> {
    let pos = |layout: &[Origin], o: Origin| layout.iter().position(|&x| x == o);
    let mut on = Vec::new();
    let mut rows = e1.rows * e2.rows;
    for &(a, b) in &region.edges {
        let (lp, rp) = match (pos(&e1.layout, a), pos(&e2.layout, b)) {
            (Some(lp), Some(rp)) => (lp, rp),
            _ => match (pos(&e1.layout, b), pos(&e2.layout, a)) {
                (Some(lp), Some(rp)) => (lp, rp),
                _ => continue, // intra-subset or outside: handled elsewhere
            },
        };
        rows /= e1.distinct[lp].max(e2.distinct[rp]).max(1.0);
        on.push((
            e1.derived.schema.field(lp).name.clone(),
            e2.derived.schema.field(rp).name.clone(),
        ));
    }
    let rows = sane(rows);
    let plan = Plan::Join {
        left: Box::new(e1.plan.clone()),
        right: Box::new(e2.plan.clone()),
        kind: JoinKind::Inner,
        on: on.clone(),
    };
    let hint = match &plan {
        Plan::Join { right, .. } => right.name_hint().to_string(),
        _ => unreachable!(),
    };
    let derived = derive_join(&e1.derived, &e2.derived, JoinKind::Inner, &on, &hint)?.0;
    let mut layout = e1.layout.clone();
    layout.extend(e2.layout.iter().copied());
    let distinct: Vec<f64> = e1.distinct.iter().chain(&e2.distinct).map(|&d| d.min(rows)).collect();
    Ok(Entry { plan, derived, layout, rows, distinct, cost: e1.cost + e2.cost + rows })
}

/// True iff some region edge connects the two entries' relation sets.
fn connected(e1: &Entry, e2: &Entry, region: &Region) -> bool {
    let has = |layout: &[Origin], r: usize| layout.iter().any(|&(ri, _)| ri == r);
    region.edges.iter().any(|&((ra, _), (rb, _))| {
        (has(&e1.layout, ra) && has(&e2.layout, rb)) || (has(&e1.layout, rb) && has(&e2.layout, ra))
    })
}

/// Exhaustive DP over connected subsets (cross products only when a subset
/// has no connected split). Deterministic: strictly-better cost wins.
fn dp_order(region: &Region, est: &dyn CardEstimator, leaves: &dyn LeafProvider) -> Result<Entry> {
    let n = region.rels.len();
    let full: usize = (1 << n) - 1;
    let mut table: Vec<Option<Entry>> = vec![None; 1 << n];
    for (i, rel) in region.rels.iter().enumerate() {
        table[1 << i] = Some(Entry::leaf(i, rel, est, leaves)?);
    }
    for mask in 1..=full {
        if (mask as u32).count_ones() < 2 {
            continue;
        }
        // Two passes: connected splits first; cross products only if the
        // subset admits no connected split at all.
        for require_edge in [true, false] {
            let mut best: Option<Entry> = None;
            let mut s1 = (mask - 1) & mask;
            while s1 != 0 {
                let s2 = mask ^ s1;
                if let (Some(e1), Some(e2)) = (&table[s1], &table[s2]) {
                    if !require_edge || connected(e1, e2, region) {
                        let cand = join_entries(e1, e2, region)?;
                        if best.as_ref().is_none_or(|b| cand.cost < b.cost) {
                            best = Some(cand);
                        }
                    }
                }
                s1 = (s1 - 1) & mask;
            }
            if best.is_some() {
                table[mask] = best;
                break;
            }
        }
    }
    table[full].take().ok_or_else(|| {
        svc_storage::StorageError::Invalid("join region could not be ordered".into())
    })
}

/// Greedy smallest-result-first ordering for regions past [`DP_MAX`].
fn greedy_order(
    region: &Region,
    est: &dyn CardEstimator,
    leaves: &dyn LeafProvider,
) -> Result<Entry> {
    let mut entries: Vec<Entry> = region
        .rels
        .iter()
        .enumerate()
        .map(|(i, rel)| Entry::leaf(i, rel, est, leaves))
        .collect::<Result<_>>()?;
    while entries.len() > 1 {
        let mut best: Option<(usize, usize, Entry)> = None;
        for require_edge in [true, false] {
            for i in 0..entries.len() {
                for j in 0..entries.len() {
                    if i == j || (require_edge && !connected(&entries[i], &entries[j], region)) {
                        continue;
                    }
                    let cand = join_entries(&entries[i], &entries[j], region)?;
                    if best.as_ref().is_none_or(|(_, _, b)| cand.rows < b.rows) {
                        best = Some((i, j, cand));
                    }
                }
            }
            if best.is_some() {
                break;
            }
        }
        let (i, j, joined) = best.expect("at least one pair is joinable");
        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
        entries.swap_remove(hi);
        entries.swap_remove(lo);
        entries.push(joined);
    }
    Ok(entries.pop().expect("one entry remains"))
}

/// Rebuild the derived tree of a DP-produced join tree: region relations
/// appear left-to-right in `order`, everything else is `Join{Inner}` nodes.
fn derive_winner(
    plan: &Plan,
    order: &mut std::vec::IntoIter<usize>,
    rels: &[Rel],
) -> Result<DerivedTree> {
    match plan {
        Plan::Join { left, right, kind: JoinKind::Inner, on } => {
            let l = derive_winner(left, order, rels)?;
            let r = derive_winner(right, order, rels)?;
            let d = derive_join(&l.derived, &r.derived, JoinKind::Inner, on, right.name_hint())?.0;
            Ok(DerivedTree::binary(d, l, r))
        }
        _ => {
            let i = order.next().expect("layout covers every relation");
            Ok(rels[i].dt.clone())
        }
    }
}

/// Reorder one region rooted at an inner join. The incoming tree is the
/// baseline: a candidate order is adopted only when its estimated cost is
/// *strictly* lower, which is what makes the rule a fixed point — mirror
/// orientations tie on the symmetric cost model and must not flip-flop.
fn reorder_region(
    plan: Plan,
    dt: DerivedTree,
    leaves: &dyn LeafProvider,
    est: &dyn CardEstimator,
    count: &mut usize,
) -> Result<(Plan, DerivedTree)> {
    let orig_schema: Schema = dt.derived.schema.clone();
    let mut region = Region::default();
    let (orig_layout, shape) = flatten(plan, dt, &mut region, leaves, est, count)?;

    // Rebuild the derived tree of a region tree from its layout (each
    // relation's columns form one contiguous block, so the layout yields
    // the left-to-right relation order).
    let derive_entry = |entry: &Entry, region: &Region| -> Result<DerivedTree> {
        let mut order = Vec::new();
        for &(r, _) in &entry.layout {
            if order.last() != Some(&r) {
                order.push(r);
            }
        }
        derive_winner(&entry.plan, &mut order.into_iter(), &region.rels)
    };

    let baseline = entry_from_shape(&shape, &region, est, leaves)?;
    let n = region.rels.len();
    if n >= 3 {
        let candidate = if n <= DP_MAX {
            dp_order(&region, est, leaves)?
        } else {
            greedy_order(&region, est, leaves)?
        };
        // Strict improvement with a small relative margin, so float noise
        // between equal-cost orders can never trigger a rewrite.
        if candidate.cost < baseline.cost * (1.0 - 1e-9) {
            let win_dt = derive_entry(&candidate, &region)?;
            // Restoring projection: original names and order on top of the
            // new tree. Every column of the new output appears exactly
            // once, so the new key always survives (bare references).
            let columns: Vec<(String, crate::scalar::Expr)> = orig_layout
                .iter()
                .enumerate()
                .map(|(i, origin)| {
                    let p = candidate
                        .layout
                        .iter()
                        .position(|o| o == origin)
                        .expect("reordered tree carries every region column");
                    (
                        orig_schema.field(i).name.clone(),
                        col(candidate.derived.schema.field(p).name.clone()),
                    )
                })
                .collect();
            let proj_d = derive_project(&candidate.derived, &columns)?;
            *count += 1;
            let dt = DerivedTree::unary(proj_d, win_dt);
            return Ok((Plan::Project { input: Box::new(candidate.plan), columns }, dt));
        }
    }
    // Keep the incoming order (with any rewritten relation subplans).
    let dt = derive_entry(&baseline, &region)?;
    Ok((baseline.plan, dt))
}
