//! The cardinality-estimation interface of the cost-based rules.
//!
//! The optimizer itself owns only the *interface*: a [`CardEstimator`] maps
//! a plan to an estimated output row count. The statistics that back the
//! estimate — per-table row counts, distinct-value sketches, histograms —
//! live in the `svc-catalog` crate, which implements this trait on top of
//! its catalog. Keeping the trait here (and the stats there) breaks the
//! dependency cycle: `svc-catalog` depends on `svc-relalg` for [`Plan`],
//! while the [`JoinReorder`](crate::optimizer::joinorder) rule depends only
//! on this trait.
//!
//! Estimates are *ordinal* information: the reordering rule only compares
//! candidate join trees against each other, so a consistently-biased
//! estimator still picks good orders. Estimators must be deterministic —
//! the fixed-point engine relies on the rule producing the same plan when
//! re-applied to its own output.

use svc_storage::Result;

use crate::derive::LeafProvider;
use crate::plan::Plan;

/// Estimated cardinality of one relation: row count plus per-output-column
/// distinct counts. The distincts are what lets the join-reordering DP
/// price a candidate join *arithmetically* — `|L|·|R| · ∏ 1/max(ndv_l,
/// ndv_r)` — instead of re-walking candidate plans through the estimator
/// (which made ordering a region cost more than evaluating it at small
/// scales).
#[derive(Debug, Clone)]
pub struct RelCard {
    /// Estimated output rows (≥ 1 for sane cost arithmetic).
    pub rows: f64,
    /// Estimated distinct values per output column, positionally aligned
    /// with the plan's derived schema.
    pub distinct: Vec<f64>,
}

/// Estimates the output cardinality of a plan. `Sync` because batch
/// executors optimize (and therefore estimate) plans from worker threads.
pub trait CardEstimator: Sync {
    /// Estimated rows and per-column distincts of `plan`. Implementations
    /// should return a pessimistic default (rather than an error) for
    /// leaves they have no statistics for, so that partially-covered plans
    /// — e.g. maintenance plans over `__ins.T` delta leaves — are still
    /// orderable.
    fn estimate(&self, plan: &Plan, leaves: &dyn LeafProvider) -> Result<RelCard>;

    /// Just the row count.
    fn estimate_rows(&self, plan: &Plan, leaves: &dyn LeafProvider) -> Result<f64> {
        Ok(self.estimate(plan, leaves)?.rows)
    }
}

impl<T: CardEstimator + ?Sized> CardEstimator for &T {
    fn estimate(&self, plan: &Plan, leaves: &dyn LeafProvider) -> Result<RelCard> {
        (**self).estimate(plan, leaves)
    }
}
