//! Constant folding: evaluate constant scalar subexpressions at plan time
//! and simplify trivial selections.
//!
//! * Any subexpression referencing no columns is evaluated once (through
//!   the same [`BoundExpr`](crate::scalar::BoundExpr) machinery the row
//!   evaluator uses, so semantics — NULL propagation, coercion, division
//!   by zero — are identical by construction) and replaced by its literal
//!   value. A fold is applied only when the literal's type equals the
//!   expression's inferred type: `least(2, 1.5)` infers `Int` but evaluates
//!   to `Float`, and a NULL literal would infer `Float` regardless, so such
//!   folds are skipped rather than risk changing a projection's output
//!   schema.
//! * Kleene-sound boolean identities: `x AND true ≡ x`, `x AND false ≡
//!   false`, `x OR true ≡ true`, `x OR false ≡ x` (all hold under
//!   three-valued logic even when `x` is NULL).
//! * `σ(true)` is removed entirely. `σ(false)` is kept — an always-empty
//!   relation still needs a node to carry its schema — but its predicate
//!   is now a bare literal the evaluator rejects rows with at zero cost
//!   per row.

use svc_storage::{Result, Schema, Value};

use crate::derive::{derive_tree, DerivedTree, LeafProvider};
use crate::plan::Plan;
use crate::scalar::{BinOp, Expr};

/// Fold constants throughout `plan`; `folded` counts replaced
/// subexpressions and removed `σ(true)` nodes.
pub fn fold(plan: Plan, leaves: &dyn LeafProvider, folded: &mut usize) -> Result<Plan> {
    let tree = derive_tree(&plan, leaves)?;
    fold_plan(plan, &tree, folded)
}

fn fold_plan(plan: Plan, dt: &DerivedTree, folded: &mut usize) -> Result<Plan> {
    Ok(match plan {
        Plan::Scan { .. } => plan,
        Plan::Select { input, predicate } => {
            let in_schema = &dt.input().derived.schema;
            let predicate = fold_expr(predicate, in_schema, folded)?;
            let inner = fold_plan(*input, dt.input(), folded)?;
            if predicate == Expr::Lit(Value::Bool(true)) {
                *folded += 1;
                inner
            } else {
                Plan::Select { input: Box::new(inner), predicate }
            }
        }
        Plan::Project { input, columns } => {
            let in_schema = &dt.input().derived.schema;
            let columns = columns
                .into_iter()
                .map(|(n, e)| Ok((n, fold_expr(e, in_schema, folded)?)))
                .collect::<Result<Vec<_>>>()?;
            Plan::Project { input: Box::new(fold_plan(*input, dt.input(), folded)?), columns }
        }
        Plan::Aggregate { input, group_by, aggregates } => {
            let in_schema = &dt.input().derived.schema;
            let aggregates = aggregates
                .into_iter()
                .map(|mut spec| {
                    spec.arg = fold_expr(spec.arg, in_schema, folded)?;
                    Ok(spec)
                })
                .collect::<Result<Vec<_>>>()?;
            Plan::Aggregate {
                input: Box::new(fold_plan(*input, dt.input(), folded)?),
                group_by,
                aggregates,
            }
        }
        Plan::Hash { input, key, ratio, spec } => {
            Plan::Hash { input: Box::new(fold_plan(*input, dt.input(), folded)?), key, ratio, spec }
        }
        Plan::Join { left, right, kind, on } => {
            let (l_t, r_t) = dt.pair();
            Plan::Join {
                left: Box::new(fold_plan(*left, l_t, folded)?),
                right: Box::new(fold_plan(*right, r_t, folded)?),
                kind,
                on,
            }
        }
        Plan::Union { left, right } => {
            let (l_t, r_t) = dt.pair();
            Plan::Union {
                left: Box::new(fold_plan(*left, l_t, folded)?),
                right: Box::new(fold_plan(*right, r_t, folded)?),
            }
        }
        Plan::Intersect { left, right } => {
            let (l_t, r_t) = dt.pair();
            Plan::Intersect {
                left: Box::new(fold_plan(*left, l_t, folded)?),
                right: Box::new(fold_plan(*right, r_t, folded)?),
            }
        }
        Plan::Difference { left, right } => {
            let (l_t, r_t) = dt.pair();
            Plan::Difference {
                left: Box::new(fold_plan(*left, l_t, folded)?),
                right: Box::new(fold_plan(*right, r_t, folded)?),
            }
        }
    })
}

/// Fold one expression bottom-up against its input schema.
fn fold_expr(e: Expr, schema: &Schema, folded: &mut usize) -> Result<Expr> {
    // Fold children first so constant subtrees surface.
    let e = match e {
        Expr::Binary { op, left, right } => {
            let left = fold_expr(*left, schema, folded)?;
            let right = fold_expr(*right, schema, folded)?;
            match (op, &left, &right) {
                // Kleene identities (sound even for NULL operands).
                (BinOp::And, Expr::Lit(Value::Bool(true)), _) => {
                    *folded += 1;
                    return Ok(right);
                }
                (BinOp::And, _, Expr::Lit(Value::Bool(true))) => {
                    *folded += 1;
                    return Ok(left);
                }
                (BinOp::And, Expr::Lit(Value::Bool(false)), _)
                | (BinOp::And, _, Expr::Lit(Value::Bool(false))) => {
                    *folded += 1;
                    return Ok(Expr::Lit(Value::Bool(false)));
                }
                (BinOp::Or, Expr::Lit(Value::Bool(false)), _) => {
                    *folded += 1;
                    return Ok(right);
                }
                (BinOp::Or, _, Expr::Lit(Value::Bool(false))) => {
                    *folded += 1;
                    return Ok(left);
                }
                (BinOp::Or, Expr::Lit(Value::Bool(true)), _)
                | (BinOp::Or, _, Expr::Lit(Value::Bool(true))) => {
                    *folded += 1;
                    return Ok(Expr::Lit(Value::Bool(true)));
                }
                _ => Expr::Binary { op, left: Box::new(left), right: Box::new(right) },
            }
        }
        Expr::Not(x) => Expr::Not(Box::new(fold_expr(*x, schema, folded)?)),
        Expr::IsNull(x) => Expr::IsNull(Box::new(fold_expr(*x, schema, folded)?)),
        Expr::Call { func, args } => Expr::Call {
            func,
            args: args.into_iter().map(|a| fold_expr(a, schema, folded)).collect::<Result<_>>()?,
        },
        leaf => return Ok(leaf),
    };
    // A column-free non-literal expression evaluates to one value; replace
    // it when the literal keeps the inferred type (schema stability).
    if !e.referenced_columns().is_empty() {
        return Ok(e);
    }
    let value = e.bind(schema)?.eval(&Vec::new());
    let keeps_type = value.dtype() == Some(e.infer_type(schema)?);
    if keeps_type {
        *folded += 1;
        Ok(Expr::Lit(value))
    } else {
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate, Bindings};
    use crate::scalar::{col, lit, Func};
    use svc_storage::{DataType, Database, Table, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let mut t = Table::new(
            Schema::from_pairs(&[("id", DataType::Int), ("x", DataType::Float)]).unwrap(),
            &["id"],
        )
        .unwrap();
        for i in 0..50i64 {
            t.insert(vec![Value::Int(i), Value::Float((i % 7) as f64)]).unwrap();
        }
        db.create_table("t", t);
        db
    }

    fn run(plan: Plan) -> (Plan, usize) {
        let db = db();
        let b = Bindings::from_database(&db);
        let expected = evaluate(&plan, &b).unwrap();
        let mut folded = 0;
        let out = fold(plan, &db, &mut folded).unwrap();
        let got = evaluate(&out, &b).unwrap();
        assert!(got.same_contents(&expected), "folding changed the result: {out:?}");
        (out, folded)
    }

    #[test]
    fn arithmetic_constants_fold_to_literals() {
        let plan = Plan::scan("t").select(col("x").gt(lit(1.0).add(lit(2.0))));
        let (out, folded) = run(plan);
        assert_eq!(folded, 1);
        let Plan::Select { predicate, .. } = &out else { panic!("expected σ: {out:?}") };
        assert_eq!(*predicate, col("x").gt(lit(3.0)));
    }

    #[test]
    fn select_true_is_removed() {
        let plan = Plan::scan("t").select(lit(1i64).lt(lit(2i64)));
        let (out, folded) = run(plan);
        assert!(matches!(out, Plan::Scan { .. }), "σ(true) must vanish: {out:?}");
        assert!(folded >= 2, "comparison folds, then the σ drops: {folded}");
    }

    #[test]
    fn select_false_keeps_node_and_empty_result() {
        let plan = Plan::scan("t").select(lit(5i64).lt(lit(2i64)));
        let (out, _) = run(plan);
        let Plan::Select { predicate, .. } = &out else { panic!("σ(false) must stay: {out:?}") };
        assert_eq!(*predicate, Expr::Lit(Value::Bool(false)));
        let db = db();
        let got = evaluate(&out, &Bindings::from_database(&db)).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn kleene_identities_simplify_around_columns() {
        // (x > 1.0 AND true) OR false ≡ x > 1.0, even where x is NULL.
        let plan = Plan::scan("t").select(col("x").gt(lit(1.0)).and(lit(true)).or(lit(false)));
        let (out, folded) = run(plan);
        assert_eq!(folded, 2);
        let Plan::Select { predicate, .. } = &out else { panic!("expected σ") };
        assert_eq!(*predicate, col("x").gt(lit(1.0)));
    }

    #[test]
    fn type_changing_folds_are_skipped() {
        // greatest(2, 1.5) infers Int (first argument) but evaluates to
        // Float(1.5) under the cross-type value order: folding would change
        // a projection's schema.
        let e = Expr::Call { func: Func::Greatest, args: vec![lit(2i64), lit(1.5)] };
        let plan = Plan::scan("t").project(vec![("id", col("id")), ("m", e.clone())]);
        let db = db();
        let mut folded = 0;
        let out = fold(plan, &db, &mut folded).unwrap();
        let Plan::Project { columns, .. } = &out else { panic!("expected Π") };
        assert_eq!(columns[1].1, e, "type-changing fold must be skipped");
    }

    #[test]
    fn null_producing_folds_are_skipped() {
        // 1/0 evaluates to NULL; a NULL literal has no dtype, so the fold
        // is rejected and the expression kept.
        let plan = Plan::scan("t").select(col("x").gt(lit(1i64).div(lit(0i64))));
        let (out, folded) = run(plan);
        assert_eq!(folded, 0);
        let Plan::Select { predicate, .. } = &out else { panic!("expected σ") };
        assert_eq!(*predicate, col("x").gt(lit(1i64).div(lit(0i64))));
    }

    #[test]
    fn folds_inside_projections_and_aggregates() {
        use crate::aggregate::{AggFunc, AggSpec};
        let plan = Plan::scan("t")
            .project(vec![("id", col("id")), ("y", col("x").mul(lit(2.0).mul(lit(3.0))))])
            .aggregate(
                &[],
                vec![AggSpec::new("s", AggFunc::Sum, col("y").add(lit(1.0).sub(lit(1.0))))],
            );
        let (_, folded) = run(plan);
        assert!(folded >= 2, "projection and aggregate arguments fold: {folded}");
    }

    #[test]
    fn idempotent_second_pass_folds_nothing() {
        let db = db();
        let plan = Plan::scan("t").select(col("x").gt(lit(1.0).add(lit(2.0))).and(lit(true)));
        let mut first = 0;
        let once = fold(plan, &db, &mut first).unwrap();
        assert!(first > 0);
        let mut second = 0;
        let twice = fold(once.clone(), &db, &mut second).unwrap();
        assert_eq!(second, 0, "fold must reach a fixed point in one pass");
        assert_eq!(once, twice);
    }
}
