//! Rule-driven plan optimization.
//!
//! Every plan this system evaluates — view definitions, maintenance
//! strategies from `svc-ivm`, and the η-wrapped cleaning expressions of
//! `svc-core` — passes through one rewrite engine. The engine applies a
//! fixed set of [`rules::Rule`]s repeatedly until a full sweep changes
//! nothing (or [`Optimizer::max_passes`] is hit), in the style of Polars'
//! `PredicatePushDown` / projection-pushdown optimizers and noir's
//! `OptimizationRule`:
//!
//! * [`predicate`] — **predicate pushdown**: σ nodes dissolve into conjunct
//!   sets that sink through Π (by substitution), joins (per side), γ (group
//!   columns only), and set operations, recombining with `AND` where they
//!   land;
//! * [`projection`] — **projection pruning**: drops columns that no
//!   ancestor needs below joins, aggregates, and set operations, always
//!   preserving the primary-key columns that Definition 2 key derivation
//!   ([`crate::derive`]) requires;
//! * [`eta`] — **η hash-sampling pushdown**: the paper's Definition 3
//!   rewrite (Section 4.3/4.4 legality conditions) expressed as a rule, so
//!   that cleaning a sample touches only hash-selected rows;
//! * [`constfold`] — **constant folding**: column-free subexpressions
//!   evaluate at plan time; `σ(true)` vanishes;
//! * [`joinorder`] — **cost-based join reordering**: inner-join regions are
//!   rebuilt in the cheapest order a [`cost::CardEstimator`] can find (DP up
//!   to 8 relations, greedy beyond). This rule only runs when the caller
//!   supplies an estimator — see [`optimize_with`] and the `svc-catalog`
//!   crate, which implements the estimator on top of table statistics.
//!
//! The legacy entry point `svc_sampling::push_down` is now a thin wrapper
//! over the η rule of this engine.

pub mod constfold;
pub mod cost;
pub mod eta;
pub mod joinorder;
pub mod predicate;
pub mod projection;
pub mod rules;

use svc_storage::Result;

use crate::derive::LeafProvider;
use crate::plan::Plan;

pub use cost::CardEstimator;
pub use eta::EtaReport;
pub use rules::{
    ConstantFolding, EtaPushdown, JoinReorder, PredicatePushdown, ProjectionPruning, Rule,
};

/// What a full optimization run did.
#[derive(Debug, Clone, Default)]
pub struct OptimizeReport {
    /// Number of full rule sweeps executed (including the final no-change
    /// sweep that confirms the fixed point).
    pub passes: usize,
    /// Number of predicate conjuncts that crossed at least one operator.
    pub predicates_pushed: usize,
    /// Number of pruning projections inserted or narrowed.
    pub projections_pruned: usize,
    /// Number of constant subexpressions folded (and `σ(true)` removed).
    pub constants_folded: usize,
    /// Number of join regions whose tree the cost-based rule rebuilt.
    pub joins_reordered: usize,
    /// What the η push-down rule achieved (depth, blockers, sampled leaves).
    pub eta: EtaReport,
}

/// A fixed-point rewrite engine over [`Plan`]s. The lifetime bounds rules
/// that borrow a caller-owned cardinality estimator ([`JoinReorder`]).
pub struct Optimizer<'e> {
    rules: Vec<Box<dyn Rule + 'e>>,
    /// Safety cap on rule sweeps; the standard rule set reaches its fixed
    /// point in two or three.
    pub max_passes: usize,
    /// Run the rewrite-boundary verifier
    /// ([`crate::verify::logical::verify_rewrite`]) around every rule
    /// application: the input plan must verify, and after each rule that
    /// reports a change the plan must still verify with an unchanged output
    /// schema (and key, for key-preserving rules). Defaults to the `verify`
    /// cargo feature; [`Optimizer::with_verification`] overrides per
    /// instance, which is how witness tests arm it in any build.
    pub verify_rewrites: bool,
}

impl<'e> Optimizer<'e> {
    /// Engine with an explicit rule list.
    pub fn with_rules(rules: Vec<Box<dyn Rule + 'e>>) -> Optimizer<'e> {
        Optimizer { rules, max_passes: 8, verify_rewrites: crate::verify::ENABLED }
    }

    /// Explicitly arm or disarm rewrite verification for this engine,
    /// overriding the `verify` feature default.
    pub fn with_verification(mut self, on: bool) -> Optimizer<'e> {
        self.verify_rewrites = on;
        self
    }

    /// The standard rule set: constant folding, predicate pushdown,
    /// projection pruning, and η pushdown, in that order.
    pub fn standard() -> Optimizer<'static> {
        Optimizer::with_rules(vec![
            Box::new(ConstantFolding),
            Box::new(PredicatePushdown),
            Box::new(ProjectionPruning),
            Box::new(EtaPushdown),
        ])
    }

    /// The standard rule set plus cost-based join reordering, which slots
    /// in after predicate pushdown (so filtered leaves carry their σ when
    /// estimated) and before projection pruning.
    pub fn standard_with_cost(est: &'e dyn CardEstimator) -> Optimizer<'e> {
        Optimizer::with_rules(vec![
            Box::new(ConstantFolding),
            Box::new(PredicatePushdown),
            Box::new(JoinReorder { est }),
            Box::new(ProjectionPruning),
            Box::new(EtaPushdown),
        ])
    }

    /// Engine running only the η rule — the exact Definition 3 rewrite,
    /// used by the `svc_sampling::push_down` compatibility wrapper.
    pub fn eta_only() -> Optimizer<'static> {
        Optimizer::with_rules(vec![Box::new(EtaPushdown)])
    }

    /// Rewrite `plan` to a fixed point of the rule set. With
    /// [`Optimizer::verify_rewrites`] on, the input plan is verified once
    /// up front and re-verified at every rewrite boundary — a rule that
    /// breaks well-formedness or changes the output schema fails here,
    /// blamed by name, instead of surfacing as a wrong answer downstream.
    pub fn run(&self, plan: &Plan, leaves: &impl LeafProvider) -> Result<(Plan, OptimizeReport)> {
        let leaves: &dyn LeafProvider = leaves;
        let mut plan = plan.clone();
        let mut report = OptimizeReport::default();
        let mut current = if self.verify_rewrites {
            Some(crate::verify::logical::verify_plan(&plan, &leaves).map_err(|e| {
                svc_storage::StorageError::Invalid(format!(
                    "rewrite verifier: input plan is ill-formed before any rule ran: {e}"
                ))
            })?)
        } else {
            None
        };
        for _ in 0..self.max_passes {
            report.passes += 1;
            let mut changed = false;
            for rule in &self.rules {
                let (next, rule_changed) = rule.apply(plan, leaves, &mut report)?;
                plan = next;
                if rule_changed {
                    if let Some(cur) = &mut current {
                        *cur = crate::verify::logical::verify_rewrite(
                            rule.name(),
                            cur,
                            &plan,
                            &leaves,
                            rule.preserves_key(),
                        )?;
                    }
                }
                changed |= rule_changed;
            }
            if !changed {
                break;
            }
        }
        Ok((plan, report))
    }
}

/// Optimize with the standard rule set. This is the single entry point the
/// evaluation layers (`svc-ivm`, `svc-core`, `svc-cluster`) call, so that
/// every evaluated plan is optimized exactly once.
pub fn optimize(plan: &Plan, leaves: &impl LeafProvider) -> Result<(Plan, OptimizeReport)> {
    Optimizer::standard().run(plan, leaves)
}

/// [`optimize`] plus cost-based join reordering driven by `est` — the
/// entry point the evaluation layers use when a statistics catalog is
/// available.
pub fn optimize_with(
    plan: &Plan,
    leaves: &impl LeafProvider,
    est: &dyn CardEstimator,
) -> Result<(Plan, OptimizeReport)> {
    Optimizer::standard_with_cost(est).run(plan, leaves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggSpec;
    use crate::eval::{evaluate, Bindings};
    use crate::plan::JoinKind;
    use crate::scalar::{col, lit};
    use svc_storage::{DataType, Database, HashSpec, Schema, Table, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let mut dim = Table::new(
            Schema::from_pairs(&[
                ("dimId", DataType::Int),
                ("weight", DataType::Float),
                ("label", DataType::Str),
            ])
            .unwrap(),
            &["dimId"],
        )
        .unwrap();
        for d in 0..40i64 {
            dim.insert(vec![
                Value::Int(d),
                Value::Float((d % 7) as f64),
                Value::str(format!("d{d}")),
            ])
            .unwrap();
        }
        let mut fact = Table::new(
            Schema::from_pairs(&[
                ("factId", DataType::Int),
                ("dimId", DataType::Int),
                ("x", DataType::Float),
                ("y", DataType::Float),
            ])
            .unwrap(),
            &["factId"],
        )
        .unwrap();
        for f in 0..900i64 {
            fact.insert(vec![
                Value::Int(f),
                Value::Int(f % 40),
                Value::Float((f % 13) as f64),
                Value::Float((f % 29) as f64),
            ])
            .unwrap();
        }
        db.create_table("dim", dim);
        db.create_table("fact", fact);
        db
    }

    fn check_equivalent(plan: &Plan) -> OptimizeReport {
        let db = db();
        let b = Bindings::from_database(&db);
        let expected = evaluate(plan, &b).unwrap();
        let (optimized, report) = optimize(plan, &db).unwrap();
        let got = evaluate(&optimized, &b).unwrap();
        assert!(
            got.same_contents(&expected),
            "optimizer changed results: {} vs {} rows\nplan: {plan:?}\noptimized: {optimized:?}",
            got.len(),
            expected.len()
        );
        report
    }

    #[test]
    fn fixed_point_terminates_and_preserves_results() {
        let plan = Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .aggregate(
                &["dimId"],
                vec![
                    AggSpec::count_all("n"),
                    AggSpec::new("sx", crate::aggregate::AggFunc::Sum, col("x")),
                ],
            )
            .select(col("n").gt(lit(5i64)))
            .select(col("dimId").lt(lit(30i64)));
        let report = check_equivalent(&plan);
        assert!(report.passes <= 4, "expected a quick fixed point, took {}", report.passes);
        assert!(report.predicates_pushed > 0);
    }

    #[test]
    fn combined_rules_compose_with_eta() {
        let plan = Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .aggregate(&["dimId"], vec![AggSpec::count_all("n")])
            .select(col("dimId").ge(lit(4i64)))
            .hash(&["dimId"], 0.4, HashSpec::with_seed(3));
        let report = check_equivalent(&plan);
        assert!(report.eta.fully_pushed(), "blockers: {:?}", report.eta.blockers);
        let mut leaves = report.eta.sampled_leaves;
        leaves.sort();
        assert_eq!(leaves, vec!["dim", "fact"]);
    }

    #[test]
    fn stacked_hashes_reach_fixed_point() {
        // Two adjacent η nodes must not ping-pong (swap positions every
        // sweep until max_passes); the engine has to converge quickly.
        let plan = Plan::scan("fact")
            .select(col("x").gt(lit(1.0)))
            .hash(&["factId"], 0.5, HashSpec::with_seed(1))
            .hash(&["factId"], 0.7, HashSpec::with_seed(2));
        let report = check_equivalent(&plan);
        assert!(
            report.passes <= 3,
            "stacked η should reach a fixed point, took {} passes",
            report.passes
        );
    }

    /// Count the `Hash` nodes of a plan and return the minimum ratio seen.
    fn hash_nodes(plan: &Plan) -> (usize, f64) {
        match plan {
            Plan::Hash { input, ratio, .. } => {
                let (n, r) = hash_nodes(input);
                (n + 1, r.min(*ratio))
            }
            Plan::Scan { .. } => (0, f64::INFINITY),
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. } => hash_nodes(input),
            Plan::Join { left, right, .. }
            | Plan::Union { left, right }
            | Plan::Intersect { left, right }
            | Plan::Difference { left, right } => {
                let (ln, lr) = hash_nodes(left);
                let (rn, rr) = hash_nodes(right);
                (ln + rn, lr.min(rr))
            }
        }
    }

    #[test]
    fn adjacent_hashes_with_shared_spec_compose_to_min_ratio() {
        // η_{0.7} ∘ η_{0.4} with one (key, spec) ≡ η_{0.4}: the optimizer
        // must collapse the pair into a single hash and keep the result
        // identical (this subsumes the old "leave them unswapped" behavior).
        let spec = HashSpec::with_seed(9);
        let plan = Plan::scan("fact")
            .select(col("x").gt(lit(2.0)))
            .hash(&["factId"], 0.4, spec)
            .hash(&["factId"], 0.7, spec);
        let db = db();
        let b = Bindings::from_database(&db);
        let expected = evaluate(&plan, &b).unwrap();
        let (optimized, _) = optimize(&plan, &db).unwrap();
        let got = evaluate(&optimized, &b).unwrap();
        assert!(got.same_contents(&expected), "η∘η composition changed the sample");
        let (n, min_ratio) = hash_nodes(&optimized);
        assert_eq!(n, 1, "adjacent hashes should compose into one: {optimized:?}");
        assert!((min_ratio - 0.4).abs() < 1e-12, "composed ratio must be min: {min_ratio}");
    }

    #[test]
    fn adjacent_hashes_with_different_specs_stay_stacked() {
        let plan = Plan::scan("fact").hash(&["factId"], 0.4, HashSpec::with_seed(1)).hash(
            &["factId"],
            0.7,
            HashSpec::with_seed(2),
        );
        let db = db();
        let b = Bindings::from_database(&db);
        let expected = evaluate(&plan, &b).unwrap();
        let (optimized, _) = optimize(&plan, &db).unwrap();
        let got = evaluate(&optimized, &b).unwrap();
        assert!(got.same_contents(&expected));
        let (n, _) = hash_nodes(&optimized);
        assert_eq!(n, 2, "independent samples must not merge: {optimized:?}");
    }

    #[test]
    fn report_counts_projection_pruning() {
        // The aggregate needs only dimId and x; the join carries label/weight
        // and y for nothing — pruning should trim them below the join.
        let plan = Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .aggregate(
                &["dimId"],
                vec![AggSpec::new("sx", crate::aggregate::AggFunc::Sum, col("x"))],
            );
        let report = check_equivalent(&plan);
        assert!(report.projections_pruned > 0, "report: {report:?}");
    }
}
