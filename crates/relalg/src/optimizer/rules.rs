//! The rule abstraction of the rewrite engine.
//!
//! A rule is one whole-plan rewrite pass that preserves the relation a plan
//! computes (same schema, same key, same rows). The engine
//! ([`crate::optimizer::Optimizer`]) sweeps its rules in order until no rule
//! reports a change — the same fixed-point discipline as noir's
//! `OptimizationRule` and Polars' optimizer passes.

use svc_storage::Result;

use crate::derive::LeafProvider;
use crate::optimizer::cost::CardEstimator;
use crate::optimizer::OptimizeReport;
use crate::plan::Plan;

/// One rewrite rule of the optimizer.
pub trait Rule {
    /// Diagnostic name.
    fn name(&self) -> &'static str;

    /// Apply the rule to the whole plan. Returns the rewritten plan and
    /// whether anything moved; statistics go into `report`.
    fn apply(
        &self,
        plan: Plan,
        leaves: &dyn LeafProvider,
        report: &mut OptimizeReport,
    ) -> Result<(Plan, bool)>;

    /// Whether a sound application must leave the Definition 2 primary-key
    /// *claim* untouched. The rewrite-boundary verifier
    /// ([`crate::verify::logical::verify_rewrite`]) enforces output-schema
    /// preservation for every rule, and key preservation only for rules
    /// that answer true here. [`JoinReorder`] answers false: FK key
    /// reduction depends on join association order, so reassociating a
    /// join region can honestly re-derive a different — equally valid —
    /// unique key over the same output schema.
    fn preserves_key(&self) -> bool {
        true
    }
}

/// Predicate pushdown (see [`crate::optimizer::predicate`]).
pub struct PredicatePushdown;

impl Rule for PredicatePushdown {
    fn name(&self) -> &'static str {
        "predicate-pushdown"
    }

    fn apply(
        &self,
        plan: Plan,
        leaves: &dyn LeafProvider,
        report: &mut OptimizeReport,
    ) -> Result<(Plan, bool)> {
        let mut moved = 0;
        let out = crate::optimizer::predicate::pushdown(plan, leaves, &mut moved)?;
        report.predicates_pushed += moved;
        Ok((out, moved > 0))
    }
}

/// Projection pruning (see [`crate::optimizer::projection`]).
pub struct ProjectionPruning;

impl Rule for ProjectionPruning {
    fn name(&self) -> &'static str {
        "projection-pruning"
    }

    fn apply(
        &self,
        plan: Plan,
        leaves: &dyn LeafProvider,
        report: &mut OptimizeReport,
    ) -> Result<(Plan, bool)> {
        let mut pruned = 0;
        let out = crate::optimizer::projection::prune(plan, leaves, &mut pruned)?;
        report.projections_pruned += pruned;
        Ok((out, pruned > 0))
    }
}

/// Constant folding (see [`crate::optimizer::constfold`]).
pub struct ConstantFolding;

impl Rule for ConstantFolding {
    fn name(&self) -> &'static str {
        "constant-folding"
    }

    fn apply(
        &self,
        plan: Plan,
        leaves: &dyn LeafProvider,
        report: &mut OptimizeReport,
    ) -> Result<(Plan, bool)> {
        let mut folded = 0;
        let out = crate::optimizer::constfold::fold(plan, leaves, &mut folded)?;
        report.constants_folded += folded;
        Ok((out, folded > 0))
    }
}

/// Cost-based join reordering (see [`crate::optimizer::joinorder`]); only
/// active when the optimizer was given a [`CardEstimator`].
pub struct JoinReorder<'e> {
    /// The statistics-backed cardinality estimator driving the search.
    pub est: &'e dyn CardEstimator,
}

impl Rule for JoinReorder<'_> {
    fn name(&self) -> &'static str {
        "join-reorder"
    }

    fn apply(
        &self,
        plan: Plan,
        leaves: &dyn LeafProvider,
        report: &mut OptimizeReport,
    ) -> Result<(Plan, bool)> {
        let mut reordered = 0;
        let out = crate::optimizer::joinorder::reorder(plan, leaves, self.est, &mut reordered)?;
        report.joins_reordered += reordered;
        Ok((out, reordered > 0))
    }

    fn preserves_key(&self) -> bool {
        // Reassociation legitimately changes which side FK key reduction
        // fires on; the re-derived key is a different valid unique key.
        false
    }
}

/// η hash-sampling pushdown (see [`crate::optimizer::eta`]).
pub struct EtaPushdown;

impl Rule for EtaPushdown {
    fn name(&self) -> &'static str {
        "eta-pushdown"
    }

    fn apply(
        &self,
        plan: Plan,
        leaves: &dyn LeafProvider,
        report: &mut OptimizeReport,
    ) -> Result<(Plan, bool)> {
        let mut pass = crate::optimizer::eta::EtaReport::default();
        let out = crate::optimizer::eta::pushdown(plan, leaves, &mut pass)?;
        // A sweep that moved nothing re-derives the same blockers and
        // sampled leaves, so the last sweep's view of them is authoritative;
        // descent depth accumulates across sweeps.
        let changed = pass.descended > 0;
        report.eta.descended += pass.descended;
        report.eta.blockers = pass.blockers;
        report.eta.sampled_leaves = pass.sampled_leaves;
        Ok((out, changed))
    }
}
